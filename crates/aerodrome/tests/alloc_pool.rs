//! Steady-state allocation freedom for the clock graph: once the clock
//! free list, pooled out-edge vectors, and collector scratch are warm, a
//! begin → cross-edge → collect round must not touch the heap at all.
//! This pins the per-transaction vector-clock pool — without it every
//! `begin` boxes a fresh `threads`-wide slice and every `collect` run
//! allocates mark scratch, which costs exactly what AeroDrome's O(1)
//! cycle check is supposed to save.

use dc_aerodrome::ClockGraph;
use dc_runtime::ids::{MethodId, ThreadId};
use dc_runtime::spec::TxKind;
use dc_velodrome::VTxId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // const-init: a lazily-initialized thread_local would itself allocate
    // on first use, recursing into the allocator under measurement.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

const THREADS: usize = 3;

/// One round: every thread begins a transaction chained to its previous
/// one, one cross-thread edge lands between two current transactions, and
/// the collector reclaims everything the current transactions don't reach
/// (each thread's predecessor — its clock and out-edge list go back to the
/// pools).
fn round(g: &mut ClockGraph, seq: u64) -> [VTxId; THREADS] {
    let mut cur = [VTxId::NONE; THREADS];
    for (t, slot) in cur.iter_mut().enumerate() {
        let id = VTxId::new(ThreadId(t as u16), seq);
        let prev = if seq > 1 {
            VTxId::new(ThreadId(t as u16), seq - 1)
        } else {
            VTxId::NONE
        };
        g.begin(id, TxKind::Regular(MethodId(t as u32)), prev);
        *slot = id;
    }
    assert!(
        g.add_cross_edge(cur[0], cur[1], true).is_none(),
        "a forward edge between fresh transactions never closes a cycle"
    );
    g.collect(cur);
    cur
}

#[test]
fn warm_begin_edge_collect_round_does_not_allocate() {
    let mut g = ClockGraph::new(THREADS);

    // Warm-up: fill the clock free list and the out-edge pool, size the
    // collector scratch and the record table's steady-state capacity.
    for seq in 1..=64 {
        round(&mut g, seq);
    }
    assert_eq!(g.len(), THREADS, "collector keeps the graph bounded");

    let before = allocations();
    for seq in 65..=320 {
        round(&mut g, seq);
    }
    assert_eq!(
        allocations(),
        before,
        "a warm begin → cross-edge → collect round must be allocation-free"
    );
    assert_eq!(g.len(), THREADS);
    assert_eq!(g.cycles, 0);
}
