//! AeroDrome: vector-clock conflict-serializability checking (after
//! Mathur & Viswanathan, *Atomicity Checking in Linear Time using Vector
//! Clocks*), implemented as a third independent backend for the
//! DoubleChecker reproduction's differential oracle.
//!
//! Velodrome and DoubleChecker both reduce atomicity checking to cycle
//! detection in a transaction dependence graph and pay for it with graph
//! searches (online DFS, or Tarjan SCC probes plus a precise replay).
//! AeroDrome replaces the search with vector clocks: each transaction
//! carries the exact set of transactions that must precede it, a
//! dependence edge is a clock join, and a cycle is a constant-time clock
//! comparison at the join — linear total work in the number of joins,
//! no SCC machinery.
//!
//! Dependence *discovery* (per-field metadata, transaction demarcation,
//! unary merging) is shared with the Velodrome crate so that, on one
//! deterministic interleaving, all three checkers consume the identical
//! dependence-edge stream; any disagreement isolates a bug in the
//! cycle-detection machinery itself. That property is what the top-level
//! `tests/oracle_threeway.rs` suite and the proptest frontier lean on.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod clocks;

pub use checker::{AeroConfig, AeroDrome, AeroStats};
pub use clocks::ClockGraph;
