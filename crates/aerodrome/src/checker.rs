//! The AeroDrome checker: vector-clock conflict-serializability checking
//! behind the same [`Checker`] hooks as Velodrome and DoubleChecker.
//!
//! Dependence *discovery* deliberately reuses Velodrome's machinery — the
//! per-field [`MetaTable`] (same granularity, same spinlock) and the same
//! transaction demarcation including unary-transaction merging — so on a
//! given interleaving both checkers see the identical edge stream. The
//! only difference is the detection mechanism: a constant-time clock
//! comparison plus joins ([`ClockGraph`]) instead of a graph search. That
//! makes the three-way differential oracle an apples-to-apples comparison
//! of cycle-detection machinery, and makes blame assignment
//! bit-comparable with the Velodrome baseline.

use crate::clocks::ClockGraph;
use dc_obs::Histogram;
use dc_runtime::checker::Checker;
use dc_runtime::heap::Heap;
use dc_runtime::ids::{CellId, MethodId, ObjId, ThreadId, SYNC_CELL};
use dc_runtime::spec::TxKind;
use dc_runtime::spec::{AtomicitySpec, TxFilter, TxTracker};
use dc_runtime::spec::{EnterOutcome, ExitOutcome};
use dc_velodrome::{MetaTable, VTxId, VViolation};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// AeroDrome configuration.
#[derive(Clone, Debug)]
pub struct AeroConfig {
    /// Instrument array accesses (off by default, matching the baselines).
    pub instrument_arrays: bool,
    /// Detect cycles (clocks are still joined when off, preserving the
    /// invariant, so this isolates detection cost like Velodrome's §5.4
    /// switch).
    pub detect_cycles: bool,
    /// Which transactions to instrument.
    pub filter: TxFilter,
    /// Graph-collector cadence in transaction begins (0 disables).
    pub collect_every: u32,
    /// Record per-join wall-clock latency into
    /// [`AeroStats::clock_join_latency`] (off by default: reading the
    /// clock on the hot path is itself a cost).
    pub time_joins: bool,
}

impl Default for AeroConfig {
    fn default() -> Self {
        AeroConfig {
            instrument_arrays: false,
            detect_cycles: true,
            filter: TxFilter::all(),
            collect_every: 256,
            time_joins: false,
        }
    }
}

/// Run statistics.
#[derive(Debug, Default)]
pub struct AeroStats {
    /// Transactions started (regular + unary).
    pub transactions: AtomicU64,
    /// Accesses that ran the full (locked) instrumentation.
    pub instrumented: AtomicU64,
    /// Transactions reclaimed.
    pub collected_txs: AtomicU64,
    /// Latency of each edge's clock join (including its transitive
    /// propagation), recorded only when [`AeroConfig::time_joins`] is set.
    pub clock_join_latency: Histogram,
}

struct Local {
    tracker: TxTracker,
    seq: u64,
    kind: TxKind,
    instrumented: u64,
    /// False while inside an unselected regular transaction: accesses are
    /// not instrumented.
    instrumenting: bool,
    seen_edge_events: u32,
}

#[repr(align(128))]
struct Slot {
    current_tx: AtomicU64,
    edge_events: AtomicU32,
    local: UnsafeCell<Local>,
}

// SAFETY: `local` is accessed only by the owning thread; other fields are
// atomics.
unsafe impl Sync for Slot {}

/// The AeroDrome atomicity checker.
pub struct AeroDrome {
    config: AeroConfig,
    spec: AtomicitySpec,
    slots: Box<[Slot]>,
    meta: OnceLock<MetaTable>,
    clocks: Mutex<ClockGraph>,
    violations: Mutex<Vec<VViolation>>,
    begins_since_collect: AtomicU32,
    stats: AeroStats,
}

impl std::fmt::Debug for AeroDrome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AeroDrome")
            .field("threads", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

impl AeroDrome {
    /// Creates an AeroDrome checker for `n_threads` threads under `spec`.
    pub fn new(n_threads: usize, spec: AtomicitySpec, config: AeroConfig) -> Self {
        AeroDrome {
            config,
            spec,
            slots: (0..n_threads)
                .map(|_| Slot {
                    current_tx: AtomicU64::new(0),
                    edge_events: AtomicU32::new(0),
                    local: UnsafeCell::new(Local {
                        tracker: TxTracker::new(),
                        seq: 0,
                        kind: TxKind::Unary,
                        instrumented: 0,
                        instrumenting: true,
                        seen_edge_events: 0,
                    }),
                })
                .collect(),
            meta: OnceLock::new(),
            clocks: Mutex::new(ClockGraph::new(n_threads)),
            violations: Mutex::new(Vec::new()),
            begins_since_collect: AtomicU32::new(0),
            stats: AeroStats::default(),
        }
    }

    /// The violations found, deduplicated by static identity.
    pub fn violations(&self) -> Vec<VViolation> {
        let all = self.violations.lock();
        let mut seen = std::collections::HashSet::new();
        all.iter()
            .filter(|v| seen.insert(v.static_key()))
            .cloned()
            .collect()
    }

    /// Run statistics.
    pub fn stats(&self) -> &AeroStats {
        &self.stats
    }

    /// Cross-thread dependence edges added.
    pub fn cross_edges(&self) -> u64 {
        self.clocks.lock().cross_edges
    }

    /// Clock joins performed (direct edge joins + transitive propagation).
    pub fn clock_joins(&self) -> u64 {
        self.clocks.lock().joins
    }

    /// Joins that were transitive propagation rather than direct edges.
    pub fn propagated_joins(&self) -> u64 {
        self.clocks.lock().propagated
    }

    /// SAFETY: must only be called from code running on thread `t`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn local(&self, t: ThreadId) -> &mut Local {
        &mut *self.slots[t.index()].local.get()
    }

    fn begin_tx(&self, t: ThreadId, kind: TxKind) {
        let slot = &self.slots[t.index()];
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        local.seq += 1;
        local.kind = kind;
        local.instrumenting = match kind {
            TxKind::Regular(m) => self.config.filter.covers_method(m),
            TxKind::Unary => self.config.filter.instrument_unary,
        };
        local.seen_edge_events = slot.edge_events.load(Ordering::Acquire);
        let id = VTxId::new(t, local.seq);
        let prev = VTxId(slot.current_tx.load(Ordering::Acquire));
        self.clocks.lock().begin(id, kind, prev);
        slot.current_tx.store(id.0, Ordering::Release);
        self.stats.transactions.fetch_add(1, Ordering::Relaxed);
        self.maybe_collect();
    }

    fn maybe_collect(&self) {
        if self.config.collect_every == 0 {
            return;
        }
        let n = self.begins_since_collect.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.config.collect_every
            && self
                .begins_since_collect
                .compare_exchange(n, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            let roots: Vec<VTxId> = self
                .slots
                .iter()
                .map(|s| VTxId(s.current_tx.load(Ordering::Acquire)))
                .collect();
            let collected = self.clocks.lock().collect(roots);
            self.stats
                .collected_txs
                .fetch_add(collected as u64, Ordering::Relaxed);
        }
    }

    /// Unary-transaction merging: cut the current unary transaction if a
    /// cross-thread edge touched it since the last access (mirrors
    /// Velodrome so both checkers demarcate identically).
    fn before_access(&self, t: ThreadId) {
        let slot = &self.slots[t.index()];
        let events = slot.edge_events.load(Ordering::Acquire);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if events != local.seen_edge_events {
            local.seen_edge_events = events;
            if local.kind == TxKind::Unary {
                self.begin_tx(t, TxKind::Unary);
            }
        }
    }

    fn note_edge_event(&self, src: VTxId) {
        let slot = &self.slots[src.thread().index()];
        if slot.current_tx.load(Ordering::Acquire) == src.0 {
            slot.edge_events.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The instrumented access body: Velodrome's READ/WRITE metadata rules
    /// verbatim, feeding edges into the clock graph.
    fn access(&self, t: ThreadId, obj: ObjId, cell: CellId, is_write: bool) {
        self.before_access(t);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if !local.instrumenting {
            return;
        }
        let meta = self.meta.get().expect("run_begin builds metadata");
        let slot = meta.slot(obj, cell);
        let cur = VTxId(self.slots[t.index()].current_tx.load(Ordering::Relaxed));
        meta.lock(slot);
        let mut new_violations: Vec<VViolation> = Vec::new();
        let last_w = meta.writer(slot);
        if is_write {
            // WRITE rule: edges from last writer and every other thread's
            // last reader; then become the writer and clear readers.
            if last_w.is_some() && last_w.thread() != t {
                new_violations.extend(self.edge(last_w, cur));
            }
            for i in 0..meta.n_threads() {
                if i != t.index() {
                    let r = meta.reader(slot, i);
                    if r.is_some() {
                        new_violations.extend(self.edge(r, cur));
                    }
                }
            }
            meta.set_writer(slot, cur);
            meta.clear_readers(slot);
        } else {
            // READ rule: edge from the last writer; record as last reader.
            if last_w.is_some() && last_w.thread() != t {
                new_violations.extend(self.edge(last_w, cur));
            }
            meta.set_reader(slot, t.index(), cur);
        }
        meta.unlock(slot);
        local.instrumented += 1;
        if !new_violations.is_empty() {
            self.violations.lock().extend(new_violations);
        }
    }

    fn edge(&self, src: VTxId, dst: VTxId) -> Option<VViolation> {
        let start = self.config.time_joins.then(Instant::now);
        let v = self
            .clocks
            .lock()
            .add_cross_edge(src, dst, self.config.detect_cycles);
        self.stats.clock_join_latency.record_elapsed(start);
        self.note_edge_event(src);
        self.note_edge_event(dst);
        v
    }
}

impl Checker for AeroDrome {
    fn run_begin(&self, heap: &Heap) {
        let _ = self.meta.set(MetaTable::new(heap));
    }

    fn thread_begin(&self, t: ThreadId) {
        self.begin_tx(t, TxKind::Unary);
    }

    fn thread_end(&self, t: ThreadId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        self.stats
            .instrumented
            .fetch_add(local.instrumented, Ordering::Relaxed);
        local.instrumented = 0;
    }

    fn enter_method(&self, t: ThreadId, m: MethodId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if let EnterOutcome::BeginTransaction(method) = local.tracker.enter(m, &self.spec) {
            self.begin_tx(t, TxKind::Regular(method));
        }
    }

    fn exit_method(&self, t: ThreadId, m: MethodId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if let ExitOutcome::EndTransaction(_) = local.tracker.exit(m) {
            self.begin_tx(t, TxKind::Unary);
        }
    }

    fn read(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.access(t, obj, cell, false);
    }

    fn write(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.access(t, obj, cell, true);
    }

    fn array_read(&self, t: ThreadId, obj: ObjId, index: CellId) {
        if self.config.instrument_arrays {
            self.access(t, obj, index, false);
        }
    }

    fn array_write(&self, t: ThreadId, obj: ObjId, index: CellId) {
        if self.config.instrument_arrays {
            self.access(t, obj, index, true);
        }
    }

    fn sync_acquire(&self, t: ThreadId, obj: ObjId) {
        // Acquire-like operations are reads of the object's sync word.
        self.access(t, obj, SYNC_CELL, false);
    }

    fn sync_release(&self, t: ThreadId, obj: ObjId) {
        self.access(t, obj, SYNC_CELL, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::engine::det::{run_det, Schedule};
    use dc_runtime::heap::ObjKind;
    use dc_runtime::program::{Op, Program, ProgramBuilder};
    use dc_velodrome::{Velodrome, VelodromeConfig};

    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let m0 = b.method("alpha", vec![Op::Write(o, 0), Op::Read(o, 1)]);
        let m1 = b.method("beta", vec![Op::Write(o, 1), Op::Read(o, 0)]);
        let t0 = b.method("t0", vec![Op::Call(m0)]);
        let t1 = b.method("t1", vec![Op::Call(m1)]);
        b.thread(t0);
        b.thread(t1);
        b.build().unwrap()
    }

    fn spec_for(p: &Program) -> AtomicitySpec {
        AtomicitySpec::excluding([
            p.method_by_name("t0").unwrap(),
            p.method_by_name("t1").unwrap(),
        ])
    }

    #[test]
    fn detects_interleaved_atomicity_violation() {
        let p = racy_program();
        let a = AeroDrome::new(2, spec_for(&p), AeroConfig::default());
        // Interleave: t0 enters+writes, t1 enters+writes+reads, t0 reads.
        let script = vec![
            dc_runtime::ids::ThreadId(0), // Enter t0
            dc_runtime::ids::ThreadId(0), // Enter alpha
            dc_runtime::ids::ThreadId(0), // Write o.0
            dc_runtime::ids::ThreadId(1), // Enter t1
            dc_runtime::ids::ThreadId(1), // Enter beta
            dc_runtime::ids::ThreadId(1), // Write o.1
            dc_runtime::ids::ThreadId(1), // Read o.0  (alpha → beta)
            dc_runtime::ids::ThreadId(0), // Read o.1  (beta → alpha: cycle)
        ];
        run_det(&p, &a, &Schedule::Scripted(script)).unwrap();
        let violations = a.violations();
        assert_eq!(violations.len(), 1, "one deduplicated violation");
        assert_eq!(violations[0].cycle.len(), 2);
    }

    #[test]
    fn serial_execution_is_clean() {
        let p = racy_program();
        let a = AeroDrome::new(2, spec_for(&p), AeroConfig::default());
        run_det(&p, &a, &Schedule::RoundRobin { quantum: 1000 }).unwrap();
        assert!(a.violations().is_empty());
        assert!(a.stats().instrumented.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn lock_discipline_suppresses_false_positives() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let lock = b.object(ObjKind::Monitor);
        let m0 = b.method(
            "alpha",
            vec![
                Op::Acquire(lock),
                Op::Write(o, 0),
                Op::Read(o, 1),
                Op::Release(lock),
            ],
        );
        let m1 = b.method(
            "beta",
            vec![
                Op::Acquire(lock),
                Op::Write(o, 1),
                Op::Read(o, 0),
                Op::Release(lock),
            ],
        );
        let t0 = b.method(
            "t0",
            vec![Op::Loop {
                count: 20,
                body: vec![Op::Call(m0)],
            }],
        );
        let t1 = b.method(
            "t1",
            vec![Op::Loop {
                count: 20,
                body: vec![Op::Call(m1)],
            }],
        );
        b.thread(t0);
        b.thread(t1);
        let p = b.build().unwrap();
        let spec = AtomicitySpec::excluding([
            p.method_by_name("t0").unwrap(),
            p.method_by_name("t1").unwrap(),
        ]);
        for seed in 0..10 {
            let a = AeroDrome::new(2, spec.clone(), AeroConfig::default());
            run_det(&p, &a, &Schedule::random(seed)).unwrap();
            assert!(
                a.violations().is_empty(),
                "lock-protected atomic regions are serializable (seed {seed})"
            );
        }
    }

    #[test]
    fn second_run_filter_skips_unselected_transactions() {
        let p = racy_program();
        let filter = TxFilter {
            methods: Some(std::collections::HashSet::new()),
            instrument_unary: false,
        };
        let a = AeroDrome::new(
            2,
            spec_for(&p),
            AeroConfig {
                filter,
                ..AeroConfig::default()
            },
        );
        run_det(&p, &a, &Schedule::random(1)).unwrap();
        assert_eq!(a.stats().instrumented.load(Ordering::Relaxed), 0);
        assert!(a.violations().is_empty());
    }

    #[test]
    fn arrays_not_instrumented_by_default() {
        let mut b = ProgramBuilder::new();
        let arr = b.object(ObjKind::Array { len: 16 });
        let m = b.method("arr", vec![Op::ArrayWrite(arr, 3), Op::ArrayRead(arr, 3)]);
        b.thread(m);
        let p = b.build().unwrap();
        let a = AeroDrome::new(1, AtomicitySpec::all_atomic(), AeroConfig::default());
        run_det(&p, &a, &Schedule::random(0)).unwrap();
        // Only the thread-exit sync access is instrumented.
        assert_eq!(a.stats().instrumented.load(Ordering::Relaxed), 1);

        let a2 = AeroDrome::new(
            1,
            AtomicitySpec::all_atomic(),
            AeroConfig {
                instrument_arrays: true,
                ..AeroConfig::default()
            },
        );
        run_det(&p, &a2, &Schedule::random(0)).unwrap();
        // Two array accesses + the thread-exit sync access.
        assert_eq!(a2.stats().instrumented.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn time_joins_records_latency_histogram() {
        let p = racy_program();
        let a = AeroDrome::new(
            2,
            spec_for(&p),
            AeroConfig {
                time_joins: true,
                ..AeroConfig::default()
            },
        );
        // The scripted interleaving from detects_interleaved_atomicity_violation
        // guarantees cross edges exist.
        let script: Vec<_> = [0u16, 0, 0, 1, 1, 1, 1, 0]
            .iter()
            .map(|&t| dc_runtime::ids::ThreadId(t))
            .collect();
        run_det(&p, &a, &Schedule::Scripted(script)).unwrap();
        let joins = a.stats().clock_join_latency.count();
        assert!(
            joins >= a.cross_edges() && joins > 0,
            "every edge attempt records one latency sample (joins {joins}, edges {})",
            a.cross_edges()
        );
        assert_eq!(a.stats().clock_join_latency.summary().count, joins);
    }

    /// The load-bearing differential property at crate level: on the same
    /// deterministic interleaving, AeroDrome and Velodrome agree on the
    /// deduplicated violation set *and* on blame.
    #[test]
    fn matches_velodrome_bit_for_bit_on_deterministic_runs() {
        let p = racy_program();
        let spec = spec_for(&p);
        for seed in 0..20u64 {
            let schedule = Schedule::random(seed);
            let v = Velodrome::new(2, spec.clone(), VelodromeConfig::default());
            run_det(&p, &v, &schedule).unwrap();
            let a = AeroDrome::new(2, spec.clone(), AeroConfig::default());
            run_det(&p, &a, &schedule).unwrap();
            let vk: Vec<_> = v.violations().iter().map(|x| x.static_key()).collect();
            let ak: Vec<_> = a.violations().iter().map(|x| x.static_key()).collect();
            assert_eq!(vk, ak, "seed {seed}: violation sets");
            let vb: Vec<_> = v
                .violations()
                .iter()
                .map(|x| x.blamed_methods.clone())
                .collect();
            let ab: Vec<_> = a
                .violations()
                .iter()
                .map(|x| x.blamed_methods.clone())
                .collect();
            assert_eq!(vb, ab, "seed {seed}: blame");
            assert_eq!(v.cross_edges(), a.cross_edges(), "seed {seed}: edges");
        }
    }

    #[test]
    fn real_engine_concurrent_run_is_safe() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 4 });
        let lock = b.object(ObjKind::Monitor);
        let m = b.method(
            "work",
            vec![Op::Loop {
                count: 300,
                body: vec![
                    Op::Acquire(lock),
                    Op::Write(o, 0),
                    Op::Read(o, 1),
                    Op::Release(lock),
                    Op::Read(o, 2),
                ],
            }],
        );
        let t = b.method("t", vec![Op::Call(m)]);
        b.thread(t);
        b.thread(t);
        b.thread(t);
        let p = b.build().unwrap();
        let spec = AtomicitySpec::excluding([p.method_by_name("t").unwrap()]);
        let a = AeroDrome::new(3, spec, AeroConfig::default());
        dc_runtime::engine::real::run_real(&p, &a);
        assert!(a.stats().instrumented.load(Ordering::Relaxed) >= 3 * 300 * 3);
        let _ = a.violations();
    }
}
