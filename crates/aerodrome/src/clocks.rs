//! AeroDrome's vector-clock view of the transaction dependence graph.
//!
//! Where Velodrome answers "did this edge close a cycle?" with a graph
//! search, AeroDrome answers it with a constant-time clock comparison
//! (Mathur & Viswanathan, *Atomicity Checking in Linear Time using Vector
//! Clocks*). Each transaction `T` of thread `t` carries a vector clock
//! `C_T` where `C_T[u] = s` means "thread `u`'s transaction with sequence
//! number `s` (and, by program order, every earlier one) must precede `T`
//! in any serialization". The clock is reflexive: `C_T[t] = seq(T)`.
//!
//! Adding a dependence edge `src → dst` then detects a cycle in O(1):
//! `dst` is already an ancestor of `src` exactly when
//! `C_src[thread(dst)] ≥ seq(dst)` — because `dst` is its thread's newest
//! transaction, no later transaction of that thread exists that could
//! account for the component. After the check, `C_src` is joined into
//! `C_dst` and the join is propagated transitively along out-edges until
//! clocks stop changing, which keeps the invariant "clock = exact ancestor
//! set" that the O(1) check relies on. Propagation must follow out-edges
//! into *finished* transactions too: a finished transaction never gains a
//! new in-edge (edges always terminate at the accessing thread's current
//! transaction), but its ancestor set can still grow through an existing
//! in-edge whose source is live.
//!
//! Out-edge lists are retained for propagation, which also lets a detected
//! cycle be reconstructed (Velodrome's DFS, run only on actual
//! violations) so blame assignment is bit-comparable with the baseline.

use dc_runtime::spec::TxKind;
use dc_velodrome::{VTxId, VViolation};
use std::collections::{HashMap, HashSet};
use std::fmt;

fn seq_of(id: VTxId) -> u64 {
    id.0 >> 16
}

struct Record {
    kind: TxKind,
    /// `clock[u]` = highest sequence number of thread `u` known to precede
    /// this transaction (reflexive in the owner's component).
    clock: Box<[u64]>,
    out: Vec<VTxId>,
    /// Orders of this node's earliest incoming/outgoing edges (for blame,
    /// mirroring Velodrome's numbering exactly).
    first_out: Option<u32>,
    first_in: Option<u32>,
}

/// The clock-annotated dependence graph.
pub struct ClockGraph {
    n_threads: usize,
    records: HashMap<VTxId, Record>,
    next_order: u32,
    scratch: Vec<u64>,
    work: Vec<(VTxId, VTxId)>,
    /// Free list of `n_threads`-wide clock slices reclaimed by
    /// [`ClockGraph::collect`]: steady state begins transactions without
    /// allocating (the per-tx clock allocation costs what the linear-time
    /// check saves).
    free: Vec<Box<[u64]>>,
    /// Pooled out-edge vectors, reclaimed alongside the clocks.
    free_out: Vec<Vec<VTxId>>,
    /// Collector scratch, reused across runs.
    collect_marked: HashSet<VTxId>,
    collect_work: Vec<VTxId>,
    collect_dropped: Vec<VTxId>,
    /// Cross-thread dependence edges added.
    pub cross_edges: u64,
    /// Cycles detected.
    pub cycles: u64,
    /// Clock joins performed (edge joins + transitive propagation).
    pub joins: u64,
    /// Joins that were transitive propagation rather than direct edges.
    pub propagated: u64,
}

impl fmt::Debug for ClockGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClockGraph")
            .field("records", &self.records.len())
            .field("threads", &self.n_threads)
            .finish()
    }
}

impl ClockGraph {
    /// Creates an empty graph for `n_threads` threads.
    pub fn new(n_threads: usize) -> Self {
        ClockGraph {
            n_threads,
            records: HashMap::new(),
            next_order: 0,
            scratch: Vec::new(),
            work: Vec::new(),
            free: Vec::new(),
            free_out: Vec::new(),
            collect_marked: HashSet::new(),
            collect_work: Vec::new(),
            collect_dropped: Vec::new(),
            cross_edges: 0,
            cycles: 0,
            joins: 0,
            propagated: 0,
        }
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are live.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Registers a new transaction: its clock starts as the program-order
    /// predecessor's clock (the predecessor is finished, so its clock is
    /// final) advanced to its own sequence number.
    pub fn begin(&mut self, id: VTxId, kind: TxKind, prev: VTxId) {
        // Reuse a pooled slice when one is free; either branch overwrites
        // every element, so stale pooled contents never leak through.
        let mut clock: Box<[u64]> = self
            .free
            .pop()
            .unwrap_or_else(|| vec![0; self.n_threads].into_boxed_slice());
        match self.records.get(&prev) {
            Some(p) if prev.is_some() => clock.copy_from_slice(&p.clock),
            _ => clock.fill(0),
        }
        let t = id.thread().index();
        if t < clock.len() {
            clock[t] = seq_of(id);
        }
        self.records.insert(
            id,
            Record {
                kind,
                clock,
                out: self.free_out.pop().unwrap_or_default(),
                first_out: None,
                first_in: None,
            },
        );
        if prev.is_some() {
            if let Some(p) = self.records.get_mut(&prev) {
                p.out.push(id);
            }
        }
    }

    /// Adds a cross-thread dependence edge, runs the O(1) clock cycle
    /// check, and joins + propagates clocks. Returns the violation if the
    /// edge closed a cycle. Edges to/from collected transactions are
    /// ignored (they cannot be in a future cycle).
    pub fn add_cross_edge(
        &mut self,
        src: VTxId,
        dst: VTxId,
        detect_cycles: bool,
    ) -> Option<VViolation> {
        if src == dst || !src.is_some() || !dst.is_some() {
            return None;
        }
        if !self.records.contains_key(&src) || !self.records.contains_key(&dst) {
            return None;
        }
        let order = self.next_order;
        self.next_order += 1;
        {
            let s = self.records.get_mut(&src).expect("src exists");
            if s.out.contains(&dst) {
                return None; // duplicate edge: no new cycle possible
            }
            s.out.push(dst);
            s.first_out.get_or_insert(order);
        }
        self.records
            .get_mut(&dst)
            .expect("dst exists")
            .first_in
            .get_or_insert(order);
        self.cross_edges += 1;
        // O(1) cycle test: dst is an ancestor of src iff src's clock
        // already covers dst's thread at or past dst's sequence number
        // (dst is its thread's newest transaction, so no later transaction
        // could account for the component).
        let dt = dst.thread().index();
        let cyclic = {
            let s = &self.records[&src];
            dt < s.clock.len() && s.clock[dt] >= seq_of(dst)
        };
        self.join_and_propagate(src, dst);
        if !(detect_cycles && cyclic) {
            return None;
        }
        self.cycles += 1;
        let cycle = self.find_cycle(src, dst)?;
        Some(self.report(cycle))
    }

    /// Joins `from`'s clock into `to`, then propagates any growth along
    /// out-edges until clocks stop changing. Terminates because clocks are
    /// monotone and bounded by the current per-thread sequence numbers.
    fn join_and_propagate(&mut self, src: VTxId, dst: VTxId) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        work.push((src, dst));
        let mut direct = true;
        while let Some((from, to)) = work.pop() {
            let Some(f) = self.records.get(&from) else {
                direct = false;
                continue;
            };
            scratch.clear();
            scratch.extend_from_slice(&f.clock);
            let Some(t) = self.records.get_mut(&to) else {
                direct = false;
                continue;
            };
            let mut changed = false;
            for (slot, &v) in t.clock.iter_mut().zip(scratch.iter()) {
                if v > *slot {
                    *slot = v;
                    changed = true;
                }
            }
            self.joins += 1;
            if !direct {
                self.propagated += 1;
            }
            direct = false;
            if changed {
                let t = &self.records[&to];
                for &next in &t.out {
                    work.push((to, next));
                }
            }
        }
        self.scratch = scratch;
        self.work = work;
    }

    /// Path from `dst` back to `src` (the cycle closed by edge src→dst).
    /// Only runs on a confirmed violation; mirrors Velodrome's DFS so the
    /// reconstructed cycle (and hence blame) is identical.
    fn find_cycle(&self, src: VTxId, dst: VTxId) -> Option<Vec<VTxId>> {
        let mut stack = vec![dst];
        let mut visited: HashSet<VTxId> = [dst].into_iter().collect();
        let mut parent: HashMap<VTxId, VTxId> = HashMap::new();
        while let Some(v) = stack.pop() {
            if v == src {
                let mut path = vec![v];
                let mut cur = v;
                while cur != dst {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path); // dst … src
            }
            if let Some(node) = self.records.get(&v) {
                for &w in &node.out {
                    if self.records.contains_key(&w) && visited.insert(w) {
                        parent.insert(w, v);
                        stack.push(w);
                    }
                }
            }
        }
        None
    }

    fn report(&self, cycle: Vec<VTxId>) -> VViolation {
        let members: Vec<(VTxId, TxKind)> = cycle
            .iter()
            .map(|&tx| (tx, self.records[&tx].kind))
            .collect();
        // Blame: first outgoing edge earlier than first incoming edge.
        let mut blamed: Vec<_> = members
            .iter()
            .filter(|(tx, _)| {
                let n = &self.records[tx];
                matches!((n.first_out, n.first_in), (Some(o), Some(i)) if o < i)
            })
            .filter_map(|(_, k)| k.method())
            .collect();
        if blamed.is_empty() {
            blamed = members.iter().filter_map(|(_, k)| k.method()).collect();
        }
        blamed.sort();
        blamed.dedup();
        VViolation {
            cycle: members,
            blamed_methods: blamed,
        }
    }

    /// Reclaims transactions unreachable from the roots (current
    /// transactions) via outgoing edges. Returns the number collected.
    /// Sound for the clock invariant: every in-edge terminates at a
    /// currently-live transaction, so anything reachable from the roots —
    /// everything a future join could touch — stays resident.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = VTxId>) -> usize {
        let mut marked = std::mem::take(&mut self.collect_marked);
        let mut work = std::mem::take(&mut self.collect_work);
        marked.clear();
        work.clear();
        for r in roots {
            if r.is_some() && marked.insert(r) {
                work.push(r);
            }
        }
        while let Some(id) = work.pop() {
            if let Some(node) = self.records.get(&id) {
                for &w in &node.out {
                    if marked.insert(w) {
                        work.push(w);
                    }
                }
            }
        }
        let before = self.records.len();
        // Remove unmarked records by hand (rather than `retain`) so their
        // clock slices and out-edge vectors land on the free lists for
        // reuse by `begin` — a warm collect run allocates nothing.
        let mut dropped = std::mem::take(&mut self.collect_dropped);
        dropped.clear();
        dropped.extend(self.records.keys().filter(|id| !marked.contains(id)));
        for &id in &dropped {
            if let Some(rec) = self.records.remove(&id) {
                self.free.push(rec.clock);
                let mut out = rec.out;
                out.clear();
                self.free_out.push(out);
            }
        }
        self.collect_marked = marked;
        self.collect_work = work;
        self.collect_dropped = dropped;
        before - self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::ids::{MethodId, ThreadId};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    fn reg(m: u32) -> TxKind {
        TxKind::Regular(MethodId(m))
    }

    #[test]
    fn two_transaction_cycle_is_reported_with_blame() {
        let mut g = ClockGraph::new(2);
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        assert!(g.add_cross_edge(a, b, true).is_none());
        let v = g.add_cross_edge(b, a, true).expect("cycle");
        assert_eq!(v.cycle.len(), 2);
        assert_eq!(v.blamed_methods, vec![MethodId(0)]);
        assert_eq!(g.cycles, 1);
        assert_eq!(g.cross_edges, 2);
    }

    #[test]
    fn duplicate_edges_do_not_re_report() {
        let mut g = ClockGraph::new(2);
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        g.add_cross_edge(a, b, true);
        g.add_cross_edge(b, a, true);
        assert!(g.add_cross_edge(b, a, true).is_none(), "duplicate");
        assert_eq!(g.cross_edges, 2);
    }

    #[test]
    fn cycle_through_intra_thread_edges() {
        // a1 →intra a2 on T0; cross b→a1, cross a2→b: cycle a1,a2,b.
        let mut g = ClockGraph::new(2);
        let a1 = VTxId::new(T0, 1);
        let a2 = VTxId::new(T0, 2);
        let b = VTxId::new(T1, 1);
        g.begin(a1, reg(0), VTxId::NONE);
        g.begin(b, reg(2), VTxId::NONE);
        g.add_cross_edge(b, a1, true); // b → a1 first
        g.begin(a2, reg(1), a1); // intra a1 → a2
        let v = g.add_cross_edge(a2, b, true).expect("cycle via intra edge");
        assert_eq!(v.cycle.len(), 3);
    }

    /// The case that makes eager transitive propagation load-bearing:
    /// b's snapshot of a's ancestors predates the c→a edge, so without
    /// propagation the closing edge b→c would not see c as an ancestor.
    #[test]
    fn propagation_closes_cycles_through_stale_snapshots() {
        let mut g = ClockGraph::new(3);
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        let c = VTxId::new(T2, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        g.begin(c, reg(2), VTxId::NONE);
        assert!(g.add_cross_edge(a, b, true).is_none()); // b learns a
        assert!(g.add_cross_edge(c, a, true).is_none()); // a learns c; must flow on to b
        let v = g.add_cross_edge(b, c, true).expect("cycle b→c→a→b");
        assert_eq!(v.cycle.len(), 3);
        assert!(g.propagated > 0, "the c→a join must propagate a→b");
    }

    #[test]
    fn detection_can_be_disabled() {
        let mut g = ClockGraph::new(2);
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        g.add_cross_edge(a, b, false);
        assert!(g.add_cross_edge(b, a, false).is_none());
        assert_eq!(g.cycles, 0);
        assert_eq!(g.cross_edges, 2, "edges still tracked");
    }

    #[test]
    fn collect_reclaims_unreachable() {
        let mut g = ClockGraph::new(1);
        let a1 = VTxId::new(T0, 1);
        let a2 = VTxId::new(T0, 2);
        g.begin(a1, reg(0), VTxId::NONE);
        g.begin(a2, reg(0), a1);
        assert_eq!(g.collect([a2]), 1);
        assert_eq!(g.len(), 1);
        assert!(g.add_cross_edge(a1, a2, true).is_none());
    }

    #[test]
    fn unary_only_cycle_blames_nothing_but_reports() {
        let mut g = ClockGraph::new(2);
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, TxKind::Unary, VTxId::NONE);
        g.begin(b, TxKind::Unary, VTxId::NONE);
        g.add_cross_edge(a, b, true);
        let v = g.add_cross_edge(b, a, true).expect("cycle");
        assert!(v.blamed_methods.is_empty());
        assert_eq!(v.static_key(), vec![None, None]);
    }

    #[test]
    fn clocks_stay_exact_ancestor_sets() {
        // a→b, b→c: c's clock must cover a transitively at edge time.
        let mut g = ClockGraph::new(3);
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        let c = VTxId::new(T2, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        g.begin(c, reg(2), VTxId::NONE);
        g.add_cross_edge(a, b, true);
        g.add_cross_edge(b, c, true);
        // Closing c→a must be an O(1) positive without any propagation
        // having been necessary (the join at b→c carried a along).
        let v = g.add_cross_edge(c, a, true).expect("cycle");
        assert_eq!(v.cycle.len(), 3);
    }
}
