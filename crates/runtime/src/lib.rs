//! Managed-runtime substrate for the DoubleChecker (PLDI 2014) reproduction.
//!
//! The paper implements its analyses inside Jikes RVM, where the JIT
//! compilers insert barriers before every program load and store. This crate
//! is that substrate rebuilt from scratch in Rust:
//!
//! * a [`heap::Heap`] of shared objects with real data cells,
//! * a workload [`program::Program`] IR whose every shared access flows
//!   through analysis hooks (the "instrumentation"),
//! * the [`checker::Checker`] trait — the hook surface each atomicity
//!   checker implements,
//! * two execution engines: [`engine::real::run_real`] (one OS thread per
//!   program thread, for performance experiments) and
//!   [`engine::det::run_det`] (deterministic interleavings, for tests and
//!   the paper's worked examples),
//! * [`spec::AtomicitySpec`] and [`spec::TxTracker`] — atomicity
//!   specifications and transaction demarcation shared by all checkers.
//!
//! # Example
//!
//! ```
//! use dc_runtime::heap::ObjKind;
//! use dc_runtime::program::{Op, ProgramBuilder};
//! use dc_runtime::engine::real::run_real;
//! use dc_runtime::checker::NopChecker;
//!
//! let mut b = ProgramBuilder::new();
//! let shared = b.object(ObjKind::Plain { fields: 2 });
//! let work = b.method("work", vec![Op::Read(shared, 0), Op::Write(shared, 1)]);
//! b.thread(work);
//! b.thread(work);
//! let program = b.build()?;
//! let stats = run_real(&program, &NopChecker);
//! assert_eq!(stats.reads, 2);
//! # Ok::<(), dc_runtime::program::ProgramError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod engine;
pub mod heap;
pub mod ids;
pub mod interp;
pub mod program;
pub mod spec;
pub mod trace;

pub use checker::{Checker, NopChecker};
pub use engine::det::{run_det, DetError, Schedule};
pub use engine::real::run_real;
pub use engine::RunStats;
pub use heap::{Heap, ObjKind};
pub use ids::{AccessKind, CellId, MethodId, ObjId, ThreadId, SYNC_CELL};
pub use program::{Method, Op, Program, ProgramBuilder, ProgramError, StartMode, ThreadSpec};
pub use spec::{AtomicitySpec, EnterOutcome, ExitOutcome, TxFilter, TxKind, TxTracker};
pub use trace::{PerThreadTrace, Tee, TraceChecker, TraceEvent};
