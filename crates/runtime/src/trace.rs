//! Execution tracing and checker composition.
//!
//! [`TraceChecker`] records the full event stream of a run — the input an
//! *offline* serializability analysis consumes (the related-work
//! alternative to online checking, paper §6). [`Tee`] drives two checkers
//! from one execution, which is how the differential tests compare
//! Velodrome, DoubleChecker, and the offline oracle on literally the same
//! event stream.

use crate::checker::Checker;
use crate::heap::Heap;
use crate::ids::{CellId, MethodId, ObjId, ThreadId};
use parking_lot::Mutex;
use std::cell::UnsafeCell;

/// One recorded event. Synchronization operations appear as
/// [`TraceEvent::SyncAcquire`]/[`TraceEvent::SyncRelease`] exactly as the
/// analyses see them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Thread started.
    ThreadBegin(ThreadId),
    /// Thread finished.
    ThreadEnd(ThreadId),
    /// Method entry.
    Enter(ThreadId, MethodId),
    /// Method exit.
    Exit(ThreadId, MethodId),
    /// Plain read.
    Read(ThreadId, ObjId, CellId),
    /// Plain write.
    Write(ThreadId, ObjId, CellId),
    /// Array read.
    ArrayRead(ThreadId, ObjId, CellId),
    /// Array write.
    ArrayWrite(ThreadId, ObjId, CellId),
    /// Acquire-like synchronization.
    SyncAcquire(ThreadId, ObjId),
    /// Release-like synchronization.
    SyncRelease(ThreadId, ObjId),
}

impl TraceEvent {
    /// The thread that performed the event.
    pub fn thread(&self) -> ThreadId {
        match *self {
            TraceEvent::ThreadBegin(t)
            | TraceEvent::ThreadEnd(t)
            | TraceEvent::Enter(t, _)
            | TraceEvent::Exit(t, _)
            | TraceEvent::Read(t, _, _)
            | TraceEvent::Write(t, _, _)
            | TraceEvent::ArrayRead(t, _, _)
            | TraceEvent::ArrayWrite(t, _, _)
            | TraceEvent::SyncAcquire(t, _)
            | TraceEvent::SyncRelease(t, _) => t,
        }
    }
}

/// Records every event of a run in one globally ordered trace.
///
/// Ordering caveat: under the real-thread engine the global order is the
/// order events won the trace lock, which is *a* linearization of the
/// execution (each event is recorded inside its barrier, before the
/// access). Under the deterministic engine it is exact.
#[derive(Debug, Default)]
pub struct TraceChecker {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceChecker {
    /// Creates an empty trace recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the recorder, returning the trace.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_inner()
    }

    /// Copies the trace out.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    fn push(&self, e: TraceEvent) {
        self.events.lock().push(e);
    }
}

impl Checker for TraceChecker {
    fn thread_begin(&self, t: ThreadId) {
        self.push(TraceEvent::ThreadBegin(t));
    }
    fn thread_end(&self, t: ThreadId) {
        self.push(TraceEvent::ThreadEnd(t));
    }
    fn enter_method(&self, t: ThreadId, m: MethodId) {
        self.push(TraceEvent::Enter(t, m));
    }
    fn exit_method(&self, t: ThreadId, m: MethodId) {
        self.push(TraceEvent::Exit(t, m));
    }
    fn read(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.push(TraceEvent::Read(t, obj, cell));
    }
    fn write(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.push(TraceEvent::Write(t, obj, cell));
    }
    fn array_read(&self, t: ThreadId, obj: ObjId, index: CellId) {
        self.push(TraceEvent::ArrayRead(t, obj, index));
    }
    fn array_write(&self, t: ThreadId, obj: ObjId, index: CellId) {
        self.push(TraceEvent::ArrayWrite(t, obj, index));
    }
    fn sync_acquire(&self, t: ThreadId, obj: ObjId) {
        self.push(TraceEvent::SyncAcquire(t, obj));
    }
    fn sync_release(&self, t: ThreadId, obj: ObjId) {
        self.push(TraceEvent::SyncRelease(t, obj));
    }
}

/// Drives two checkers from one execution, `A` first.
///
/// The engines' ordering guarantees apply to each component separately; in
/// particular both components observe identical event streams, which is
/// what differential testing needs.
#[derive(Debug)]
pub struct Tee<A, B> {
    /// First checker.
    pub a: A,
    /// Second checker.
    pub b: B,
}

impl<A: Checker, B: Checker> Tee<A, B> {
    /// Composes two checkers.
    pub fn new(a: A, b: B) -> Self {
        Tee { a, b }
    }
}

macro_rules! tee_forward {
    ($(fn $name:ident(&self $(, $arg:ident : $ty:ty)*);)*) => {
        $(fn $name(&self $(, $arg: $ty)*) {
            self.a.$name($($arg),*);
            self.b.$name($($arg),*);
        })*
    };
}

impl<A: Checker, B: Checker> Checker for Tee<A, B> {
    fn run_begin(&self, heap: &Heap) {
        self.a.run_begin(heap);
        self.b.run_begin(heap);
    }
    tee_forward! {
        fn run_end(&self);
        fn thread_begin(&self, t: ThreadId);
        fn thread_end(&self, t: ThreadId);
        fn enter_method(&self, t: ThreadId, m: MethodId);
        fn exit_method(&self, t: ThreadId, m: MethodId);
        fn read(&self, t: ThreadId, obj: ObjId, cell: CellId);
        fn write(&self, t: ThreadId, obj: ObjId, cell: CellId);
        fn array_read(&self, t: ThreadId, obj: ObjId, index: CellId);
        fn array_write(&self, t: ThreadId, obj: ObjId, index: CellId);
        fn sync_acquire(&self, t: ThreadId, obj: ObjId);
        fn sync_release(&self, t: ThreadId, obj: ObjId);
        fn safe_point(&self, t: ThreadId);
        fn before_block(&self, t: ThreadId);
        fn after_unblock(&self, t: ThreadId);
    }
}

/// A per-thread event collector usable from the deterministic engine where
/// a lock per event would be wasteful; merges into program order per
/// thread.
#[derive(Debug)]
pub struct PerThreadTrace {
    slots: Box<[UnsafeCell<Vec<TraceEvent>>]>,
}

// SAFETY: each slot is only written by its owning thread (engine
// convention); reads happen after the run.
unsafe impl Sync for PerThreadTrace {}

impl PerThreadTrace {
    /// Creates a collector for `n` threads.
    pub fn new(n: usize) -> Self {
        PerThreadTrace {
            slots: (0..n).map(|_| UnsafeCell::new(Vec::new())).collect(),
        }
    }

    /// Extracts the per-thread event streams.
    pub fn into_streams(self) -> Vec<Vec<TraceEvent>> {
        self.slots
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect()
    }

    fn push(&self, t: ThreadId, e: TraceEvent) {
        // SAFETY: called on thread t only.
        unsafe { (*self.slots[t.index()].get()).push(e) };
    }
}

impl Checker for PerThreadTrace {
    fn enter_method(&self, t: ThreadId, m: MethodId) {
        self.push(t, TraceEvent::Enter(t, m));
    }
    fn exit_method(&self, t: ThreadId, m: MethodId) {
        self.push(t, TraceEvent::Exit(t, m));
    }
    fn read(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.push(t, TraceEvent::Read(t, obj, cell));
    }
    fn write(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.push(t, TraceEvent::Write(t, obj, cell));
    }
    fn sync_acquire(&self, t: ThreadId, obj: ObjId) {
        self.push(t, TraceEvent::SyncAcquire(t, obj));
    }
    fn sync_release(&self, t: ThreadId, obj: ObjId) {
        self.push(t, TraceEvent::SyncRelease(t, obj));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::det::{run_det, Schedule};
    use crate::heap::ObjKind;
    use crate::program::{Op, ProgramBuilder};

    fn tiny_program() -> crate::program::Program {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method("m", vec![Op::Write(o, 0), Op::Read(o, 0)]);
        b.thread(m);
        b.thread(m);
        b.build().unwrap()
    }

    #[test]
    fn trace_records_every_event_in_order() {
        let p = tiny_program();
        let trace = TraceChecker::new();
        run_det(&p, &trace, &Schedule::RoundRobin { quantum: 100 }).unwrap();
        let events = trace.into_events();
        // 2 threads × (begin + enter + write + read + exit + end + sync-release)
        assert_eq!(events.len(), 14);
        assert!(matches!(events[0], TraceEvent::ThreadBegin(_)));
        let first = events[0].thread();
        assert!(matches!(events[2], TraceEvent::Write(t, _, 0) if t == first));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::SyncRelease(..))));
    }

    #[test]
    fn trace_event_thread_accessor() {
        assert_eq!(
            TraceEvent::Read(ThreadId(3), ObjId(0), 1).thread(),
            ThreadId(3)
        );
        assert_eq!(TraceEvent::ThreadEnd(ThreadId(2)).thread(), ThreadId(2));
    }

    #[test]
    fn tee_drives_both_checkers_identically() {
        let p = tiny_program();
        let tee = Tee::new(TraceChecker::new(), TraceChecker::new());
        run_det(&p, &tee, &Schedule::random(5)).unwrap();
        assert_eq!(tee.a.events(), tee.b.events());
        assert!(!tee.a.events().is_empty());
    }

    #[test]
    fn per_thread_trace_preserves_program_order() {
        let p = tiny_program();
        let trace = PerThreadTrace::new(2);
        run_det(&p, &trace, &Schedule::random(9)).unwrap();
        let streams = trace.into_streams();
        assert_eq!(streams.len(), 2);
        for (i, s) in streams.iter().enumerate() {
            assert!(matches!(s[0], TraceEvent::Enter(t, _) if t.index() == i));
            assert!(
                s.windows(2).all(|w| w[0].thread() == w[1].thread()),
                "single-thread stream"
            );
        }
    }
}
