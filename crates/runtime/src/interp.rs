//! Per-thread program interpretation shared by both execution engines.
//!
//! [`ThreadInterp`] walks one thread's method bodies (flattening calls and
//! loops) and yields a stream of primitive [`Action`]s. The engines execute
//! the actions — invoking checker hooks, performing heap accesses, and
//! handling blocking — so the two engines cannot diverge on *what* a program
//! does, only on interleaving and timing.

use crate::ids::{CellId, MethodId, ObjId, ThreadId};
use crate::program::{Op, Program};

/// A primitive step of execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Method entry (drives transaction demarcation).
    Enter(MethodId),
    /// Method exit.
    Exit(MethodId),
    /// Plain-field load.
    Read(ObjId, CellId),
    /// Plain-field store.
    Write(ObjId, CellId),
    /// Array-element load.
    ArrayRead(ObjId, CellId),
    /// Array-element store.
    ArrayWrite(ObjId, CellId),
    /// Monitor enter.
    Acquire(ObjId),
    /// Monitor exit.
    Release(ObjId),
    /// Monitor wait.
    Wait(ObjId),
    /// Monitor notify-all.
    NotifyAll(ObjId),
    /// Barrier rendezvous.
    Barrier(ObjId),
    /// Start a thread.
    Fork(ThreadId),
    /// Wait for a thread.
    Join(ThreadId),
    /// Busy-work units.
    Compute(u32),
}

#[derive(Debug)]
enum Frame<'p> {
    Method {
        m: MethodId,
        ops: &'p [Op],
        pc: usize,
    },
    Loop {
        remaining: u32,
        ops: &'p [Op],
        pc: usize,
    },
}

/// Iterator-like walker over one thread's dynamic action stream.
#[derive(Debug)]
pub struct ThreadInterp<'p> {
    program: &'p Program,
    frames: Vec<Frame<'p>>,
    started: bool,
    entry: MethodId,
}

impl<'p> ThreadInterp<'p> {
    /// Creates an interpreter for the thread whose entry method is `entry`.
    pub fn new(program: &'p Program, entry: MethodId) -> Self {
        ThreadInterp {
            program,
            frames: Vec::with_capacity(8),
            started: false,
            entry,
        }
    }

    /// Produces the next action, or `None` when the thread has finished.
    ///
    /// Blocking actions are returned exactly once; the engine is responsible
    /// for retrying/completing them.
    pub fn next_action(&mut self) -> Option<Action> {
        if !self.started {
            self.started = true;
            self.push_method(self.entry);
            return Some(Action::Enter(self.entry));
        }
        loop {
            let program = self.program;
            match self.frames.last_mut()? {
                Frame::Method { m, ops, pc } => {
                    if *pc == ops.len() {
                        let m = *m;
                        self.frames.pop();
                        return Some(Action::Exit(m));
                    }
                    let op = &ops[*pc];
                    *pc += 1;
                    if let Some(action) = self.lower(op, program) {
                        return Some(action);
                    }
                }
                Frame::Loop { remaining, ops, pc } => {
                    if *pc == ops.len() {
                        *remaining -= 1;
                        if *remaining == 0 {
                            self.frames.pop();
                            continue;
                        }
                        *pc = 0;
                    }
                    let op = &ops[*pc];
                    *pc += 1;
                    if let Some(action) = self.lower(op, program) {
                        return Some(action);
                    }
                }
            }
        }
    }

    /// Lowers one op: control ops push frames and yield nothing (or an
    /// `Enter`); leaf ops become actions directly.
    fn lower(&mut self, op: &'p Op, program: &'p Program) -> Option<Action> {
        match op {
            Op::Read(o, c) => Some(Action::Read(*o, *c)),
            Op::Write(o, c) => Some(Action::Write(*o, *c)),
            Op::ArrayRead(o, c) => Some(Action::ArrayRead(*o, *c)),
            Op::ArrayWrite(o, c) => Some(Action::ArrayWrite(*o, *c)),
            Op::Acquire(o) => Some(Action::Acquire(*o)),
            Op::Release(o) => Some(Action::Release(*o)),
            Op::Wait(o) => Some(Action::Wait(*o)),
            Op::NotifyAll(o) => Some(Action::NotifyAll(*o)),
            Op::Barrier(o) => Some(Action::Barrier(*o)),
            Op::Fork(t) => Some(Action::Fork(*t)),
            Op::Join(t) => Some(Action::Join(*t)),
            Op::Compute(u) => Some(Action::Compute(*u)),
            Op::Call(m) => {
                self.push_method(*m);
                Some(Action::Enter(*m))
            }
            Op::Loop { count, body } => {
                if *count > 0 && !body.is_empty() {
                    self.frames.push(Frame::Loop {
                        remaining: *count,
                        ops: body,
                        pc: 0,
                    });
                }
                let _ = program;
                None
            }
        }
    }

    fn push_method(&mut self, m: MethodId) {
        self.frames.push(Frame::Method {
            m,
            ops: &self.program.methods[m.index()].body,
            pc: 0,
        });
    }
}

/// Executes `units` of deterministic busy-work and returns a value derived
/// from it so the optimizer cannot elide the loop.
#[inline]
pub fn compute_units(units: u32) -> u64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64 ^ u64::from(units);
    for _ in 0..units {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::ObjKind;
    use crate::program::ProgramBuilder;

    fn collect(program: &Program, entry: MethodId) -> Vec<Action> {
        let mut interp = ThreadInterp::new(program, entry);
        let mut out = Vec::new();
        while let Some(a) = interp.next_action() {
            out.push(a);
        }
        out
    }

    #[test]
    fn yields_enter_body_exit() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method("m", vec![Op::Read(o, 0), Op::Write(o, 0)]);
        b.thread(m);
        let p = b.build().unwrap();
        assert_eq!(
            collect(&p, m),
            vec![
                Action::Enter(m),
                Action::Read(o, 0),
                Action::Write(o, 0),
                Action::Exit(m),
            ]
        );
    }

    #[test]
    fn calls_nest_enter_exit() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let leaf = b.method("leaf", vec![Op::Write(o, 0)]);
        let m = b.method("m", vec![Op::Call(leaf), Op::Read(o, 0)]);
        b.thread(m);
        let p = b.build().unwrap();
        assert_eq!(
            collect(&p, m),
            vec![
                Action::Enter(m),
                Action::Enter(leaf),
                Action::Write(o, 0),
                Action::Exit(leaf),
                Action::Read(o, 0),
                Action::Exit(m),
            ]
        );
    }

    #[test]
    fn loops_repeat_their_body() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "m",
            vec![Op::Loop {
                count: 3,
                body: vec![Op::Read(o, 0)],
            }],
        );
        b.thread(m);
        let p = b.build().unwrap();
        let actions = collect(&p, m);
        assert_eq!(actions.len(), 5); // Enter + 3 reads + Exit
        assert_eq!(
            actions[1..4]
                .iter()
                .filter(|a| matches!(a, Action::Read(..)))
                .count(),
            3
        );
    }

    #[test]
    fn zero_iteration_and_empty_loops_vanish() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "m",
            vec![
                Op::Loop {
                    count: 0,
                    body: vec![Op::Read(o, 0)],
                },
                Op::Loop {
                    count: 5,
                    body: vec![],
                },
                Op::Write(o, 0),
            ],
        );
        b.thread(m);
        let p = b.build().unwrap();
        assert_eq!(
            collect(&p, m),
            vec![Action::Enter(m), Action::Write(o, 0), Action::Exit(m)]
        );
    }

    #[test]
    fn nested_loops_multiply() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "m",
            vec![Op::Loop {
                count: 2,
                body: vec![Op::Loop {
                    count: 3,
                    body: vec![Op::Read(o, 0)],
                }],
            }],
        );
        b.thread(m);
        let p = b.build().unwrap();
        let reads = collect(&p, m)
            .iter()
            .filter(|a| matches!(a, Action::Read(..)))
            .count();
        assert_eq!(reads, 6);
    }

    #[test]
    fn compute_units_is_deterministic_and_nonzero() {
        assert_eq!(compute_units(10), compute_units(10));
        assert_ne!(compute_units(10), compute_units(11));
    }
}
