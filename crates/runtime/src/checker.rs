//! The analysis hook interface.
//!
//! Execution engines drive a [`Checker`] at every instrumentation point the
//! paper's Jikes RVM implementation compiles barriers into: before each
//! program read and write, at synchronization operations, at method entry and
//! exit (transaction demarcation), at safe points, and around blocking. Each
//! experimental configuration of the paper's Figure 7 is a different
//! `Checker` implementation:
//!
//! * unmodified JVM → [`NopChecker`],
//! * Velodrome → `dc-velodrome`,
//! * DoubleChecker single-run / first-run / second-run → `dc-core`.

use crate::heap::Heap;
use crate::ids::{CellId, MethodId, ObjId, ThreadId};

/// Hooks invoked by the execution engines. All methods have empty default
/// bodies so a checker only implements the events it cares about.
///
/// Implementations must be `Sync`: one checker instance is shared by all
/// program threads, exactly like analysis state in a JVM. Per-thread state
/// should be kept in dense per-thread slots.
pub trait Checker: Sync {
    /// Called once before any thread runs, with the materialized heap.
    fn run_begin(&self, heap: &Heap) {
        let _ = heap;
    }

    /// Called once after every thread has finished. Analyses flush
    /// end-of-run work (e.g. final cycle detection) here.
    fn run_end(&self) {}

    /// Thread `t` is about to execute its first operation.
    fn thread_begin(&self, t: ThreadId) {
        let _ = t;
    }

    /// Thread `t` has executed its last operation.
    fn thread_end(&self, t: ThreadId) {
        let _ = t;
    }

    /// Thread `t` entered method `m`.
    fn enter_method(&self, t: ThreadId, m: MethodId) {
        let _ = (t, m);
    }

    /// Thread `t` is exiting method `m`.
    fn exit_method(&self, t: ThreadId, m: MethodId) {
        let _ = (t, m);
    }

    /// Read barrier: `t` is about to load `(obj, cell)` from a plain object.
    fn read(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        let _ = (t, obj, cell);
    }

    /// Write barrier: `t` is about to store to `(obj, cell)`.
    fn write(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        let _ = (t, obj, cell);
    }

    /// Read barrier for an array element. Default forwards to [`Checker::read`];
    /// checkers honoring the paper's default configuration (arrays not
    /// instrumented, §4) override this with a no-op or a config switch.
    fn array_read(&self, t: ThreadId, obj: ObjId, index: CellId) {
        self.read(t, obj, index);
    }

    /// Write barrier for an array element; see [`Checker::array_read`].
    fn array_write(&self, t: ThreadId, obj: ObjId, index: CellId) {
        self.write(t, obj, index);
    }

    /// Acquire-like synchronization on `obj` (monitor enter, barrier exit,
    /// wait return, join, thread start). Treated as a read (paper §3.2.2).
    fn sync_acquire(&self, t: ThreadId, obj: ObjId) {
        let _ = (t, obj);
    }

    /// Release-like synchronization on `obj` (monitor exit, barrier entry,
    /// wait start, fork, thread exit). Treated as a write.
    fn sync_release(&self, t: ThreadId, obj: ObjId) {
        let _ = (t, obj);
    }

    /// A safe point: `t` is definitely not between a barrier and its program
    /// access. Octet responds to pending state-change requests here.
    fn safe_point(&self, t: ThreadId) {
        let _ = t;
    }

    /// `t` is about to block (lock wait, join, condition wait, barrier).
    /// Octet switches other threads to the implicit protocol for `t`.
    fn before_block(&self, t: ThreadId) {
        let _ = t;
    }

    /// `t` has resumed after blocking.
    fn after_unblock(&self, t: ThreadId) {
        let _ = t;
    }
}

/// The "unmodified JVM" configuration: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NopChecker;

impl Checker for NopChecker {}

impl NopChecker {
    /// Creates a new no-op checker.
    pub fn new() -> Self {
        NopChecker
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_checker_accepts_all_events() {
        let c = NopChecker::new();
        let heap = Heap::new(&[], 1);
        c.run_begin(&heap);
        c.thread_begin(ThreadId(0));
        c.enter_method(ThreadId(0), MethodId(0));
        c.read(ThreadId(0), ObjId(0), 0);
        c.write(ThreadId(0), ObjId(0), 0);
        c.array_read(ThreadId(0), ObjId(0), 3);
        c.array_write(ThreadId(0), ObjId(0), 3);
        c.sync_acquire(ThreadId(0), ObjId(0));
        c.sync_release(ThreadId(0), ObjId(0));
        c.safe_point(ThreadId(0));
        c.before_block(ThreadId(0));
        c.after_unblock(ThreadId(0));
        c.exit_method(ThreadId(0), MethodId(0));
        c.thread_end(ThreadId(0));
        c.run_end();
    }

    #[test]
    fn checker_is_object_safe() {
        fn takes_dyn(_c: &dyn Checker) {}
        takes_dyn(&NopChecker);
    }

    #[test]
    fn default_array_hooks_forward_to_plain_hooks() {
        use std::sync::atomic::{AtomicU32, Ordering};
        #[derive(Default)]
        struct Counting {
            reads: AtomicU32,
            writes: AtomicU32,
        }
        impl Checker for Counting {
            fn read(&self, _: ThreadId, _: ObjId, _: CellId) {
                self.reads.fetch_add(1, Ordering::Relaxed);
            }
            fn write(&self, _: ThreadId, _: ObjId, _: CellId) {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        let c = Counting::default();
        c.array_read(ThreadId(0), ObjId(0), 1);
        c.array_write(ThreadId(0), ObjId(0), 2);
        assert_eq!(c.reads.load(Ordering::Relaxed), 1);
        assert_eq!(c.writes.load(Ordering::Relaxed), 1);
    }
}
