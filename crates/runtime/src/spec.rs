//! Atomicity specifications and transaction demarcation.
//!
//! Following the paper (§4 "Specifying atomic regions"), a specification is a
//! list of methods *excluded* from atomicity; every other method is expected
//! to execute atomically. A regular transaction starts when an atomic method
//! is entered from a non-transactional context and ends when that method
//! exits; everything else executes in unary-transaction context.
//!
//! [`TxTracker`] implements that demarcation once so Velodrome and
//! DoubleChecker demarcate transactions identically (paper §4: "they
//! demarcate transactions the same way").

use crate::ids::MethodId;
use std::collections::HashSet;

/// An atomicity specification: the set of methods excluded from atomicity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AtomicitySpec {
    excluded: HashSet<MethodId>,
}

impl AtomicitySpec {
    /// The strictest specification: every method is atomic.
    pub fn all_atomic() -> Self {
        Self::default()
    }

    /// Builds a specification excluding the given methods.
    pub fn excluding<I: IntoIterator<Item = MethodId>>(methods: I) -> Self {
        AtomicitySpec {
            excluded: methods.into_iter().collect(),
        }
    }

    /// True if `m` is expected to execute atomically.
    #[inline]
    pub fn is_atomic(&self, m: MethodId) -> bool {
        !self.excluded.contains(&m)
    }

    /// Excludes `m` from the specification (iterative refinement removes
    /// blamed methods, Figure 6). Returns true if `m` was newly excluded.
    pub fn exclude(&mut self, m: MethodId) -> bool {
        self.excluded.insert(m)
    }

    /// The excluded methods, in unspecified order.
    pub fn excluded(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.excluded.iter().copied()
    }

    /// Number of excluded methods.
    pub fn excluded_len(&self) -> usize {
        self.excluded.len()
    }

    /// Intersection of two specifications' *atomic* sets — i.e. the union of
    /// their exclusions. Used to prepare final performance specifications
    /// without bias toward one checker (paper §5.1).
    pub fn intersect_atomic(&self, other: &AtomicitySpec) -> AtomicitySpec {
        AtomicitySpec {
            excluded: self.excluded.union(&other.excluded).copied().collect(),
        }
    }
}

/// What kind of transaction a dynamic transaction is. Defined here because
/// every checker (DoubleChecker and the Velodrome baseline) demarcates
/// transactions identically (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxKind {
    /// A regular transaction: a dynamic execution of an atomic region,
    /// statically identified by the method that roots it.
    Regular(MethodId),
    /// A unary transaction: accesses outside any atomic region; consecutive
    /// unary transactions not interrupted by a cross-thread edge are merged
    /// (paper §4).
    Unary,
}

impl TxKind {
    /// True for regular (non-unary) transactions.
    pub fn is_regular(self) -> bool {
        matches!(self, TxKind::Regular(_))
    }

    /// The rooting method for regular transactions.
    pub fn method(self) -> Option<MethodId> {
        match self {
            TxKind::Regular(m) => Some(m),
            TxKind::Unary => None,
        }
    }
}

/// Which transactions a checker instruments — the *static transaction
/// information* the first run of multi-run mode passes to the second run
/// (paper §3.1): the methods of regular transactions seen in imprecise
/// cycles, plus a boolean for whether any unary transaction was involved in
/// any cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TxFilter {
    /// `None`: instrument every regular transaction (single-run mode).
    /// `Some(set)`: instrument only regular transactions rooted at these
    /// methods.
    pub methods: Option<HashSet<MethodId>>,
    /// Instrument accesses in unary (non-transactional) context. The second
    /// run instruments them "if and only if the first run identified any
    /// non-transactional accesses involved in cycles" (§5.3).
    pub instrument_unary: bool,
}

impl TxFilter {
    /// The instrument-everything filter (single-run mode).
    pub fn all() -> Self {
        TxFilter {
            methods: None,
            instrument_unary: true,
        }
    }

    /// True if regular transactions rooted at `m` should be instrumented.
    #[inline]
    pub fn covers_method(&self, m: MethodId) -> bool {
        match &self.methods {
            None => true,
            Some(set) => set.contains(&m),
        }
    }

    /// True if nothing at all would be instrumented.
    pub fn is_vacuous(&self) -> bool {
        !self.instrument_unary && self.methods.as_ref().is_some_and(|s| s.is_empty())
    }
}

/// What happened at a method-entry event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnterOutcome {
    /// A regular transaction starts here, rooted at this method.
    BeginTransaction(MethodId),
    /// Already inside a transaction (nested call); nothing starts.
    Nested,
    /// Non-transactional context continues.
    NonTransactional,
}

/// What happened at a method-exit event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitOutcome {
    /// The regular transaction rooted at this method ends here.
    EndTransaction(MethodId),
    /// Still inside an enclosing transaction.
    Nested,
    /// Non-transactional context continues.
    NonTransactional,
}

/// Per-thread method-context state machine deciding where regular
/// transactions begin and end.
#[derive(Clone, Debug, Default)]
pub struct TxTracker {
    /// Call stack of (method, did this frame start the transaction).
    stack: Vec<(MethodId, bool)>,
    /// Depth of the frame that started the current transaction, if any.
    tx_root: Option<usize>,
}

impl TxTracker {
    /// Creates a tracker in non-transactional context.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while inside a regular transaction.
    #[inline]
    pub fn in_transaction(&self) -> bool {
        self.tx_root.is_some()
    }

    /// The method that rooted the current transaction, if inside one.
    pub fn transaction_method(&self) -> Option<MethodId> {
        self.tx_root.map(|d| self.stack[d].0)
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Records entry to `m` under `spec`.
    pub fn enter(&mut self, m: MethodId, spec: &AtomicitySpec) -> EnterOutcome {
        if self.tx_root.is_some() {
            self.stack.push((m, false));
            return EnterOutcome::Nested;
        }
        if spec.is_atomic(m) {
            self.tx_root = Some(self.stack.len());
            self.stack.push((m, true));
            EnterOutcome::BeginTransaction(m)
        } else {
            self.stack.push((m, false));
            EnterOutcome::NonTransactional
        }
    }

    /// Records exit from the top-of-stack method.
    ///
    /// # Panics
    ///
    /// Panics if the call stack is empty or `m` does not match the method on
    /// top of the stack (engine bug).
    pub fn exit(&mut self, m: MethodId) -> ExitOutcome {
        let (top, started) = self.stack.pop().expect("method exit with empty stack");
        assert_eq!(top, m, "method exit does not match entry");
        if started {
            self.tx_root = None;
            ExitOutcome::EndTransaction(m)
        } else if self.tx_root.is_some() {
            ExitOutcome::Nested
        } else {
            ExitOutcome::NonTransactional
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: MethodId = MethodId(0);
    const B: MethodId = MethodId(1);
    const C: MethodId = MethodId(2);

    #[test]
    fn all_atomic_spec_marks_everything_atomic() {
        let spec = AtomicitySpec::all_atomic();
        assert!(spec.is_atomic(A));
        assert!(spec.is_atomic(MethodId(999)));
        assert_eq!(spec.excluded_len(), 0);
    }

    #[test]
    fn exclusion_removes_atomicity() {
        let mut spec = AtomicitySpec::all_atomic();
        assert!(spec.exclude(B));
        assert!(!spec.exclude(B), "second exclusion reports not-new");
        assert!(spec.is_atomic(A));
        assert!(!spec.is_atomic(B));
        assert_eq!(spec.excluded().collect::<Vec<_>>(), vec![B]);
    }

    #[test]
    fn intersect_atomic_unions_exclusions() {
        let s1 = AtomicitySpec::excluding([A]);
        let s2 = AtomicitySpec::excluding([B]);
        let joint = s1.intersect_atomic(&s2);
        assert!(!joint.is_atomic(A));
        assert!(!joint.is_atomic(B));
        assert!(joint.is_atomic(C));
    }

    #[test]
    fn atomic_method_from_outside_begins_transaction() {
        let spec = AtomicitySpec::all_atomic();
        let mut tx = TxTracker::new();
        assert_eq!(tx.enter(A, &spec), EnterOutcome::BeginTransaction(A));
        assert!(tx.in_transaction());
        assert_eq!(tx.transaction_method(), Some(A));
        assert_eq!(tx.exit(A), ExitOutcome::EndTransaction(A));
        assert!(!tx.in_transaction());
    }

    #[test]
    fn nested_atomic_method_does_not_restart_transaction() {
        let spec = AtomicitySpec::all_atomic();
        let mut tx = TxTracker::new();
        tx.enter(A, &spec);
        assert_eq!(tx.enter(B, &spec), EnterOutcome::Nested);
        assert_eq!(tx.transaction_method(), Some(A));
        assert_eq!(tx.exit(B), ExitOutcome::Nested);
        assert_eq!(tx.exit(A), ExitOutcome::EndTransaction(A));
    }

    #[test]
    fn excluded_entry_method_leaves_context_non_transactional() {
        let spec = AtomicitySpec::excluding([A]);
        let mut tx = TxTracker::new();
        assert_eq!(tx.enter(A, &spec), EnterOutcome::NonTransactional);
        assert!(!tx.in_transaction());
        // An atomic callee *does* start a transaction from the excluded
        // caller's non-transactional context.
        assert_eq!(tx.enter(B, &spec), EnterOutcome::BeginTransaction(B));
        assert_eq!(tx.exit(B), ExitOutcome::EndTransaction(B));
        assert_eq!(tx.exit(A), ExitOutcome::NonTransactional);
    }

    #[test]
    fn excluded_callee_inside_transaction_stays_transactional() {
        // Non-atomic methods called from a transactional context execute
        // transactionally (caller's context), per paper §4.
        let spec = AtomicitySpec::excluding([B]);
        let mut tx = TxTracker::new();
        tx.enter(A, &spec);
        assert_eq!(tx.enter(B, &spec), EnterOutcome::Nested);
        assert!(tx.in_transaction());
        assert_eq!(tx.exit(B), ExitOutcome::Nested);
        assert_eq!(tx.exit(A), ExitOutcome::EndTransaction(A));
    }

    #[test]
    fn depth_tracks_stack() {
        let spec = AtomicitySpec::all_atomic();
        let mut tx = TxTracker::new();
        assert_eq!(tx.depth(), 0);
        tx.enter(A, &spec);
        tx.enter(B, &spec);
        assert_eq!(tx.depth(), 2);
        tx.exit(B);
        assert_eq!(tx.depth(), 1);
    }

    #[test]
    fn tx_filter_all_covers_everything() {
        let f = TxFilter::all();
        assert!(f.covers_method(A));
        assert!(f.instrument_unary);
        assert!(!f.is_vacuous());
    }

    #[test]
    fn tx_filter_selects_methods() {
        let f = TxFilter {
            methods: Some([A].into_iter().collect()),
            instrument_unary: false,
        };
        assert!(f.covers_method(A));
        assert!(!f.covers_method(B));
        assert!(!f.is_vacuous());
        let empty = TxFilter {
            methods: Some(HashSet::new()),
            instrument_unary: false,
        };
        assert!(empty.is_vacuous());
    }

    #[test]
    #[should_panic(expected = "method exit does not match entry")]
    fn mismatched_exit_panics() {
        let spec = AtomicitySpec::all_atomic();
        let mut tx = TxTracker::new();
        tx.enter(A, &spec);
        tx.exit(B);
    }
}
