//! The real-thread execution engine.
//!
//! Spawns one OS thread per program thread and interprets each thread's
//! action stream, invoking checker hooks at every instrumentation point. The
//! engine inserts a safe point after every action (a program point definitely
//! not between a barrier and its access, §3.2.1), and brackets every blocking
//! operation with [`Checker::before_block`] / [`Checker::after_unblock`] so
//! Octet's implicit coordination protocol can engage.

use crate::checker::Checker;
use crate::heap::{Heap, ObjKind};
use crate::ids::{ObjId, ThreadId};
use crate::interp::{compute_units, Action, ThreadInterp};
use crate::program::{Op, Program, StartMode};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::Instant;

use super::RunStats;

/// A Java-style (non-reentrant here) object monitor with wait/notify.
struct Monitor {
    inner: Mutex<MonitorState>,
    lock_cv: Condvar,
    wait_cv: Condvar,
}

#[derive(Default)]
struct MonitorState {
    owner: Option<ThreadId>,
    notify_epoch: u64,
}

impl Monitor {
    fn new() -> Self {
        Monitor {
            inner: Mutex::new(MonitorState::default()),
            lock_cv: Condvar::new(),
            wait_cv: Condvar::new(),
        }
    }

    /// Acquires the monitor for `t`; returns true if it had to block.
    fn acquire<C: Checker>(&self, t: ThreadId, checker: &C) -> bool {
        let mut st = self.inner.lock();
        assert_ne!(st.owner, Some(t), "monitor is not reentrant");
        let mut blocked = false;
        while st.owner.is_some() {
            if !blocked {
                blocked = true;
                checker.before_block(t);
            }
            self.lock_cv.wait(&mut st);
        }
        st.owner = Some(t);
        blocked
    }

    fn release(&self, t: ThreadId) {
        let mut st = self.inner.lock();
        assert_eq!(st.owner, Some(t), "releasing a monitor not owned");
        st.owner = None;
        drop(st);
        self.lock_cv.notify_one();
    }

    /// Latch-style wait: releases the monitor, sleeps until the *first*
    /// notify on this monitor (a wait after any notify returns immediately),
    /// then re-acquires.
    ///
    /// Java's `wait` sleeps until a notify that follows it, so an
    /// early notify is *lost* and the waiter hangs. Real programs guard
    /// waits with condition predicates; the workload IR has no branches, so
    /// the substrate uses latch semantics instead — same release/acquire
    /// dependence edges, guaranteed liveness.
    fn wait<C: Checker>(&self, t: ThreadId, checker: &C) {
        let mut st = self.inner.lock();
        assert_eq!(st.owner, Some(t), "waiting on a monitor not owned");
        st.owner = None;
        self.lock_cv.notify_one();
        let mut blocked = false;
        while st.notify_epoch == 0 {
            if !blocked {
                blocked = true;
                checker.before_block(t);
            }
            self.wait_cv.wait(&mut st);
        }
        while st.owner.is_some() {
            self.lock_cv.wait(&mut st);
        }
        st.owner = Some(t);
        if blocked {
            checker.after_unblock(t);
        }
    }

    fn notify_all(&self, t: ThreadId) {
        let mut st = self.inner.lock();
        assert_eq!(st.owner, Some(t), "notifying a monitor not owned");
        st.notify_epoch += 1;
        drop(st);
        self.wait_cv.notify_all();
    }
}

/// A sense-reversing rendezvous barrier.
struct RendezvousBarrier {
    inner: Mutex<BarrierState>,
    cv: Condvar,
    parties: u32,
}

#[derive(Default)]
struct BarrierState {
    arrived: u32,
    generation: u64,
}

impl RendezvousBarrier {
    fn new(parties: u32) -> Self {
        RendezvousBarrier {
            inner: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
            parties: parties.max(1),
        }
    }

    /// Returns true if this thread had to block (was not the last arriver).
    fn arrive<C: Checker>(&self, t: ThreadId, checker: &C) -> bool {
        let mut st = self.inner.lock();
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            drop(st);
            self.cv.notify_all();
            false
        } else {
            let gen = st.generation;
            checker.before_block(t);
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
            true
        }
    }
}

/// A start/finish gate for fork and join.
struct Gate {
    inner: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn new(open: bool) -> Self {
        Gate {
            inner: Mutex::new(open),
            cv: Condvar::new(),
        }
    }

    fn open(&self) {
        let mut g = self.inner.lock();
        *g = true;
        drop(g);
        self.cv.notify_all();
    }

    /// Waits for the gate; `on_block` fires if the gate was closed.
    fn wait_open(&self, mut on_block: impl FnMut()) -> bool {
        let mut g = self.inner.lock();
        let mut blocked = false;
        while !*g {
            if !blocked {
                blocked = true;
                on_block();
            }
            self.cv.wait(&mut g);
        }
        blocked
    }
}

/// Shared synchronization tables for one run.
struct SyncTables {
    monitors: HashMap<ObjId, Monitor>,
    barriers: HashMap<ObjId, RendezvousBarrier>,
    start_gates: Vec<Gate>,
    finish_gates: Vec<Gate>,
}

impl SyncTables {
    fn build(program: &Program) -> Self {
        let mut monitor_objs = Vec::new();
        let mut barrier_objs = Vec::new();
        fn scan(ops: &[Op], monitors: &mut Vec<ObjId>, barriers: &mut Vec<ObjId>) {
            for op in ops {
                match op {
                    Op::Acquire(o) | Op::Release(o) | Op::Wait(o) | Op::NotifyAll(o) => {
                        monitors.push(*o)
                    }
                    Op::Barrier(o) => barriers.push(*o),
                    Op::Loop { body, .. } => scan(body, monitors, barriers),
                    _ => {}
                }
            }
        }
        for m in &program.methods {
            scan(&m.body, &mut monitor_objs, &mut barrier_objs);
        }
        let monitors = monitor_objs
            .into_iter()
            .map(|o| (o, Monitor::new()))
            .collect();
        let barriers = barrier_objs
            .into_iter()
            .map(|o| {
                let parties = match program.objects[o.index()] {
                    ObjKind::Barrier { parties } => parties,
                    _ => unreachable!("validated program"),
                };
                (o, RendezvousBarrier::new(parties))
            })
            .collect();
        let start_gates = program
            .threads
            .iter()
            .map(|spec| Gate::new(spec.start == StartMode::AtRunStart))
            .collect();
        let finish_gates = program.threads.iter().map(|_| Gate::new(false)).collect();
        SyncTables {
            monitors,
            barriers,
            start_gates,
            finish_gates,
        }
    }

    fn monitor(&self, o: ObjId) -> &Monitor {
        self.monitors.get(&o).expect("monitor table miss")
    }
}

/// Runs `program` on real OS threads under `checker`.
///
/// Returns aggregate statistics including the wall-clock time of the
/// parallel phase (heap construction and thread spawning excluded from
/// `elapsed_nanos`... spawning is included; construction is not).
///
/// # Panics
///
/// Panics on monitor misuse by the program (releasing an unowned monitor,
/// reentrant acquire) — workload generators must produce well-formed
/// programs; `Program::validate` catches the statically checkable errors.
pub fn run_real<C: Checker>(program: &Program, checker: &C) -> RunStats {
    program.validate().expect("invalid program");
    let heap = Heap::new(&program.objects, program.n_threads());
    checker.run_begin(&heap);
    let tables = SyncTables::build(program);
    let start = Instant::now();
    let mut stats = RunStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, spec) in program.threads.iter().enumerate() {
            let t = ThreadId::from_index(i);
            let heap = &heap;
            let tables = &tables;
            let entry = spec.entry;
            let forked = spec.start == StartMode::OnFork;
            handles.push(
                scope.spawn(move || run_thread(program, checker, heap, tables, t, entry, forked)),
            );
        }
        for handle in handles {
            let thread_stats = handle.join().expect("program thread panicked");
            stats.merge(&thread_stats);
        }
    });
    stats.elapsed_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    checker.run_end();
    stats
}

fn run_thread<C: Checker>(
    program: &Program,
    checker: &C,
    heap: &Heap,
    tables: &SyncTables,
    t: ThreadId,
    entry: crate::ids::MethodId,
    forked: bool,
) -> RunStats {
    // Threads that start on fork wait before touching any analysis state.
    if forked {
        tables.start_gates[t.index()].wait_open(|| {});
    }
    checker.thread_begin(t);
    if forked {
        // Thread start is acquire-like on the thread's own object, forming
        // the fork → start dependence edge.
        checker.sync_acquire(t, heap.thread_obj(t));
        checker.safe_point(t);
    }
    let mut stats = RunStats::default();
    let mut interp = ThreadInterp::new(program, entry);
    while let Some(action) = interp.next_action() {
        match action {
            Action::Enter(m) => {
                stats.method_entries += 1;
                checker.enter_method(t, m);
            }
            Action::Exit(m) => checker.exit_method(t, m),
            Action::Read(o, c) => {
                stats.reads += 1;
                checker.read(t, o, c);
                std::hint::black_box(heap.load(o, c));
            }
            Action::Write(o, c) => {
                stats.writes += 1;
                checker.write(t, o, c);
                heap.store(o, c, stats.writes);
            }
            Action::ArrayRead(o, c) => {
                stats.array_accesses += 1;
                checker.array_read(t, o, c);
                std::hint::black_box(heap.load(o, c));
            }
            Action::ArrayWrite(o, c) => {
                stats.array_accesses += 1;
                checker.array_write(t, o, c);
                heap.store(o, c, stats.array_accesses);
            }
            Action::Acquire(o) => {
                stats.syncs += 1;
                let blocked = tables.monitor(o).acquire(t, checker);
                if blocked {
                    checker.after_unblock(t);
                }
                checker.sync_acquire(t, o);
            }
            Action::Release(o) => {
                stats.syncs += 1;
                checker.sync_release(t, o);
                tables.monitor(o).release(t);
            }
            Action::Wait(o) => {
                stats.syncs += 1;
                // Wait start is release-like; return is acquire-like.
                checker.sync_release(t, o);
                tables.monitor(o).wait(t, checker);
                checker.sync_acquire(t, o);
            }
            Action::NotifyAll(o) => {
                stats.syncs += 1;
                checker.sync_release(t, o);
                tables.monitor(o).notify_all(t);
            }
            Action::Barrier(o) => {
                stats.syncs += 1;
                checker.sync_release(t, o);
                let blocked = tables
                    .barriers
                    .get(&o)
                    .expect("barrier table miss")
                    .arrive(t, checker);
                if blocked {
                    checker.after_unblock(t);
                }
                checker.sync_acquire(t, o);
            }
            Action::Fork(child) => {
                stats.syncs += 1;
                // Fork is release-like on the child's thread object; the
                // write barrier runs before the child can start.
                checker.sync_release(t, heap.thread_obj(child));
                tables.start_gates[child.index()].open();
            }
            Action::Join(child) => {
                stats.syncs += 1;
                let gate = &tables.finish_gates[child.index()];
                let blocked = gate.wait_open(|| checker.before_block(t));
                if blocked {
                    checker.after_unblock(t);
                }
                checker.sync_acquire(t, heap.thread_obj(child));
            }
            Action::Compute(u) => {
                std::hint::black_box(compute_units(u));
            }
        }
        checker.safe_point(t);
    }
    // Thread exit is release-like on the thread's own object so joiners see
    // a dependence edge from everything the thread did.
    checker.sync_release(t, heap.thread_obj(t));
    checker.thread_end(t);
    tables.finish_gates[t.index()].open();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::NopChecker;
    use crate::ids::CellId;
    use crate::program::ProgramBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_two_independent_threads() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 4 });
        let m = b.method(
            "work",
            vec![Op::Loop {
                count: 100,
                body: vec![Op::Read(o, 0), Op::Write(o, 1), Op::Compute(5)],
            }],
        );
        b.thread(m);
        b.thread(m);
        let p = b.build().unwrap();
        let stats = run_real(&p, &NopChecker);
        assert_eq!(stats.reads, 200);
        assert_eq!(stats.writes, 200);
        assert_eq!(stats.method_entries, 2);
    }

    #[test]
    fn locks_provide_mutual_exclusion() {
        // Two threads increment a shared counter under a lock; a counting
        // checker verifies acquire/release pairing.
        #[derive(Default)]
        struct SyncCounter {
            acquires: AtomicU64,
            releases: AtomicU64,
        }
        impl Checker for SyncCounter {
            fn sync_acquire(&self, _: ThreadId, _: ObjId) {
                self.acquires.fetch_add(1, Ordering::Relaxed);
            }
            fn sync_release(&self, _: ThreadId, _: ObjId) {
                self.releases.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut b = ProgramBuilder::new();
        let lock = b.object(ObjKind::Monitor);
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "locked",
            vec![Op::Loop {
                count: 50,
                body: vec![
                    Op::Acquire(lock),
                    Op::Read(o, 0),
                    Op::Write(o, 0),
                    Op::Release(lock),
                ],
            }],
        );
        b.thread(m);
        b.thread(m);
        let p = b.build().unwrap();
        let checker = SyncCounter::default();
        run_real(&p, &checker);
        // 100 acquires + 100 releases, plus 2 thread-exit releases.
        assert_eq!(checker.acquires.load(Ordering::Relaxed), 100);
        assert_eq!(checker.releases.load(Ordering::Relaxed), 102);
    }

    #[test]
    fn fork_and_join_sequence_threads() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let worker = b.method("worker", vec![Op::Write(o, 0)]);
        let child = ThreadId(1);
        let main = b.method(
            "main",
            vec![Op::Fork(child), Op::Join(child), Op::Read(o, 0)],
        );
        b.thread(main);
        b.forked_thread(worker);
        let p = b.build().unwrap();
        let stats = run_real(&p, &NopChecker);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.syncs, 2); // fork + join
    }

    #[test]
    fn barrier_rendezvous_releases_all_parties() {
        let mut b = ProgramBuilder::new();
        let bar = b.object(ObjKind::Barrier { parties: 3 });
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "phased",
            vec![
                Op::Write(o, 0),
                Op::Barrier(bar),
                Op::Read(o, 0),
                Op::Barrier(bar),
            ],
        );
        b.thread(m);
        b.thread(m);
        b.thread(m);
        let p = b.build().unwrap();
        let stats = run_real(&p, &NopChecker);
        assert_eq!(stats.syncs, 6);
        assert_eq!(stats.reads, 3);
    }

    #[test]
    fn wait_notify_hand_off() {
        // T1 waits until T0 notifies. T0 acquires, writes, notifies, releases.
        let mut b = ProgramBuilder::new();
        let mon = b.object(ObjKind::Monitor);
        let o = b.object(ObjKind::Plain { fields: 1 });
        let waiter_entry = b.method(
            "waiter",
            vec![
                Op::Acquire(mon),
                Op::Wait(mon),
                Op::Read(o, 0),
                Op::Release(mon),
            ],
        );
        let waiter_t = ThreadId(1);
        let notifier = b.method(
            "notifier",
            vec![
                Op::Fork(waiter_t),
                Op::Compute(1000),
                Op::Acquire(mon),
                Op::Write(o, 0),
                Op::NotifyAll(mon),
                Op::Release(mon),
                Op::Join(waiter_t),
            ],
        );
        b.thread(notifier);
        b.forked_thread(waiter_entry);
        let p = b.build().unwrap();
        let stats = run_real(&p, &NopChecker);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn heap_stores_are_visible_across_barrier() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method("w", vec![Op::Write(o, 0 as CellId)]);
        b.thread(m);
        let p = b.build().unwrap();
        run_real(&p, &NopChecker);
    }
}
