//! Execution engines.
//!
//! Two engines run the same [`crate::program::Program`] against the same
//! [`crate::checker::Checker`]:
//!
//! * [`real::run_real`] — one OS thread per program thread; used for the
//!   performance experiments (Figure 7) because the analyses' costs come from
//!   real atomics, fences, and cache traffic.
//! * [`det::run_det`] — a deterministic single-threaded scheduler with
//!   scripted or seeded interleavings; used for correctness tests and for
//!   reproducing the paper's worked examples (Figures 2 and 3) exactly.

pub mod det;
pub mod real;

use std::time::Duration;

/// Aggregate statistics for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Plain-field reads executed.
    pub reads: u64,
    /// Plain-field writes executed.
    pub writes: u64,
    /// Array-element accesses executed.
    pub array_accesses: u64,
    /// Synchronization operations executed (acquire, release, wait, notify,
    /// barrier, fork, join).
    pub syncs: u64,
    /// Method entries executed.
    pub method_entries: u64,
    /// Wall-clock time of the parallel phase, in nanoseconds.
    pub elapsed_nanos: u64,
}

impl RunStats {
    /// Total instrumented-relevant events.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes + self.array_accesses + self.syncs
    }

    /// Wall-clock time of the parallel phase.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos)
    }

    pub(crate) fn merge(&mut self, other: &RunStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.array_accesses += other.array_accesses;
        self.syncs += other.syncs;
        self.method_entries += other.method_entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_everything_but_elapsed() {
        let mut a = RunStats {
            reads: 1,
            writes: 2,
            array_accesses: 3,
            syncs: 4,
            method_entries: 5,
            elapsed_nanos: 100,
        };
        let b = RunStats {
            reads: 10,
            writes: 20,
            array_accesses: 30,
            syncs: 40,
            method_entries: 50,
            elapsed_nanos: 999,
        };
        a.merge(&b);
        assert_eq!(a.reads, 11);
        assert_eq!(a.total_accesses(), 11 + 22 + 33 + 44);
        assert_eq!(a.elapsed_nanos, 100, "elapsed is not merged");
        assert_eq!(a.elapsed(), Duration::from_nanos(100));
    }
}
