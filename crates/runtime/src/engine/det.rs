//! The deterministic single-threaded execution engine.
//!
//! Interprets all program threads in one OS thread, interleaving them
//! according to a [`Schedule`]. Used to reproduce the paper's worked
//! examples (Figures 2 and 3, the delayed-cycle example of §3.2.3) with
//! *exact* interleavings, and for seeded randomized soundness tests where
//! the same seed must always produce the same execution.
//!
//! Checker hooks fire in the same order as in the real engine; because only
//! one action executes at a time, every other thread is always at a safe
//! point, so Octet-style coordination resolves immediately.

use crate::checker::Checker;
use crate::heap::{Heap, ObjKind};
use crate::ids::{ObjId, ThreadId};
use crate::interp::{compute_units, Action, ThreadInterp};
use crate::program::{Program, StartMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use super::RunStats;

/// Interleaving policy for the deterministic engine.
#[derive(Clone, Debug)]
pub enum Schedule {
    /// Run each runnable thread for `quantum` actions before switching.
    RoundRobin {
        /// Actions per turn; must be ≥ 1.
        quantum: u32,
    },
    /// Pick a uniformly random runnable thread before every action, from a
    /// seeded generator (same seed ⇒ same execution).
    Random {
        /// PRNG seed.
        seed: u64,
    },
    /// Follow an explicit thread sequence, one action per entry. After the
    /// script is exhausted, falls back to round-robin with quantum 1.
    Scripted(Vec<ThreadId>),
}

impl Schedule {
    /// Convenience constructor for a seeded random schedule.
    pub fn random(seed: u64) -> Self {
        Schedule::Random { seed }
    }
}

/// Error produced by [`run_det`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DetError {
    /// No thread is runnable but some have not finished.
    Deadlock {
        /// Threads still blocked.
        blocked: Vec<ThreadId>,
    },
    /// A scripted schedule named a thread that is not runnable.
    ScriptedThreadNotRunnable {
        /// Script position.
        position: usize,
        /// The named thread.
        thread: ThreadId,
    },
    /// The program failed validation.
    Invalid(crate::program::ProgramError),
}

impl fmt::Display for DetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetError::Deadlock { blocked } => write!(f, "deadlock; blocked threads: {blocked:?}"),
            DetError::ScriptedThreadNotRunnable { position, thread } => {
                write!(
                    f,
                    "script position {position}: thread {thread:?} not runnable"
                )
            }
            DetError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for DetError {}

/// Why a thread is blocked and the condition that unblocks it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockReason {
    /// Waiting to acquire a monitor.
    Lock(ObjId),
    /// Waiting for a thread to finish.
    Join(ThreadId),
    /// In a monitor wait; cleared by the first notify on the monitor
    /// (latch semantics, matching the real engine).
    WaitNotify(ObjId),
    /// Notified; waiting to re-acquire the monitor.
    WaitReacquire(ObjId),
    /// Waiting at a barrier (generation at arrival time).
    Barrier(ObjId, u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    NotStarted,
    /// Runnable; true once `thread_begin` has been emitted.
    Ready {
        begun: bool,
    },
    Blocked(BlockReason),
    Finished,
}

#[derive(Default)]
struct DetMonitor {
    owner: Option<ThreadId>,
    notify_epoch: u64,
}

#[derive(Default)]
struct DetBarrier {
    arrived: u32,
    generation: u64,
}

struct DetWorld<'p, C: Checker> {
    checker: &'p C,
    heap: Heap,
    interps: Vec<ThreadInterp<'p>>,
    states: Vec<ThreadState>,
    monitors: HashMap<ObjId, DetMonitor>,
    barriers: HashMap<ObjId, DetBarrier>,
    stats: RunStats,
    /// Per-thread counters folded into `stats` directly (single-threaded).
    forked: Vec<bool>,
}

impl<'p, C: Checker> DetWorld<'p, C> {
    fn runnable(&self, t: ThreadId) -> bool {
        match self.states[t.index()] {
            ThreadState::Ready { .. } => true,
            ThreadState::Blocked(reason) => self.block_cleared(reason),
            ThreadState::NotStarted | ThreadState::Finished => false,
        }
    }

    fn block_cleared(&self, reason: BlockReason) -> bool {
        match reason {
            BlockReason::Lock(o) | BlockReason::WaitReacquire(o) => {
                self.monitors.get(&o).is_none_or(|m| m.owner.is_none())
            }
            BlockReason::Join(t) => self.states[t.index()] == ThreadState::Finished,
            BlockReason::WaitNotify(o) => self.monitors.get(&o).is_some_and(|m| m.notify_epoch > 0),
            BlockReason::Barrier(o, generation) => self
                .barriers
                .get(&o)
                .is_some_and(|b| b.generation > generation),
        }
    }

    /// Runs one step of thread `t`. Returns false if the thread just
    /// finished or blocked (ending its scheduling turn).
    fn step(&mut self, t: ThreadId) -> bool {
        let ti = t.index();
        // Resume from a cleared block first.
        if let ThreadState::Blocked(reason) = self.states[ti] {
            debug_assert!(self.block_cleared(reason));
            if self.complete_block(t, reason) {
                self.states[ti] = ThreadState::Ready { begun: true };
            }
            self.checker.safe_point(t);
            return true;
        }
        if let ThreadState::Ready { begun: false } = self.states[ti] {
            self.states[ti] = ThreadState::Ready { begun: true };
            self.checker.thread_begin(t);
            if self.forked[ti] {
                self.checker.sync_acquire(t, self.heap.thread_obj(t));
                self.checker.safe_point(t);
            }
        }
        let action = match self.interps[ti].next_action() {
            Some(a) => a,
            None => {
                self.checker.sync_release(t, self.heap.thread_obj(t));
                self.checker.thread_end(t);
                self.states[ti] = ThreadState::Finished;
                return false;
            }
        };
        let still_running = self.execute(t, action);
        self.checker.safe_point(t);
        still_running
    }

    /// Finishes a blocking action whose condition has cleared. Returns false
    /// if the thread re-blocked (notified waiter finding the monitor held).
    fn complete_block(&mut self, t: ThreadId, reason: BlockReason) -> bool {
        self.checker.after_unblock(t);
        match reason {
            BlockReason::Lock(o) | BlockReason::WaitReacquire(o) => {
                let m = self.monitors.entry(o).or_default();
                debug_assert!(m.owner.is_none());
                m.owner = Some(t);
                self.checker.sync_acquire(t, o);
                true
            }
            BlockReason::Join(child) => {
                self.checker.sync_acquire(t, self.heap.thread_obj(child));
                true
            }
            BlockReason::WaitNotify(o) => {
                // Move on to re-acquiring the monitor; may block again.
                let m = self.monitors.entry(o).or_default();
                if m.owner.is_none() {
                    m.owner = Some(t);
                    self.checker.sync_acquire(t, o);
                    true
                } else {
                    self.checker.before_block(t);
                    self.states[t.index()] = ThreadState::Blocked(BlockReason::WaitReacquire(o));
                    false
                }
            }
            BlockReason::Barrier(o, _) => {
                self.checker.sync_acquire(t, o);
                true
            }
        }
    }

    fn execute(&mut self, t: ThreadId, action: Action) -> bool {
        let checker = self.checker;
        match action {
            Action::Enter(m) => {
                self.stats.method_entries += 1;
                checker.enter_method(t, m);
            }
            Action::Exit(m) => checker.exit_method(t, m),
            Action::Read(o, c) => {
                self.stats.reads += 1;
                checker.read(t, o, c);
                std::hint::black_box(self.heap.load(o, c));
            }
            Action::Write(o, c) => {
                self.stats.writes += 1;
                checker.write(t, o, c);
                self.heap.store(o, c, self.stats.writes);
            }
            Action::ArrayRead(o, c) => {
                self.stats.array_accesses += 1;
                checker.array_read(t, o, c);
                std::hint::black_box(self.heap.load(o, c));
            }
            Action::ArrayWrite(o, c) => {
                self.stats.array_accesses += 1;
                checker.array_write(t, o, c);
                self.heap.store(o, c, self.stats.array_accesses);
            }
            Action::Acquire(o) => {
                self.stats.syncs += 1;
                let m = self.monitors.entry(o).or_default();
                assert_ne!(m.owner, Some(t), "monitor is not reentrant");
                if m.owner.is_none() {
                    m.owner = Some(t);
                    checker.sync_acquire(t, o);
                } else {
                    checker.before_block(t);
                    self.states[t.index()] = ThreadState::Blocked(BlockReason::Lock(o));
                    return false;
                }
            }
            Action::Release(o) => {
                self.stats.syncs += 1;
                checker.sync_release(t, o);
                let m = self.monitors.entry(o).or_default();
                assert_eq!(m.owner, Some(t), "releasing a monitor not owned");
                m.owner = None;
            }
            Action::Wait(o) => {
                self.stats.syncs += 1;
                checker.sync_release(t, o);
                let m = self.monitors.entry(o).or_default();
                assert_eq!(m.owner, Some(t), "waiting on a monitor not owned");
                if m.notify_epoch > 0 {
                    // Latch already open: release and immediately re-acquire.
                    checker.sync_acquire(t, o);
                } else {
                    m.owner = None;
                    checker.before_block(t);
                    self.states[t.index()] = ThreadState::Blocked(BlockReason::WaitNotify(o));
                    return false;
                }
            }
            Action::NotifyAll(o) => {
                self.stats.syncs += 1;
                checker.sync_release(t, o);
                let m = self.monitors.entry(o).or_default();
                assert_eq!(m.owner, Some(t), "notifying a monitor not owned");
                m.notify_epoch += 1;
            }
            Action::Barrier(o) => {
                self.stats.syncs += 1;
                checker.sync_release(t, o);
                let parties = match self.heap.kind(o) {
                    ObjKind::Barrier { parties } => parties.max(1),
                    _ => unreachable!("validated program"),
                };
                let b = self.barriers.entry(o).or_default();
                b.arrived += 1;
                if b.arrived == parties {
                    b.arrived = 0;
                    b.generation += 1;
                    checker.sync_acquire(t, o);
                } else {
                    let generation = b.generation;
                    checker.before_block(t);
                    self.states[t.index()] =
                        ThreadState::Blocked(BlockReason::Barrier(o, generation));
                    return false;
                }
            }
            Action::Fork(child) => {
                self.stats.syncs += 1;
                checker.sync_release(t, self.heap.thread_obj(child));
                let ci = child.index();
                assert_eq!(
                    self.states[ci],
                    ThreadState::NotStarted,
                    "double fork of {child:?}"
                );
                self.states[ci] = ThreadState::Ready { begun: false };
            }
            Action::Join(child) => {
                self.stats.syncs += 1;
                if self.states[child.index()] == ThreadState::Finished {
                    checker.sync_acquire(t, self.heap.thread_obj(child));
                } else {
                    checker.before_block(t);
                    self.states[t.index()] = ThreadState::Blocked(BlockReason::Join(child));
                    return false;
                }
            }
            Action::Compute(u) => {
                std::hint::black_box(compute_units(u));
            }
        }
        true
    }
}

/// Runs `program` deterministically under `schedule`.
///
/// # Errors
///
/// Returns [`DetError::Deadlock`] if the program deadlocks under the chosen
/// interleaving, [`DetError::ScriptedThreadNotRunnable`] if a scripted
/// schedule names a non-runnable thread, and [`DetError::Invalid`] if the
/// program fails validation.
pub fn run_det<C: Checker>(
    program: &Program,
    checker: &C,
    schedule: &Schedule,
) -> Result<RunStats, DetError> {
    program.validate().map_err(DetError::Invalid)?;
    let n = program.threads.len();
    let heap = Heap::new(&program.objects, program.n_threads());
    checker.run_begin(&heap);
    let start = Instant::now();
    let mut world = DetWorld {
        checker,
        heap,
        interps: program
            .threads
            .iter()
            .map(|spec| ThreadInterp::new(program, spec.entry))
            .collect(),
        states: program
            .threads
            .iter()
            .map(|spec| match spec.start {
                StartMode::AtRunStart => ThreadState::Ready { begun: false },
                StartMode::OnFork => ThreadState::NotStarted,
            })
            .collect(),
        monitors: HashMap::new(),
        barriers: HashMap::new(),
        stats: RunStats::default(),
        forked: program
            .threads
            .iter()
            .map(|spec| spec.start == StartMode::OnFork)
            .collect(),
    };

    let mut rng = match schedule {
        Schedule::Random { seed } => Some(SmallRng::seed_from_u64(*seed)),
        _ => None,
    };
    let mut script_pos = 0usize;
    let mut rr_cursor = 0usize;
    let mut rr_left = 0u32;

    loop {
        let finished = world
            .states
            .iter()
            .filter(|s| matches!(s, ThreadState::Finished))
            .count();
        if finished == n {
            break;
        }
        let runnable: Vec<ThreadId> = (0..n)
            .map(ThreadId::from_index)
            .filter(|&t| world.runnable(t))
            .collect();
        if runnable.is_empty() {
            let blocked = (0..n)
                .map(ThreadId::from_index)
                .filter(|&t| matches!(world.states[t.index()], ThreadState::Blocked(_)))
                .collect();
            return Err(DetError::Deadlock { blocked });
        }
        let t = match schedule {
            Schedule::Scripted(script) if script_pos < script.len() => {
                let t = script[script_pos];
                if !world.runnable(t) {
                    return Err(DetError::ScriptedThreadNotRunnable {
                        position: script_pos,
                        thread: t,
                    });
                }
                script_pos += 1;
                t
            }
            Schedule::Scripted(_) => {
                // Script exhausted: round-robin, quantum 1.
                rr_cursor = (0..n)
                    .map(|i| (rr_cursor + i) % n)
                    .find(|&i| world.runnable(ThreadId::from_index(i)))
                    .expect("some thread is runnable");
                let t = ThreadId::from_index(rr_cursor);
                rr_cursor = (rr_cursor + 1) % n;
                t
            }
            Schedule::Random { .. } => {
                let rng = rng.as_mut().expect("random schedule has rng");
                runnable[rng.gen_range(0..runnable.len())]
            }
            Schedule::RoundRobin { quantum } => {
                if rr_left == 0 || !world.runnable(ThreadId::from_index(rr_cursor % n)) {
                    rr_cursor = (0..n)
                        .map(|i| (rr_cursor + 1 + i) % n)
                        .find(|&i| world.runnable(ThreadId::from_index(i)))
                        .expect("some thread is runnable");
                    rr_left = (*quantum).max(1);
                }
                rr_left -= 1;
                ThreadId::from_index(rr_cursor % n)
            }
        };
        world.step(t);
    }
    world.stats.elapsed_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    checker.run_end();
    Ok(world.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::NopChecker;
    use crate::program::{Op, ProgramBuilder};

    fn lock_program() -> Program {
        let mut b = ProgramBuilder::new();
        let lock = b.object(ObjKind::Monitor);
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "locked",
            vec![Op::Loop {
                count: 10,
                body: vec![
                    Op::Acquire(lock),
                    Op::Read(o, 0),
                    Op::Write(o, 0),
                    Op::Release(lock),
                ],
            }],
        );
        b.thread(m);
        b.thread(m);
        b.build().unwrap()
    }

    #[test]
    fn round_robin_completes_lock_program() {
        let stats = run_det(
            &lock_program(),
            &NopChecker,
            &Schedule::RoundRobin { quantum: 3 },
        )
        .unwrap();
        assert_eq!(stats.reads, 20);
        assert_eq!(stats.writes, 20);
        assert_eq!(stats.syncs, 40);
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let s1 = run_det(&lock_program(), &NopChecker, &Schedule::random(42)).unwrap();
        let s2 = run_det(&lock_program(), &NopChecker, &Schedule::random(42)).unwrap();
        assert_eq!(s1.reads, s2.reads);
        assert_eq!(s1.syncs, s2.syncs);
    }

    #[test]
    fn scripted_schedule_follows_script_exactly() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let m0 = b.method("a", vec![Op::Write(o, 0)]);
        let m1 = b.method("b", vec![Op::Write(o, 1)]);
        b.thread(m0);
        b.thread(m1);
        let p = b.build().unwrap();
        // Interleave strictly: t0 enter, t1 enter, t0 write, t1 write, ...
        let script = vec![
            ThreadId(0),
            ThreadId(1),
            ThreadId(0),
            ThreadId(1),
            ThreadId(0),
            ThreadId(1),
        ];
        let stats = run_det(&p, &NopChecker, &Schedule::Scripted(script)).unwrap();
        assert_eq!(stats.writes, 2);
    }

    #[test]
    fn scripted_schedule_rejects_unrunnable_thread() {
        let mut b = ProgramBuilder::new();
        let worker = b.method("worker", vec![Op::Compute(1)]);
        let wt = ThreadId(1);
        let main = b.method("main", vec![Op::Fork(wt), Op::Join(wt)]);
        b.thread(main);
        b.forked_thread(worker);
        let p = b.build().unwrap();
        // Thread 1 is not yet forked at script position 0.
        let err = run_det(&p, &NopChecker, &Schedule::Scripted(vec![ThreadId(1)])).unwrap_err();
        assert_eq!(
            err,
            DetError::ScriptedThreadNotRunnable {
                position: 0,
                thread: ThreadId(1)
            }
        );
    }

    #[test]
    fn detects_deadlock() {
        // Classic AB-BA deadlock under an adversarial script.
        let mut b = ProgramBuilder::new();
        let l1 = b.object(ObjKind::Monitor);
        let l2 = b.object(ObjKind::Monitor);
        let m0 = b.method(
            "ab",
            vec![
                Op::Acquire(l1),
                Op::Acquire(l2),
                Op::Release(l2),
                Op::Release(l1),
            ],
        );
        let m1 = b.method(
            "ba",
            vec![
                Op::Acquire(l2),
                Op::Acquire(l1),
                Op::Release(l1),
                Op::Release(l2),
            ],
        );
        b.thread(m0);
        b.thread(m1);
        let p = b.build().unwrap();
        // t0: Enter, Acquire(l1); t1: Enter, Acquire(l2); then both stuck.
        let script = vec![ThreadId(0), ThreadId(0), ThreadId(1), ThreadId(1)];
        let err = run_det(&p, &NopChecker, &Schedule::Scripted(script)).unwrap_err();
        assert!(matches!(err, DetError::Deadlock { .. }));
    }

    #[test]
    fn fork_join_and_barrier_work_deterministically() {
        let mut b = ProgramBuilder::new();
        let bar = b.object(ObjKind::Barrier { parties: 2 });
        let o = b.object(ObjKind::Plain { fields: 1 });
        let worker = b.method("worker", vec![Op::Write(o, 0), Op::Barrier(bar)]);
        let wt = ThreadId(1);
        let main = b.method(
            "main",
            vec![Op::Fork(wt), Op::Barrier(bar), Op::Read(o, 0), Op::Join(wt)],
        );
        b.thread(main);
        b.forked_thread(worker);
        let p = b.build().unwrap();
        for seed in 0..20 {
            let stats = run_det(&p, &NopChecker, &Schedule::random(seed)).unwrap();
            assert_eq!(stats.reads, 1);
            assert_eq!(stats.writes, 1);
        }
    }

    #[test]
    fn wait_notify_deterministic() {
        let mut b = ProgramBuilder::new();
        let mon = b.object(ObjKind::Monitor);
        let o = b.object(ObjKind::Plain { fields: 1 });
        let waiter = b.method(
            "waiter",
            vec![
                Op::Acquire(mon),
                Op::Wait(mon),
                Op::Read(o, 0),
                Op::Release(mon),
            ],
        );
        let wt = ThreadId(1);
        let main = b.method(
            "main",
            vec![
                Op::Fork(wt),
                Op::Compute(10),
                Op::Acquire(mon),
                Op::Write(o, 0),
                Op::NotifyAll(mon),
                Op::Release(mon),
                Op::Join(wt),
            ],
        );
        b.thread(main);
        b.forked_thread(waiter);
        let p = b.build().unwrap();
        // Script forces the waiter to wait before the notify happens.
        // t1 must run: Enter, Acquire, Wait before t0 notifies.
        let script = vec![
            ThreadId(0), // Enter main
            ThreadId(0), // Fork
            ThreadId(1), // Enter waiter
            ThreadId(1), // Acquire
            ThreadId(1), // Wait (blocks)
            ThreadId(0), // Compute
            ThreadId(0), // Acquire
            ThreadId(0), // Write
            ThreadId(0), // NotifyAll
            ThreadId(0), // Release
        ];
        let stats = run_det(&p, &NopChecker, &Schedule::Scripted(script)).unwrap();
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn early_notify_is_not_lost() {
        // Latch semantics: a wait after any notify returns immediately, so
        // the classic lost-notify hang cannot happen in generated workloads.
        let mut b = ProgramBuilder::new();
        let mon = b.object(ObjKind::Monitor);
        let waiter = b.method(
            "waiter",
            vec![Op::Acquire(mon), Op::Wait(mon), Op::Release(mon)],
        );
        let wt = ThreadId(1);
        let main = b.method(
            "main",
            vec![
                Op::Fork(wt),
                Op::Acquire(mon),
                Op::NotifyAll(mon),
                Op::Release(mon),
                Op::Join(wt),
            ],
        );
        b.thread(main);
        b.forked_thread(waiter);
        let p = b.build().unwrap();
        // Run main's notify to completion before the waiter ever runs.
        let script = vec![
            ThreadId(0), // Enter main
            ThreadId(0), // Fork
            ThreadId(0), // Acquire
            ThreadId(0), // NotifyAll
            ThreadId(0), // Release
        ];
        let stats = run_det(&p, &NopChecker, &Schedule::Scripted(script)).unwrap();
        assert_eq!(stats.syncs, 8); // fork, join, 2×(acquire+release), wait, notify
    }
}
