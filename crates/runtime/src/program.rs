//! The workload program representation.
//!
//! Workloads are expressed in a small operation IR rather than as raw Rust
//! closures so that *both* execution engines — the real-thread executor used
//! for performance experiments and the deterministic scheduler used for
//! interleaving-exact tests — can run the identical program. The IR plays the
//! role of the instrumented bytecode in the paper's Jikes RVM implementation:
//! every shared access in the IR passes through the engine's barrier hooks.

use crate::heap::ObjKind;
use crate::ids::{CellId, MethodId, ObjId, ThreadId};
use std::fmt;

/// One operation of a workload program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Load `(obj, cell)` through the read barrier.
    Read(ObjId, CellId),
    /// Store to `(obj, cell)` through the write barrier.
    Write(ObjId, CellId),
    /// Load an array element. Subject to the array-instrumentation switch
    /// (paper §5.4); metadata is conflated at array granularity.
    ArrayRead(ObjId, CellId),
    /// Store an array element.
    ArrayWrite(ObjId, CellId),
    /// Enter the object's monitor (acquire-like; treated as a read of the
    /// object by the analyses).
    Acquire(ObjId),
    /// Exit the object's monitor (release-like; treated as a write).
    Release(ObjId),
    /// Call a method. Atomic methods called from a non-transactional context
    /// start a regular transaction (paper §4).
    Call(MethodId),
    /// Busy-work: `units` iterations of a small arithmetic loop, modelling
    /// the compute between shared accesses.
    Compute(u32),
    /// Start thread `t` (release-like write to `t`'s thread object).
    Fork(ThreadId),
    /// Wait for thread `t` to finish (acquire-like read of its thread
    /// object once it has completed).
    Join(ThreadId),
    /// Wait on the object's monitor (must hold it; releases and re-acquires
    /// around the wait, with the corresponding write/read barrier hooks).
    Wait(ObjId),
    /// Wake all waiters on the object's monitor (must hold it).
    NotifyAll(ObjId),
    /// Rendezvous on a [`ObjKind::Barrier`] object (release-like on arrival,
    /// acquire-like on departure).
    Barrier(ObjId),
    /// Execute `body` `count` times.
    Loop {
        /// Iteration count.
        count: u32,
        /// Loop body.
        body: Vec<Op>,
    },
}

/// A named method with a body of operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Method {
    /// Human-readable name, also used as the method's *static identity* when
    /// the multi-run first run reports transactions by signature.
    pub name: String,
    /// The operations executed by the method.
    pub body: Vec<Op>,
}

/// Whether a thread starts when the run starts or when another thread
/// executes [`Op::Fork`] naming it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartMode {
    /// Runnable from the beginning of the run.
    AtRunStart,
    /// Runnable only after some thread forks it.
    OnFork,
}

/// One program thread: an entry method plus a start mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadSpec {
    /// The thread's `run()` method.
    pub entry: MethodId,
    /// When the thread becomes runnable.
    pub start: StartMode,
}

/// A complete workload program.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// All methods, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// Declared heap objects, indexed by [`ObjId`]. The engines append one
    /// thread object per thread after these.
    pub objects: Vec<ObjKind>,
    /// Program threads, indexed by [`ThreadId`].
    pub threads: Vec<ThreadSpec>,
}

/// Error found by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// An op references a method id that does not exist.
    UnknownMethod(MethodId),
    /// An op references an object id that does not exist.
    UnknownObject(ObjId),
    /// An op references a thread id that does not exist.
    UnknownThread(ThreadId),
    /// The static call graph contains a cycle through this method.
    RecursiveCall(MethodId),
    /// A barrier op targets a non-barrier object.
    NotABarrier(ObjId),
    /// An array op targets a non-array object (or vice versa).
    KindMismatch(ObjId),
    /// A thread is marked [`StartMode::OnFork`] but no op forks it.
    NeverForked(ThreadId),
    /// A thread is forked but marked [`StartMode::AtRunStart`], or forked
    /// more than once.
    ForkMismatch(ThreadId),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            ProgramError::UnknownObject(o) => write!(f, "unknown object {o:?}"),
            ProgramError::UnknownThread(t) => write!(f, "unknown thread {t:?}"),
            ProgramError::RecursiveCall(m) => write!(f, "recursive call through {m:?}"),
            ProgramError::NotABarrier(o) => write!(f, "barrier op on non-barrier object {o:?}"),
            ProgramError::KindMismatch(o) => write!(f, "object kind mismatch for {o:?}"),
            ProgramError::NeverForked(t) => {
                write!(f, "thread {t:?} starts on fork but is never forked")
            }
            ProgramError::ForkMismatch(t) => write!(f, "thread {t:?} forked inconsistently"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Number of threads.
    pub fn n_threads(&self) -> u16 {
        u16::try_from(self.threads.len()).expect("too many threads")
    }

    /// Looks up a method id by name, if present.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(MethodId::from_index)
    }

    /// The name of method `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn method_name(&self, m: MethodId) -> &str {
        &self.methods[m.index()].name
    }

    /// Checks internal consistency: id ranges, call-graph acyclicity, object
    /// kinds for barrier and array ops, and fork/start-mode agreement.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        for spec in &self.threads {
            if spec.entry.index() >= self.methods.len() {
                return Err(ProgramError::UnknownMethod(spec.entry));
            }
        }
        let mut forked: Vec<u32> = vec![0; self.threads.len()];
        for method in &self.methods {
            self.validate_ops(&method.body, &mut forked)?;
        }
        // Fork counts are per static op site; a fork op inside a loop still
        // counts once statically (dynamic double-fork is an engine error).
        for (i, spec) in self.threads.iter().enumerate() {
            match (spec.start, forked[i]) {
                (StartMode::OnFork, 0) => {
                    return Err(ProgramError::NeverForked(ThreadId::from_index(i)))
                }
                (StartMode::AtRunStart, n) if n > 0 => {
                    return Err(ProgramError::ForkMismatch(ThreadId::from_index(i)))
                }
                _ => {}
            }
        }
        self.check_acyclic_calls()?;
        Ok(())
    }

    fn validate_ops(&self, ops: &[Op], forked: &mut [u32]) -> Result<(), ProgramError> {
        for op in ops {
            match op {
                Op::Read(o, _) | Op::Write(o, _) => {
                    self.check_obj(*o)?;
                    if matches!(self.objects.get(o.index()), Some(ObjKind::Array { .. })) {
                        return Err(ProgramError::KindMismatch(*o));
                    }
                }
                Op::ArrayRead(o, _) | Op::ArrayWrite(o, _) => {
                    self.check_obj(*o)?;
                    if !matches!(self.objects.get(o.index()), Some(ObjKind::Array { .. })) {
                        return Err(ProgramError::KindMismatch(*o));
                    }
                }
                Op::Acquire(o) | Op::Release(o) | Op::Wait(o) | Op::NotifyAll(o) => {
                    self.check_obj(*o)?;
                }
                Op::Barrier(o) => {
                    self.check_obj(*o)?;
                    if !matches!(self.objects.get(o.index()), Some(ObjKind::Barrier { .. })) {
                        return Err(ProgramError::NotABarrier(*o));
                    }
                }
                Op::Call(m) => {
                    if m.index() >= self.methods.len() {
                        return Err(ProgramError::UnknownMethod(*m));
                    }
                }
                Op::Fork(t) | Op::Join(t) => {
                    if t.index() >= self.threads.len() {
                        return Err(ProgramError::UnknownThread(*t));
                    }
                    if matches!(op, Op::Fork(_)) {
                        forked[t.index()] += 1;
                    }
                }
                Op::Compute(_) => {}
                Op::Loop { body, .. } => self.validate_ops(body, forked)?,
            }
        }
        Ok(())
    }

    fn check_obj(&self, o: ObjId) -> Result<(), ProgramError> {
        if o.index() >= self.objects.len() {
            Err(ProgramError::UnknownObject(o))
        } else {
            Ok(())
        }
    }

    fn check_acyclic_calls(&self) -> Result<(), ProgramError> {
        // Iterative DFS with colors over the static call graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        fn callees(ops: &[Op], out: &mut Vec<MethodId>) {
            for op in ops {
                match op {
                    Op::Call(m) => out.push(*m),
                    Op::Loop { body, .. } => callees(body, out),
                    _ => {}
                }
            }
        }
        let mut color = vec![Color::White; self.methods.len()];
        for start in 0..self.methods.len() {
            if color[start] != Color::White {
                continue;
            }
            // Stack of (method, next-callee-cursor).
            let mut stack: Vec<(usize, Vec<MethodId>, usize)> = Vec::new();
            let mut cs = Vec::new();
            callees(&self.methods[start].body, &mut cs);
            color[start] = Color::Gray;
            stack.push((start, cs, 0));
            while let Some((m, cs, cursor)) = stack.last_mut() {
                if *cursor < cs.len() {
                    let callee = cs[*cursor];
                    *cursor += 1;
                    match color[callee.index()] {
                        Color::Gray => return Err(ProgramError::RecursiveCall(callee)),
                        Color::White => {
                            color[callee.index()] = Color::Gray;
                            let mut inner = Vec::new();
                            callees(&self.methods[callee.index()].body, &mut inner);
                            stack.push((callee.index(), inner, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[*m] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Counts the dynamic operations one execution of `ops` performs
    /// (loops multiplied out; calls followed). Useful for sizing workloads.
    pub fn dynamic_op_count(&self) -> u64 {
        fn count(program: &Program, ops: &[Op]) -> u64 {
            let mut n = 0u64;
            for op in ops {
                n += match op {
                    Op::Loop { count: c, body } => u64::from(*c) * count(program, body),
                    Op::Call(m) => 1 + count(program, &program.methods[m.index()].body),
                    _ => 1,
                };
            }
            n
        }
        self.threads
            .iter()
            .map(|t| count(self, &self.methods[t.entry.index()].body))
            .sum()
    }
}

/// Incremental builder for [`Program`] (C-BUILDER).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a heap object, returning its id.
    pub fn object(&mut self, kind: ObjKind) -> ObjId {
        let id = ObjId::from_index(self.program.objects.len());
        self.program.objects.push(kind);
        id
    }

    /// Declares `n` plain objects with `fields` fields each.
    pub fn objects(&mut self, n: usize, fields: u16) -> Vec<ObjId> {
        (0..n)
            .map(|_| self.object(ObjKind::Plain { fields }))
            .collect()
    }

    /// Looks up an already-added method by name.
    pub fn find_method(&self, name: &str) -> Option<MethodId> {
        self.program.method_by_name(name)
    }

    /// Adds a method, returning its id.
    pub fn method(&mut self, name: impl Into<String>, body: Vec<Op>) -> MethodId {
        let id = MethodId::from_index(self.program.methods.len());
        self.program.methods.push(Method {
            name: name.into(),
            body,
        });
        id
    }

    /// Adds a thread that starts with the run.
    pub fn thread(&mut self, entry: MethodId) -> ThreadId {
        self.push_thread(entry, StartMode::AtRunStart)
    }

    /// Adds a thread that starts when forked.
    pub fn forked_thread(&mut self, entry: MethodId) -> ThreadId {
        self.push_thread(entry, StartMode::OnFork)
    }

    fn push_thread(&mut self, entry: MethodId, start: StartMode) -> ThreadId {
        let id = ThreadId::from_index(self.program.threads.len());
        self.program.threads.push(ThreadSpec { entry, start });
        id
    }

    /// Validates and returns the finished program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found during validation.
    pub fn build(self) -> Result<Program, ProgramError> {
        self.program.validate()?;
        Ok(self.program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_thread_program() -> ProgramBuilder {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let m = b.method("work", vec![Op::Read(o, 0), Op::Write(o, 1)]);
        b.thread(m);
        b.thread(m);
        b
    }

    #[test]
    fn builds_and_validates_simple_program() {
        let p = two_thread_program().build().unwrap();
        assert_eq!(p.n_threads(), 2);
        assert_eq!(p.method_by_name("work"), Some(MethodId(0)));
        assert_eq!(p.method_name(MethodId(0)), "work");
        assert_eq!(p.dynamic_op_count(), 4);
    }

    #[test]
    fn rejects_unknown_object() {
        let mut b = ProgramBuilder::new();
        let m = b.method("bad", vec![Op::Read(ObjId(9), 0)]);
        b.thread(m);
        assert_eq!(
            b.build().unwrap_err(),
            ProgramError::UnknownObject(ObjId(9))
        );
    }

    #[test]
    fn rejects_recursion() {
        let mut b = ProgramBuilder::new();
        // m0 calls m1 calls m0.
        let m0 = MethodId(0);
        b.method("a", vec![Op::Call(MethodId(1))]);
        b.method("b", vec![Op::Call(m0)]);
        b.thread(m0);
        assert!(matches!(b.build(), Err(ProgramError::RecursiveCall(_))));
    }

    #[test]
    fn rejects_array_op_on_plain_object() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method("bad", vec![Op::ArrayRead(o, 0)]);
        b.thread(m);
        assert_eq!(b.build().unwrap_err(), ProgramError::KindMismatch(o));
    }

    #[test]
    fn rejects_plain_op_on_array_object() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Array { len: 4 });
        let m = b.method("bad", vec![Op::Write(o, 0)]);
        b.thread(m);
        assert_eq!(b.build().unwrap_err(), ProgramError::KindMismatch(o));
    }

    #[test]
    fn rejects_barrier_on_plain_object() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method("bad", vec![Op::Barrier(o)]);
        b.thread(m);
        assert_eq!(b.build().unwrap_err(), ProgramError::NotABarrier(o));
    }

    #[test]
    fn rejects_never_forked_thread() {
        let mut b = ProgramBuilder::new();
        let m = b.method("idle", vec![Op::Compute(1)]);
        b.forked_thread(m);
        assert!(matches!(b.build(), Err(ProgramError::NeverForked(_))));
    }

    #[test]
    fn rejects_fork_of_run_start_thread() {
        let mut b = ProgramBuilder::new();
        let m2 = b.method("idle", vec![Op::Compute(1)]);
        let t1 = ThreadId(1);
        let m1 = b.method("main", vec![Op::Fork(t1)]);
        b.thread(m1);
        b.thread(m2); // starts at run start but is also forked
        assert!(matches!(b.build(), Err(ProgramError::ForkMismatch(_))));
    }

    #[test]
    fn dynamic_op_count_multiplies_loops_and_follows_calls() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let leaf = b.method("leaf", vec![Op::Read(o, 0)]);
        let m = b.method(
            "main",
            vec![Op::Loop {
                count: 3,
                body: vec![Op::Call(leaf), Op::Write(o, 0)],
            }],
        );
        b.thread(m);
        let p = b.build().unwrap();
        // Each iteration: Call (1) + leaf body (1) + Write (1) = 3; ×3 = 9.
        assert_eq!(p.dynamic_op_count(), 9);
    }

    #[test]
    fn validate_accepts_fork_join_pairing() {
        let mut b = ProgramBuilder::new();
        let worker = b.method("worker", vec![Op::Compute(1)]);
        let tw = ThreadId(1);
        let main = b.method("main", vec![Op::Fork(tw), Op::Join(tw)]);
        b.thread(main);
        b.forked_thread(worker);
        assert!(b.build().is_ok());
    }
}
