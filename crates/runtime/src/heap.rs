//! The shared-object heap of the runtime substrate.
//!
//! Objects are declared up front by the workload program and materialized
//! into a dense table when a run starts. Each object carries real data cells
//! (`AtomicU64`, accessed with relaxed ordering to model racy program
//! accesses) so that "unmodified" runs perform genuine memory traffic and the
//! analyses' relative overheads are measured against real work, as in the
//! paper's Figure 7.
//!
//! The engine also appends one *thread object* per program thread; fork,
//! join, and thread start/exit are modeled as synchronization accesses to
//! that object (paper §3.2.2).

use crate::ids::{CellId, ObjId, ThreadId};
use std::sync::atomic::{AtomicU64, Ordering};

/// The shape of a heap object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A plain object with `fields` scalar fields.
    Plain {
        /// Number of fields; cell ids `0..fields` are valid.
        fields: u16,
    },
    /// An array of `len` elements. The paper's implementations conflate all
    /// elements of an array by using array-level metadata (§5.4); analyses
    /// honor that by collapsing the element index.
    Array {
        /// Number of elements; cell ids `0..len` are valid.
        len: u32,
    },
    /// An object used purely as a monitor (lock / wait-notify target).
    Monitor,
    /// A rendezvous barrier for `parties` threads.
    Barrier {
        /// Number of threads that must arrive before any is released.
        parties: u32,
    },
    /// The per-thread object the engine appends for fork/join edges.
    ThreadObj,
}

impl ObjKind {
    /// Number of data cells backing this object.
    fn cell_count(self) -> usize {
        match self {
            ObjKind::Plain { fields } => usize::from(fields).max(1),
            ObjKind::Array { len } => (len as usize).max(1),
            ObjKind::Monitor | ObjKind::Barrier { .. } | ObjKind::ThreadObj => 1,
        }
    }

    /// True if accesses to this object should be conflated to one metadata
    /// slot (arrays, monitors, thread objects).
    #[inline]
    pub fn conflates_cells(self) -> bool {
        !matches!(self, ObjKind::Plain { .. })
    }
}

struct ObjectData {
    kind: ObjKind,
    cells: Box<[AtomicU64]>,
}

/// The dense object table for one run.
pub struct Heap {
    objects: Vec<ObjectData>,
    /// Id of the first thread object; thread `t`'s object is
    /// `first_thread_obj + t`.
    first_thread_obj: u32,
    n_threads: u16,
}

impl Heap {
    /// Materializes a heap from the program's object declarations, appending
    /// one thread object per program thread.
    pub fn new(declared: &[ObjKind], n_threads: u16) -> Self {
        let mut objects: Vec<ObjectData> = declared
            .iter()
            .map(|&kind| ObjectData {
                kind,
                cells: (0..kind.cell_count()).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        let first_thread_obj = u32::try_from(objects.len()).expect("heap too large");
        for _ in 0..n_threads {
            objects.push(ObjectData {
                kind: ObjKind::ThreadObj,
                cells: Box::new([AtomicU64::new(0)]),
            });
        }
        Heap {
            objects,
            first_thread_obj,
            n_threads,
        }
    }

    /// Total number of objects, including appended thread objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the heap has no objects (possible only for a program with no
    /// declared objects and no threads).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Number of program threads this heap was built for.
    #[inline]
    pub fn n_threads(&self) -> u16 {
        self.n_threads
    }

    /// The kind of object `obj`.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is out of range.
    #[inline]
    pub fn kind(&self, obj: ObjId) -> ObjKind {
        self.objects[obj.index()].kind
    }

    /// The per-thread object used for fork/join dependence edges.
    #[inline]
    pub fn thread_obj(&self, t: ThreadId) -> ObjId {
        ObjId(self.first_thread_obj + u32::from(t.0))
    }

    /// Performs the actual program load of `(obj, cell)`.
    ///
    /// Relaxed ordering models an unsynchronized program access; the checker
    /// barrier preceding this load is what establishes any ordering.
    #[inline]
    pub fn load(&self, obj: ObjId, cell: CellId) -> u64 {
        let data = &self.objects[obj.index()];
        let idx = (cell as usize) % data.cells.len();
        data.cells[idx].load(Ordering::Relaxed)
    }

    /// Performs the actual program store of `value` to `(obj, cell)`.
    #[inline]
    pub fn store(&self, obj: ObjId, cell: CellId, value: u64) {
        let data = &self.objects[obj.index()];
        let idx = (cell as usize) % data.cells.len();
        data.cells[idx].store(value, Ordering::Relaxed);
    }
}

/// Dense per-cell slot numbering for analysis side tables: every object gets
/// one slot per cell (conflated kinds get one) plus a synchronization slot.
/// Both Velodrome's metadata and ICD's duplicate-elision tables index with
/// this layout.
#[derive(Clone, Debug)]
pub struct CellLayout {
    base: Vec<u32>,
    cells: Vec<u32>,
    total: u32,
}

impl CellLayout {
    /// Builds the layout for every object in `heap`.
    pub fn new(heap: &Heap) -> Self {
        let n = heap.len();
        let mut base = Vec::with_capacity(n);
        let mut cells = Vec::with_capacity(n);
        let mut total = 0u32;
        for i in 0..n {
            let obj_cells: u32 = match heap.kind(ObjId::from_index(i)) {
                ObjKind::Plain { fields } => u32::from(fields).max(1),
                ObjKind::Array { .. }
                | ObjKind::Monitor
                | ObjKind::Barrier { .. }
                | ObjKind::ThreadObj => 1,
            };
            base.push(total);
            cells.push(obj_cells);
            total = total
                .checked_add(obj_cells + 1)
                .expect("cell layout too large");
        }
        CellLayout { base, cells, total }
    }

    /// Total number of slots.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Flat slot for `(obj, cell)`; [`crate::ids::SYNC_CELL`] maps to the
    /// object's sync slot, out-of-range cells conflate to slot 0.
    #[inline]
    pub fn slot(&self, obj: ObjId, cell: CellId) -> u32 {
        let i = obj.index();
        let cells = self.cells[i];
        let offset = if cell == crate::ids::SYNC_CELL {
            cells
        } else if cell < cells {
            cell
        } else {
            0
        };
        self.base[i] + offset
    }
}

impl std::fmt::Debug for Heap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heap")
            .field("objects", &self.objects.len())
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_declared_objects_and_thread_objects() {
        let heap = Heap::new(
            &[ObjKind::Plain { fields: 3 }, ObjKind::Array { len: 8 }],
            2,
        );
        assert_eq!(heap.len(), 4);
        assert_eq!(heap.kind(ObjId(0)), ObjKind::Plain { fields: 3 });
        assert_eq!(heap.kind(ObjId(1)), ObjKind::Array { len: 8 });
        assert_eq!(heap.kind(heap.thread_obj(ThreadId(0))), ObjKind::ThreadObj);
        assert_eq!(heap.thread_obj(ThreadId(1)), ObjId(3));
        assert_eq!(heap.n_threads(), 2);
        assert!(!heap.is_empty());
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let heap = Heap::new(&[ObjKind::Plain { fields: 2 }], 0);
        assert_eq!(heap.load(ObjId(0), 1), 0);
        heap.store(ObjId(0), 1, 42);
        assert_eq!(heap.load(ObjId(0), 1), 42);
        assert_eq!(heap.load(ObjId(0), 0), 0);
    }

    #[test]
    fn out_of_range_cells_wrap_instead_of_faulting() {
        // SYNC_CELL accesses hit the object's backing store modulo its size.
        let heap = Heap::new(&[ObjKind::Monitor], 0);
        heap.store(ObjId(0), crate::ids::SYNC_CELL, 7);
        assert_eq!(heap.load(ObjId(0), crate::ids::SYNC_CELL), 7);
    }

    #[test]
    fn conflation_matches_object_kind() {
        assert!(!ObjKind::Plain { fields: 4 }.conflates_cells());
        assert!(ObjKind::Array { len: 4 }.conflates_cells());
        assert!(ObjKind::Monitor.conflates_cells());
        assert!(ObjKind::Barrier { parties: 2 }.conflates_cells());
        assert!(ObjKind::ThreadObj.conflates_cells());
    }

    #[test]
    fn zero_field_plain_object_still_has_one_cell() {
        let heap = Heap::new(&[ObjKind::Plain { fields: 0 }], 0);
        heap.store(ObjId(0), 0, 9);
        assert_eq!(heap.load(ObjId(0), 0), 9);
    }
}
