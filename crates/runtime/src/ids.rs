//! Identifier newtypes shared by the whole workspace.
//!
//! Every entity the analyses reason about — threads, heap objects, cells
//! within objects, methods — is referred to by a compact integer id. The
//! newtypes keep the different id spaces statically distinct (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the id as a `usize` index into dense side tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in the id's representation.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                $name(<$repr>::try_from(index).expect("id index out of range"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type! {
    /// A program thread. Thread ids are dense: `0..n_threads`.
    ThreadId(u16)
}

id_type! {
    /// A heap object (the paper's unit of shared memory — "we use the term
    /// 'object' to refer to any unit of shared memory").
    ObjId(u32)
}

id_type! {
    /// A method in the workload program. Atomicity specifications are sets of
    /// methods, and regular transactions are identified statically by the
    /// method that starts them (multi-run mode, §3.1).
    MethodId(u32)
}

/// A cell within an object: a field index for plain objects, an element index
/// for arrays, or [`SYNC_CELL`] for synchronization accesses on the object.
pub type CellId = u32;

/// Pseudo-cell used when a synchronization operation (lock acquire/release,
/// fork/join, wait/notify) is treated as a read or write of the object being
/// synchronized on (paper §3.2.2 "Handling synchronization operations").
pub const SYNC_CELL: CellId = u32::MAX;

/// A memory access kind. Acquire-like synchronization operations are treated
/// as reads and release-like operations as writes (paper §3.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessKind {
    /// A load (or acquire-like synchronization operation).
    Read,
    /// A store (or release-like synchronization operation).
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trips_through_index() {
        let t = ThreadId::from_index(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t, ThreadId(7));
        let o = ObjId::from_index(123_456);
        assert_eq!(o.index(), 123_456);
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(MethodId(1));
        set.insert(MethodId(1));
        set.insert(MethodId(2));
        assert_eq!(set.len(), 2);
        assert!(ObjId(3) < ObjId(4));
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        assert_eq!(format!("{:?}", ThreadId(3)), "ThreadId(3)");
        assert_eq!(format!("{}", ThreadId(3)), "3");
    }

    #[test]
    #[should_panic(expected = "id index out of range")]
    fn thread_id_overflow_panics() {
        let _ = ThreadId::from_index(1 << 20);
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
