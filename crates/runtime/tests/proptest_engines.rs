//! Property-based tests of the execution engines: for arbitrary generated
//! programs, every schedule (and both engines) executes the same multiset
//! of operations — schedules change interleaving, never behaviour.

use dc_runtime::checker::NopChecker;
use dc_runtime::engine::det::{run_det, Schedule};
use dc_runtime::engine::real::run_real;
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, Program, ProgramBuilder};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum GenOp {
    Read(u8),
    Write(u8),
    Compute(u8),
    Locked(u8),
    ArrayWrite(u8),
}

fn gen_body() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..2).prop_map(GenOp::Read),
            (0u8..2).prop_map(GenOp::Write),
            (1u8..10).prop_map(GenOp::Compute),
            (0u8..2).prop_map(GenOp::Locked),
            (0u8..4).prop_map(GenOp::ArrayWrite),
        ],
        1..8,
    )
}

fn build(bodies: &[Vec<GenOp>], iters: u8) -> Program {
    let mut b = ProgramBuilder::new();
    let shared: Vec<_> = (0..2)
        .map(|_| b.object(ObjKind::Plain { fields: 2 }))
        .collect();
    let arr = b.object(ObjKind::Array { len: 4 });
    let lock = b.object(ObjKind::Monitor);
    for (i, body) in bodies.iter().enumerate() {
        let ops: Vec<Op> = body
            .iter()
            .flat_map(|op| match *op {
                GenOp::Read(o) => vec![Op::Read(shared[o as usize], 0)],
                GenOp::Write(o) => vec![Op::Write(shared[o as usize], 1)],
                GenOp::Compute(u) => vec![Op::Compute(u32::from(u))],
                GenOp::Locked(o) => vec![
                    Op::Acquire(lock),
                    Op::Write(shared[o as usize], 0),
                    Op::Release(lock),
                ],
                GenOp::ArrayWrite(i) => vec![Op::ArrayWrite(arr, u32::from(i))],
            })
            .collect();
        let m = b.method(
            format!("m{i}"),
            vec![Op::Loop {
                count: u32::from(iters),
                body: ops,
            }],
        );
        b.thread(m);
    }
    b.build().expect("generated program is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Operation counts are schedule-invariant across the deterministic
    /// engine's policies and match the real-thread engine.
    #[test]
    fn op_counts_are_schedule_invariant(
        bodies in prop::collection::vec(gen_body(), 1..4),
        iters in 1u8..5,
        seed in 0u64..100,
    ) {
        let program = build(&bodies, iters);
        let a = run_det(&program, &NopChecker, &Schedule::random(seed)).unwrap();
        let b = run_det(&program, &NopChecker, &Schedule::RoundRobin { quantum: 2 }).unwrap();
        let c = run_real(&program, &NopChecker);
        for stats in [&b, &c] {
            prop_assert_eq!(a.reads, stats.reads);
            prop_assert_eq!(a.writes, stats.writes);
            prop_assert_eq!(a.array_accesses, stats.array_accesses);
            prop_assert_eq!(a.syncs, stats.syncs);
            prop_assert_eq!(a.method_entries, stats.method_entries);
        }
    }

    /// The same seed always produces the same execution (byte-for-byte
    /// deterministic statistics).
    #[test]
    fn same_seed_same_execution(
        bodies in prop::collection::vec(gen_body(), 1..4),
        iters in 1u8..5,
        seed in 0u64..100,
    ) {
        let program = build(&bodies, iters);
        let a = run_det(&program, &NopChecker, &Schedule::random(seed)).unwrap();
        let b = run_det(&program, &NopChecker, &Schedule::random(seed)).unwrap();
        prop_assert_eq!(a.reads, b.reads);
        prop_assert_eq!(a.writes, b.writes);
        prop_assert_eq!(a.syncs, b.syncs);
    }
}
