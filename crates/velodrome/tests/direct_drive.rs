//! Direct-drive tests of the Velodrome checker (acting as the engine),
//! covering the release–acquire edge rule and the unary-merging cut.

use dc_runtime::checker::Checker;
use dc_runtime::heap::{Heap, ObjKind};
use dc_runtime::ids::{MethodId, ObjId, ThreadId};
use dc_runtime::spec::AtomicitySpec;
use dc_velodrome::{Velodrome, VelodromeConfig};

const T0: ThreadId = ThreadId(0);
const T1: ThreadId = ThreadId(1);
const M0: MethodId = MethodId(0);
const M1: MethodId = MethodId(1);
const O: ObjId = ObjId(0);
const LOCK: ObjId = ObjId(1);

fn fresh() -> Velodrome {
    let v = Velodrome::new(2, AtomicitySpec::all_atomic(), VelodromeConfig::default());
    let heap = Heap::new(&[ObjKind::Plain { fields: 2 }, ObjKind::Monitor], 2);
    v.run_begin(&heap);
    v.thread_begin(T0);
    v.thread_begin(T1);
    v
}

#[test]
fn interleaved_atomic_regions_cycle() {
    let v = fresh();
    v.enter_method(T0, M0);
    v.write(T0, O, 0);
    v.enter_method(T1, M1);
    v.write(T1, O, 1);
    v.read(T1, O, 0); // edge M0 → M1
    v.exit_method(T1, M1);
    v.read(T0, O, 1); // edge M1 → M0: cycle
    v.exit_method(T0, M0);
    v.thread_end(T0);
    v.thread_end(T1);
    let violations = v.violations();
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].blamed_methods, vec![M0]);
}

#[test]
fn release_acquire_edges_order_critical_sections() {
    // Two sequential (non-overlapping) critical sections: the sync edges
    // point one way only — no cycle.
    let v = fresh();
    for (t, m) in [(T0, M0), (T1, M1)] {
        v.enter_method(t, m);
        v.sync_acquire(t, LOCK);
        v.read(t, O, 0);
        v.write(t, O, 0);
        v.sync_release(t, LOCK);
        v.exit_method(t, m);
    }
    v.thread_end(T0);
    v.thread_end(T1);
    assert!(v.violations().is_empty());
    assert!(v.cross_edges() >= 1, "release→acquire dependence recorded");
}

#[test]
fn two_critical_sections_in_one_region_are_a_real_violation() {
    // An atomic method that releases and re-acquires, with another thread's
    // full critical section in between: the textbook non-serializable
    // pattern the sync edges must catch.
    let v = fresh();
    v.enter_method(T0, M0);
    v.sync_acquire(T0, LOCK);
    v.read(T0, O, 0);
    v.sync_release(T0, LOCK);
    // T1 slips in.
    v.enter_method(T1, M1);
    v.sync_acquire(T1, LOCK);
    v.write(T1, O, 0);
    v.sync_release(T1, LOCK);
    v.exit_method(T1, M1);
    // T0's second critical section inside the same atomic region.
    v.sync_acquire(T0, LOCK);
    v.write(T0, O, 1);
    v.sync_release(T0, LOCK);
    v.exit_method(T0, M0);
    v.thread_end(T0);
    v.thread_end(T1);
    assert_eq!(v.violations().len(), 1, "lock-release window is non-atomic");
}

#[test]
fn unary_accesses_merge_until_an_edge_interrupts() {
    let v = fresh();
    // Non-transactional context: repeated accesses merge into one unary tx.
    for _ in 0..5 {
        v.read(T0, O, 0);
        v.write(T0, O, 0);
    }
    let before = v
        .stats()
        .transactions
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(before, 2, "one unary transaction per thread so far");
    // T1 conflicts: an edge lands on T0's merged unary transaction, so
    // T0's next access starts a fresh one.
    v.write(T1, O, 0);
    v.read(T0, O, 0);
    let after = v
        .stats()
        .transactions
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(after > before, "the cross-thread edge cut T0's unary tx");
    v.thread_end(T0);
    v.thread_end(T1);
}
