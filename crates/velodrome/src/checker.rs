//! The Velodrome checker: a [`Checker`] implementation performing sound and
//! precise online conflict-serializability checking.
//!
//! At each access, the instrumentation locks the field's metadata word,
//! detects cross-thread dependences against the last writer / last readers,
//! adds them to the dependence graph, detects cycles, and updates the
//! metadata — all while the metadata lock "provides analysis–access
//! atomicity" (paper §4). The paper measures 82% of Velodrome's overhead
//! coming from exactly this synchronization.

use crate::graph::{VGraph, VTxId, VViolation};
use crate::meta::MetaTable;
use dc_runtime::checker::Checker;
use dc_runtime::heap::Heap;
use dc_runtime::ids::{CellId, MethodId, ObjId, ThreadId, SYNC_CELL};
use dc_runtime::spec::TxKind;
use dc_runtime::spec::{AtomicitySpec, TxFilter, TxTracker};
use dc_runtime::spec::{EnterOutcome, ExitOutcome};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Sound (default) or deliberately unsound synchronization variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Variant {
    /// Analysis–access atomicity via the per-field metadata lock.
    #[default]
    Sound,
    /// Skip synchronization (and metadata updates) when the current
    /// transaction is already the last writer/reader. Can miss dependences
    /// under races — the variant the Velodrome authors described
    /// (paper §5.3, "personal communication").
    Unsound,
}

/// Velodrome configuration.
#[derive(Clone, Debug)]
pub struct VelodromeConfig {
    /// Sound or unsound synchronization.
    pub variant: Variant,
    /// Instrument array accesses (off by default, matching the paper).
    pub instrument_arrays: bool,
    /// Detect cycles (disabled for the §5.4 array-overhead experiment).
    pub detect_cycles: bool,
    /// Which transactions to instrument (all in normal operation; a method
    /// subset when used as the second run of multi-run mode).
    pub filter: TxFilter,
    /// Graph-collector cadence in transaction begins (0 disables).
    pub collect_every: u32,
}

impl Default for VelodromeConfig {
    fn default() -> Self {
        VelodromeConfig {
            variant: Variant::Sound,
            instrument_arrays: false,
            detect_cycles: true,
            filter: TxFilter::all(),
            collect_every: 256,
        }
    }
}

/// Run statistics.
#[derive(Debug, Default)]
pub struct VelodromeStats {
    /// Transactions started (regular + unary).
    pub transactions: AtomicU64,
    /// Accesses that ran the full (locked) instrumentation.
    pub instrumented: AtomicU64,
    /// Accesses skipped by the unsound fast path.
    pub skipped_unsound: AtomicU64,
    /// Transactions reclaimed.
    pub collected_txs: AtomicU64,
}

struct Local {
    tracker: TxTracker,
    seq: u64,
    kind: TxKind,
    instrumented: u64,
    skipped_unsound: u64,
    /// False while inside an unselected regular transaction (second-run
    /// filtering): accesses are not instrumented.
    instrumenting: bool,
    seen_edge_events: u32,
}

#[repr(align(128))]
struct Slot {
    current_tx: AtomicU64,
    edge_events: AtomicU32,
    local: UnsafeCell<Local>,
}

// SAFETY: `local` is accessed only by the owning thread; other fields are
// atomics.
unsafe impl Sync for Slot {}

/// The Velodrome atomicity checker.
pub struct Velodrome {
    config: VelodromeConfig,
    spec: AtomicitySpec,
    slots: Box<[Slot]>,
    meta: OnceLock<MetaTable>,
    graph: Mutex<VGraph>,
    violations: Mutex<Vec<VViolation>>,
    begins_since_collect: AtomicU32,
    stats: VelodromeStats,
}

impl std::fmt::Debug for Velodrome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Velodrome")
            .field("threads", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Velodrome {
    /// Creates a Velodrome checker for `n_threads` threads under `spec`.
    pub fn new(n_threads: usize, spec: AtomicitySpec, config: VelodromeConfig) -> Self {
        Velodrome {
            config,
            spec,
            slots: (0..n_threads)
                .map(|_| Slot {
                    current_tx: AtomicU64::new(0),
                    edge_events: AtomicU32::new(0),
                    local: UnsafeCell::new(Local {
                        tracker: TxTracker::new(),
                        seq: 0,
                        kind: TxKind::Unary,
                        instrumented: 0,
                        skipped_unsound: 0,
                        instrumenting: true,
                        seen_edge_events: 0,
                    }),
                })
                .collect(),
            meta: OnceLock::new(),
            graph: Mutex::new(VGraph::new()),
            violations: Mutex::new(Vec::new()),
            begins_since_collect: AtomicU32::new(0),
            stats: VelodromeStats::default(),
        }
    }

    /// The violations found, deduplicated by static identity.
    pub fn violations(&self) -> Vec<VViolation> {
        let all = self.violations.lock();
        let mut seen = std::collections::HashSet::new();
        all.iter()
            .filter(|v| seen.insert(v.static_key()))
            .cloned()
            .collect()
    }

    /// Run statistics.
    pub fn stats(&self) -> &VelodromeStats {
        &self.stats
    }

    /// Cross-thread dependence edges added.
    pub fn cross_edges(&self) -> u64 {
        self.graph.lock().cross_edges
    }

    /// SAFETY: must only be called from code running on thread `t`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn local(&self, t: ThreadId) -> &mut Local {
        &mut *self.slots[t.index()].local.get()
    }

    fn begin_tx(&self, t: ThreadId, kind: TxKind) {
        let slot = &self.slots[t.index()];
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        local.seq += 1;
        local.kind = kind;
        local.instrumenting = match kind {
            TxKind::Regular(m) => self.config.filter.covers_method(m),
            TxKind::Unary => self.config.filter.instrument_unary,
        };
        local.seen_edge_events = slot.edge_events.load(Ordering::Acquire);
        let id = VTxId::new(t, local.seq);
        let prev = VTxId(slot.current_tx.load(Ordering::Acquire));
        self.graph.lock().begin(id, kind, prev);
        slot.current_tx.store(id.0, Ordering::Release);
        self.stats.transactions.fetch_add(1, Ordering::Relaxed);
        self.maybe_collect();
    }

    fn maybe_collect(&self) {
        if self.config.collect_every == 0 {
            return;
        }
        let n = self.begins_since_collect.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.config.collect_every
            && self
                .begins_since_collect
                .compare_exchange(n, 0, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            let roots: Vec<VTxId> = self
                .slots
                .iter()
                .map(|s| VTxId(s.current_tx.load(Ordering::Acquire)))
                .collect();
            let collected = self.graph.lock().collect(roots);
            self.stats
                .collected_txs
                .fetch_add(collected as u64, Ordering::Relaxed);
        }
    }

    /// Unary-transaction merging: cut the current unary transaction if a
    /// cross-thread edge touched it since the last access (paper §4).
    fn before_access(&self, t: ThreadId) {
        let slot = &self.slots[t.index()];
        let events = slot.edge_events.load(Ordering::Acquire);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if events != local.seen_edge_events {
            local.seen_edge_events = events;
            if local.kind == TxKind::Unary {
                self.begin_tx(t, TxKind::Unary);
            }
        }
    }

    fn note_edge_event(&self, src: VTxId) {
        let slot = &self.slots[src.thread().index()];
        if slot.current_tx.load(Ordering::Acquire) == src.0 {
            slot.edge_events.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// The instrumented access body.
    fn access(&self, t: ThreadId, obj: ObjId, cell: CellId, is_write: bool) {
        self.before_access(t);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if !local.instrumenting {
            return;
        }
        let meta = self.meta.get().expect("run_begin builds metadata");
        let slot = meta.slot(obj, cell);
        let cur = VTxId(self.slots[t.index()].current_tx.load(Ordering::Relaxed));
        if self.config.variant == Variant::Unsound {
            // Skip synchronization when metadata would not change.
            if is_write {
                if meta.writer(slot) == cur
                    && (0..meta.n_threads()).all(|i| {
                        let r = meta.reader(slot, i);
                        !r.is_some() || r == cur
                    })
                {
                    local.skipped_unsound += 1;
                    return;
                }
            } else if meta.reader(slot, t.index()) == cur || meta.writer(slot) == cur {
                local.skipped_unsound += 1;
                return;
            }
        }
        meta.lock(slot);
        let mut new_violations: Vec<VViolation> = Vec::new();
        let last_w = meta.writer(slot);
        if is_write {
            // WRITE rule: edges from last writer and every other thread's
            // last reader; then become the writer and clear readers.
            if last_w.is_some() && last_w.thread() != t {
                new_violations.extend(self.edge(last_w, cur));
            }
            for i in 0..meta.n_threads() {
                if i != t.index() {
                    let r = meta.reader(slot, i);
                    if r.is_some() {
                        new_violations.extend(self.edge(r, cur));
                    }
                }
            }
            meta.set_writer(slot, cur);
            meta.clear_readers(slot);
        } else {
            // READ rule: edge from the last writer; record as last reader.
            if last_w.is_some() && last_w.thread() != t {
                new_violations.extend(self.edge(last_w, cur));
            }
            meta.set_reader(slot, t.index(), cur);
        }
        meta.unlock(slot);
        local.instrumented += 1;
        if !new_violations.is_empty() {
            self.violations.lock().extend(new_violations);
        }
    }

    fn edge(&self, src: VTxId, dst: VTxId) -> Option<VViolation> {
        let v = self
            .graph
            .lock()
            .add_cross_edge(src, dst, self.config.detect_cycles);
        self.note_edge_event(src);
        self.note_edge_event(dst);
        v
    }
}

impl Checker for Velodrome {
    fn run_begin(&self, heap: &Heap) {
        let _ = self.meta.set(MetaTable::new(heap));
    }

    fn thread_begin(&self, t: ThreadId) {
        self.begin_tx(t, TxKind::Unary);
    }

    fn thread_end(&self, t: ThreadId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        self.stats
            .instrumented
            .fetch_add(local.instrumented, Ordering::Relaxed);
        self.stats
            .skipped_unsound
            .fetch_add(local.skipped_unsound, Ordering::Relaxed);
        local.instrumented = 0;
        local.skipped_unsound = 0;
    }

    fn enter_method(&self, t: ThreadId, m: MethodId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if let EnterOutcome::BeginTransaction(method) = local.tracker.enter(m, &self.spec) {
            self.begin_tx(t, TxKind::Regular(method));
        }
    }

    fn exit_method(&self, t: ThreadId, m: MethodId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if let ExitOutcome::EndTransaction(_) = local.tracker.exit(m) {
            self.begin_tx(t, TxKind::Unary);
        }
    }

    fn read(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.access(t, obj, cell, false);
    }

    fn write(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.access(t, obj, cell, true);
    }

    fn array_read(&self, t: ThreadId, obj: ObjId, index: CellId) {
        if self.config.instrument_arrays {
            self.access(t, obj, index, false);
        }
    }

    fn array_write(&self, t: ThreadId, obj: ObjId, index: CellId) {
        if self.config.instrument_arrays {
            self.access(t, obj, index, true);
        }
    }

    fn sync_acquire(&self, t: ThreadId, obj: ObjId) {
        // Acquire-like operations are reads of the object's sync word.
        self.access(t, obj, SYNC_CELL, false);
    }

    fn sync_release(&self, t: ThreadId, obj: ObjId) {
        self.access(t, obj, SYNC_CELL, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::engine::det::{run_det, Schedule};
    use dc_runtime::heap::ObjKind;
    use dc_runtime::program::{Op, Program, ProgramBuilder};

    /// Two threads each run an atomic method that writes then reads a
    /// shared field; interleavings where the accesses interleave produce a
    /// cycle.
    fn racy_program() -> Program {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let m0 = b.method("alpha", vec![Op::Write(o, 0), Op::Read(o, 1)]);
        let m1 = b.method("beta", vec![Op::Write(o, 1), Op::Read(o, 0)]);
        let t0 = b.method("t0", vec![Op::Call(m0)]);
        let t1 = b.method("t1", vec![Op::Call(m1)]);
        b.thread(t0);
        b.thread(t1);
        b.build().unwrap()
    }

    fn spec_for(p: &Program) -> AtomicitySpec {
        AtomicitySpec::excluding([
            p.method_by_name("t0").unwrap(),
            p.method_by_name("t1").unwrap(),
        ])
    }

    #[test]
    fn detects_interleaved_atomicity_violation() {
        let p = racy_program();
        let v = Velodrome::new(2, spec_for(&p), VelodromeConfig::default());
        // Interleave: t0 enters+writes, t1 enters+writes+reads, t0 reads.
        let script = vec![
            dc_runtime::ids::ThreadId(0), // Enter t0
            dc_runtime::ids::ThreadId(0), // Enter alpha
            dc_runtime::ids::ThreadId(0), // Write o.0
            dc_runtime::ids::ThreadId(1), // Enter t1
            dc_runtime::ids::ThreadId(1), // Enter beta
            dc_runtime::ids::ThreadId(1), // Write o.1
            dc_runtime::ids::ThreadId(1), // Read o.0  (alpha → beta)
            dc_runtime::ids::ThreadId(0), // Read o.1  (beta → alpha: cycle)
        ];
        run_det(&p, &v, &Schedule::Scripted(script)).unwrap();
        let violations = v.violations();
        assert_eq!(violations.len(), 1, "one deduplicated violation");
        assert_eq!(violations[0].cycle.len(), 2);
    }

    #[test]
    fn serial_execution_is_clean() {
        let p = racy_program();
        let v = Velodrome::new(2, spec_for(&p), VelodromeConfig::default());
        run_det(&p, &v, &Schedule::RoundRobin { quantum: 1000 }).unwrap();
        assert!(v.violations().is_empty());
        assert!(v.stats().instrumented.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn lock_discipline_suppresses_false_positives() {
        // The same access pattern under a common lock is serializable; the
        // release–acquire sync edges order the transactions one way.
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let lock = b.object(ObjKind::Monitor);
        let m0 = b.method(
            "alpha",
            vec![
                Op::Acquire(lock),
                Op::Write(o, 0),
                Op::Read(o, 1),
                Op::Release(lock),
            ],
        );
        let m1 = b.method(
            "beta",
            vec![
                Op::Acquire(lock),
                Op::Write(o, 1),
                Op::Read(o, 0),
                Op::Release(lock),
            ],
        );
        let t0 = b.method(
            "t0",
            vec![Op::Loop {
                count: 20,
                body: vec![Op::Call(m0)],
            }],
        );
        let t1 = b.method(
            "t1",
            vec![Op::Loop {
                count: 20,
                body: vec![Op::Call(m1)],
            }],
        );
        b.thread(t0);
        b.thread(t1);
        let p = b.build().unwrap();
        let spec = AtomicitySpec::excluding([
            p.method_by_name("t0").unwrap(),
            p.method_by_name("t1").unwrap(),
        ]);
        for seed in 0..10 {
            let v = Velodrome::new(2, spec.clone(), VelodromeConfig::default());
            run_det(&p, &v, &Schedule::random(seed)).unwrap();
            assert!(
                v.violations().is_empty(),
                "lock-protected atomic regions are serializable (seed {seed})"
            );
        }
    }

    #[test]
    fn second_run_filter_skips_unselected_transactions() {
        let p = racy_program();
        let filter = TxFilter {
            methods: Some(std::collections::HashSet::new()),
            instrument_unary: false,
        };
        let v = Velodrome::new(
            2,
            spec_for(&p),
            VelodromeConfig {
                filter,
                ..VelodromeConfig::default()
            },
        );
        run_det(&p, &v, &Schedule::random(1)).unwrap();
        assert_eq!(v.stats().instrumented.load(Ordering::Relaxed), 0);
        assert!(v.violations().is_empty());
    }

    #[test]
    fn arrays_not_instrumented_by_default() {
        let mut b = ProgramBuilder::new();
        let a = b.object(ObjKind::Array { len: 16 });
        let m = b.method("arr", vec![Op::ArrayWrite(a, 3), Op::ArrayRead(a, 3)]);
        b.thread(m);
        let p = b.build().unwrap();
        let v = Velodrome::new(1, AtomicitySpec::all_atomic(), VelodromeConfig::default());
        run_det(&p, &v, &Schedule::random(0)).unwrap();
        // Only the thread-exit sync access is instrumented.
        assert_eq!(v.stats().instrumented.load(Ordering::Relaxed), 1);

        let v2 = Velodrome::new(
            1,
            AtomicitySpec::all_atomic(),
            VelodromeConfig {
                instrument_arrays: true,
                ..VelodromeConfig::default()
            },
        );
        run_det(&p, &v2, &Schedule::random(0)).unwrap();
        // Two array accesses + the thread-exit sync access.
        assert_eq!(v2.stats().instrumented.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn unsound_variant_skips_redundant_updates() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 1 });
        let m = b.method(
            "loopy",
            vec![Op::Loop {
                count: 50,
                body: vec![Op::Write(o, 0), Op::Read(o, 0)],
            }],
        );
        b.thread(m);
        let p = b.build().unwrap();
        let v = Velodrome::new(
            1,
            AtomicitySpec::all_atomic(),
            VelodromeConfig {
                variant: Variant::Unsound,
                ..VelodromeConfig::default()
            },
        );
        run_det(&p, &v, &Schedule::random(0)).unwrap();
        assert!(
            v.stats().skipped_unsound.load(Ordering::Relaxed) > 50,
            "repeated same-tx accesses skip the lock"
        );
    }

    #[test]
    fn real_engine_concurrent_run_is_safe() {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 4 });
        let lock = b.object(ObjKind::Monitor);
        let m = b.method(
            "work",
            vec![Op::Loop {
                count: 300,
                body: vec![
                    Op::Acquire(lock),
                    Op::Write(o, 0),
                    Op::Read(o, 1),
                    Op::Release(lock),
                    Op::Read(o, 2),
                ],
            }],
        );
        let t = b.method("t", vec![Op::Call(m)]);
        b.thread(t);
        b.thread(t);
        b.thread(t);
        let p = b.build().unwrap();
        let spec = AtomicitySpec::excluding([p.method_by_name("t").unwrap()]);
        let v = Velodrome::new(3, spec, VelodromeConfig::default());
        dc_runtime::engine::real::run_real(&p, &v);
        // Sanity: instrumentation ran and the graph stayed consistent.
        assert!(v.stats().instrumented.load(Ordering::Relaxed) >= 3 * 300 * 3);
        let _ = v.violations();
    }
}
