//! Per-field analysis metadata with a per-field lock word.
//!
//! Velodrome (paper §4, "Velodrome implementation") adds two words per
//! field — the last transaction to write it and the last transaction(s), up
//! to one per thread, to read it since — plus one word per object for the
//! last lock-releasing transaction. To keep the analysis and the program
//! access atomic, each access "locks a word of the field's metadata using an
//! atomic operation"; that per-access CAS (and the remote cache misses it
//! causes) is the dominant cost DoubleChecker avoids.

use crate::graph::VTxId;
use dc_runtime::heap::{Heap, ObjKind};
use dc_runtime::ids::{CellId, ObjId, SYNC_CELL};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Dense metadata tables for one run.
pub struct MetaTable {
    /// Per-object base index into the flat slot arrays.
    base: Vec<u32>,
    /// Cells per object (conflated kinds get 1), excluding the sync slot.
    cells: Vec<u32>,
    /// Per-slot lock word (0 free, 1 held).
    locks: Vec<AtomicU32>,
    /// Per-slot last writer.
    writers: Vec<AtomicU64>,
    /// Per-slot, per-thread last readers (`readers[slot * n_threads + t]`).
    readers: Vec<AtomicU64>,
    n_threads: usize,
}

impl MetaTable {
    /// Builds metadata for every object in `heap`.
    pub fn new(heap: &Heap) -> Self {
        let n = heap.len();
        let n_threads = usize::from(heap.n_threads());
        let mut base = Vec::with_capacity(n);
        let mut cells = Vec::with_capacity(n);
        let mut total = 0u32;
        for i in 0..n {
            let obj_cells: u32 = match heap.kind(ObjId::from_index(i)) {
                ObjKind::Plain { fields } => u32::from(fields).max(1),
                // Arrays are conflated to one metadata slot (paper §5.4);
                // monitors, barriers, and thread objects have one slot.
                ObjKind::Array { .. }
                | ObjKind::Monitor
                | ObjKind::Barrier { .. }
                | ObjKind::ThreadObj => 1,
            };
            base.push(total);
            cells.push(obj_cells);
            // +1 sync slot per object for release–acquire dependences.
            total = total
                .checked_add(obj_cells + 1)
                .expect("metadata table too large");
        }
        MetaTable {
            base,
            cells,
            locks: (0..total).map(|_| AtomicU32::new(0)).collect(),
            writers: (0..total).map(|_| AtomicU64::new(0)).collect(),
            readers: (0..total as usize * n_threads)
                .map(|_| AtomicU64::new(0))
                .collect(),
            n_threads,
        }
    }

    /// Number of threads the reader table is sized for.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Flat slot index for `(obj, cell)`; [`SYNC_CELL`] maps to the
    /// object's sync slot, out-of-range cells conflate to slot 0.
    #[inline]
    pub fn slot(&self, obj: ObjId, cell: CellId) -> usize {
        let i = obj.index();
        let cells = self.cells[i];
        let offset = if cell == SYNC_CELL {
            cells
        } else if cell < cells {
            cell
        } else {
            0
        };
        (self.base[i] + offset) as usize
    }

    /// Spin-acquires the slot's metadata lock (yielding after a bound so
    /// single-core machines make progress).
    #[inline]
    pub fn lock(&self, slot: usize) {
        let mut spins = 0u32;
        while self.locks[slot]
            .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Releases the slot's metadata lock.
    #[inline]
    pub fn unlock(&self, slot: usize) {
        self.locks[slot].store(0, Ordering::Release);
    }

    /// Last writer of the slot (valid under the slot lock; racy otherwise,
    /// which is exactly what the unsound variant exploits).
    #[inline]
    pub fn writer(&self, slot: usize) -> VTxId {
        VTxId(self.writers[slot].load(Ordering::Acquire))
    }

    /// Sets the last writer (under the slot lock).
    #[inline]
    pub fn set_writer(&self, slot: usize, tx: VTxId) {
        self.writers[slot].store(tx.0, Ordering::Release);
    }

    /// Thread `t`'s last reader transaction of the slot.
    #[inline]
    pub fn reader(&self, slot: usize, t: usize) -> VTxId {
        VTxId(self.readers[slot * self.n_threads + t].load(Ordering::Acquire))
    }

    /// Sets thread `t`'s last reader.
    #[inline]
    pub fn set_reader(&self, slot: usize, t: usize, tx: VTxId) {
        self.readers[slot * self.n_threads + t].store(tx.0, Ordering::Release);
    }

    /// Clears every thread's last reader (`∀T, R(T,f) := null`).
    #[inline]
    pub fn clear_readers(&self, slot: usize) {
        for t in 0..self.n_threads {
            self.readers[slot * self.n_threads + t].store(0, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for MetaTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaTable")
            .field("slots", &self.locks.len())
            .field("n_threads", &self.n_threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(
            &[
                ObjKind::Plain { fields: 3 },
                ObjKind::Array { len: 100 },
                ObjKind::Monitor,
            ],
            2,
        )
    }

    #[test]
    fn slots_are_distinct_per_field_plus_sync() {
        let m = MetaTable::new(&heap());
        let o = ObjId(0);
        let s0 = m.slot(o, 0);
        let s1 = m.slot(o, 1);
        let s2 = m.slot(o, 2);
        let sync = m.slot(o, SYNC_CELL);
        let all = [s0, s1, s2, sync];
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn arrays_conflate_to_one_slot() {
        let m = MetaTable::new(&heap());
        let a = ObjId(1);
        assert_eq!(m.slot(a, 0), m.slot(a, 57));
        assert_ne!(m.slot(a, 0), m.slot(a, SYNC_CELL));
    }

    #[test]
    fn objects_do_not_share_slots() {
        let m = MetaTable::new(&heap());
        assert_ne!(m.slot(ObjId(0), SYNC_CELL), m.slot(ObjId(1), 0));
        assert_ne!(m.slot(ObjId(1), SYNC_CELL), m.slot(ObjId(2), 0));
    }

    #[test]
    fn lock_round_trip_and_metadata_updates() {
        let m = MetaTable::new(&heap());
        let s = m.slot(ObjId(0), 0);
        m.lock(s);
        assert_eq!(m.writer(s), VTxId(0));
        m.set_writer(s, VTxId(77));
        m.set_reader(s, 1, VTxId(88));
        m.unlock(s);
        assert_eq!(m.writer(s), VTxId(77));
        assert_eq!(m.reader(s, 1), VTxId(88));
        assert_eq!(m.reader(s, 0), VTxId(0));
        m.clear_readers(s);
        assert_eq!(m.reader(s, 1), VTxId(0));
    }

    #[test]
    fn contended_lock_excludes() {
        let m = std::sync::Arc::new(MetaTable::new(&heap()));
        let s = m.slot(ObjId(0), 0);
        m.lock(s);
        let m2 = std::sync::Arc::clone(&m);
        let h = std::thread::spawn(move || {
            m2.lock(s);
            m2.set_writer(s, VTxId(2));
            m2.unlock(s);
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        m.set_writer(s, VTxId(1));
        m.unlock(s);
        h.join().unwrap();
        assert_eq!(m.writer(s), VTxId(2), "second locker ran after first");
    }
}
