//! Velodrome: sound and precise dynamic atomicity checking (Flanagan,
//! Freund, Yi — PLDI 2008), reimplemented as the baseline DoubleChecker is
//! evaluated against (paper §2, §4).
//!
//! Velodrome tracks, per field, the last transaction to write it and each
//! thread's last transaction to read it; every program access detects
//! cross-thread dependences against that metadata, adds edges to a
//! transaction dependence graph, and checks for cycles — each cycle is a
//! precise conflict-serializability violation. Analysis–access atomicity is
//! enforced by a per-field metadata spinlock, whose cost (atomic operations
//! and the remote cache misses they trigger) dominates Velodrome's overhead
//! and motivates DoubleChecker's design.
//!
//! The crate provides the sound checker, the deliberately *unsound* variant
//! the paper also measures (§5.3), array-instrumentation and
//! cycle-detection switches (§5.4), and a transaction filter so Velodrome
//! can serve as the second run of multi-run mode (§5.3).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod graph;
pub mod meta;

pub use checker::{Variant, Velodrome, VelodromeConfig, VelodromeStats};
pub use graph::{VGraph, VTxId, VViolation};
pub use meta::MetaTable;
