//! Velodrome's transaction dependence graph with online cycle detection.
//!
//! Velodrome builds a graph of transactions at run time: intra-thread edges
//! between consecutive transactions of a thread and cross-thread edges for
//! each detected dependence. A cycle is a sound and precise
//! conflict-serializability violation (paper §2), reported with blame
//! assignment. Transactions unreachable from any thread's current
//! transaction are reclaimed (the paper treats metadata references as weak
//! references).

use dc_runtime::ids::{MethodId, ThreadId};
use dc_runtime::spec::TxKind;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A Velodrome transaction id: per-thread sequence number packed with the
/// thread id, so the owning thread is recoverable without a lookup.
/// `VTxId(0)` means "none".
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VTxId(pub u64);

impl VTxId {
    /// The reserved "no transaction" value.
    pub const NONE: VTxId = VTxId(0);

    /// Packs a (thread, sequence) pair; `seq` must be ≥ 1.
    pub fn new(thread: ThreadId, seq: u64) -> Self {
        debug_assert!(seq >= 1);
        VTxId((seq << 16) | u64::from(thread.0))
    }

    /// True unless this is [`VTxId::NONE`].
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }

    /// The owning thread.
    #[inline]
    pub fn thread(self) -> ThreadId {
        ThreadId(self.0 as u16)
    }
}

impl fmt::Debug for VTxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VTx{}@{}", self.0 >> 16, self.0 & 0xffff)
    }
}

/// A violation found by Velodrome: the cycle members and the blamed
/// methods (for iterative refinement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VViolation {
    /// Cycle members with their kinds.
    pub cycle: Vec<(VTxId, TxKind)>,
    /// Blamed methods.
    pub blamed_methods: Vec<MethodId>,
}

impl VViolation {
    /// Static identity for cross-trial deduplication.
    pub fn static_key(&self) -> Vec<Option<MethodId>> {
        let mut key: Vec<Option<MethodId>> = self.cycle.iter().map(|(_, k)| k.method()).collect();
        key.sort();
        key
    }
}

struct VNode {
    kind: TxKind,
    out: Vec<VTxId>,
    /// Orders of this node's earliest incoming/outgoing edges (for blame).
    first_out: Option<u32>,
    first_in: Option<u32>,
}

/// The dependence graph.
#[derive(Default)]
pub struct VGraph {
    nodes: HashMap<VTxId, VNode>,
    next_order: u32,
    /// Cross-thread dependence edges added.
    pub cross_edges: u64,
    /// Cycles detected.
    pub cycles: u64,
}

impl fmt::Debug for VGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VGraph")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl VGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers a new transaction, adding the intra-thread edge from the
    /// thread's previous transaction.
    pub fn begin(&mut self, id: VTxId, kind: TxKind, prev: VTxId) {
        self.nodes.insert(
            id,
            VNode {
                kind,
                out: Vec::new(),
                first_out: None,
                first_in: None,
            },
        );
        if prev.is_some() {
            if let Some(p) = self.nodes.get_mut(&prev) {
                p.out.push(id);
            }
        }
    }

    /// Adds a cross-thread dependence edge and checks for a cycle through
    /// it. Returns the violation if one is found. Edges to/from collected
    /// transactions are ignored (they cannot be in a future cycle).
    pub fn add_cross_edge(
        &mut self,
        src: VTxId,
        dst: VTxId,
        detect_cycles: bool,
    ) -> Option<VViolation> {
        if src == dst || !src.is_some() || !dst.is_some() {
            return None;
        }
        if !self.nodes.contains_key(&src) || !self.nodes.contains_key(&dst) {
            return None;
        }
        let order = self.next_order;
        self.next_order += 1;
        {
            let s = self.nodes.get_mut(&src).expect("src exists");
            if s.out.contains(&dst) {
                return None; // duplicate edge: no new cycle possible
            }
            s.out.push(dst);
            s.first_out.get_or_insert(order);
        }
        self.nodes
            .get_mut(&dst)
            .expect("dst exists")
            .first_in
            .get_or_insert(order);
        self.cross_edges += 1;
        if !detect_cycles {
            return None;
        }
        let cycle = self.find_cycle(src, dst)?;
        self.cycles += 1;
        Some(self.report(cycle))
    }

    /// Path from `dst` back to `src` (the cycle closed by edge src→dst).
    fn find_cycle(&self, src: VTxId, dst: VTxId) -> Option<Vec<VTxId>> {
        let mut stack = vec![dst];
        let mut visited: HashSet<VTxId> = [dst].into_iter().collect();
        let mut parent: HashMap<VTxId, VTxId> = HashMap::new();
        while let Some(v) = stack.pop() {
            if v == src {
                let mut path = vec![v];
                let mut cur = v;
                while cur != dst {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path); // dst … src
            }
            if let Some(node) = self.nodes.get(&v) {
                for &w in &node.out {
                    if self.nodes.contains_key(&w) && visited.insert(w) {
                        parent.insert(w, v);
                        stack.push(w);
                    }
                }
            }
        }
        None
    }

    fn report(&self, cycle: Vec<VTxId>) -> VViolation {
        let members: Vec<(VTxId, TxKind)> =
            cycle.iter().map(|&tx| (tx, self.nodes[&tx].kind)).collect();
        // Blame: first outgoing edge earlier than first incoming edge.
        let mut blamed: Vec<MethodId> = members
            .iter()
            .filter(|(tx, _)| {
                let n = &self.nodes[tx];
                matches!((n.first_out, n.first_in), (Some(o), Some(i)) if o < i)
            })
            .filter_map(|(_, k)| k.method())
            .collect();
        if blamed.is_empty() {
            blamed = members.iter().filter_map(|(_, k)| k.method()).collect();
        }
        blamed.sort();
        blamed.dedup();
        VViolation {
            cycle: members,
            blamed_methods: blamed,
        }
    }

    /// Reclaims transactions unreachable from the roots (current
    /// transactions) via outgoing edges. Returns the number collected.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = VTxId>) -> usize {
        let mut marked: HashSet<VTxId> = HashSet::new();
        let mut work: Vec<VTxId> = Vec::new();
        for r in roots {
            if r.is_some() && marked.insert(r) {
                work.push(r);
            }
        }
        while let Some(id) = work.pop() {
            if let Some(node) = self.nodes.get(&id) {
                for &w in &node.out {
                    if marked.insert(w) {
                        work.push(w);
                    }
                }
            }
        }
        let before = self.nodes.len();
        self.nodes.retain(|id, _| marked.contains(id));
        before - self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn reg(m: u32) -> TxKind {
        TxKind::Regular(MethodId(m))
    }

    #[test]
    fn vtxid_packs_thread_and_seq() {
        let id = VTxId::new(ThreadId(3), 9);
        assert_eq!(id.thread(), ThreadId(3));
        assert!(id.is_some());
        assert!(!VTxId::NONE.is_some());
        assert_eq!(format!("{id:?}"), "VTx9@3");
    }

    #[test]
    fn two_transaction_cycle_is_reported_with_blame() {
        let mut g = VGraph::new();
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        assert!(g.add_cross_edge(a, b, true).is_none());
        let v = g.add_cross_edge(b, a, true).expect("cycle");
        assert_eq!(v.cycle.len(), 2);
        // a's out-edge (order 0) precedes its in-edge (order 1): a blamed.
        assert_eq!(v.blamed_methods, vec![MethodId(0)]);
        assert_eq!(g.cycles, 1);
        assert_eq!(g.cross_edges, 2);
    }

    #[test]
    fn duplicate_edges_do_not_re_report() {
        let mut g = VGraph::new();
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        g.add_cross_edge(a, b, true);
        g.add_cross_edge(b, a, true);
        assert!(g.add_cross_edge(b, a, true).is_none(), "duplicate");
        assert_eq!(g.cross_edges, 2);
    }

    #[test]
    fn cycle_through_intra_thread_edges() {
        // a1 →intra a2 on T0; cross a2→b, cross b→a1: cycle a1,a2,b.
        let mut g = VGraph::new();
        let a1 = VTxId::new(T0, 1);
        let a2 = VTxId::new(T0, 2);
        let b = VTxId::new(T1, 1);
        g.begin(a1, reg(0), VTxId::NONE);
        g.begin(b, reg(2), VTxId::NONE);
        g.add_cross_edge(b, a1, true); // b → a1 first
        g.begin(a2, reg(1), a1); // intra a1 → a2
        let v = g.add_cross_edge(a2, b, true).expect("cycle via intra edge");
        assert_eq!(v.cycle.len(), 3);
    }

    #[test]
    fn detection_can_be_disabled() {
        let mut g = VGraph::new();
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, reg(0), VTxId::NONE);
        g.begin(b, reg(1), VTxId::NONE);
        g.add_cross_edge(a, b, false);
        assert!(g.add_cross_edge(b, a, false).is_none());
        assert_eq!(g.cycles, 0);
        assert_eq!(g.cross_edges, 2, "edges still tracked");
    }

    #[test]
    fn collect_reclaims_unreachable() {
        let mut g = VGraph::new();
        let a1 = VTxId::new(T0, 1);
        let a2 = VTxId::new(T0, 2);
        g.begin(a1, reg(0), VTxId::NONE);
        g.begin(a2, reg(0), a1);
        // Root is a2 (current): a1 has only an edge *to* a2, so from a2
        // nothing reaches a1 — a1 collected.
        assert_eq!(g.collect([a2]), 1);
        assert_eq!(g.len(), 1);
        // Edges naming a1 are now ignored.
        assert!(g.add_cross_edge(a1, a2, true).is_none());
    }

    #[test]
    fn unary_only_cycle_blames_nothing_but_reports() {
        let mut g = VGraph::new();
        let a = VTxId::new(T0, 1);
        let b = VTxId::new(T1, 1);
        g.begin(a, TxKind::Unary, VTxId::NONE);
        g.begin(b, TxKind::Unary, VTxId::NONE);
        g.add_cross_edge(a, b, true);
        let v = g.add_cross_edge(b, a, true).expect("cycle");
        assert!(v.blamed_methods.is_empty());
        assert_eq!(v.static_key(), vec![None, None]);
    }
}
