//! Deterministic lowering of a transactional history onto the workload IR.
//!
//! A history records *what each session observed*, not *when*: sessions are
//! ordered internally (program order) but carry no inter-session order. To
//! replay one through the checkers we must pick a concrete interleaving —
//! and it must be an interleaving that actually explains every read, or the
//! conflict graph we hand the checkers would not be the history's.
//!
//! The lowering is:
//!
//! * one plain single-field heap object per key, in order of first
//!   appearance;
//! * one thread per session, whose *excluded* entry method `session{i}` just
//!   calls the session's transactions in program order — so, exactly like
//!   the built-in workloads, every access happens inside an atomic
//!   transaction method;
//! * one method `s{i}_t{j}#{id}` per transaction (carrying the dbcop
//!   transaction id in its name), whose body is the transaction's reads and
//!   writes;
//! * a [`Schedule::Scripted`] interleaving produced by a greedy
//!   serialization of the events (below), so the deterministic engine
//!   replays precisely the access order whose reads-from relation matches
//!   the file.
//!
//! # Greedy serialization
//!
//! We scan session cursors from index 0 and repeatedly schedule the first
//! session whose next event is *enabled*:
//!
//! * a read `r(k, v)` is enabled iff the current value of `k` is `v`;
//! * a write `w(k, v)` is enabled iff **no** unscheduled read anywhere still
//!   needs the *current* value of `k` (otherwise the write would destroy a
//!   value some read has yet to observe — writes wait behind their
//!   anti-dependencies).
//!
//! Scanning from index 0 every step makes the result deterministic. If no
//! session's next event is enabled the history is rejected as
//! [`HistoryError::Unrealizable`]: under the unique-written-values
//! convention the reads-from relation is exact, and this greedy strategy
//! only wedges when the mandated observation order is cyclic at the *event*
//! level (the anomaly cycles we care about — lost update, write skew,
//! fractured read, long fork — are cyclic only at transaction granularity
//! and replay fine; see DESIGN.md "History import" for the argument and the
//! limits).

use crate::schema::{Event, History, HistoryError};
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::ObjKind;
use dc_runtime::ids::{MethodId, ObjId, ThreadId};
use dc_runtime::program::{Op, Program, ProgramBuilder};
use dc_runtime::spec::AtomicitySpec;
use std::collections::{HashMap, HashSet, VecDeque};

/// A history lowered onto the workload IR, ready for any checker.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The program: one thread per session, one method per transaction.
    pub program: Program,
    /// Atomicity spec excluding the per-session entry methods, so each
    /// transaction method is an atomic region.
    pub spec: AtomicitySpec,
    /// Scripted schedule replaying the greedy serialization exactly.
    pub schedule: Schedule,
    /// `tx_methods[session][tx]` is the method lowered from that
    /// transaction, for mapping checker blame back to the history.
    pub tx_methods: Vec<Vec<MethodId>>,
    /// Key names in object-id order (`keys[o.index()]` is object `o`).
    pub keys: Vec<String>,
}

impl Lowered {
    /// The method lowered from the dbcop transaction with `id`, if any.
    pub fn method_for_tx(&self, history: &History, id: u64) -> Option<MethodId> {
        for (si, session) in history.sessions.iter().enumerate() {
            for (ti, tx) in session.iter().enumerate() {
                if tx.id == id {
                    return Some(self.tx_methods[si][ti]);
                }
            }
        }
        None
    }
}

/// Validates the value conventions: unique nonzero write values per key and
/// every nonzero read explained by some write.
fn validate_values(history: &History) -> Result<(), HistoryError> {
    if history.event_count() == 0 {
        return Err(HistoryError::EmptyHistory);
    }
    let mut written: HashSet<(&str, u64)> = HashSet::new();
    for tx in history.sessions.iter().flatten() {
        for ev in &tx.events {
            if let Event::Write { key, value } = ev {
                if *value == 0 || !written.insert((key, *value)) {
                    return Err(HistoryError::DuplicateWriteValue {
                        key: key.clone(),
                        value: *value,
                    });
                }
            }
        }
    }
    for tx in history.sessions.iter().flatten() {
        for ev in &tx.events {
            if let Event::Read { key, value } = ev {
                if *value != 0 && !written.contains(&(key.as_str(), *value)) {
                    return Err(HistoryError::ReadOfUnwritten {
                        key: key.clone(),
                        value: *value,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Greedy deterministic serialization over per-session flattened event
/// streams. Returns, per step, the session that ran its next event.
fn serialize_events(streams: &[Vec<&Event>]) -> Result<Vec<usize>, HistoryError> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut cursors = vec![0usize; streams.len()];
    let mut current: HashMap<&str, u64> = HashMap::new();
    // How many *unscheduled* reads still need (key, value).
    let mut pending_reads: HashMap<(&str, u64), u32> = HashMap::new();
    for ev in streams.iter().flatten() {
        if let Event::Read { key, value } = ev {
            *pending_reads.entry((key.as_str(), *value)).or_insert(0) += 1;
        }
    }
    let mut order = Vec::with_capacity(total);
    while order.len() < total {
        let mut progressed = false;
        for (si, stream) in streams.iter().enumerate() {
            let Some(ev) = stream.get(cursors[si]) else {
                continue;
            };
            let enabled = match ev {
                Event::Read { key, value } => {
                    current.get(key.as_str()).copied().unwrap_or(0) == *value
                }
                Event::Write { key, .. } => {
                    let now = current.get(key.as_str()).copied().unwrap_or(0);
                    pending_reads
                        .get(&(key.as_str(), now))
                        .copied()
                        .unwrap_or(0)
                        == 0
                }
            };
            if !enabled {
                continue;
            }
            match ev {
                Event::Read { key, value } => {
                    *pending_reads.get_mut(&(key.as_str(), *value)).unwrap() -= 1;
                }
                Event::Write { key, value } => {
                    current.insert(key.as_str(), *value);
                }
            }
            cursors[si] += 1;
            order.push(si);
            progressed = true;
            break;
        }
        if !progressed {
            return Err(HistoryError::Unrealizable {
                placed: order.len(),
                total,
            });
        }
    }
    Ok(order)
}

/// Builds the scripted schedule from the serialized event order.
///
/// The deterministic engine charges one scheduled step per action, and a
/// thread's action stream here is fixed by program order: `Enter(entry)`
/// (fused with thread start), then per called transaction `Enter(tx)`, its
/// events, `Exit(tx)`, then `Exit(entry)`, then one final step for thread
/// end. Only the *event* steps carry an inter-session ordering obligation;
/// the enter/exit/end steps are fillers, emitted lazily just before the
/// thread's next event (a thread's trailing fillers are flushed in thread
/// order at the end — delaying an `Exit` never changes transaction
/// membership or the access order, so the conflict graphs are unaffected).
fn build_script(history: &History, order: &[usize]) -> Vec<ThreadId> {
    // Per-thread token queue; `true` = an event step (consumes one entry of
    // `order`), `false` = a filler step.
    let mut tokens: Vec<VecDeque<bool>> = history
        .sessions
        .iter()
        .map(|session| {
            let mut q = VecDeque::new();
            q.push_back(false); // Enter(entry), fused with thread start.
            for tx in session {
                q.push_back(false); // Enter(tx).
                q.extend(tx.events.iter().map(|_| true));
                q.push_back(false); // Exit(tx).
            }
            q.push_back(false); // Exit(entry).
            q.push_back(false); // Thread-end step.
            q
        })
        .collect();
    let mut script = Vec::new();
    for &si in order {
        // Flush fillers up to and including this thread's next event token.
        while let Some(is_event) = tokens[si].pop_front() {
            script.push(ThreadId::from_index(si));
            if is_event {
                break;
            }
        }
    }
    for (si, queue) in tokens.iter_mut().enumerate() {
        while queue.pop_front().is_some() {
            script.push(ThreadId::from_index(si));
        }
    }
    script
}

/// Lowers a validated history onto the workload IR.
///
/// # Errors
///
/// Returns [`HistoryError::EmptyHistory`],
/// [`HistoryError::DuplicateWriteValue`], [`HistoryError::ReadOfUnwritten`],
/// or [`HistoryError::Unrealizable`] when the history's values cannot be
/// explained; a structurally valid history with explainable values always
/// lowers to a valid program.
pub fn lower(history: &History) -> Result<Lowered, HistoryError> {
    validate_values(history)?;
    let streams: Vec<Vec<&Event>> = history
        .sessions
        .iter()
        .map(|session| session.iter().flat_map(|tx| tx.events.iter()).collect())
        .collect();
    let order = serialize_events(&streams)?;
    let script = build_script(history, &order);

    let mut b = ProgramBuilder::new();
    // Keys in order of first appearance → one single-field object each.
    let mut key_ids: HashMap<&str, ObjId> = HashMap::new();
    let mut keys = Vec::new();
    for ev in streams.iter().flatten() {
        if !key_ids.contains_key(ev.key()) {
            let id = b.object(ObjKind::Plain { fields: 1 });
            key_ids.insert(ev.key(), id);
            keys.push(ev.key().to_string());
        }
    }
    let mut tx_methods = Vec::with_capacity(history.sessions.len());
    let mut entries = Vec::with_capacity(history.sessions.len());
    for (si, session) in history.sessions.iter().enumerate() {
        let mut methods = Vec::with_capacity(session.len());
        let mut body = Vec::with_capacity(session.len());
        for (ti, tx) in session.iter().enumerate() {
            let ops: Vec<Op> = tx
                .events
                .iter()
                .map(|ev| {
                    let obj = key_ids[ev.key()];
                    if ev.is_write() {
                        Op::Write(obj, 0)
                    } else {
                        Op::Read(obj, 0)
                    }
                })
                .collect();
            let m = b.method(format!("s{si}_t{ti}#{}", tx.id), ops);
            methods.push(m);
            body.push(Op::Call(m));
        }
        let entry = b.method(format!("session{si}"), body);
        b.thread(entry);
        entries.push(entry);
        tx_methods.push(methods);
    }
    let program = b
        .build()
        .expect("lowered histories always form valid programs");

    Ok(Lowered {
        spec: AtomicitySpec::excluding(entries),
        schedule: Schedule::Scripted(script),
        program,
        tx_methods,
        keys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Expected, Transaction};
    use dc_core::{run_single, ExecPlan};

    /// `(op, key, value)` literal events, grouped tx-then-session.
    type TxEvents<'a> = &'a [(&'a str, &'a str, u64)];

    fn history(sessions: &[&[TxEvents<'_>]]) -> History {
        let mut id = 0;
        History {
            name: None,
            anomaly: None,
            expected: None,
            sessions: sessions
                .iter()
                .map(|session| {
                    session
                        .iter()
                        .map(|tx| {
                            id += 1;
                            Transaction {
                                id,
                                events: tx
                                    .iter()
                                    .map(|(op, key, value)| {
                                        let key = (*key).to_string();
                                        if *op == "w" {
                                            Event::Write { key, value: *value }
                                        } else {
                                            Event::Read { key, value: *value }
                                        }
                                    })
                                    .collect(),
                            }
                        })
                        .collect()
                })
                .collect(),
        }
    }

    fn violations(h: &History) -> usize {
        let lowered = lower(h).expect("lowers");
        let report = run_single(
            &lowered.program,
            &lowered.spec,
            &ExecPlan::Det(lowered.schedule.clone()),
        )
        .expect("scripted replay runs to completion");
        report.violations.len()
    }

    #[test]
    fn lost_update_interleaving_is_a_violation() {
        let h = history(&[
            &[&[("r", "x", 0), ("w", "x", 1)]],
            &[&[("r", "x", 0), ("w", "x", 2)]],
        ]);
        assert!(violations(&h) > 0);
    }

    #[test]
    fn write_skew_is_a_violation() {
        let h = history(&[
            &[&[("r", "x", 0), ("r", "y", 0), ("w", "x", 1)]],
            &[&[("r", "x", 0), ("r", "y", 0), ("w", "y", 2)]],
        ]);
        assert!(violations(&h) > 0);
    }

    #[test]
    fn fractured_read_is_a_violation() {
        let h = history(&[
            &[&[("w", "x", 1), ("w", "y", 2)]],
            &[&[("r", "x", 1), ("r", "y", 0)]],
        ]);
        assert!(violations(&h) > 0);
    }

    #[test]
    fn long_fork_is_a_violation() {
        let h = history(&[
            &[&[("w", "x", 1)]],
            &[&[("w", "y", 1)]],
            &[&[("r", "x", 1), ("r", "y", 0)]],
            &[&[("r", "x", 0), ("r", "y", 1)]],
        ]);
        assert!(violations(&h) > 0);
    }

    #[test]
    fn serial_single_session_is_clean() {
        let h = history(&[&[
            &[("w", "x", 1), ("w", "y", 2)],
            &[("r", "x", 1), ("r", "y", 2)],
        ]]);
        assert_eq!(violations(&h), 0);
    }

    #[test]
    fn serializable_but_interleaved_control_is_clean() {
        // S1: T1 w(x,1); T2 r(y,2).  S2: T3 r(x,1) w(y,2).
        // Greedy interleaves T3 between T1 and T2, but T1 → T3 → T2 is
        // acyclic, so no checker may complain.
        let h = history(&[
            &[&[("w", "x", 1)], &[("r", "y", 2)]],
            &[&[("r", "x", 1), ("w", "y", 2)]],
        ]);
        assert_eq!(violations(&h), 0);
    }

    #[test]
    fn empty_transactions_still_replay() {
        let h = history(&[&[&[], &[("w", "x", 1)], &[]], &[&[("r", "x", 1)]]]);
        assert_eq!(violations(&h), 0);
    }

    #[test]
    fn empty_history_is_rejected() {
        let h = history(&[&[&[]], &[]]);
        assert_eq!(lower(&h).unwrap_err(), HistoryError::EmptyHistory);
    }

    #[test]
    fn duplicate_write_values_are_rejected() {
        let h = history(&[&[&[("w", "x", 1)]], &[&[("w", "x", 1)]]]);
        assert_eq!(
            lower(&h).unwrap_err(),
            HistoryError::DuplicateWriteValue {
                key: "x".into(),
                value: 1,
            }
        );
        let zero = history(&[&[&[("w", "x", 0)]]]);
        assert!(matches!(
            lower(&zero).unwrap_err(),
            HistoryError::DuplicateWriteValue { value: 0, .. }
        ));
    }

    #[test]
    fn read_of_never_written_value_is_rejected() {
        let h = history(&[&[&[("r", "x", 7)]], &[&[("w", "x", 1)]]]);
        assert_eq!(
            lower(&h).unwrap_err(),
            HistoryError::ReadOfUnwritten {
                key: "x".into(),
                value: 7,
            }
        );
    }

    #[test]
    fn contradictory_observations_are_unrealizable() {
        // Same session reads 0 after overwriting it; nothing can restore 0.
        let h = history(&[&[&[("w", "x", 1), ("r", "x", 0)]]]);
        assert!(matches!(
            lower(&h).unwrap_err(),
            HistoryError::Unrealizable { .. }
        ));
    }

    #[test]
    fn method_names_carry_session_and_tx_identity() {
        let h = history(&[&[&[("w", "x", 1)]], &[&[("r", "x", 1)]]]);
        let lowered = lower(&h).unwrap();
        assert_eq!(
            lowered.program.method_name(lowered.tx_methods[0][0]),
            "s0_t0#1"
        );
        assert_eq!(lowered.keys, vec!["x".to_string()]);
        assert_eq!(lowered.method_for_tx(&h, 2), Some(lowered.tx_methods[1][0]));
        assert_eq!(lowered.method_for_tx(&h, 99), None);
    }

    #[test]
    fn expected_annotation_survives_parse_lower_round_trip() {
        let mut h = history(&[&[&[("w", "x", 1)]], &[&[("r", "x", 1)]]]);
        h.expected = Some(Expected::Serializable);
        let reparsed = History::parse(&h.to_json()).unwrap();
        assert_eq!(reparsed.expected, Some(Expected::Serializable));
        assert!(lower(&reparsed).is_ok());
    }
}
