//! The versioned on-disk history format and its validation.
//!
//! A history file is a JSON document in the dbcop style (sessions of
//! transactions of read/write events over named keys — see PAPERS.md's
//! dbcop and Elle entries), wrapped in an explicit format tag and version
//! so the schema can evolve without silently misreading old files:
//!
//! ```json
//! {
//!   "format": "dc-history",
//!   "version": 1,
//!   "name": "lost-update",
//!   "anomaly": "lost update",
//!   "expected": "violation",
//!   "sessions": [
//!     [ {"id": 1, "events": [{"op": "r", "key": "x", "value": 0},
//!                            {"op": "w", "key": "x", "value": 1}]} ],
//!     [ {"id": 2, "events": [{"op": "r", "key": "x", "value": 0},
//!                            {"op": "w", "key": "x", "value": 2}]} ]
//!   ]
//! }
//! ```
//!
//! Conventions (matching dbcop):
//!
//! * every key starts at the initial value `0`; a read of value `0` observes
//!   the initial state;
//! * written values are unique per key (value `0` is reserved for the
//!   initial state), so a read's `value` names exactly one writer — this is
//!   how reads-from is recovered without an explicit order in the file;
//! * session order is program order; no order between sessions is recorded.
//!   The importer fixes a deterministic serialization (see
//!   [`crate::lower`]).
//!
//! Every way a file can be malformed is a distinct [`HistoryError`]
//! variant, so callers (the CLI, tests) can assert on the failure class
//! rather than on message text.

use std::fmt;

/// Maximum number of sessions an imported history may have. Sessions become
/// engine threads; the cap keeps a malformed file from asking for thousands
/// of threads.
pub const MAX_SESSIONS: usize = 64;

/// The format tag every history file must carry.
pub const FORMAT_TAG: &str = "dc-history";

/// The schema version this build understands.
pub const SCHEMA_VERSION: u64 = 1;

/// One read or write event inside a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A read of `key` observing `value` (`0` = the initial state).
    Read {
        /// The key read.
        key: String,
        /// The value observed.
        value: u64,
    },
    /// A write of `value` to `key`.
    Write {
        /// The key written.
        key: String,
        /// The (per-key unique, nonzero) value written.
        value: u64,
    },
}

impl Event {
    /// The key this event touches.
    pub fn key(&self) -> &str {
        match self {
            Event::Read { key, .. } | Event::Write { key, .. } => key,
        }
    }

    /// The value read or written.
    pub fn value(&self) -> u64 {
        match self {
            Event::Read { value, .. } | Event::Write { value, .. } => *value,
        }
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, Event::Write { .. })
    }
}

/// One transaction: a client-chosen id plus its events in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// History-unique transaction id (dbcop's transaction identifier).
    pub id: u64,
    /// The transaction's events in program order.
    pub events: Vec<Event>,
}

/// The verdict a corpus history expects from the checkers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expected {
    /// The fixed serialization is conflict-serializable: no checker may
    /// report a violation.
    Serializable,
    /// The fixed serialization carries a conflict cycle: every checker must
    /// report at least one violation.
    Violation,
}

impl Expected {
    /// True if a violation is expected.
    pub fn violation(self) -> bool {
        matches!(self, Expected::Violation)
    }

    /// The schema's string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Expected::Serializable => "serializable",
            Expected::Violation => "violation",
        }
    }
}

/// A parsed, structurally valid transactional history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct History {
    /// Optional human-readable name.
    pub name: Option<String>,
    /// Optional anomaly annotation (free text, e.g. `"write skew"`).
    pub anomaly: Option<String>,
    /// Optional expected verdict (required for corpus entries).
    pub expected: Option<Expected>,
    /// The sessions, each a list of transactions in program order.
    pub sessions: Vec<Vec<Transaction>>,
}

impl History {
    /// Total number of transactions across all sessions.
    pub fn transaction_count(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }

    /// Total number of events across all sessions.
    pub fn event_count(&self) -> usize {
        self.sessions.iter().flatten().map(|t| t.events.len()).sum()
    }

    /// Serializes the history back to the version-1 JSON schema.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        use std::collections::BTreeMap;
        let mut doc = BTreeMap::new();
        doc.insert("format".into(), Value::from(FORMAT_TAG));
        doc.insert("version".into(), Value::from(SCHEMA_VERSION));
        if let Some(name) = &self.name {
            doc.insert("name".into(), Value::from(name));
        }
        if let Some(anomaly) = &self.anomaly {
            doc.insert("anomaly".into(), Value::from(anomaly));
        }
        if let Some(expected) = self.expected {
            doc.insert("expected".into(), Value::from(expected.as_str()));
        }
        let sessions: Vec<Value> = self
            .sessions
            .iter()
            .map(|session| {
                Value::Array(
                    session
                        .iter()
                        .map(|tx| {
                            let mut t = BTreeMap::new();
                            t.insert("id".into(), Value::from(tx.id));
                            let events: Vec<Value> = tx
                                .events
                                .iter()
                                .map(|e| {
                                    let mut ev = BTreeMap::new();
                                    ev.insert(
                                        "op".into(),
                                        Value::from(if e.is_write() { "w" } else { "r" }),
                                    );
                                    ev.insert("key".into(), Value::from(e.key()));
                                    ev.insert("value".into(), Value::from(e.value()));
                                    Value::Object(ev)
                                })
                                .collect();
                            t.insert("events".into(), Value::Array(events));
                            Value::Object(t)
                        })
                        .collect(),
                )
            })
            .collect();
        doc.insert("sessions".into(), Value::Array(sessions));
        Value::Object(doc).to_string()
    }

    /// Parses and validates a version-1 history document.
    ///
    /// # Errors
    ///
    /// Returns the [`HistoryError`] class describing the first problem
    /// found: JSON syntax, format/version mismatch, structural schema
    /// violations, or duplicate transaction ids. Value-level validation
    /// (reads-from resolution) happens in [`crate::lower::lower`], which
    /// sees generated histories too.
    pub fn parse(text: &str) -> Result<History, HistoryError> {
        let doc = serde_json::from_str(text).map_err(|e| HistoryError::Json {
            message: e.message,
            offset: e.offset,
        })?;
        let obj = doc
            .as_object()
            .ok_or_else(|| HistoryError::schema("top level must be an object"))?;
        match obj.get("format").and_then(|v| v.as_str()) {
            Some(FORMAT_TAG) => {}
            Some(other) => {
                return Err(HistoryError::schema(format!(
                    "format must be {FORMAT_TAG:?}, got {other:?}"
                )))
            }
            None => return Err(HistoryError::schema("missing string member 'format'")),
        }
        let version = obj
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| HistoryError::schema("missing integer member 'version'"))?;
        if version != SCHEMA_VERSION {
            return Err(HistoryError::UnknownVersion { found: version });
        }
        let opt_string = |key: &str| -> Result<Option<String>, HistoryError> {
            match obj.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| HistoryError::schema(format!("'{key}' must be a string"))),
            }
        };
        let expected = match obj.get("expected") {
            None => None,
            Some(v) => match v.as_str() {
                Some("serializable") => Some(Expected::Serializable),
                Some("violation") => Some(Expected::Violation),
                _ => {
                    return Err(HistoryError::schema(
                        "'expected' must be \"serializable\" or \"violation\"",
                    ))
                }
            },
        };
        let sessions_doc = obj
            .get("sessions")
            .and_then(|v| v.as_array())
            .ok_or_else(|| HistoryError::schema("missing array member 'sessions'"))?;
        if sessions_doc.len() > MAX_SESSIONS {
            return Err(HistoryError::TooManySessions {
                sessions: sessions_doc.len(),
            });
        }
        let mut sessions = Vec::with_capacity(sessions_doc.len());
        let mut seen_ids = std::collections::HashSet::new();
        for (si, session_doc) in sessions_doc.iter().enumerate() {
            let txs_doc = session_doc.as_array().ok_or_else(|| {
                HistoryError::schema(format!("session {si} must be an array of transactions"))
            })?;
            let mut session = Vec::with_capacity(txs_doc.len());
            for (ti, tx_doc) in txs_doc.iter().enumerate() {
                let at = format!("session {si}, transaction {ti}");
                let tx_obj = tx_doc
                    .as_object()
                    .ok_or_else(|| HistoryError::schema(format!("{at}: must be an object")))?;
                let id = tx_obj
                    .get("id")
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| HistoryError::schema(format!("{at}: missing integer 'id'")))?;
                if !seen_ids.insert(id) {
                    return Err(HistoryError::DuplicateTxId { id });
                }
                let events_doc = tx_obj
                    .get("events")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| HistoryError::schema(format!("{at}: missing array 'events'")))?;
                let mut events = Vec::with_capacity(events_doc.len());
                for (ei, ev_doc) in events_doc.iter().enumerate() {
                    let at = format!("{at}, event {ei}");
                    let ev_obj = ev_doc
                        .as_object()
                        .ok_or_else(|| HistoryError::schema(format!("{at}: must be an object")))?;
                    let key = match ev_obj.get("key") {
                        Some(serde_json::Value::String(s)) => s.clone(),
                        // dbcop uses integer variables; accept them as keys.
                        Some(v) => v
                            .as_u64()
                            .map(|n| n.to_string())
                            .ok_or_else(|| HistoryError::schema(format!("{at}: bad 'key'")))?,
                        None => return Err(HistoryError::schema(format!("{at}: missing 'key'"))),
                    };
                    let value = ev_obj
                        .get("value")
                        .and_then(|v| v.as_u64())
                        .ok_or_else(|| {
                            HistoryError::schema(format!("{at}: missing integer 'value'"))
                        })?;
                    let event = match ev_obj.get("op").and_then(|v| v.as_str()) {
                        Some("r") | Some("read") => Event::Read { key, value },
                        Some("w") | Some("write") => Event::Write { key, value },
                        _ => {
                            return Err(HistoryError::schema(format!(
                                "{at}: 'op' must be \"r\" or \"w\""
                            )))
                        }
                    };
                    events.push(event);
                }
                session.push(Transaction { id, events });
            }
            sessions.push(session);
        }
        Ok(History {
            name: opt_string("name")?,
            anomaly: opt_string("anomaly")?,
            expected,
            sessions,
        })
    }
}

/// Everything that can be wrong with a history file or its semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryError {
    /// The document is not valid JSON (includes truncated files).
    Json {
        /// Parser message.
        message: String,
        /// Byte offset of the failure.
        offset: usize,
    },
    /// The document is JSON but violates the schema (wrong format tag,
    /// missing or mistyped members).
    Schema(String),
    /// The file declares a schema version this build does not understand.
    UnknownVersion {
        /// The declared version.
        found: u64,
    },
    /// Two transactions share an id.
    DuplicateTxId {
        /// The repeated id.
        id: u64,
    },
    /// More sessions than [`MAX_SESSIONS`].
    TooManySessions {
        /// Declared session count.
        sessions: usize,
    },
    /// The history has no events at all.
    EmptyHistory,
    /// A write repeats a value on the same key (or writes the reserved
    /// initial value `0`), breaking reads-from recovery.
    DuplicateWriteValue {
        /// The key written.
        key: String,
        /// The repeated (or reserved) value.
        value: u64,
    },
    /// A read observes a nonzero value no write produced — including any
    /// nonzero read of a key that is never written.
    ReadOfUnwritten {
        /// The key read.
        key: String,
        /// The unexplainable value.
        value: u64,
    },
    /// No serialization of the events can explain every read (the greedy
    /// serializer wedged; see DESIGN.md "History import").
    Unrealizable {
        /// How many events were serialized before wedging.
        placed: usize,
        /// Total events.
        total: usize,
    },
}

impl HistoryError {
    fn schema(msg: impl Into<String>) -> Self {
        HistoryError::Schema(msg.into())
    }
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Json { message, offset } => {
                write!(f, "invalid JSON at byte {offset}: {message}")
            }
            HistoryError::Schema(msg) => write!(f, "schema violation: {msg}"),
            HistoryError::UnknownVersion { found } => write!(
                f,
                "unknown schema version {found} (this build reads version {SCHEMA_VERSION})"
            ),
            HistoryError::DuplicateTxId { id } => write!(f, "duplicate transaction id {id}"),
            HistoryError::TooManySessions { sessions } => {
                write!(f, "{sessions} sessions exceeds the limit of {MAX_SESSIONS}")
            }
            HistoryError::EmptyHistory => write!(f, "history contains no events"),
            HistoryError::DuplicateWriteValue { key, value } => {
                write!(
                    f,
                    "write of non-unique value {value} to key {key:?} (0 is reserved for the initial state)"
                )
            }
            HistoryError::ReadOfUnwritten { key, value } => {
                write!(f, "read of never-written value {value} on key {key:?}")
            }
            HistoryError::Unrealizable { placed, total } => write!(
                f,
                "no serialization explains every read (wedged after {placed} of {total} events)"
            ),
        }
    }
}

impl std::error::Error for HistoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lost_update_json() -> String {
        r#"{
          "format": "dc-history",
          "version": 1,
          "name": "lost-update",
          "expected": "violation",
          "sessions": [
            [ {"id": 1, "events": [{"op": "r", "key": "x", "value": 0},
                                   {"op": "w", "key": "x", "value": 1}]} ],
            [ {"id": 2, "events": [{"op": "r", "key": "x", "value": 0},
                                   {"op": "w", "key": "x", "value": 2}]} ]
          ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_a_well_formed_history() {
        let h = History::parse(&lost_update_json()).unwrap();
        assert_eq!(h.name.as_deref(), Some("lost-update"));
        assert_eq!(h.expected, Some(Expected::Violation));
        assert_eq!(h.sessions.len(), 2);
        assert_eq!(h.transaction_count(), 2);
        assert_eq!(h.event_count(), 4);
        assert_eq!(h.sessions[0][0].id, 1);
        assert_eq!(
            h.sessions[1][0].events[1],
            Event::Write {
                key: "x".into(),
                value: 2
            }
        );
    }

    #[test]
    fn json_round_trips_through_to_json() {
        let h = History::parse(&lost_update_json()).unwrap();
        let back = History::parse(&h.to_json()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn truncated_json_is_a_json_error() {
        let text = lost_update_json();
        let truncated = &text[..text.len() / 2];
        assert!(matches!(
            History::parse(truncated),
            Err(HistoryError::Json { .. })
        ));
    }

    #[test]
    fn unknown_version_is_its_own_class() {
        let text = lost_update_json().replace("\"version\": 1", "\"version\": 99");
        assert_eq!(
            History::parse(&text),
            Err(HistoryError::UnknownVersion { found: 99 })
        );
    }

    #[test]
    fn duplicate_transaction_id_is_its_own_class() {
        let text = lost_update_json().replace("\"id\": 2", "\"id\": 1");
        assert_eq!(
            History::parse(&text),
            Err(HistoryError::DuplicateTxId { id: 1 })
        );
    }

    #[test]
    fn wrong_format_tag_and_missing_members_are_schema_errors() {
        for text in [
            lost_update_json().replace("dc-history", "elle-history"),
            lost_update_json().replace("\"format\": \"dc-history\",", ""),
            lost_update_json().replace("\"version\": 1,", ""),
            lost_update_json().replace("\"op\": \"r\"", "\"op\": \"cas\""),
            lost_update_json().replace("\"expected\": \"violation\"", "\"expected\": \"maybe\""),
            "[1,2,3]".to_string(),
        ] {
            assert!(
                matches!(History::parse(&text), Err(HistoryError::Schema(_))),
                "expected schema error for: {text}"
            );
        }
    }

    #[test]
    fn too_many_sessions_is_rejected() {
        let one = r#"[{"id": ID, "events": [{"op": "w", "key": "x", "value": ID}]}]"#;
        let sessions: Vec<String> = (1..=(MAX_SESSIONS as u64 + 1))
            .map(|i| one.replace("ID", &i.to_string()))
            .collect();
        let text = format!(
            r#"{{"format": "dc-history", "version": 1, "sessions": [{}]}}"#,
            sessions.join(",")
        );
        assert_eq!(
            History::parse(&text),
            Err(HistoryError::TooManySessions {
                sessions: MAX_SESSIONS + 1
            })
        );
    }

    #[test]
    fn integer_keys_are_accepted_like_dbcop() {
        let text = r#"{
          "format": "dc-history",
          "version": 1,
          "sessions": [[ {"id": 1, "events": [{"op": "w", "key": 7, "value": 1}]} ]]
        }"#;
        let h = History::parse(text).unwrap();
        assert_eq!(h.sessions[0][0].events[0].key(), "7");
    }

    #[test]
    fn error_display_is_informative() {
        let shown = format!(
            "{}",
            HistoryError::ReadOfUnwritten {
                key: "x".into(),
                value: 9
            }
        );
        assert!(shown.contains("never-written"), "{shown}");
        assert!(format!("{}", HistoryError::UnknownVersion { found: 3 }).contains("version 3"),);
    }
}
