//! Seeded randomized history generator with injectable anomalies.
//!
//! This is the second proptest frontier beside the workload-IR
//! `ProgramStrategy`: instead of random programs under random schedules, it
//! produces random *database histories* whose expected verdict is known by
//! construction, in the spirit of Elle's anomaly taxonomy.
//!
//! # Construction
//!
//! The base is a simulated **serial** execution: transactions run one after
//! another, reads observe the current value, writes take globally unique
//! values, and each transaction is appended to a randomly chosen session —
//! so session order is a subsequence of the serial order. Every base
//! transaction is bracketed by a read-then-write of a dedicated timestamp
//! key `ts`, chaining transaction *i*'s first event after transaction
//! *i−1*'s last: the greedy serializer in [`crate::lower`] is thereby
//! forced to replay the base exactly serially (a transaction's opening
//! `ts` read only enables once its predecessor's closing `ts` write has
//! installed), which makes the serializable control sound by construction
//! rather than by hope. Without the chain, a blind write whose value is
//! never read may legally install out of serial order and manufacture a
//! conflict cycle the original history never had.
//!
//! In an anomaly mode, two extra transactions are appended to two distinct
//! sessions *without* timestamp bracketing, reading end-of-base values so
//! that the only realizable interleaving carries the classic cycle:
//!
//! * **lost update** — both read `k0`'s final value, both write it;
//! * **write skew** — both read `k0` and `k1`, one writes `k0`, the other
//!   writes `k1`;
//! * **fractured read** — one writes `k0` then `k1`; the other reads the
//!   new `k0` but the old `k1`.
//!
//! The base precedes both injected transactions in every conflict, so the
//! cycle — and therefore the blame — is confined to the injected pair.

use crate::schema::{Event, Expected, History, Transaction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// What, if anything, to inject on top of the serializable base.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnomalyMode {
    /// No injection: the history is serializable by construction.
    Serializable,
    /// Two transactions read-modify-write the same key from the same
    /// starting value.
    LostUpdate,
    /// Two transactions read the same two keys and write disjoint ones.
    WriteSkew,
    /// A reader observes half of another transaction's write pair.
    FracturedRead,
}

impl AnomalyMode {
    /// All modes, for exhaustive sweeps.
    pub const ALL: [AnomalyMode; 4] = [
        AnomalyMode::Serializable,
        AnomalyMode::LostUpdate,
        AnomalyMode::WriteSkew,
        AnomalyMode::FracturedRead,
    ];

    /// The verdict every checker must reach on a history generated in this
    /// mode.
    pub fn expected(self) -> Expected {
        match self {
            AnomalyMode::Serializable => Expected::Serializable,
            _ => Expected::Violation,
        }
    }

    /// Stable name used in the `.case` codec and generated history names.
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyMode::Serializable => "serializable",
            AnomalyMode::LostUpdate => "lost-update",
            AnomalyMode::WriteSkew => "write-skew",
            AnomalyMode::FracturedRead => "fractured-read",
        }
    }

    /// Parses [`Self::as_str`] back.
    pub fn from_str_opt(s: &str) -> Option<AnomalyMode> {
        AnomalyMode::ALL.into_iter().find(|m| m.as_str() == s)
    }
}

/// Generator parameters. All sizes are clamped to sane minima so any
/// shrunk/fuzzed parameter set still generates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenHistoryParams {
    /// RNG seed; equal params generate equal histories.
    pub seed: u64,
    /// Number of sessions (clamped to ≥ 2, ≤ [`crate::schema::MAX_SESSIONS`]).
    pub sessions: usize,
    /// Number of base (serializable) transactions (clamped to ≥ 1).
    pub base_txs: usize,
    /// Data operations per base transaction (clamped to ≥ 1).
    pub ops_per_tx: usize,
    /// Number of data keys (clamped to ≥ 2; `ts` is extra).
    pub keys: usize,
    /// Injection mode.
    pub mode: AnomalyMode,
}

/// A generated history plus the location of the injected transactions.
#[derive(Clone, Debug)]
pub struct GeneratedHistory {
    /// The history; `expected` and `anomaly` are pre-filled from the mode.
    pub history: History,
    /// `(session, transaction index)` of each injected transaction (empty
    /// in [`AnomalyMode::Serializable`]).
    pub injected: Vec<(usize, usize)>,
}

/// Generates a history from `params`, deterministically.
pub fn generate(params: &GenHistoryParams) -> GeneratedHistory {
    let sessions = params.sessions.clamp(2, crate::schema::MAX_SESSIONS);
    let keys = params.keys.max(2);
    let ops_per_tx = params.ops_per_tx.max(1);
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut history = History {
        name: Some(format!("gen-{}-{}", params.mode.as_str(), params.seed)),
        anomaly: match params.mode {
            AnomalyMode::Serializable => None,
            mode => Some(mode.as_str().to_string()),
        },
        expected: Some(params.mode.expected()),
        sessions: vec![Vec::new(); sessions],
    };
    let mut current: HashMap<usize, u64> = HashMap::new();
    let mut next_value = 1u64;
    let mut fresh = move || {
        let v = next_value;
        next_value += 1;
        v
    };
    let mut next_id = 1u64;
    let mut ts_value = 0u64;
    let key_name = |k: usize| format!("k{k}");

    let mut last_session = 0;
    for _ in 0..params.base_txs.max(1) {
        let session = rng.gen_range(0..sessions);
        last_session = session;
        let mut events = vec![Event::Read {
            key: "ts".into(),
            value: ts_value,
        }];
        for _ in 0..ops_per_tx {
            let k = rng.gen_range(0..keys);
            if rng.gen_bool(0.5) {
                events.push(Event::Read {
                    key: key_name(k),
                    value: current.get(&k).copied().unwrap_or(0),
                });
            } else {
                let v = fresh();
                current.insert(k, v);
                events.push(Event::Write {
                    key: key_name(k),
                    value: v,
                });
            }
        }
        ts_value = fresh();
        events.push(Event::Write {
            key: "ts".into(),
            value: ts_value,
        });
        history.sessions[session].push(Transaction {
            id: next_id,
            events,
        });
        next_id += 1;
    }

    let mut injected = Vec::new();
    if params.mode != AnomalyMode::Serializable {
        // The injected transactions in the read-first anomalies are gated
        // behind the base by their opening reads of end-of-base values. The
        // fractured-read *writer* opens with a write, which nothing gates —
        // put it in the session of the globally last base transaction so
        // program order (via the ts chain) keeps it after the whole base.
        let sa = match params.mode {
            AnomalyMode::FracturedRead => last_session,
            _ => rng.gen_range(0..sessions),
        };
        let sb = (sa + 1 + rng.gen_range(0..sessions - 1)) % sessions;
        let v0 = current.get(&0).copied().unwrap_or(0);
        let v1 = current.get(&1).copied().unwrap_or(0);
        let (k0, k1) = (key_name(0), key_name(1));
        let (a_events, b_events) = match params.mode {
            AnomalyMode::LostUpdate => (
                vec![
                    Event::Read {
                        key: k0.clone(),
                        value: v0,
                    },
                    Event::Write {
                        key: k0.clone(),
                        value: fresh(),
                    },
                ],
                vec![
                    Event::Read {
                        key: k0.clone(),
                        value: v0,
                    },
                    Event::Write {
                        key: k0,
                        value: fresh(),
                    },
                ],
            ),
            AnomalyMode::WriteSkew => (
                vec![
                    Event::Read {
                        key: k0.clone(),
                        value: v0,
                    },
                    Event::Read {
                        key: k1.clone(),
                        value: v1,
                    },
                    Event::Write {
                        key: k0.clone(),
                        value: fresh(),
                    },
                ],
                vec![
                    Event::Read { key: k0, value: v0 },
                    Event::Read {
                        key: k1.clone(),
                        value: v1,
                    },
                    Event::Write {
                        key: k1,
                        value: fresh(),
                    },
                ],
            ),
            AnomalyMode::FracturedRead => {
                let f0 = fresh();
                (
                    vec![
                        Event::Write {
                            key: k0.clone(),
                            value: f0,
                        },
                        Event::Write {
                            key: k1.clone(),
                            value: fresh(),
                        },
                    ],
                    vec![
                        Event::Read { key: k0, value: f0 },
                        Event::Read { key: k1, value: v1 },
                    ],
                )
            }
            AnomalyMode::Serializable => unreachable!(),
        };
        for (session, events) in [(sa, a_events), (sb, b_events)] {
            injected.push((session, history.sessions[session].len()));
            history.sessions[session].push(Transaction {
                id: next_id,
                events,
            });
            next_id += 1;
        }
    }
    GeneratedHistory { history, injected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use dc_core::{run_single, ExecPlan};
    use dc_runtime::ids::MethodId;

    fn params(seed: u64, mode: AnomalyMode) -> GenHistoryParams {
        GenHistoryParams {
            seed,
            sessions: 2 + (seed as usize % 3),
            base_txs: (seed as usize * 7) % 12,
            ops_per_tx: 1 + (seed as usize % 4),
            keys: 2 + (seed as usize % 3),
            mode,
        }
    }

    /// Runs the generated history end to end; returns the union of cycle
    /// methods DoubleChecker reported and the injected methods.
    fn run(p: &GenHistoryParams) -> (Vec<MethodId>, Vec<MethodId>) {
        let generated = generate(p);
        let lowered = lower(&generated.history).unwrap_or_else(|e| panic!("{p:?} must lower: {e}"));
        let report = run_single(
            &lowered.program,
            &lowered.spec,
            &ExecPlan::Det(lowered.schedule.clone()),
        )
        .expect("replay runs");
        let mut cycle_methods: Vec<MethodId> = report
            .violations
            .iter()
            .flat_map(|v| v.cycle.iter().filter_map(|m| m.kind.method()))
            .collect();
        cycle_methods.sort();
        cycle_methods.dedup();
        let injected = generated
            .injected
            .iter()
            .map(|&(s, t)| lowered.tx_methods[s][t])
            .collect();
        (cycle_methods, injected)
    }

    #[test]
    fn serializable_mode_is_clean_across_seeds() {
        for seed in 0..120 {
            let (cycle, injected) = run(&params(seed, AnomalyMode::Serializable));
            assert!(injected.is_empty());
            assert!(cycle.is_empty(), "seed {seed} produced {cycle:?}");
        }
    }

    #[test]
    fn injected_anomalies_are_violations_covering_the_injected_txs() {
        for mode in [
            AnomalyMode::LostUpdate,
            AnomalyMode::WriteSkew,
            AnomalyMode::FracturedRead,
        ] {
            for seed in 0..60 {
                let (cycle, injected) = run(&params(seed, mode));
                assert_eq!(injected.len(), 2);
                for m in &injected {
                    assert!(
                        cycle.contains(m),
                        "{mode:?} seed {seed}: cycle {cycle:?} misses injected {m:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = params(42, AnomalyMode::WriteSkew);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.history, b.history);
        assert_eq!(a.injected, b.injected);
    }

    #[test]
    fn generated_histories_round_trip_through_json() {
        for mode in AnomalyMode::ALL {
            let generated = generate(&params(7, mode));
            let reparsed = crate::schema::History::parse(&generated.history.to_json()).unwrap();
            assert_eq!(generated.history, reparsed);
        }
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in AnomalyMode::ALL {
            assert_eq!(AnomalyMode::from_str_opt(mode.as_str()), Some(mode));
        }
        assert_eq!(AnomalyMode::from_str_opt("bogus"), None);
    }

    #[test]
    fn injected_sessions_are_distinct() {
        for seed in 0..40 {
            let generated = generate(&params(seed, AnomalyMode::LostUpdate));
            let [(sa, _), (sb, _)] = generated.injected[..] else {
                panic!("two injected txs");
            };
            assert_ne!(sa, sb);
        }
    }
}
