//! External transactional-history import (ROADMAP item 2).
//!
//! Everything the checkers otherwise see is generated from our own workload
//! IR; this crate brings in scenarios whose expected verdict is independent
//! of this repo: dbcop/Elle-style database histories with known anomalies.
//! It has three parts:
//!
//! * [`schema`] — the versioned JSON history format (sessions of
//!   transactions of read/write events over keys) and its validation, with
//!   one [`HistoryError`] class per way a file can be malformed;
//! * [`lower`] — deterministic lowering onto [`dc_runtime::program`]: one
//!   thread per session, one atomic method per transaction, one heap object
//!   per key, and a scripted schedule realizing a greedy serialization that
//!   explains every read — so a history flows through the unmodified engine
//!   into every checker;
//! * [`gen`] — a seeded random history generator with injectable anomalies
//!   (lost update, write skew, fractured read, plus a serializable
//!   control), the second proptest frontier.
//!
//! See DESIGN.md "History import" for the lowering rules and what a
//! DoubleChecker violation means for a database history.

pub mod gen;
pub mod lower;
pub mod schema;

pub use gen::{generate, AnomalyMode, GenHistoryParams, GeneratedHistory};
pub use lower::{lower, Lowered};
pub use schema::{Event, Expected, History, HistoryError, Transaction};

/// Parses and lowers a history document in one step — the CLI entry point.
///
/// # Errors
///
/// Any [`HistoryError`] from parsing or lowering.
pub fn import(text: &str) -> Result<(History, Lowered), HistoryError> {
    let history = History::parse(text)?;
    let lowered = lower(&history)?;
    Ok((history, lowered))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_parses_and_lowers() {
        let text = r#"{
          "format": "dc-history",
          "version": 1,
          "sessions": [
            [ {"id": 1, "events": [{"op": "w", "key": "x", "value": 1}]} ],
            [ {"id": 2, "events": [{"op": "r", "key": "x", "value": 1}]} ]
          ]
        }"#;
        let (history, lowered) = import(text).unwrap();
        assert_eq!(history.transaction_count(), 2);
        assert_eq!(lowered.program.threads.len(), 2);
    }

    #[test]
    fn import_propagates_both_error_layers() {
        assert!(matches!(import("{"), Err(HistoryError::Json { .. })));
        let unrealizable = r#"{
          "format": "dc-history",
          "version": 1,
          "sessions": [
            [ {"id": 1, "events": [{"op": "w", "key": "x", "value": 1},
                                   {"op": "r", "key": "x", "value": 0}]} ]
          ]
        }"#;
        assert!(matches!(
            import(unrealizable),
            Err(HistoryError::Unrealizable { .. })
        ));
    }
}
