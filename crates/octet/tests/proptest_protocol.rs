//! Property-based tests of the Octet protocol: for arbitrary access
//! sequences, the state machine's invariants hold.

use dc_octet::{BarrierOutcome, CoordinationMode, DecodedState, NullSink, OctetState, Protocol};
use dc_runtime::ids::{AccessKind, ObjId, ThreadId};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Access {
    thread: u16,
    obj: u32,
    write: bool,
}

fn accesses() -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec(
        (0u16..4, 0u32..3, any::<bool>()).prop_map(|(thread, obj, write)| Access {
            thread,
            obj,
            write,
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any access, the object's state licenses that access: a writer
    /// holds WrEx; a reader holds WrEx, RdEx, or RdSh with an up-to-date
    /// thread counter.
    #[test]
    fn post_state_licenses_the_access(seq in accesses()) {
        let octet = Protocol::new(3, 4, CoordinationMode::Immediate, NullSink);
        for i in 0..4 {
            octet.thread_begin(ThreadId(i));
        }
        for a in &seq {
            let t = ThreadId(a.thread);
            let obj = ObjId(a.obj);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            octet.access(t, obj, kind);
            match octet.state_of(obj) {
                DecodedState::Stable(OctetState::WrEx(owner)) => {
                    prop_assert_eq!(owner, t, "writer/last accessor owns WrEx");
                }
                DecodedState::Stable(OctetState::RdEx(owner)) => {
                    prop_assert!(!a.write, "a write never leaves RdEx");
                    prop_assert_eq!(owner, t);
                }
                DecodedState::Stable(OctetState::RdSh(c)) => {
                    prop_assert!(!a.write, "a write never leaves RdSh");
                    prop_assert!(
                        octet.rd_sh_cnt(t) >= c,
                        "reader's counter is up to date after its read"
                    );
                }
                other => prop_assert!(false, "unexpected state {other:?}"),
            }
        }
    }

    /// The same thread immediately repeating its access always takes the
    /// fence-free fast path.
    #[test]
    fn repeat_access_is_fast_path(seq in accesses()) {
        let octet = Protocol::new(3, 4, CoordinationMode::Immediate, NullSink);
        for i in 0..4 {
            octet.thread_begin(ThreadId(i));
        }
        for a in &seq {
            let t = ThreadId(a.thread);
            let obj = ObjId(a.obj);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            octet.access(t, obj, kind);
            prop_assert_eq!(octet.access(t, obj, kind), BarrierOutcome::Same);
        }
    }

    /// The global read-shared counter never decreases and each thread's view
    /// never exceeds it.
    #[test]
    fn counters_are_monotonic(seq in accesses()) {
        let octet = Protocol::new(3, 4, CoordinationMode::Immediate, NullSink);
        for i in 0..4 {
            octet.thread_begin(ThreadId(i));
        }
        let mut last_global = 0;
        for a in &seq {
            let t = ThreadId(a.thread);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            octet.access(t, ObjId(a.obj), kind);
            let g = octet.g_rd_sh_cnt();
            prop_assert!(g >= last_global);
            last_global = g;
            for i in 0..4u16 {
                prop_assert!(octet.rd_sh_cnt(ThreadId(i)) <= g);
            }
        }
    }

    /// Threaded mode reaches the same final object states as immediate mode
    /// when each thread's accesses are replayed in the same global order
    /// (single driver thread, so coordination exercises the status-word
    /// paths without nondeterminism).
    #[test]
    fn threaded_single_driver_matches_immediate(seq in accesses()) {
        let immediate = Protocol::new(3, 4, CoordinationMode::Immediate, NullSink);
        let threaded = Protocol::new(3, 4, CoordinationMode::Threaded, NullSink);
        for i in 0..4 {
            immediate.thread_begin(ThreadId(i));
        }
        // In threaded mode, threads not currently "running" are blocked, so
        // the driver coordinates with them implicitly.
        for a in &seq {
            let t = ThreadId(a.thread);
            let kind = if a.write { AccessKind::Write } else { AccessKind::Read };
            immediate.access(t, ObjId(a.obj), kind);
            threaded.after_unblock(t);
            threaded.access(t, ObjId(a.obj), kind);
            threaded.before_block(t);
        }
        for obj in 0..3 {
            let a = immediate.state_of(ObjId(obj));
            let b = threaded.state_of(ObjId(obj));
            // RdSh counters may differ (different interleaving of counter
            // bumps); compare the state *shape* and owner.
            let same = match (a, b) {
                (
                    DecodedState::Stable(OctetState::RdSh(_)),
                    DecodedState::Stable(OctetState::RdSh(_)),
                ) => true,
                (x, y) => x == y,
            };
            prop_assert!(same, "object {obj}: {a:?} vs {b:?}");
        }
    }
}
