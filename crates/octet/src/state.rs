//! The Octet state machine (paper Table 1).
//!
//! Each object has a *locality state*: write-exclusive for a thread
//! (`WrEx T`), read-exclusive (`RdEx T`), or read-shared with a global
//! counter (`RdSh c`). An access either keeps the state (*same state* — the
//! fence-free fast path), upgrades it without coordination (*upgrading* and
//! *fence* transitions), or conflicts (*conflicting* transitions requiring
//! the coordination protocol).
//!
//! This module is the pure, side-effect-free classification used by the
//! protocol engine and exhaustively checked by the Table-1 tests.

use dc_runtime::ids::{AccessKind, ThreadId};

/// An Octet locality state (intermediate states live in the protocol's
/// packed word, not here).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OctetState {
    /// Never accessed; the first access claims exclusivity without any
    /// dependence (models allocation by the accessing thread).
    Free,
    /// Write-exclusive for a thread: the thread may read and write.
    WrEx(ThreadId),
    /// Read-exclusive for a thread: the thread may read.
    RdEx(ThreadId),
    /// Read-shared, stamped with the global read-shared counter value
    /// assigned when the object became read-shared.
    RdSh(u32),
}

/// Classification of one access against the current state (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionKind {
    /// Fast path: no state change, no dependence.
    Same,
    /// First access to a [`OctetState::Free`] object: claim `WrEx`/`RdEx`
    /// without a dependence.
    FirstTouch {
        /// The state the object moves to.
        new: OctetState,
    },
    /// `RdEx T → WrEx T` by the owner: atomic upgrade, no coordination, no
    /// new dependence (paper: ICD safely ignores these).
    UpgradeToWrEx,
    /// `RdEx T1 → RdSh c` by a reader `T2 ≠ T1`: atomic upgrade stamped with
    /// a fresh global counter value; a possible dependence.
    UpgradeToRdSh {
        /// The previous read-exclusive owner.
        prev_owner: ThreadId,
    },
    /// Read of a `RdSh c` object by a thread whose local counter is behind
    /// `c`: memory fence plus counter update; a possible dependence.
    Fence {
        /// The object's read-shared counter.
        counter: u32,
    },
    /// Conflicting access: coordination protocol required; a possible
    /// dependence from every responding thread.
    Conflicting {
        /// The state the object moves to after coordination.
        new: OctetState,
        /// Which threads must be coordinated with.
        responders: Responders,
    },
}

/// Who must respond to a conflicting transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Responders {
    /// A single previous-owner thread.
    One(ThreadId),
    /// All other threads (`RdSh → WrEx`: the readers are unknown).
    AllOthers,
}

/// Classifies the access `(kind, by t)` against `state` per Table 1.
///
/// `local_rdsh_counter` is `t.rdShCnt`, the thread's view of the global
/// read-shared counter; `NEW_RDSH_COUNTER` placement (for upgrades) is the
/// protocol engine's job, so upgrades carry only the previous owner here.
pub fn classify(
    state: OctetState,
    kind: AccessKind,
    t: ThreadId,
    local_rdsh_counter: u32,
) -> TransitionKind {
    use AccessKind::{Read, Write};
    match (state, kind) {
        // First access claims the object without a dependence.
        (OctetState::Free, Read) => TransitionKind::FirstTouch {
            new: OctetState::RdEx(t),
        },
        (OctetState::Free, Write) => TransitionKind::FirstTouch {
            new: OctetState::WrEx(t),
        },

        // Same-state fast paths.
        (OctetState::WrEx(owner), _) if owner == t => TransitionKind::Same,
        (OctetState::RdEx(owner), Read) if owner == t => TransitionKind::Same,
        (OctetState::RdSh(c), Read) if local_rdsh_counter >= c => TransitionKind::Same,

        // Upgrading transitions (no coordination).
        (OctetState::RdEx(owner), Write) if owner == t => TransitionKind::UpgradeToWrEx,
        (OctetState::RdEx(owner), Read) => TransitionKind::UpgradeToRdSh { prev_owner: owner },

        // Fence transition.
        (OctetState::RdSh(c), Read) => TransitionKind::Fence { counter: c },

        // Conflicting transitions.
        (OctetState::WrEx(owner), Write) => TransitionKind::Conflicting {
            new: OctetState::WrEx(t),
            responders: Responders::One(owner),
        },
        (OctetState::WrEx(owner), Read) => TransitionKind::Conflicting {
            new: OctetState::RdEx(t),
            responders: Responders::One(owner),
        },
        (OctetState::RdEx(owner), Write) => TransitionKind::Conflicting {
            new: OctetState::WrEx(t),
            responders: Responders::One(owner),
        },
        (OctetState::RdSh(_), Write) => TransitionKind::Conflicting {
            new: OctetState::WrEx(t),
            responders: Responders::AllOthers,
        },
    }
}

/// True if the transition indicates a *possible* cross-thread dependence
/// (Table 1's "Cross-thread dependence?" column).
pub fn possibly_dependent(kind: TransitionKind) -> bool {
    matches!(
        kind,
        TransitionKind::UpgradeToRdSh { .. }
            | TransitionKind::Fence { .. }
            | TransitionKind::Conflicting { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn table1_same_state_rows() {
        // WrExT: R or W by T → Same, no dependence.
        assert_eq!(
            classify(OctetState::WrEx(T1), AccessKind::Read, T1, 0),
            TransitionKind::Same
        );
        assert_eq!(
            classify(OctetState::WrEx(T1), AccessKind::Write, T1, 0),
            TransitionKind::Same
        );
        // RdExT: R by T → Same.
        assert_eq!(
            classify(OctetState::RdEx(T1), AccessKind::Read, T1, 0),
            TransitionKind::Same
        );
        // RdShc: R by T with T.rdShCnt >= c → Same.
        assert_eq!(
            classify(OctetState::RdSh(5), AccessKind::Read, T1, 5),
            TransitionKind::Same
        );
        assert_eq!(
            classify(OctetState::RdSh(5), AccessKind::Read, T1, 9),
            TransitionKind::Same
        );
    }

    #[test]
    fn table1_upgrading_rows() {
        // RdExT: W by T → WrExT, no dependence.
        assert_eq!(
            classify(OctetState::RdEx(T1), AccessKind::Write, T1, 0),
            TransitionKind::UpgradeToWrEx
        );
        // RdExT1: R by T2 → RdSh, possibly dependent.
        let k = classify(OctetState::RdEx(T1), AccessKind::Read, T2, 0);
        assert_eq!(k, TransitionKind::UpgradeToRdSh { prev_owner: T1 });
        assert!(possibly_dependent(k));
        assert!(!possibly_dependent(TransitionKind::UpgradeToWrEx));
    }

    #[test]
    fn table1_fence_row() {
        // RdShc: R by T with T.rdShCnt < c → fence, possibly dependent.
        let k = classify(OctetState::RdSh(7), AccessKind::Read, T1, 6);
        assert_eq!(k, TransitionKind::Fence { counter: 7 });
        assert!(possibly_dependent(k));
    }

    #[test]
    fn table1_conflicting_rows() {
        let cases = [
            (
                OctetState::WrEx(T1),
                AccessKind::Write,
                OctetState::WrEx(T2),
            ),
            (OctetState::WrEx(T1), AccessKind::Read, OctetState::RdEx(T2)),
            (
                OctetState::RdEx(T1),
                AccessKind::Write,
                OctetState::WrEx(T2),
            ),
        ];
        for (old, kind, new) in cases {
            let k = classify(old, kind, T2, 0);
            assert_eq!(
                k,
                TransitionKind::Conflicting {
                    new,
                    responders: Responders::One(T1)
                },
                "case {old:?} {kind:?}"
            );
            assert!(possibly_dependent(k));
        }
        // RdShc: W by T → WrExT, all other threads respond.
        assert_eq!(
            classify(OctetState::RdSh(3), AccessKind::Write, T2, 99),
            TransitionKind::Conflicting {
                new: OctetState::WrEx(T2),
                responders: Responders::AllOthers
            }
        );
    }

    #[test]
    fn first_touch_claims_exclusivity_without_dependence() {
        let r = classify(OctetState::Free, AccessKind::Read, T1, 0);
        assert_eq!(
            r,
            TransitionKind::FirstTouch {
                new: OctetState::RdEx(T1)
            }
        );
        assert!(!possibly_dependent(r));
        let w = classify(OctetState::Free, AccessKind::Write, T2, 0);
        assert_eq!(
            w,
            TransitionKind::FirstTouch {
                new: OctetState::WrEx(T2)
            }
        );
    }

    /// Exhaustive sanity: every (state, access, same/other thread)
    /// combination classifies without panicking, and same-state outcomes
    /// never report a dependence.
    #[test]
    fn exhaustive_classification_is_total() {
        let states = [
            OctetState::Free,
            OctetState::WrEx(T1),
            OctetState::RdEx(T1),
            OctetState::RdSh(4),
        ];
        for state in states {
            for kind in [AccessKind::Read, AccessKind::Write] {
                for t in [T1, T2] {
                    for cnt in [0, 4, 9] {
                        let k = classify(state, kind, t, cnt);
                        if k == TransitionKind::Same {
                            assert!(!possibly_dependent(k));
                        }
                    }
                }
            }
        }
    }
}
