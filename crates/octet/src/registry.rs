//! Per-thread coordination state: status words, request mailboxes, and the
//! thread-local view of the global read-shared counter.
//!
//! A thread's *status word* makes the explicit/implicit protocol choice
//! possible (paper §3.2.1): requesters send mailbox requests to `Running`
//! threads (the responder answers at its next safe point) and place a *hold*
//! on `Blocked` threads (the requester runs the hook itself; the hold keeps
//! the responder from unblocking mid-hook).

use dc_runtime::ids::ThreadId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Thread is executing code normally; coordinate explicitly.
pub const RUNNING: u32 = 0;
/// Thread is blocked (or not yet started / finished); coordinate implicitly.
pub const BLOCKED: u32 = 1;
/// Thread is blocked and a requester currently holds it.
pub const BLOCKED_HELD: u32 = 2;

/// Lifecycle of one explicit-protocol request.
pub const REQ_PENDING: u32 = 0;
/// Responder ran the hook and answered.
pub const REQ_RESPONDED: u32 = 1;
/// Requester abandoned the request (responder blocked); it must be skipped.
pub const REQ_CANCELLED: u32 = 2;

/// An explicit-protocol request parked in a responder's mailbox.
#[derive(Debug)]
pub struct Request {
    /// The thread asking for the state change.
    pub requester: ThreadId,
    /// One of [`REQ_PENDING`], [`REQ_RESPONDED`], [`REQ_CANCELLED`].
    pub flag: Arc<AtomicU32>,
}

#[repr(align(128))]
struct ThreadSlot {
    status: AtomicU32,
    has_requests: AtomicBool,
    mailbox: Mutex<Vec<Request>>,
    /// `T.rdShCnt` — the thread's view of the global read-shared counter.
    rd_sh_cnt: AtomicU32,
}

impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot {
            // Threads are "blocked" until thread_begin: not-yet-started
            // threads are coordinated with implicitly.
            status: AtomicU32::new(BLOCKED),
            has_requests: AtomicBool::new(false),
            mailbox: Mutex::new(Vec::new()),
            rd_sh_cnt: AtomicU32::new(0),
        }
    }
}

/// Dense per-thread coordination slots.
pub struct ThreadRegistry {
    slots: Box<[ThreadSlot]>,
}

impl ThreadRegistry {
    /// Creates a registry for `n` threads, all initially blocked.
    pub fn new(n: usize) -> Self {
        ThreadRegistry {
            slots: (0..n).map(|_| ThreadSlot::new()).collect(),
        }
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current status word of `t`.
    #[inline]
    pub fn status(&self, t: ThreadId) -> u32 {
        self.slots[t.index()].status.load(Ordering::Acquire)
    }

    /// Marks `t` running (thread start / unblock). Spins past any holds.
    pub fn set_running(&self, t: ThreadId) {
        let slot = &self.slots[t.index()];
        loop {
            match slot.status.compare_exchange(
                BLOCKED,
                RUNNING,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(BLOCKED_HELD) => std::thread::yield_now(),
                Err(RUNNING) => return,
                Err(other) => unreachable!("corrupt status word {other}"),
            }
        }
    }

    /// Marks `t` blocked (before parking, or thread exit).
    pub fn set_blocked(&self, t: ThreadId) {
        self.slots[t.index()]
            .status
            .store(BLOCKED, Ordering::Release);
    }

    /// Tries to place a hold on a blocked `t`. On success the caller may run
    /// coordination hooks against `t` and must call [`Self::release_hold`].
    pub fn try_hold(&self, t: ThreadId) -> bool {
        self.slots[t.index()]
            .status
            .compare_exchange(BLOCKED, BLOCKED_HELD, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Releases a hold placed by [`Self::try_hold`].
    pub fn release_hold(&self, t: ThreadId) {
        let prev = self.slots[t.index()].status.swap(BLOCKED, Ordering::AcqRel);
        debug_assert_eq!(prev, BLOCKED_HELD, "hold released without being held");
    }

    /// Enqueues an explicit-protocol request for responder `r`.
    pub fn enqueue_request(&self, r: ThreadId, request: Request) {
        let slot = &self.slots[r.index()];
        slot.mailbox.lock().push(request);
        slot.has_requests.store(true, Ordering::Release);
    }

    /// Cheap check whether `t` has pending requests (safe-point fast path).
    #[inline]
    pub fn has_requests(&self, t: ThreadId) -> bool {
        self.slots[t.index()].has_requests.load(Ordering::Acquire)
    }

    /// Drains `t`'s mailbox, invoking `respond` for each still-pending
    /// request (cancelled requests are skipped). Called by `t` itself at
    /// safe points and around blocking.
    pub fn drain_requests(&self, t: ThreadId, mut respond: impl FnMut(ThreadId)) {
        let slot = &self.slots[t.index()];
        if !slot.has_requests.swap(false, Ordering::AcqRel) {
            return;
        }
        let requests: Vec<Request> = std::mem::take(&mut *slot.mailbox.lock());
        for request in requests {
            if request
                .flag
                .compare_exchange(
                    REQ_PENDING,
                    REQ_RESPONDED,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                respond(request.requester);
            }
        }
    }

    /// `t.rdShCnt`.
    #[inline]
    pub fn rd_sh_cnt(&self, t: ThreadId) -> u32 {
        self.slots[t.index()].rd_sh_cnt.load(Ordering::Acquire)
    }

    /// Raises `t.rdShCnt` to at least `c`.
    #[inline]
    pub fn raise_rd_sh_cnt(&self, t: ThreadId, c: u32) {
        self.slots[t.index()]
            .rd_sh_cnt
            .fetch_max(c, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for ThreadRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRegistry")
            .field("threads", &self.slots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn threads_start_blocked_and_can_run() {
        let reg = ThreadRegistry::new(2);
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert_eq!(reg.status(T0), BLOCKED);
        reg.set_running(T0);
        assert_eq!(reg.status(T0), RUNNING);
        reg.set_blocked(T0);
        assert_eq!(reg.status(T0), BLOCKED);
    }

    #[test]
    fn holds_are_exclusive() {
        let reg = ThreadRegistry::new(1);
        assert!(reg.try_hold(T0));
        assert!(!reg.try_hold(T0), "second hold must fail");
        reg.release_hold(T0);
        assert!(reg.try_hold(T0));
        reg.release_hold(T0);
    }

    #[test]
    fn cannot_hold_running_thread() {
        let reg = ThreadRegistry::new(1);
        reg.set_running(T0);
        assert!(!reg.try_hold(T0));
    }

    #[test]
    fn drain_responds_to_pending_and_skips_cancelled() {
        let reg = ThreadRegistry::new(2);
        let pending = Arc::new(AtomicU32::new(REQ_PENDING));
        let cancelled = Arc::new(AtomicU32::new(REQ_CANCELLED));
        reg.enqueue_request(
            T0,
            Request {
                requester: T1,
                flag: Arc::clone(&pending),
            },
        );
        reg.enqueue_request(
            T0,
            Request {
                requester: T1,
                flag: Arc::clone(&cancelled),
            },
        );
        assert!(reg.has_requests(T0));
        let mut responded = Vec::new();
        reg.drain_requests(T0, |req| responded.push(req));
        assert_eq!(responded, vec![T1]);
        assert_eq!(pending.load(Ordering::Acquire), REQ_RESPONDED);
        assert!(!reg.has_requests(T0));
        // Second drain is a no-op.
        reg.drain_requests(T0, |_| panic!("nothing left to respond to"));
    }

    #[test]
    fn rd_sh_cnt_is_monotonic() {
        let reg = ThreadRegistry::new(1);
        assert_eq!(reg.rd_sh_cnt(T0), 0);
        reg.raise_rd_sh_cnt(T0, 5);
        reg.raise_rd_sh_cnt(T0, 3);
        assert_eq!(reg.rd_sh_cnt(T0), 5);
    }

    #[test]
    fn unblock_waits_for_hold_release() {
        // A held thread's set_running spins until the hold is released;
        // exercise the handoff across real threads.
        let reg = Arc::new(ThreadRegistry::new(1));
        assert!(reg.try_hold(T0));
        let reg2 = Arc::clone(&reg);
        let h = std::thread::spawn(move || {
            reg2.set_running(T0);
            assert_eq!(reg2.status(T0), RUNNING);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        reg.release_hold(T0);
        h.join().unwrap();
    }
}
