//! Packed per-object state word.
//!
//! Octet keeps each object's locality state in a single word updated with at
//! most one atomic operation per transition; the fast path is a single load
//! and compare. The low three bits are a tag; the payload is a thread id or
//! the read-shared counter. An *intermediate* tag marks an in-flight
//! conflicting transition so only one thread at a time changes an object's
//! state (paper §3.2.1).

use crate::state::OctetState;
use dc_runtime::ids::ThreadId;
use std::sync::atomic::{AtomicU64, Ordering};

const TAG_FREE: u64 = 0;
const TAG_WREX: u64 = 1;
const TAG_RDEX: u64 = 2;
const TAG_RDSH: u64 = 3;
const TAG_INT: u64 = 4;
const TAG_BITS: u64 = 0b111;

/// Decoded contents of a state word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodedState {
    /// A stable state.
    Stable(OctetState),
    /// An intermediate state owned by the requesting thread.
    Intermediate(ThreadId),
}

/// Encodes a stable state.
#[inline]
pub fn encode(state: OctetState) -> u64 {
    match state {
        OctetState::Free => TAG_FREE,
        OctetState::WrEx(t) => TAG_WREX | (u64::from(t.0) << 3),
        OctetState::RdEx(t) => TAG_RDEX | (u64::from(t.0) << 3),
        OctetState::RdSh(c) => TAG_RDSH | (u64::from(c) << 3),
    }
}

/// Encodes the intermediate state held by requester `t`.
#[inline]
pub fn encode_intermediate(t: ThreadId) -> u64 {
    TAG_INT | (u64::from(t.0) << 3)
}

/// Decodes a state word.
#[inline]
pub fn decode(word: u64) -> DecodedState {
    let payload = word >> 3;
    match word & TAG_BITS {
        TAG_FREE => DecodedState::Stable(OctetState::Free),
        TAG_WREX => DecodedState::Stable(OctetState::WrEx(ThreadId(payload as u16))),
        TAG_RDEX => DecodedState::Stable(OctetState::RdEx(ThreadId(payload as u16))),
        TAG_RDSH => DecodedState::Stable(OctetState::RdSh(payload as u32)),
        TAG_INT => DecodedState::Intermediate(ThreadId(payload as u16)),
        _ => unreachable!("corrupt octet state word"),
    }
}

/// The per-object atomic state-word table.
pub struct StateTable {
    words: Box<[AtomicU64]>,
}

impl StateTable {
    /// Creates a table of `n` objects, all [`OctetState::Free`].
    pub fn new(n: usize) -> Self {
        StateTable {
            words: (0..n).map(|_| AtomicU64::new(TAG_FREE)).collect(),
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Fast-path load of object `i`'s state word.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Acquire)
    }

    /// CAS of object `i`'s word; returns the observed word on failure.
    #[inline]
    pub fn compare_exchange(&self, i: usize, old: u64, new: u64) -> Result<(), u64> {
        self.words[i]
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .map(|_| ())
    }

    /// Unconditional store, used by the requester that owns the in-flight
    /// intermediate state to publish the final state.
    #[inline]
    pub fn store(&self, i: usize, word: u64) {
        self.words[i].store(word, Ordering::Release);
    }
}

impl std::fmt::Debug for StateTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StateTable")
            .field("objects", &self.words.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trips() {
        for state in [
            OctetState::Free,
            OctetState::WrEx(ThreadId(0)),
            OctetState::WrEx(ThreadId(65_535)),
            OctetState::RdEx(ThreadId(7)),
            OctetState::RdSh(0),
            OctetState::RdSh(u32::MAX),
        ] {
            assert_eq!(decode(encode(state)), DecodedState::Stable(state));
        }
    }

    #[test]
    fn intermediate_round_trips() {
        assert_eq!(
            decode(encode_intermediate(ThreadId(9))),
            DecodedState::Intermediate(ThreadId(9))
        );
    }

    #[test]
    fn distinct_states_encode_distinctly() {
        let words = [
            encode(OctetState::Free),
            encode(OctetState::WrEx(ThreadId(1))),
            encode(OctetState::RdEx(ThreadId(1))),
            encode(OctetState::RdSh(1)),
            encode_intermediate(ThreadId(1)),
        ];
        for i in 0..words.len() {
            for j in (i + 1)..words.len() {
                assert_ne!(words[i], words[j]);
            }
        }
    }

    #[test]
    fn table_cas_and_store() {
        let t = StateTable::new(2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let free = encode(OctetState::Free);
        let wrex = encode(OctetState::WrEx(ThreadId(3)));
        assert!(t.compare_exchange(0, free, wrex).is_ok());
        assert_eq!(t.load(0), wrex);
        // Failed CAS returns the observed value.
        assert_eq!(t.compare_exchange(0, free, wrex), Err(wrex));
        t.store(0, free);
        assert_eq!(t.load(0), free);
        // Object 1 untouched.
        assert_eq!(t.load(1), free);
    }
}
