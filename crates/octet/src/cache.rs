//! Per-thread ownership inline cache.
//!
//! A small direct-mapped cache of objects a thread is known to still hold
//! in `WrEx_T` / `RdEx_T` (or to have a read permission on, e.g. `RdSh`
//! with an up-to-date counter). A probe hit skips the metadata-word load
//! entirely: the probe touches only the thread's own slot, so the hot path
//! generates zero shared-cache-line traffic.
//!
//! Soundness rests on Octet's safe-point invariant (paper §3.2.1): a
//! running thread's exclusive ownership can only be revoked at that
//! thread's safe points or while it is blocked. The protocol therefore
//! flushes the cache at every point where ownership may have changed
//! hands:
//!
//! * locally, whenever the thread responds to pending requests
//!   ([`respond_pending`](crate::Protocol::safe_point)), around
//!   block/unblock, and at thread end;
//! * remotely, via a revocation epoch ([`OwnershipCache::revoke`]) bumped
//!   by any thread that takes ownership away without the loser executing
//!   code (the immediate-mode coordination path and the read-shared
//!   upgrade, which demotes the previous exclusive owner in place).
//!
//! The epoch is the only cross-thread word: a probe loads it (acquire)
//! and self-flushes on mismatch, so a stale hit after revocation is
//! impossible. Everything else in a slot is owner-thread-private behind
//! an `UnsafeCell`.

use dc_runtime::ids::{ObjId, ThreadId};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Entries per thread slot; direct-mapped by `obj.index() % WAYS`.
const WAYS: usize = 64;

/// Entry bit 0: the entry is valid.
const VALID: u64 = 1;
/// Entry bit 1: the cached permission licenses writes (`WrEx_T`), not
/// just reads.
const WRITE_OK: u64 = 2;
/// Object id occupies the bits above the two flag bits.
const OBJ_SHIFT: u32 = 2;

/// Owner-thread-private half of a slot. Remote threads never touch this.
#[derive(Debug)]
struct CacheLocal {
    /// Last revocation epoch this thread observed; a probe that sees a
    /// newer epoch flushes before answering.
    seen_epoch: u32,
    /// Whether any entry is valid — lets idle flushes (e.g. block/unblock
    /// with an empty cache) skip the memset and the flush counter.
    occupied: bool,
    /// Direct-mapped entries, `0` = empty.
    entries: [u64; WAYS],
    /// Probe hits since the last [`OwnershipCache::take_counters`].
    hits: u64,
    /// Non-empty flushes since the last [`OwnershipCache::take_counters`].
    flushes: u64,
}

/// One per thread, padded to its own cache-line group: the revocation
/// epoch is the only field remote threads write, and the owner's private
/// state never shares a line with another thread's slot.
#[repr(align(128))]
struct CacheSlot {
    /// Revocation epoch, bumped by remote threads that take ownership
    /// away from this thread outside its own execution.
    revoked: AtomicU32,
    local: UnsafeCell<CacheLocal>,
}

// SAFETY: `local` is only ever accessed by the slot's owner thread (the
// protocol passes the accessing thread's own id to `probe`/`insert`/
// `flush`/`take_counters`); remote threads touch only the atomic
// `revoked` epoch.
unsafe impl Sync for CacheSlot {}

impl CacheSlot {
    fn new() -> Self {
        CacheSlot {
            revoked: AtomicU32::new(0),
            local: UnsafeCell::new(CacheLocal {
                seen_epoch: 0,
                occupied: false,
                entries: [0; WAYS],
                hits: 0,
                flushes: 0,
            }),
        }
    }
}

impl std::fmt::Debug for CacheSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheSlot")
            .field("revoked", &self.revoked.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The per-thread ownership inline cache (one slot per registered thread).
#[derive(Debug)]
pub(crate) struct OwnershipCache {
    slots: Box<[CacheSlot]>,
}

impl OwnershipCache {
    /// Builds a cache with one slot per thread.
    pub(crate) fn new(n_threads: usize) -> Self {
        OwnershipCache {
            slots: (0..n_threads).map(|_| CacheSlot::new()).collect(),
        }
    }

    #[inline]
    fn entry_base(obj: ObjId) -> u64 {
        ((obj.index() as u64) << OBJ_SHIFT) | VALID
    }

    /// Owner-thread probe: returns `true` when the cache proves the
    /// access would classify as a same-state fast path. On a revocation
    /// epoch mismatch the cache self-flushes and misses.
    #[inline]
    pub(crate) fn probe(&self, t: ThreadId, obj: ObjId, write: bool) -> bool {
        let slot = &self.slots[t.index()];
        // Acquire pairs with the revoker's release bump: seeing an
        // up-to-date epoch means any revocation that *preceded* the new
        // ownership is visible here as a flush.
        let revoked = slot.revoked.load(Ordering::Acquire);
        // SAFETY: only the owner thread probes its own slot.
        let local = unsafe { &mut *slot.local.get() };
        if local.seen_epoch != revoked {
            Self::flush_local(local, revoked);
            return false;
        }
        let e = local.entries[obj.index() % WAYS];
        let base = Self::entry_base(obj);
        let hit = if write {
            e == base | WRITE_OK
        } else {
            // A read is licensed by either permission level.
            (e & !WRITE_OK) == base
        };
        if hit {
            local.hits += 1;
        }
        hit
    }

    /// Owner-thread insert after the slow path established a stable
    /// permission for `obj` (`write_ok` iff the state is `WrEx_T`).
    #[inline]
    pub(crate) fn insert(&self, t: ThreadId, obj: ObjId, write_ok: bool) {
        let slot = &self.slots[t.index()];
        // SAFETY: only the owner thread inserts into its own slot.
        let local = unsafe { &mut *slot.local.get() };
        let mut e = Self::entry_base(obj);
        if write_ok {
            e |= WRITE_OK;
        }
        local.entries[obj.index() % WAYS] = e;
        local.occupied = true;
    }

    fn flush_local(local: &mut CacheLocal, revoked: u32) {
        local.seen_epoch = revoked;
        if local.occupied {
            local.entries = [0; WAYS];
            local.occupied = false;
            local.flushes += 1;
        }
    }

    /// Owner-thread flush: invalidates every entry (no-op on an already
    /// empty cache). Called at safe-point responses, around block and
    /// unblock, and at thread end.
    #[inline]
    pub(crate) fn flush(&self, t: ThreadId) {
        let slot = &self.slots[t.index()];
        let revoked = slot.revoked.load(Ordering::Acquire);
        // SAFETY: only the owner thread flushes its own slot.
        let local = unsafe { &mut *slot.local.get() };
        Self::flush_local(local, revoked);
    }

    /// Remote revocation: bumps `t`'s epoch so its next probe flushes.
    /// Used when ownership is taken from `t` without `t` executing a
    /// safe-point response (immediate-mode coordination, the `RdSh`
    /// upgrade's in-place demotion of the previous owner).
    #[inline]
    pub(crate) fn revoke(&self, t: ThreadId) {
        self.slots[t.index()]
            .revoked
            .fetch_add(1, Ordering::Release);
    }

    /// Owner-thread counter drain: returns and resets `(hits, flushes)`.
    pub(crate) fn take_counters(&self, t: ThreadId) -> (u64, u64) {
        let slot = &self.slots[t.index()];
        // SAFETY: only the owner thread drains its own slot's counters.
        let local = unsafe { &mut *slot.local.get() };
        let out = (local.hits, local.flushes);
        local.hits = 0;
        local.flushes = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);

    #[test]
    fn probe_miss_then_insert_then_hit() {
        let cache = OwnershipCache::new(2);
        let obj = ObjId(7);
        assert!(!cache.probe(T0, obj, false));
        cache.insert(T0, obj, false);
        assert!(
            cache.probe(T0, obj, false),
            "read permission licenses reads"
        );
        assert!(
            !cache.probe(T0, obj, true),
            "read permission rejects writes"
        );
        cache.insert(T0, obj, true);
        assert!(
            cache.probe(T0, obj, true),
            "write permission licenses writes"
        );
        assert!(
            cache.probe(T0, obj, false),
            "write permission licenses reads"
        );
        assert_eq!(cache.take_counters(T0), (3, 0));
    }

    #[test]
    fn direct_map_collision_evicts() {
        let cache = OwnershipCache::new(1);
        let a = ObjId(1);
        let b = ObjId(1 + WAYS as u32);
        cache.insert(T0, a, true);
        cache.insert(T0, b, true);
        assert!(!cache.probe(T0, a, true), "colliding insert evicted a");
        assert!(cache.probe(T0, b, true));
    }

    #[test]
    fn flush_empties_and_counts_only_when_occupied() {
        let cache = OwnershipCache::new(1);
        cache.flush(T0);
        assert_eq!(cache.take_counters(T0), (0, 0), "empty flush is uncounted");
        cache.insert(T0, ObjId(3), true);
        cache.flush(T0);
        assert!(!cache.probe(T0, ObjId(3), true));
        assert_eq!(cache.take_counters(T0), (0, 1));
    }

    #[test]
    fn remote_revoke_invalidates_next_probe() {
        let cache = OwnershipCache::new(2);
        let obj = ObjId(5);
        cache.insert(T0, obj, true);
        assert!(cache.probe(T0, obj, true));
        cache.revoke(T0); // as if ThreadId(1) took ownership
        assert!(!cache.probe(T0, obj, true), "stale hit after revocation");
        assert!(
            !cache.probe(T0, obj, true),
            "epoch sync keeps the cache empty, not flapping"
        );
        let (hits, flushes) = cache.take_counters(T0);
        assert_eq!((hits, flushes), (1, 1));
    }
}
