//! The Octet protocol engine: barriers, coordination, counters.
//!
//! [`Protocol::access`] is the barrier body the paper's compiler inlines
//! before every program access. Its fast path is a single load-and-compare
//! of the object's packed state word — no store, no fence, no
//! synchronization — which is where Octet's (and therefore DoubleChecker's)
//! performance advantage over Velodrome comes from. On top of that, an
//! optional per-thread ownership inline cache (`cache.rs`) elides even
//! the state-word load for objects the thread is known to still own: a
//! cache hit touches only core-local memory (see `cache.rs` for the
//! safe-point-invariant soundness argument).
//!
//! Conflicting transitions run the coordination protocol of §3.2.1:
//! the requester first CASes the object into an *intermediate* state (one
//! in-flight change per object), then coordinates with each responding
//! thread either *explicitly* (mailbox request answered at the responder's
//! next safe point) or *implicitly* (hold placed on a blocked responder;
//! the requester runs the hook itself). While spin-waiting for a response
//! the requester marks itself blocked, so coordination can never deadlock.

use crate::cache::OwnershipCache;
use crate::registry::{
    Request, ThreadRegistry, BLOCKED, BLOCKED_HELD, REQ_CANCELLED, REQ_PENDING, RUNNING,
};
use crate::state::{classify, OctetState, Responders, TransitionKind};
use crate::word::{decode, encode, encode_intermediate, DecodedState, StateTable};
use dc_obs::{EventKind, PipelineObs, Stage};
use dc_runtime::ids::{AccessKind, ObjId, ThreadId};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Receiver of coordination-time events.
///
/// The hook runs exactly when the happens-before relationship with the
/// responding thread is established: on the responder at its safe point
/// (explicit protocol) or on the requester while holding the blocked
/// responder (implicit protocol). ICD's `handleConflictingTransition`
/// (Figure 4) is the intended implementation.
pub trait TransitionSink: Sync {
    /// A conflicting transition requested by `req` has been coordinated with
    /// responder `resp`. Called once per responding thread.
    fn conflicting(&self, resp: ThreadId, req: ThreadId);

    /// `resp` answered several queued requesters at one safe point. Sinks
    /// that pay a per-notification cost (e.g. ICD's pipelined op transport)
    /// can override this to process the whole drain at once; the default
    /// simply replays [`TransitionSink::conflicting`] in request order.
    fn conflicting_all(&self, resp: ThreadId, reqs: &[ThreadId]) {
        for &req in reqs {
            self.conflicting(resp, req);
        }
    }
}

/// A sink that ignores all events (plain Octet with no client analysis).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TransitionSink for NullSink {
    fn conflicting(&self, _resp: ThreadId, _req: ThreadId) {}
}

/// How conflicting transitions coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordinationMode {
    /// Real explicit/implicit protocol across OS threads.
    Threaded,
    /// Immediate resolution: every other thread is by construction at a
    /// safe point (the deterministic engine runs one action at a time), so
    /// the hook runs synchronously on the requester.
    Immediate,
}

/// Result of one barrier invocation (Table 1 row taken).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Fast path; no state change.
    Same,
    /// First access claimed a free object.
    FirstTouch,
    /// `RdEx T → WrEx T` by the owner.
    UpgradedToWrEx,
    /// `RdEx prev → RdSh counter`.
    UpgradedToRdSh {
        /// Previous read-exclusive owner.
        prev_owner: ThreadId,
        /// Fresh global counter value stamped on the object.
        counter: u32,
    },
    /// Fence transition on a read-shared object.
    Fence {
        /// The object's read-shared counter.
        counter: u32,
    },
    /// Conflicting transition, coordinated with `responders` threads.
    Conflicting {
        /// State after the transition.
        new: OctetState,
        /// Number of threads coordinated with.
        responders: u32,
    },
}

/// Per-run statistics about transitions taken. The uncached same-state
/// fast path is deliberately not counted: it must perform no shared
/// writes. Inline-cache hits and flushes *are* counted, but thread-locally
/// — each thread's tallies fold into the shared totals once, at
/// [`Protocol::thread_end`].
#[derive(Debug, Default)]
pub struct ProtocolStats {
    /// First-touch claims.
    pub first_touch: AtomicU64,
    /// Upgrading transitions (both kinds).
    pub upgrades: AtomicU64,
    /// Fence transitions.
    pub fences: AtomicU64,
    /// Conflicting transitions.
    pub conflicts: AtomicU64,
    /// Ownership-inline-cache hits (folded at thread end).
    pub cache_hits: AtomicU64,
    /// Ownership-inline-cache flushes of a non-empty cache (folded at
    /// thread end).
    pub cache_flushes: AtomicU64,
}

impl ProtocolStats {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The Octet protocol for one run.
pub struct Protocol<S> {
    states: StateTable,
    threads: ThreadRegistry,
    /// `gRdShCnt`: incremented on every transition to read-shared.
    g_rd_sh_cnt: AtomicU32,
    mode: CoordinationMode,
    sink: S,
    stats: ProtocolStats,
    /// Observability registry; `None` keeps every barrier untouched.
    obs: Option<Arc<PipelineObs>>,
    /// Ownership inline cache; `None` disables it (`--barrier-cache off`),
    /// restoring the exact uncached barrier.
    cache: Option<OwnershipCache>,
}

impl<S: TransitionSink> Protocol<S> {
    /// Creates a protocol instance for `n_objects` objects and `n_threads`
    /// threads, delivering coordination events to `sink`.
    pub fn new(n_objects: usize, n_threads: usize, mode: CoordinationMode, sink: S) -> Self {
        Self::with_config(n_objects, n_threads, mode, sink, None, true)
    }

    /// Like [`Protocol::new`] with an observability registry: slow-path
    /// state transitions bump the registry's Octet counters (and, at the
    /// `Full` level, land in the trace ring). The uncached same-state fast
    /// path is never instrumented — it must stay write-free; inline-cache
    /// hit/flush tallies fold in at thread end only.
    pub fn with_obs(
        n_objects: usize,
        n_threads: usize,
        mode: CoordinationMode,
        sink: S,
        obs: Option<Arc<PipelineObs>>,
    ) -> Self {
        Self::with_config(n_objects, n_threads, mode, sink, obs, true)
    }

    /// Full constructor: [`Protocol::with_obs`] plus the `barrier_cache`
    /// switch. `false` omits the ownership inline cache entirely, making
    /// every barrier take the exact uncached path (the differential
    /// baseline for `--barrier-cache off`).
    pub fn with_config(
        n_objects: usize,
        n_threads: usize,
        mode: CoordinationMode,
        sink: S,
        obs: Option<Arc<PipelineObs>>,
        barrier_cache: bool,
    ) -> Self {
        Protocol {
            states: StateTable::new(n_objects),
            threads: ThreadRegistry::new(n_threads),
            g_rd_sh_cnt: AtomicU32::new(0),
            mode,
            sink,
            stats: ProtocolStats::default(),
            obs,
            cache: barrier_cache.then(|| OwnershipCache::new(n_threads)),
        }
    }

    /// Bumps one Octet observability counter and traces the transition.
    /// `code` identifies the transition kind in trace output (0 first
    /// touch, 1 upgrade, 2 fence, 3 conflicting).
    #[inline]
    fn observe_transition(&self, pick: impl Fn(&PipelineObs) -> &dc_obs::Counter, code: u64) {
        if let Some(obs) = &self.obs {
            pick(obs).inc();
            obs.trace(Stage::Octet, EventKind::Transition, code);
        }
    }

    /// The coordination-event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Transition statistics for this run.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Decoded current state of `obj` (for tests and diagnostics; racy by
    /// nature during a threaded run).
    pub fn state_of(&self, obj: ObjId) -> DecodedState {
        decode(self.states.load(obj.index()))
    }

    /// Current value of the global read-shared counter.
    pub fn g_rd_sh_cnt(&self) -> u32 {
        self.g_rd_sh_cnt.load(Ordering::Acquire)
    }

    /// `t.rdShCnt`.
    pub fn rd_sh_cnt(&self, t: ThreadId) -> u32 {
        self.threads.rd_sh_cnt(t)
    }

    /// Marks `t` as running; must be called before `t`'s first barrier.
    pub fn thread_begin(&self, t: ThreadId) {
        self.threads.set_running(t);
    }

    /// Marks `t` as permanently blocked; pending requests are answered
    /// first, and `t`'s inline-cache tallies fold into the shared stats
    /// (and obs counters, when attached).
    pub fn thread_end(&self, t: ThreadId) {
        self.respond_pending(t);
        self.threads.set_blocked(t);
        if let Some(cache) = &self.cache {
            cache.flush(t);
            let (hits, flushes) = cache.take_counters(t);
            self.stats.cache_hits.fetch_add(hits, Ordering::Relaxed);
            self.stats
                .cache_flushes
                .fetch_add(flushes, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.octet.cache_hits.add(hits);
                obs.octet.cache_flushes.add(flushes);
            }
        }
    }

    /// Safe-point hook: answer pending explicit-protocol requests.
    #[inline]
    pub fn safe_point(&self, t: ThreadId) {
        if self.threads.has_requests(t) {
            self.respond_pending(t);
        }
    }

    /// `t` is about to block: answer pending requests, then flip to blocked
    /// so requesters use the implicit protocol. The inline cache is flushed
    /// because implicit transitions revoke ownership while `t` sleeps.
    pub fn before_block(&self, t: ThreadId) {
        self.respond_pending(t);
        if let Some(cache) = &self.cache {
            cache.flush(t);
        }
        self.threads.set_blocked(t);
    }

    /// `t` resumed: wait out any hold, flip to running, answer anything
    /// that raced into the mailbox. The inline-cache flush here is
    /// belt-and-braces with the one in [`Protocol::before_block`] (the
    /// cache is empty while blocked, so this is a free no-op unless a
    /// protocol client skipped `before_block`).
    pub fn after_unblock(&self, t: ThreadId) {
        self.threads.set_running(t);
        if let Some(cache) = &self.cache {
            cache.flush(t);
        }
        self.respond_pending(t);
    }

    fn respond_pending(&self, t: ThreadId) {
        // Collect the whole mailbox first and notify the sink once, so a
        // burst of requesters queued behind the same responder costs one
        // coalesced drain instead of a sink round-trip per request.
        let mut requesters: Vec<ThreadId> = Vec::new();
        self.threads.drain_requests(t, |requester| {
            requesters.push(requester);
        });
        let responded = !requesters.is_empty();
        if responded {
            // We just granted ownership away; anything cached is suspect.
            // The flush happens on our own thread before our next probe,
            // so no stale hit can slip in between.
            if let Some(cache) = &self.cache {
                cache.flush(t);
            }
            if requesters.len() > 1 {
                if let Some(obs) = &self.obs {
                    obs.octet.coalesced.add(requesters.len() as u64 - 1);
                }
            }
            self.sink.conflicting_all(t, &requesters);
        }
        if responded {
            // Hand the core back so the (yielded) requester can finish its
            // transition promptly; otherwise its in-flight transaction
            // stays current for our whole timeslice, accruing imprecise
            // edges (catastrophic on few-core hosts).
            std::thread::yield_now();
        }
    }

    /// Read barrier for `(t, obj)`.
    #[inline]
    pub fn read_barrier(&self, t: ThreadId, obj: ObjId) -> BarrierOutcome {
        self.access(t, obj, AccessKind::Read)
    }

    /// Write barrier for `(t, obj)`.
    #[inline]
    pub fn write_barrier(&self, t: ThreadId, obj: ObjId) -> BarrierOutcome {
        self.access(t, obj, AccessKind::Write)
    }

    /// The barrier body: classifies the access against the object's state
    /// and performs whatever transition Table 1 prescribes. With the
    /// inline cache enabled, a probe hit proves the access is a same-state
    /// fast path without touching the (possibly contended) state word.
    #[inline]
    pub fn access(&self, t: ThreadId, obj: ObjId, kind: AccessKind) -> BarrierOutcome {
        if self.cache_probe(t, obj, kind) {
            return BarrierOutcome::Same;
        }
        self.access_uncached(t, obj, kind)
    }

    /// Fused-kernel probe: `true` when the inline cache proves the access
    /// is a same-state fast path (no state-word load needed). Clients that
    /// fuse the probe into their own fast path call this, then
    /// [`Protocol::access_uncached`] on a miss. Always `false` with the
    /// cache disabled.
    #[inline]
    pub fn cache_probe(&self, t: ThreadId, obj: ObjId, kind: AccessKind) -> bool {
        match &self.cache {
            Some(cache) => cache.probe(t, obj, kind.is_write()),
            None => false,
        }
    }

    /// Whether the ownership inline cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The barrier body without the leading inline-cache probe. Clients
    /// that already probed (and missed) on their own fused fast path call
    /// this directly to avoid probing twice; a miss that still classifies
    /// as same-state warms the cache.
    pub fn access_uncached(&self, t: ThreadId, obj: ObjId, kind: AccessKind) -> BarrierOutcome {
        let i = obj.index();
        loop {
            let word = self.states.load(i);
            let state = match decode(word) {
                DecodedState::Intermediate(_) => {
                    // Another thread's transition is in flight. We are at a
                    // safe point (before our access), so keep responding to
                    // requests while we wait; otherwise the in-flight
                    // requester could be waiting on *us*. Yield the core:
                    // progress requires the other thread to run.
                    self.safe_point(t);
                    std::thread::yield_now();
                    continue;
                }
                DecodedState::Stable(s) => s,
            };
            match classify(state, kind, t, self.threads.rd_sh_cnt(t)) {
                TransitionKind::Same => {
                    // The uncached fast path performs no shared writes
                    // (the paper's key performance property) — not even a
                    // statistics update. Warming the inline cache is a
                    // core-local store only.
                    if let Some(cache) = &self.cache {
                        cache.insert(t, obj, matches!(state, OctetState::WrEx(_)));
                    }
                    return BarrierOutcome::Same;
                }
                TransitionKind::FirstTouch { new } => {
                    if self.states.compare_exchange(i, word, encode(new)).is_ok() {
                        self.stats.bump(&self.stats.first_touch);
                        self.observe_transition(|o| &o.octet.first_touch, 0);
                        if let Some(cache) = &self.cache {
                            cache.insert(t, obj, matches!(new, OctetState::WrEx(_)));
                        }
                        return BarrierOutcome::FirstTouch;
                    }
                }
                TransitionKind::UpgradeToWrEx => {
                    if self
                        .states
                        .compare_exchange(i, word, encode(OctetState::WrEx(t)))
                        .is_ok()
                    {
                        self.stats.bump(&self.stats.upgrades);
                        self.observe_transition(|o| &o.octet.upgrades, 1);
                        if let Some(cache) = &self.cache {
                            cache.insert(t, obj, true);
                        }
                        return BarrierOutcome::UpgradedToWrEx;
                    }
                }
                TransitionKind::UpgradeToRdSh { prev_owner } => {
                    // This demotes the previous read-exclusive owner *in
                    // place* — the one ownership loss that involves no
                    // safe-point response and no block — so bump its
                    // revocation epoch before the CAS can publish the new
                    // state (a spurious bump on CAS failure just costs the
                    // loser one extra flush).
                    if let Some(cache) = &self.cache {
                        cache.revoke(prev_owner);
                    }
                    // Stamp a fresh counter; if the CAS loses, the counter
                    // value is simply skipped (harmless: counters only need
                    // to be unique and increasing).
                    let counter = self.g_rd_sh_cnt.fetch_add(1, Ordering::AcqRel) + 1;
                    if self
                        .states
                        .compare_exchange(i, word, encode(OctetState::RdSh(counter)))
                        .is_ok()
                    {
                        self.threads.raise_rd_sh_cnt(t, counter);
                        self.stats.bump(&self.stats.upgrades);
                        self.observe_transition(|o| &o.octet.upgrades, 1);
                        if let Some(cache) = &self.cache {
                            cache.insert(t, obj, false);
                        }
                        return BarrierOutcome::UpgradedToRdSh {
                            prev_owner,
                            counter,
                        };
                    }
                }
                TransitionKind::Fence { counter } => {
                    fence(Ordering::SeqCst);
                    self.threads.raise_rd_sh_cnt(t, counter);
                    self.stats.bump(&self.stats.fences);
                    self.observe_transition(|o| &o.octet.fences, 2);
                    if let Some(cache) = &self.cache {
                        cache.insert(t, obj, false);
                    }
                    return BarrierOutcome::Fence { counter };
                }
                TransitionKind::Conflicting { new, responders } => {
                    if self
                        .states
                        .compare_exchange(i, word, encode_intermediate(t))
                        .is_err()
                    {
                        continue;
                    }
                    let n = self.coordinate(t, responders);
                    if let OctetState::RdEx(_) = new {
                        // A reader that takes exclusive ownership has seen
                        // everything up to the current global counter.
                        let c = self.g_rd_sh_cnt.load(Ordering::Acquire);
                        self.threads.raise_rd_sh_cnt(t, c);
                    }
                    self.states.store(i, encode(new));
                    self.stats.bump(&self.stats.conflicts);
                    self.observe_transition(|o| &o.octet.conflicts, 3);
                    if let Some(cache) = &self.cache {
                        cache.insert(t, obj, matches!(new, OctetState::WrEx(_)));
                    }
                    return BarrierOutcome::Conflicting { new, responders: n };
                }
            }
        }
    }

    /// Coordinates a conflicting transition with every responding thread.
    fn coordinate(&self, req: ThreadId, responders: Responders) -> u32 {
        match responders {
            Responders::One(r) => {
                self.coordinate_one(req, r);
                1
            }
            Responders::AllOthers => {
                let mut n = 0;
                for i in 0..self.threads.len() {
                    let r = ThreadId::from_index(i);
                    if r != req {
                        self.coordinate_one(req, r);
                        n += 1;
                    }
                }
                n
            }
        }
    }

    fn coordinate_one(&self, req: ThreadId, resp: ThreadId) {
        // Whatever `resp` has cached for the transitioning object is about
        // to become stale; bump its revocation epoch up front. This is what
        // makes the immediate path sound (the responder never executes a
        // safe-point response there), and in threaded mode it is a cheap
        // belt-and-braces on top of the responder's own flush — one RMW on
        // an already-slow coordination path.
        if let Some(cache) = &self.cache {
            cache.revoke(resp);
        }
        if self.mode == CoordinationMode::Immediate {
            // Deterministic engine: every other thread is at a safe point.
            self.sink.conflicting(resp, req);
            return;
        }
        loop {
            match self.threads.status(resp) {
                RUNNING => {
                    if self.explicit_protocol(req, resp) {
                        return;
                    }
                }
                BLOCKED => {
                    if self.threads.try_hold(resp) {
                        // Implicit protocol: the hold keeps `resp` from
                        // unblocking while we run the hook on its behalf.
                        self.sink.conflicting(resp, req);
                        self.threads.release_hold(resp);
                        return;
                    }
                }
                BLOCKED_HELD => {
                    // Another requester holds `resp`; wait our turn. Keep
                    // answering our own requests meanwhile.
                    self.safe_point(req);
                    std::thread::yield_now();
                }
                other => unreachable!("corrupt status word {other}"),
            }
        }
    }

    /// Explicit protocol: request and spin for a response. Returns false if
    /// the responder blocked before answering (caller retries implicitly).
    fn explicit_protocol(&self, req: ThreadId, resp: ThreadId) -> bool {
        let flag = std::sync::Arc::new(AtomicU32::new(REQ_PENDING));
        self.threads.enqueue_request(
            resp,
            Request {
                requester: req,
                flag: std::sync::Arc::clone(&flag),
            },
        );
        // While we spin-wait we are logically blocked: drain our own mailbox
        // first and let requesters treat us implicitly (deadlock freedom).
        self.before_block(req);
        let mut spins = 0u32;
        let answered = loop {
            if flag.load(Ordering::Acquire) == crate::registry::REQ_RESPONDED {
                break true;
            }
            if self.threads.status(resp) != RUNNING {
                // Responder blocked; try to withdraw the request.
                if flag
                    .compare_exchange(
                        REQ_PENDING,
                        REQ_CANCELLED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break false;
                }
                // Lost the race: the responder answered after all.
                break true;
            }
            spins += 1;
            if spins > 64 {
                // The response needs the responder to reach a safe point;
                // on few-core machines that needs the core.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        };
        self.after_unblock(req);
        answered
    }
}

impl<S> std::fmt::Debug for Protocol<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Protocol")
            .field("objects", &self.states.len())
            .field("threads", &self.threads.len())
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);
    const O: ObjId = ObjId(0);

    fn immediate(n_threads: usize) -> Protocol<NullSink> {
        let p = Protocol::new(4, n_threads, CoordinationMode::Immediate, NullSink);
        for i in 0..n_threads {
            p.thread_begin(ThreadId::from_index(i));
        }
        p
    }

    #[test]
    fn first_write_claims_wrex_and_stays_fast() {
        let p = immediate(2);
        assert_eq!(p.write_barrier(T0, O), BarrierOutcome::FirstTouch);
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::WrEx(T0)));
        assert_eq!(p.write_barrier(T0, O), BarrierOutcome::Same);
        assert_eq!(p.read_barrier(T0, O), BarrierOutcome::Same);
    }

    #[test]
    fn first_read_claims_rdex_then_owner_write_upgrades() {
        let p = immediate(2);
        assert_eq!(p.read_barrier(T0, O), BarrierOutcome::FirstTouch);
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::RdEx(T0)));
        assert_eq!(p.write_barrier(T0, O), BarrierOutcome::UpgradedToWrEx);
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::WrEx(T0)));
    }

    #[test]
    fn second_reader_upgrades_to_rdsh_with_fresh_counter() {
        let p = immediate(3);
        p.read_barrier(T0, O);
        let outcome = p.read_barrier(T1, O);
        assert_eq!(
            outcome,
            BarrierOutcome::UpgradedToRdSh {
                prev_owner: T0,
                counter: 1
            }
        );
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::RdSh(1)));
        // The upgrading thread's counter is current: its next read is fast.
        assert_eq!(p.read_barrier(T1, O), BarrierOutcome::Same);
        // A third thread lags and takes a fence transition.
        assert_eq!(p.read_barrier(T2, O), BarrierOutcome::Fence { counter: 1 });
        assert_eq!(p.read_barrier(T2, O), BarrierOutcome::Same);
    }

    #[test]
    fn conflicting_write_after_write() {
        let p = immediate(2);
        p.write_barrier(T0, O);
        let outcome = p.write_barrier(T1, O);
        assert_eq!(
            outcome,
            BarrierOutcome::Conflicting {
                new: OctetState::WrEx(T1),
                responders: 1
            }
        );
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::WrEx(T1)));
    }

    #[test]
    fn conflicting_read_after_write_gives_rdex() {
        let p = immediate(2);
        p.write_barrier(T0, O);
        assert_eq!(
            p.read_barrier(T1, O),
            BarrierOutcome::Conflicting {
                new: OctetState::RdEx(T1),
                responders: 1
            }
        );
    }

    #[test]
    fn rdsh_write_coordinates_with_all_others() {
        let p = immediate(4);
        p.read_barrier(T0, O);
        p.read_barrier(T1, O); // RdSh now
        let outcome = p.write_barrier(T2, O);
        assert_eq!(
            outcome,
            BarrierOutcome::Conflicting {
                new: OctetState::WrEx(T2),
                responders: 3
            }
        );
    }

    #[test]
    fn sink_sees_one_event_per_responder() {
        #[derive(Default)]
        struct Recording(Mutex<Vec<(ThreadId, ThreadId)>>);
        impl TransitionSink for Recording {
            fn conflicting(&self, resp: ThreadId, req: ThreadId) {
                self.0.lock().unwrap().push((resp, req));
            }
        }
        let p = Protocol::new(2, 3, CoordinationMode::Immediate, Recording::default());
        p.write_barrier(T0, O);
        p.write_barrier(T1, O);
        p.read_barrier(T0, O);
        let events = p.sink().0.lock().unwrap().clone();
        assert_eq!(events, vec![(T0, T1), (T1, T0)]);
    }

    #[test]
    fn global_counter_increments_per_rdsh_transition() {
        let p = immediate(3);
        let o2 = ObjId(1);
        p.read_barrier(T0, O);
        p.read_barrier(T1, O); // counter 1
        p.read_barrier(T0, o2);
        p.read_barrier(T1, o2); // counter 2
        assert_eq!(p.g_rd_sh_cnt(), 2);
        assert_eq!(p.state_of(o2), DecodedState::Stable(OctetState::RdSh(2)));
        // T2 reads o2 (counter 2) first: its rdShCnt jumps to 2, so reading
        // O (counter 1) afterwards is fence-free — the Figure 2 T5 case.
        assert_eq!(p.read_barrier(T2, o2), BarrierOutcome::Fence { counter: 2 });
        assert_eq!(p.read_barrier(T2, O), BarrierOutcome::Same);
    }

    #[test]
    fn threaded_explicit_protocol_delivers_request_at_safe_point() {
        #[derive(Default)]
        struct Count(AtomicUsize, Mutex<Vec<(ThreadId, ThreadId)>>);
        impl TransitionSink for Count {
            fn conflicting(&self, resp: ThreadId, req: ThreadId) {
                self.0.fetch_add(1, Ordering::SeqCst);
                self.1.lock().unwrap().push((resp, req));
            }
        }
        let p = std::sync::Arc::new(Protocol::new(
            1,
            2,
            CoordinationMode::Threaded,
            Count::default(),
        ));
        p.thread_begin(T0);
        p.write_barrier(T0, O); // T0 owns O

        let p2 = std::sync::Arc::clone(&p);
        let writer = std::thread::spawn(move || {
            p2.thread_begin(T1);
            // Conflicts with T0; must wait for T0's safe point.
            p2.write_barrier(T1, O);
            p2.thread_end(T1);
        });
        // Give the requester a moment to enqueue, then hit a safe point.
        for _ in 0..1000 {
            p.safe_point(T0);
            std::thread::yield_now();
            if p.sink().0.load(Ordering::SeqCst) > 0 {
                break;
            }
        }
        // Either the explicit protocol delivered at our safe point, or T0's
        // mailbox raced and the requester retried implicitly after we end.
        p.thread_end(T0);
        writer.join().unwrap();
        assert_eq!(p.sink().0.load(Ordering::SeqCst), 1);
        assert_eq!(p.sink().1.lock().unwrap()[0], (T0, T1));
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::WrEx(T1)));
    }

    #[test]
    fn threaded_implicit_protocol_on_blocked_thread() {
        let p = std::sync::Arc::new(Protocol::new(1, 2, CoordinationMode::Threaded, NullSink));
        p.thread_begin(T0);
        p.write_barrier(T0, O);
        p.before_block(T0); // T0 parks
        let p2 = std::sync::Arc::clone(&p);
        let h = std::thread::spawn(move || {
            p2.thread_begin(T1);
            let outcome = p2.write_barrier(T1, O);
            assert!(matches!(outcome, BarrierOutcome::Conflicting { .. }));
        });
        h.join().unwrap();
        p.after_unblock(T0);
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::WrEx(T1)));
    }

    /// With the cache disabled the barrier is the exact legacy path.
    fn uncached(n_threads: usize) -> Protocol<NullSink> {
        let p = Protocol::with_config(
            4,
            n_threads,
            CoordinationMode::Immediate,
            NullSink,
            None,
            false,
        );
        for i in 0..n_threads {
            p.thread_begin(ThreadId::from_index(i));
        }
        p
    }

    fn folded_cache_counters(p: &Protocol<NullSink>, t: ThreadId) -> (u64, u64) {
        p.thread_end(t);
        (
            p.stats().cache_hits.load(Ordering::Relaxed),
            p.stats().cache_flushes.load(Ordering::Relaxed),
        )
    }

    #[test]
    fn cache_off_counts_nothing() {
        let p = uncached(2);
        assert!(!p.cache_enabled());
        p.write_barrier(T0, O);
        for _ in 0..10 {
            assert_eq!(p.write_barrier(T0, O), BarrierOutcome::Same);
        }
        assert_eq!(folded_cache_counters(&p, T0), (0, 0));
    }

    #[test]
    fn cache_hits_dominate_a_loopy_owner() {
        let p = immediate(2);
        assert!(p.cache_enabled());
        p.write_barrier(T0, O);
        for _ in 0..99 {
            assert_eq!(p.write_barrier(T0, O), BarrierOutcome::Same);
            assert_eq!(p.read_barrier(T0, O), BarrierOutcome::Same);
        }
        let (hits, _) = folded_cache_counters(&p, T0);
        // 198 re-accesses; all but none are cache hits (>90% hit rate).
        assert_eq!(hits, 198);
    }

    #[test]
    fn conflicting_transition_revokes_the_loser() {
        let p = immediate(2);
        p.write_barrier(T0, O);
        p.write_barrier(T0, O); // warm T0's cache
        assert!(matches!(
            p.write_barrier(T1, O),
            BarrierOutcome::Conflicting { .. }
        ));
        // A stale hit would answer `Same` here; the revocation epoch forces
        // the slow path, which sees T1's ownership and conflicts back.
        assert!(matches!(
            p.write_barrier(T0, O),
            BarrierOutcome::Conflicting { .. }
        ));
        assert_eq!(p.state_of(O), DecodedState::Stable(OctetState::WrEx(T0)));
    }

    #[test]
    fn rdsh_upgrade_revokes_the_demoted_owner() {
        let p = immediate(3);
        p.read_barrier(T0, O);
        p.read_barrier(T0, O); // warm T0's read entry (RdEx T0)
        p.read_barrier(T1, O); // RdEx T0 → RdSh: demotes T0 in place

        // T0's cached entry is revoked; its next read re-classifies against
        // RdSh. The upgrade counter was stamped while T0's rdShCnt lagged,
        // so a stale `Same` hit would skip the required fence transition.
        assert_eq!(p.read_barrier(T0, O), BarrierOutcome::Fence { counter: 1 });
        assert_eq!(p.read_barrier(T0, O), BarrierOutcome::Same);
    }

    #[test]
    fn safe_point_response_flushes_the_cache() {
        #[derive(Default)]
        struct Count(AtomicUsize);
        impl TransitionSink for Count {
            fn conflicting(&self, _resp: ThreadId, _req: ThreadId) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let p = std::sync::Arc::new(Protocol::new(
            1,
            2,
            CoordinationMode::Threaded,
            Count::default(),
        ));
        p.thread_begin(T0);
        p.write_barrier(T0, O);
        p.write_barrier(T0, O); // warm T0's cache

        let p2 = std::sync::Arc::clone(&p);
        let writer = std::thread::spawn(move || {
            p2.thread_begin(T1);
            p2.write_barrier(T1, O);
            p2.thread_end(T1);
        });
        while p.sink().0.load(Ordering::SeqCst) == 0 {
            p.safe_point(T0); // grants ownership away → must flush
            std::thread::yield_now();
        }
        writer.join().unwrap();
        // No stale hit: T0's next write conflicts with T1's ownership.
        assert!(matches!(
            p.write_barrier(T0, O),
            BarrierOutcome::Conflicting { .. }
        ));
        p.thread_end(T0);
        assert!(p.stats().cache_flushes.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn block_unblock_cycle_flushes_the_cache() {
        let p = std::sync::Arc::new(Protocol::new(1, 2, CoordinationMode::Threaded, NullSink));
        p.thread_begin(T0);
        p.write_barrier(T0, O);
        p.write_barrier(T0, O); // warm T0's cache
        p.before_block(T0); // T0 parks; cache flushed
        let p2 = std::sync::Arc::clone(&p);
        std::thread::spawn(move || {
            p2.thread_begin(T1);
            p2.write_barrier(T1, O); // implicit protocol while T0 sleeps
            p2.thread_end(T1);
        })
        .join()
        .unwrap();
        p.after_unblock(T0);
        // A stale hit would answer `Same`; the flush forces the slow path.
        assert!(matches!(
            p.write_barrier(T0, O),
            BarrierOutcome::Conflicting { .. }
        ));
        p.thread_end(T0);
        assert!(p.stats().cache_flushes.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn threaded_stress_many_threads_one_object() {
        // Hammer a single object from several threads; the protocol must
        // neither deadlock nor corrupt the state word.
        let n = 4;
        let p = std::sync::Arc::new(Protocol::new(1, n, CoordinationMode::Threaded, NullSink));
        let mut handles = Vec::new();
        for i in 0..n {
            let p = std::sync::Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                let t = ThreadId::from_index(i);
                p.thread_begin(t);
                for round in 0..2000u32 {
                    if (round + i as u32).is_multiple_of(3) {
                        p.write_barrier(t, O);
                    } else {
                        p.read_barrier(t, O);
                    }
                    p.safe_point(t);
                }
                p.thread_end(t);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(matches!(p.state_of(O), DecodedState::Stable(_)));
    }
}
