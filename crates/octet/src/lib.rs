//! Octet: software concurrency control that captures cross-thread
//! dependences with fence-free fast paths (Bond et al., OOPSLA 2013).
//!
//! DoubleChecker's imprecise analysis (ICD) piggybacks on Octet's state
//! transitions to detect cross-thread dependences soundly but imprecisely
//! (paper §3.2.1). This crate is a from-scratch Rust implementation of the
//! protocol as the paper describes it:
//!
//! * [`state`] — the Table-1 state machine (`WrEx`/`RdEx`/`RdSh` and the
//!   same-state / upgrading / fence / conflicting classification),
//! * [`word`] — the packed per-object atomic state word with the
//!   intermediate state used during conflicting transitions,
//! * [`registry`] — per-thread status words and request mailboxes backing
//!   the explicit/implicit coordination protocol,
//! * [`protocol`] — the barrier bodies, coordination, the global
//!   read-shared counter `gRdShCnt`, and per-thread `rdShCnt` views,
//!   plus the per-thread ownership inline cache (private `cache`
//!   module) that elides the state-word load for re-accessed owned
//!   objects.
//!
//! # Example
//!
//! ```
//! use dc_octet::{BarrierOutcome, CoordinationMode, NullSink, Protocol};
//! use dc_runtime::ids::{ObjId, ThreadId};
//!
//! let octet = Protocol::new(1, 2, CoordinationMode::Immediate, NullSink);
//! octet.thread_begin(ThreadId(0));
//! octet.thread_begin(ThreadId(1));
//! // First write claims the object; the same thread's next access is the
//! // fence-free fast path.
//! assert_eq!(octet.write_barrier(ThreadId(0), ObjId(0)), BarrierOutcome::FirstTouch);
//! assert_eq!(octet.read_barrier(ThreadId(0), ObjId(0)), BarrierOutcome::Same);
//! // Another thread's read is a conflicting transition.
//! assert!(matches!(
//!     octet.read_barrier(ThreadId(1), ObjId(0)),
//!     BarrierOutcome::Conflicting { .. }
//! ));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
pub mod protocol;
pub mod registry;
pub mod state;
pub mod word;

pub use protocol::{
    BarrierOutcome, CoordinationMode, NullSink, Protocol, ProtocolStats, TransitionSink,
};
pub use state::{classify, possibly_dependent, OctetState, Responders, TransitionKind};
pub use word::DecodedState;
