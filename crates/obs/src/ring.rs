//! A fixed-size lock-free ring of pipeline trace events.
//!
//! Writers claim a slot with one `fetch_add` on the global sequence counter
//! and publish the slot's fields individually; the slot's own sequence word
//! is written *last* with `Release`, so a reader that observes it with
//! `Acquire` also observes the fields. A snapshot re-checks the sequence
//! word after reading the payload and drops slots that were overwritten
//! mid-read — the ring never blocks a writer for a reader.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which pipeline component emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Octet barrier / coordination layer.
    Octet = 0,
    /// ICD graph pipeline (app-side batching + graph-owner thread).
    Graph = 1,
    /// PCD replay pool.
    Replay = 2,
    /// Checker lifecycle (run begin/end, drain).
    Checker = 3,
}

impl Stage {
    /// Stable lower-case name used in trace output.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Octet => "octet",
            Stage::Graph => "graph",
            Stage::Replay => "replay",
            Stage::Checker => "checker",
        }
    }

    fn from_u8(v: u8) -> Stage {
        match v {
            0 => Stage::Octet,
            1 => Stage::Graph,
            2 => Stage::Replay,
            _ => Stage::Checker,
        }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// An Octet slow-path transition (value = transition discriminant).
    Transition = 0,
    /// A batch of graph ops left an application thread (value = batch len).
    BatchSent = 1,
    /// The graph owner detected an SCC (value = member count).
    SccDetected = 2,
    /// The graph owner ran the collector (value = transactions reclaimed).
    CollectRun = 3,
    /// An SCC was submitted to the replay pool (value = member count).
    ReplaySubmit = 4,
    /// A replay finished (value = violations found).
    ReplayDone = 5,
    /// The checker's run began (value = thread count).
    RunBegin = 6,
    /// The checker's run ended and the pipeline fully drained
    /// (value = drain nanoseconds).
    RunEnd = 7,
    /// The router merged one IDG shard into another
    /// (value = `source_shard << 8 | target_shard`).
    ShardMerge = 8,
}

impl EventKind {
    /// Stable lower-case name used in trace output.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Transition => "transition",
            EventKind::BatchSent => "batch_sent",
            EventKind::SccDetected => "scc_detected",
            EventKind::CollectRun => "collect_run",
            EventKind::ReplaySubmit => "replay_submit",
            EventKind::ReplayDone => "replay_done",
            EventKind::RunBegin => "run_begin",
            EventKind::RunEnd => "run_end",
            EventKind::ShardMerge => "shard_merge",
        }
    }

    fn from_u8(v: u8) -> EventKind {
        match v {
            0 => EventKind::Transition,
            1 => EventKind::BatchSent,
            2 => EventKind::SccDetected,
            3 => EventKind::CollectRun,
            4 => EventKind::ReplaySubmit,
            5 => EventKind::ReplayDone,
            6 => EventKind::RunBegin,
            8 => EventKind::ShardMerge,
            _ => EventKind::RunEnd,
        }
    }
}

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global publication order (gaps mean the ring wrapped).
    pub seq: u64,
    /// Nanoseconds since the ring (≈ the checker) was created.
    pub t_ns: u64,
    /// Emitting component.
    pub stage: Stage,
    /// Event type.
    pub kind: EventKind,
    /// Event-specific payload (see [`EventKind`]).
    pub value: u64,
}

const EMPTY: u64 = u64::MAX;

#[repr(align(64))]
#[derive(Debug)]
struct Slot {
    /// Sequence stamp, written last with `Release`; `EMPTY` = never used.
    seq: AtomicU64,
    t_ns: AtomicU64,
    /// `stage << 8 | kind`.
    tag: AtomicU64,
    value: AtomicU64,
}

/// The fixed-size lock-free trace ring.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    next: AtomicU64,
    epoch: Instant,
}

impl TraceRing {
    /// Creates a ring of `capacity` slots (rounded up to a power of two so
    /// the slot index is a mask).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        TraceRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(EMPTY),
                    t_ns: AtomicU64::new(0),
                    tag: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
            next: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (≥ the number still in the ring).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one event. Wait-free: one `fetch_add` plus plain stores.
    pub fn record(&self, stage: Stage, kind: EventKind, value: u64) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        // Invalidate while the payload is torn, then publish seq last.
        slot.seq.store(EMPTY, Ordering::Release);
        slot.t_ns.store(
            u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        slot.tag.store(
            u64::from(stage as u8) << 8 | u64::from(kind as u8),
            Ordering::Relaxed,
        );
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// The events currently in the ring, oldest first. Slots overwritten
    /// while being read are dropped rather than returned torn.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == EMPTY {
                continue;
            }
            let t_ns = slot.t_ns.load(Ordering::Relaxed);
            let tag = slot.tag.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq {
                continue; // overwritten mid-read
            }
            events.push(TraceEvent {
                seq,
                t_ns,
                stage: Stage::from_u8((tag >> 8) as u8),
                kind: EventKind::from_u8((tag & 0xff) as u8),
                value,
            });
        }
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = TraceRing::new(8);
        ring.record(Stage::Graph, EventKind::BatchSent, 3);
        ring.record(Stage::Replay, EventKind::ReplaySubmit, 2);
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::Graph);
        assert_eq!(events[0].kind, EventKind::BatchSent);
        assert_eq!(events[0].value, 3);
        assert_eq!(events[1].seq, 1);
        assert!(events[0].t_ns <= events[1].t_ns);
    }

    #[test]
    fn wraps_keeping_the_newest_events() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.record(Stage::Octet, EventKind::Transition, i);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(ring.recorded(), 10);
        let values: Vec<u64> = events.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![6, 7, 8, 9], "oldest events overwritten");
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    // Stage/kind/value correlated so tearing is detectable.
                    let kind = if t % 2 == 0 {
                        EventKind::BatchSent
                    } else {
                        EventKind::ReplayDone
                    };
                    ring.record(Stage::Graph, kind, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = ring.snapshot();
        assert!(!events.is_empty());
        for e in events {
            assert_eq!(e.stage, Stage::Graph);
            assert!(e.value < 5_000);
            assert!(matches!(
                e.kind,
                EventKind::BatchSent | EventKind::ReplayDone
            ));
        }
        assert_eq!(ring.recorded(), 20_000);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Stage::Replay.as_str(), "replay");
        assert_eq!(EventKind::SccDetected.as_str(), "scc_detected");
    }
}
