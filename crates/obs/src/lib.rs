//! `dc-obs` — the pipeline observability layer of the DoubleChecker
//! reproduction.
//!
//! PR 1 moved SCC detection and PCD replay onto an asynchronous pipeline;
//! this crate makes that pipeline auditable (in the spirit of the per-stage
//! accounting that Fast Atomicity Monitoring and RegionTrack use to back
//! their overhead claims): events observed vs. events analyzed per stage,
//! queue depths with high-watermarks, stage latency distributions, and a
//! bounded trace of pipeline events. It is entirely self-contained (no
//! dependencies, not even the workspace shims) so every analysis crate can
//! use it without widening the dependency policy.
//!
//! # Levels
//!
//! * [`ObsLevel::Off`] — nothing is allocated; [`PipelineObs::new`] returns
//!   `None` and every call site holding an `Option<Arc<PipelineObs>>`
//!   short-circuits on `None`. The hot path is exactly the uninstrumented
//!   code.
//! * [`ObsLevel::Counters`] — counters and gauges (relaxed atomic RMWs, no
//!   clock reads). Histograms and the trace ring stay inert.
//! * [`ObsLevel::Full`] — everything: stage latency histograms (which cost
//!   two `Instant::now` reads per timed operation) and the trace ring.
//!
//! The cardinal rule, enforced by the differential test suite: no level may
//! ever change checker *results* — violations, static transaction info, and
//! run statistics must be bit-identical with observability off.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod metrics;
mod ring;

pub use metrics::{Counter, Gauge, GaugeSummary, Histogram, HistogramSummary};
pub use ring::{EventKind, Stage, TraceEvent, TraceRing};

use std::sync::Arc;
use std::time::Instant;

/// How much the observability layer records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsLevel {
    /// No-op: no registry is allocated at all.
    #[default]
    Off,
    /// Counters and queue gauges only (no clock reads).
    Counters,
    /// Counters, gauges, stage latency histograms, and the trace ring.
    Full,
}

impl ObsLevel {
    /// Parses `off` / `counters` / `full`.
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "counters" => Some(ObsLevel::Counters),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// Stable lower-case name.
    pub fn as_str(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Counters => "counters",
            ObsLevel::Full => "full",
        }
    }
}

/// Upper bound on IDG shards the metrics arrays are sized for (the pipeline
/// clamps `--shards` to this).
pub const MAX_SHARDS: usize = 8;

/// Octet-layer metrics: slow-path state transitions by kind. The uncached
/// same-state fast path is deliberately uncounted — it must stay
/// write-free; inline-cache hit/flush tallies accrue thread-locally and
/// fold in once per thread at thread end.
#[derive(Debug, Default)]
pub struct OctetMetrics {
    /// First-touch claims of free objects.
    pub first_touch: Counter,
    /// Upgrading transitions (`RdEx→WrEx` and `RdEx→RdSh`).
    pub upgrades: Counter,
    /// Fence transitions on read-shared objects.
    pub fences: Counter,
    /// Conflicting transitions (coordination protocol runs).
    pub conflicts: Counter,
    /// Extra conflicting requests folded into a coalesced safe-point drain
    /// (`drained - 1` per multi-request drain).
    pub coalesced: Counter,
    /// Ownership-inline-cache hits (state-word load elided; folded at
    /// thread end).
    pub cache_hits: Counter,
    /// Ownership-inline-cache flushes of a non-empty cache (folded at
    /// thread end).
    pub cache_flushes: Counter,
}

/// ICD graph-pipeline metrics, covering both the synchronous path (ops
/// "enqueue" and apply at the same program point) and the pipelined path
/// (application threads enqueue, the graph-owner thread applies).
#[derive(Debug, Default)]
pub struct GraphMetrics {
    /// Graph operations created (insert/finish/cross/upgrade/fence).
    pub ops_enqueued: Counter,
    /// Graph operations applied to the IDG.
    pub ops_applied: Counter,
    /// Batches flushed from application threads (pipelined mode).
    pub batches: Counter,
    /// Single ops sent outside a batch (pipelined mode).
    pub singles: Counter,
    /// Sends that found the op ring full and had to spin/yield.
    pub ring_full_waits: Counter,
    /// Batch buffers parked in the reuse pool.
    pub pooled_buffers: Gauge,
    /// Ops in flight: enqueued but not yet applied.
    pub queue_depth: Gauge,
    /// Graph-owner reorder-buffer size (out-of-ticket-order arrivals).
    pub reorder_depth: Gauge,
    /// SCCs (≥ 2 transactions) detected by Tarjan.
    pub sccs_detected: Counter,
    /// Transaction finishes where the trivial pre-filter (no incoming or no
    /// outgoing edge) skipped the Tarjan traversal entirely.
    pub sccs_skipped_trivial: Counter,
    /// Tarjan SCC detection latency per transaction finish (ns).
    pub scc_latency: Histogram,
    /// Transaction-collector pass latency (ns).
    pub collect_latency: Histogram,
    /// Transport send latency per batch/single (ns).
    pub enqueue_latency: Histogram,
    /// Graph-owner apply latency per op (ns).
    pub apply_latency: Histogram,
    /// Live IDG shards (1 = the classic single-owner path).
    pub shards: Gauge,
    /// Cross-shard merges performed by the router.
    pub shard_merges: Counter,
    /// Ops in flight per shard ring (router sent, shard not yet applied).
    pub shard_depth: [Gauge; MAX_SHARDS],
    /// Busy nanoseconds (apply + SCC detection) per shard owner, recorded
    /// only at [`ObsLevel::Full`]. The single-owner path records into
    /// index 0 so shard-scaling comparisons read one schema.
    pub shard_busy: [Counter; MAX_SHARDS],
}

/// PCD replay metrics (pool workers in pipelined mode, inline replay in
/// synchronous mode).
#[derive(Debug, Default)]
pub struct ReplayMetrics {
    /// SCC reports submitted for replay.
    pub submitted: Counter,
    /// SCC reports whose replay completed.
    pub completed: Counter,
    /// Replay-pool queue depth (submitted, not yet picked up).
    pub queue_depth: Gauge,
    /// Per-SCC replay latency (ns).
    pub latency: Histogram,
    /// Precise violations found by replay.
    pub violations: Counter,
}

/// Checker lifecycle metrics.
#[derive(Debug, Default)]
pub struct CheckerMetrics {
    /// `run_begin` invocations.
    pub runs_begun: Counter,
    /// `run_end` invocations (pipeline fully drained).
    pub runs_ended: Counter,
    /// `run_end` drain latency: stopping the graph owner + draining the
    /// replay pool (ns).
    pub drain_latency: Histogram,
}

/// The observability registry one checker instance threads through Octet,
/// the ICD pipeline, the PCD replay pool, and its own lifecycle hooks.
#[derive(Debug)]
pub struct PipelineObs {
    level: ObsLevel,
    /// Octet state transitions.
    pub octet: OctetMetrics,
    /// ICD graph pipeline.
    pub graph: GraphMetrics,
    /// PCD replay.
    pub replay: ReplayMetrics,
    /// Checker lifecycle.
    pub checker: CheckerMetrics,
    trace: TraceRing,
}

/// Default trace-ring capacity (slots).
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

impl PipelineObs {
    /// Creates a registry for `level`, or `None` for [`ObsLevel::Off`] —
    /// callers hold an `Option<Arc<PipelineObs>>`, so `off` costs exactly
    /// one pointer test at each instrumentation site.
    pub fn new(level: ObsLevel) -> Option<Arc<PipelineObs>> {
        Self::with_trace_capacity(level, DEFAULT_TRACE_CAPACITY)
    }

    /// Like [`PipelineObs::new`] with an explicit trace-ring capacity.
    pub fn with_trace_capacity(level: ObsLevel, capacity: usize) -> Option<Arc<PipelineObs>> {
        match level {
            ObsLevel::Off => None,
            _ => Some(Arc::new(PipelineObs {
                level,
                octet: OctetMetrics::default(),
                graph: GraphMetrics::default(),
                replay: ReplayMetrics::default(),
                checker: CheckerMetrics::default(),
                trace: TraceRing::new(capacity),
            })),
        }
    }

    /// The registry's level (never [`ObsLevel::Off`]).
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// A timing origin for a latency histogram — `Some` only at
    /// [`ObsLevel::Full`], so [`Histogram::record_elapsed`] is a no-op at
    /// `Counters` and no clock is ever read.
    #[inline]
    pub fn clock(&self) -> Option<Instant> {
        match self.level {
            ObsLevel::Full => Some(Instant::now()),
            _ => None,
        }
    }

    /// Records a trace event ([`ObsLevel::Full`] only).
    #[inline]
    pub fn trace(&self, stage: Stage, kind: EventKind, value: u64) {
        if self.level == ObsLevel::Full {
            self.trace.record(stage, kind, value);
        }
    }

    /// The trace ring's current contents, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.snapshot()
    }

    /// Total trace events ever recorded (may exceed the ring's capacity).
    pub fn trace_recorded(&self) -> u64 {
        self.trace.recorded()
    }

    /// Snapshots every metric into a plain-data [`PipelineReport`].
    pub fn report(&self) -> PipelineReport {
        PipelineReport {
            level: self.level,
            octet: OctetReport {
                first_touch: self.octet.first_touch.get(),
                upgrades: self.octet.upgrades.get(),
                fences: self.octet.fences.get(),
                conflicts: self.octet.conflicts.get(),
                coalesced: self.octet.coalesced.get(),
                cache_hits: self.octet.cache_hits.get(),
                cache_flushes: self.octet.cache_flushes.get(),
            },
            graph: GraphReport {
                ops_enqueued: self.graph.ops_enqueued.get(),
                ops_applied: self.graph.ops_applied.get(),
                batches: self.graph.batches.get(),
                singles: self.graph.singles.get(),
                ring_full_waits: self.graph.ring_full_waits.get(),
                pooled_buffers: self.graph.pooled_buffers.summary(),
                queue_depth: self.graph.queue_depth.summary(),
                reorder_depth: self.graph.reorder_depth.summary(),
                sccs_detected: self.graph.sccs_detected.get(),
                sccs_skipped_trivial: self.graph.sccs_skipped_trivial.get(),
                scc_latency: self.graph.scc_latency.summary(),
                collect_latency: self.graph.collect_latency.summary(),
                enqueue_latency: self.graph.enqueue_latency.summary(),
                apply_latency: self.graph.apply_latency.summary(),
                shards: self.graph.shards.summary(),
                shard_merges: self.graph.shard_merges.get(),
                shard_depth: std::array::from_fn(|i| self.graph.shard_depth[i].summary()),
                shard_busy: std::array::from_fn(|i| self.graph.shard_busy[i].get()),
            },
            replay: ReplayReport {
                submitted: self.replay.submitted.get(),
                completed: self.replay.completed.get(),
                queue_depth: self.replay.queue_depth.summary(),
                latency: self.replay.latency.summary(),
                violations: self.replay.violations.get(),
            },
            checker: CheckerReport {
                runs_begun: self.checker.runs_begun.get(),
                runs_ended: self.checker.runs_ended.get(),
                drain_latency: self.checker.drain_latency.summary(),
            },
            trace_recorded: self.trace.recorded(),
        }
    }
}

/// Octet section of a [`PipelineReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OctetReport {
    /// First-touch claims.
    pub first_touch: u64,
    /// Upgrading transitions.
    pub upgrades: u64,
    /// Fence transitions.
    pub fences: u64,
    /// Conflicting transitions.
    pub conflicts: u64,
    /// Requests folded into coalesced drains.
    pub coalesced: u64,
    /// Ownership-inline-cache hits.
    pub cache_hits: u64,
    /// Ownership-inline-cache flushes (non-empty only).
    pub cache_flushes: u64,
}

/// Graph-pipeline section of a [`PipelineReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphReport {
    /// Graph ops created.
    pub ops_enqueued: u64,
    /// Graph ops applied.
    pub ops_applied: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Single ops sent outside a batch.
    pub singles: u64,
    /// Full-ring backpressure waits.
    pub ring_full_waits: u64,
    /// Pooled batch buffers.
    pub pooled_buffers: GaugeSummary,
    /// Ops in flight.
    pub queue_depth: GaugeSummary,
    /// Reorder-buffer depth.
    pub reorder_depth: GaugeSummary,
    /// SCCs detected.
    pub sccs_detected: u64,
    /// Tarjan traversals skipped by the trivial pre-filter.
    pub sccs_skipped_trivial: u64,
    /// SCC-detection latency.
    pub scc_latency: HistogramSummary,
    /// Collector-pass latency.
    pub collect_latency: HistogramSummary,
    /// Transport send latency.
    pub enqueue_latency: HistogramSummary,
    /// Graph-owner apply latency.
    pub apply_latency: HistogramSummary,
    /// Live IDG shards.
    pub shards: GaugeSummary,
    /// Cross-shard merges.
    pub shard_merges: u64,
    /// Per-shard in-flight ops.
    pub shard_depth: [GaugeSummary; MAX_SHARDS],
    /// Per-shard busy nanoseconds (apply + SCC detection).
    pub shard_busy: [u64; MAX_SHARDS],
}

/// Replay section of a [`PipelineReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// SCCs submitted.
    pub submitted: u64,
    /// Replays completed.
    pub completed: u64,
    /// Replay queue depth.
    pub queue_depth: GaugeSummary,
    /// Per-SCC replay latency.
    pub latency: HistogramSummary,
    /// Violations found.
    pub violations: u64,
}

/// Checker section of a [`PipelineReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckerReport {
    /// Runs begun.
    pub runs_begun: u64,
    /// Runs ended.
    pub runs_ended: u64,
    /// Drain latency at `run_end`.
    pub drain_latency: HistogramSummary,
}

/// A plain-data, stable-schema snapshot of every pipeline metric —
/// everything is `u64`/`i64`, so reports are `Eq`-comparable in tests and
/// serialize without floating-point noise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineReport {
    /// The level the registry ran at.
    pub level: ObsLevel,
    /// Octet state transitions.
    pub octet: OctetReport,
    /// Graph pipeline.
    pub graph: GraphReport,
    /// PCD replay.
    pub replay: ReplayReport,
    /// Checker lifecycle.
    pub checker: CheckerReport,
    /// Total trace events recorded.
    pub trace_recorded: u64,
}

impl Default for PipelineReport {
    fn default() -> Self {
        PipelineReport {
            level: ObsLevel::Off,
            octet: OctetReport::default(),
            graph: GraphReport::default(),
            replay: ReplayReport::default(),
            checker: CheckerReport::default(),
            trace_recorded: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_allocates_nothing() {
        assert!(PipelineObs::new(ObsLevel::Off).is_none());
    }

    #[test]
    fn counters_level_disables_clock_and_trace() {
        let obs = PipelineObs::new(ObsLevel::Counters).unwrap();
        assert!(obs.clock().is_none());
        obs.trace(Stage::Graph, EventKind::BatchSent, 1);
        assert_eq!(obs.trace_recorded(), 0);
        obs.graph.ops_enqueued.inc();
        assert_eq!(obs.report().graph.ops_enqueued, 1);
    }

    #[test]
    fn full_level_enables_clock_and_trace() {
        let obs = PipelineObs::new(ObsLevel::Full).unwrap();
        assert!(obs.clock().is_some());
        obs.trace(Stage::Replay, EventKind::ReplaySubmit, 2);
        assert_eq!(obs.trace_recorded(), 1);
        assert_eq!(obs.trace_events()[0].value, 2);
    }

    #[test]
    fn report_snapshots_all_sections() {
        let obs = PipelineObs::new(ObsLevel::Full).unwrap();
        obs.octet.conflicts.add(3);
        obs.graph.queue_depth.add(5);
        obs.graph.queue_depth.dec();
        obs.replay.submitted.inc();
        obs.replay.latency.record(1000);
        obs.checker.runs_begun.inc();
        let r = obs.report();
        assert_eq!(r.level, ObsLevel::Full);
        assert_eq!(r.octet.conflicts, 3);
        assert_eq!(r.graph.queue_depth.current, 4);
        assert_eq!(r.graph.queue_depth.high_watermark, 5);
        assert_eq!(r.replay.submitted, 1);
        assert_eq!(r.replay.latency.count, 1);
        assert_eq!(r.checker.runs_begun, 1);
    }

    #[test]
    fn level_round_trips_through_names() {
        for level in [ObsLevel::Off, ObsLevel::Counters, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(level.as_str()), Some(level));
        }
        assert_eq!(ObsLevel::parse("verbose"), None);
    }
}
