//! Metric primitives: atomic counters, gauges with high-watermarks, and
//! log-bucketed latency histograms. All of them are wait-free on the
//! recording side (a handful of relaxed atomic RMWs) and safe to share
//! across threads behind an `Arc`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, buffer size) that remembers the
/// highest value it ever reached. Signed so a decrement observed before the
/// matching increment (possible under relaxed cross-thread interleavings)
/// cannot wrap.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high: AtomicI64,
}

impl Gauge {
    /// Raises the level by `n` and folds the new value into the watermark.
    #[inline]
    pub fn add(&self, n: i64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high.fetch_max(now, Ordering::Relaxed);
    }

    /// Raises the level by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lowers the level by one.
    #[inline]
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright (single-writer gauges like the reorder
    /// buffer, owned by one thread).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn current(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed at an update.
    pub fn high_watermark(&self) -> i64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Point-in-time summary.
    pub fn summary(&self) -> GaugeSummary {
        GaugeSummary {
            current: self.current(),
            high_watermark: self.high_watermark(),
        }
    }
}

/// Snapshot of a [`Gauge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSummary {
    /// Level at snapshot time.
    pub current: i64,
    /// Highest level observed over the run.
    pub high_watermark: i64,
}

/// Number of power-of-two buckets: bucket `i` covers values in
/// `[2^i, 2^(i+1))` (bucket 0 also covers 0), so 64 buckets span the full
/// `u64` range — plenty for nanosecond latencies.
const BUCKETS: usize = 64;

/// A log-bucketed histogram of `u64` samples (latencies in nanoseconds).
/// Recording is one relaxed `fetch_add` into the sample's power-of-two
/// bucket plus count/sum/max updates; percentiles are estimated at snapshot
/// time as the upper bound of the bucket holding the requested rank.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        let bucket = (u64::BITS - value.max(1).leading_zeros() - 1) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since `start`; no-op when `start` is
    /// `None` (timing disabled below the `Full` observability level).
    pub fn record_elapsed(&self, start: Option<Instant>) {
        if let Some(t0) = start {
            self.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in 0..=100), 0 when empty.
    fn percentile(&self, counts: &[u64; BUCKETS], total: u64, q: u64) -> u64 {
        if total == 0 {
            return 0;
        }
        // Rank of the q-th percentile sample, 1-based, rounded up.
        let rank = (total * q).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i, saturating at u64::MAX.
                return if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Point-in-time summary (count, p50/p90/p99 estimates, exact max).
    pub fn summary(&self) -> HistogramSummary {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let total: u64 = counts.iter().sum();
        HistogramSummary {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            p50: self.percentile(&counts, total, 50),
            p90: self.percentile(&counts, total, 90),
            p99: self.percentile(&counts, total, 99),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a [`Histogram`]. Percentiles are bucket upper bounds (an
/// over-estimate by at most 2x), `max` is exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Largest sample (exact).
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_watermark() {
        let g = Gauge::default();
        g.add(3);
        g.dec();
        g.inc();
        assert_eq!(g.current(), 3);
        assert_eq!(g.high_watermark(), 3);
        g.set(7);
        g.set(1);
        assert_eq!(g.current(), 1);
        assert_eq!(g.high_watermark(), 7);
        assert!(g.summary().high_watermark >= g.summary().current);
    }

    #[test]
    fn gauge_survives_out_of_order_decrement() {
        let g = Gauge::default();
        g.dec(); // decrement observed before the matching increment
        g.inc();
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn histogram_percentiles_bound_the_samples() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 10_000);
        assert!(s.p50 >= 3, "p50 {} must cover the median sample", s.p50);
        assert!(s.p99 >= 10_000 / 2, "p99 {} under-estimates", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert_eq!(s.sum, 11_106);
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert!(s.p99 >= s.p50);
    }

    #[test]
    fn empty_histogram_summary_is_zero() {
        assert_eq!(Histogram::default().summary(), HistogramSummary::default());
    }

    #[test]
    fn record_elapsed_none_is_a_noop() {
        let h = Histogram::default();
        h.record_elapsed(None);
        assert_eq!(h.count(), 0);
        h.record_elapsed(Some(Instant::now()));
        assert_eq!(h.count(), 1);
    }
}
