//! Property-based tests of PCD's Figure-5 rules: the PDG edges computed
//! from a serialized access sequence match a naive conflict-serializability
//! reference.

use dc_icd::{TxId, TxKind};
use dc_pcd::Pdg;
use dc_runtime::ids::{MethodId, ObjId, ThreadId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
struct Step {
    /// Which of 4 fixed transactions performs the access (tx i runs on
    /// thread i % 2 — so some pairs share a thread).
    tx: u64,
    field: u32,
    write: bool,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (1u64..=4, 0u32..3, any::<bool>()).prop_map(|(tx, field, write)| Step { tx, field, write }),
        1..80,
    )
}

fn thread_of(tx: u64) -> ThreadId {
    ThreadId((tx % 2) as u16)
}

/// Naive reference: for each ordered pair of conflicting accesses on the
/// same field (at least one write) by different threads with no
/// intervening write by a third party clearing the relation… the simplest
/// correct reference is to recompute with the same rules but an independent
/// implementation style: last writer + last readers per field.
fn reference_edges(seq: &[Step]) -> HashSet<(u64, u64)> {
    let mut last_write: [Option<u64>; 3] = [None; 3];
    let mut readers: [Vec<u64>; 3] = Default::default();
    let mut edges = HashSet::new();
    for s in seq {
        let f = s.field as usize;
        if s.write {
            if let Some(w) = last_write[f] {
                if thread_of(w) != thread_of(s.tx) {
                    edges.insert((w, s.tx));
                }
            }
            for &r in &readers[f] {
                if thread_of(r) != thread_of(s.tx) && r != s.tx {
                    edges.insert((r, s.tx));
                }
            }
            last_write[f] = Some(s.tx);
            readers[f].clear();
        } else {
            if let Some(w) = last_write[f] {
                if thread_of(w) != thread_of(s.tx) {
                    edges.insert((w, s.tx));
                }
            }
            // Keep only the latest read per thread.
            readers[f].retain(|&r| thread_of(r) != thread_of(s.tx));
            readers[f].push(s.tx);
        }
    }
    edges.retain(|&(a, b)| a != b);
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pdg_matches_reference(seq in steps()) {
        let mut pdg = Pdg::new((1u64..=4).map(|i| {
            (TxId(i), thread_of(i), TxKind::Regular(MethodId(i as u32)))
        }));
        for s in &seq {
            let field = (ObjId(0), s.field);
            if s.write {
                pdg.write(field, TxId(s.tx));
            } else {
                pdg.read(field, TxId(s.tx));
            }
        }
        let got: HashSet<(u64, u64)> =
            pdg.edges().iter().map(|e| (e.src.0, e.dst.0)).collect();
        prop_assert_eq!(got, reference_edges(&seq));
    }

    /// Cycle detection through a fresh edge agrees with reachability on the
    /// final graph.
    #[test]
    fn cycle_through_agrees_with_reachability(seq in steps()) {
        let mut pdg = Pdg::new((1u64..=4).map(|i| {
            (TxId(i), thread_of(i), TxKind::Regular(MethodId(i as u32)))
        }));
        let mut edges_so_far: Vec<(u64, u64)> = Vec::new();
        for s in &seq {
            let field = (ObjId(0), s.field);
            let new = if s.write {
                pdg.write(field, TxId(s.tx))
            } else {
                pdg.read(field, TxId(s.tx)).into_iter().collect()
            };
            for e in new {
                edges_so_far.push((e.src.0, e.dst.0));
                // Reference: is src reachable from dst over current edges?
                let mut seen = HashSet::from([e.dst.0]);
                let mut work = vec![e.dst.0];
                let mut reachable = false;
                while let Some(v) = work.pop() {
                    if v == e.src.0 {
                        reachable = true;
                        break;
                    }
                    for &(a, b) in &edges_so_far {
                        if a == v && seen.insert(b) {
                            work.push(b);
                        }
                    }
                }
                prop_assert_eq!(pdg.cycle_through(e).is_some(), reachable);
            }
        }
    }
}
