//! Edge-constrained replay of an ICD SCC's read/write logs.
//!
//! PCD "essentially replays the subset of execution corresponding to the
//! transactions in the IDG cycle" (§3.3), using the cross-thread ordering
//! ICD recorded: every cross-thread IDG edge into a member carries the
//! source and sink log positions at creation time. A sink entry at or past
//! `dst_pos` must wait until
//!
//! 1. every member on the source's thread with a smaller sequence number
//!    has fully replayed (the edge also orders the source's program-order
//!    predecessors, transitively), and
//! 2. if the source itself is a member, it has replayed `src_pos` entries.
//!
//! Same-thread members always replay in program (sequence) order.

use crate::rules::Pdg;
use crate::violation::Violation;
use dc_icd::{SccReport, TxId};
use dc_runtime::ids::ThreadId;
use std::collections::HashMap;

/// Statistics for one PCD invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Transactions replayed.
    pub txs: u64,
    /// Log entries replayed.
    pub entries: u64,
    /// Precise PDG cycles found.
    pub cycles: u64,
}

impl ReplayStats {
    /// Folds another invocation's counters into this one.
    pub fn merge(&mut self, other: ReplayStats) {
        self.txs += other.txs;
        self.entries += other.entries;
        self.cycles += other.cycles;
    }
}

/// True when `DC_DEBUG_SCC` was set at first use (read once, not once per
/// detected cycle).
fn debug_scc() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("DC_DEBUG_SCC").is_some())
}

/// One incoming constraint with its source resolved to dense indices at
/// construction time, so checking it during replay never hashes.
#[derive(Clone, Copy)]
struct Prepped {
    dst_pos: u32,
    /// Index of the source in `scc.txs`, or `u32::MAX` when the source lies
    /// outside the SCC.
    src_member: u32,
    /// Index of the source thread's chain, or `usize::MAX` when no member
    /// runs on that thread.
    src_chain: usize,
    src_seq: u64,
    src_pos: u32,
}

struct Replayer<'a> {
    scc: &'a SccReport,
    /// Members grouped per thread (indices into `scc.txs`), each chain in
    /// seq order; chains themselves ordered by thread id. The scan order
    /// drives the replay interleaving and hence which of several equivalent
    /// PDG cycles is reported, so it must depend only on the SCC report.
    chains: Vec<Vec<usize>>,
    /// First not-yet-done position in each chain.
    chain_pos: Vec<usize>,
    /// Entries replayed per member, indexed like `scc.txs`.
    processed: Vec<u32>,
    done: Vec<bool>,
    /// Incoming constraints per member, sorted by `dst_pos`, with a cursor
    /// past the permanently-satisfied prefix.
    cons: Vec<Vec<Prepped>>,
    cons_cursor: Vec<usize>,
}

impl<'a> Replayer<'a> {
    fn new(scc: &'a SccReport) -> Self {
        let mut threads: Vec<ThreadId> = scc.txs.iter().map(|t| t.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        let mut chains: Vec<Vec<usize>> = vec![Vec::new(); threads.len()];
        for (i, tx) in scc.txs.iter().enumerate() {
            let c = threads.binary_search(&tx.thread).expect("member thread");
            chains[c].push(i);
        }
        for chain in &mut chains {
            chain.sort_by_key(|&i| scc.txs[i].seq);
        }
        // The only hashing in PCD: one id → dense-index map, built once and
        // consulted only while prepping constraints.
        let member_of: HashMap<TxId, u32> = scc
            .txs
            .iter()
            .enumerate()
            .map(|(i, t)| (t.id, i as u32))
            .collect();
        let mut cons: Vec<Vec<Prepped>> = vec![Vec::new(); scc.txs.len()];
        for c in &scc.constraints {
            let Some(&dst) = member_of.get(&c.dst) else {
                continue; // sinks are always members; ignore anything else
            };
            cons[dst as usize].push(Prepped {
                dst_pos: c.dst_pos,
                src_member: member_of.get(&c.src).copied().unwrap_or(u32::MAX),
                src_chain: match threads.binary_search(&c.src_thread) {
                    Ok(i) => i,
                    Err(_) => usize::MAX,
                },
                src_seq: c.src_seq,
                src_pos: c.src_pos,
            });
        }
        for list in &mut cons {
            list.sort_by_key(|c| c.dst_pos);
        }
        Replayer {
            chain_pos: vec![0; chains.len()],
            chains,
            processed: vec![0; scc.txs.len()],
            done: vec![false; scc.txs.len()],
            cons_cursor: vec![0; scc.txs.len()],
            cons,
            scc,
        }
    }

    /// True once every member of the source thread's chain with seq <
    /// `src_seq` is done — the program-order prefix a constraint's source
    /// transitively orders before the sink. O(1): chains complete strictly
    /// in order, so the chain cursor's transaction has the minimal undone
    /// seq.
    fn predecessors_done(&self, src_chain: usize, src_seq: u64) -> bool {
        let Some(chain) = self.chains.get(src_chain) else {
            return true; // no members on that thread
        };
        match chain.get(self.chain_pos[src_chain]) {
            None => true, // chain fully done
            Some(&i) => self.scc.txs[i].seq >= src_seq,
        }
    }

    fn constraint_satisfied(&self, c: Prepped) -> bool {
        if !self.predecessors_done(c.src_chain, c.src_seq) {
            return false;
        }
        if c.src_member == u32::MAX {
            // Source outside the SCC: only its predecessors matter.
            return true;
        }
        // Source is a member: it must have replayed src_pos entries.
        let m = c.src_member as usize;
        self.done[m] || self.processed[m] >= c.src_pos
    }

    /// True if member `m` may replay its entry at index `i`.
    fn may_replay(&mut self, m: usize, i: u32) -> bool {
        let mut cur = self.cons_cursor[m];
        let ok = loop {
            let Some(&c) = self.cons[m].get(cur) else {
                break true;
            };
            if c.dst_pos > i {
                break true;
            }
            if self.constraint_satisfied(c) {
                cur += 1; // monotonic: stays satisfied
            } else {
                break false;
            }
        };
        self.cons_cursor[m] = cur;
        ok
    }
}

/// Replays one SCC and returns the precise violations found, with stats.
pub fn replay_scc(scc: &SccReport) -> (Vec<Violation>, ReplayStats) {
    let mut stats = ReplayStats {
        txs: scc.txs.len() as u64,
        ..ReplayStats::default()
    };
    let mut pdg = Pdg::new(scc.txs.iter().map(|t| (t.id, t.thread, t.kind)));
    let mut r = Replayer::new(scc);
    // Program-order edges between consecutive same-thread members: cycles
    // may pass through them (Velodrome's intra-thread edges, §2). Chains
    // are in sorted-thread order by construction, so the scan order — and
    // hence which of several equivalent cycles `cycle_through` reports —
    // depends only on the SCC report, never on map iteration order (which
    // would make sync and pipelined runs diverge).
    for chain in &r.chains {
        for pair in chain.windows(2) {
            pdg.add_intra_edge(scc.txs[pair[0]].id, scc.txs[pair[1]].id);
        }
    }
    let mut violations = Vec::new();

    loop {
        let mut advanced = false;
        let mut all_done = true;
        // Refresh every chain cursor first so constraint checks against
        // other threads' chains see current progress.
        for c in 0..r.chains.len() {
            let mut pos = r.chain_pos[c];
            while pos < r.chains[c].len() && r.done[r.chains[c][pos]] {
                pos += 1;
            }
            r.chain_pos[c] = pos;
        }
        for c in 0..r.chains.len() {
            // Drain this thread's chain as far as constraints allow; runs
            // of unconstrained entries replay without another sweep.
            loop {
                let chain_len = r.chains[c].len();
                let mut pos = r.chain_pos[c];
                while pos < chain_len && r.done[r.chains[c][pos]] {
                    pos += 1;
                }
                r.chain_pos[c] = pos;
                if pos == chain_len {
                    break;
                }
                all_done = false;
                let m = r.chains[c][pos];
                let tx = &scc.txs[m];
                let i = r.processed[m];
                if i as usize == tx.log.len() {
                    r.done[m] = true;
                    advanced = true;
                    continue;
                }
                if !r.may_replay(m, i) {
                    break;
                }
                // Replay entry i.
                let entry = tx.log[i as usize];
                let field = (entry.obj(), entry.cell());
                let new_edges = if entry.is_write() {
                    pdg.write(field, tx.id)
                } else {
                    pdg.read(field, tx.id).into_iter().collect()
                };
                for edge in new_edges {
                    if let Some(cycle) = pdg.cycle_through(edge) {
                        stats.cycles += 1;
                        if debug_scc() {
                            eprintln!("--- PCD cycle via {edge:?} on field {field:?}");
                            for t in &scc.txs {
                                eprintln!(
                                    "  tx {:?} thr {:?} seq {} kind {:?} log {:?}",
                                    t.id, t.thread, t.seq, t.kind, t.log
                                );
                            }
                            for c in &scc.constraints {
                                eprintln!("  constraint {c:?}");
                            }
                            eprintln!("  pdg edges: {:?}", pdg.edges());
                        }
                        violations.push(Violation::from_cycle(&pdg, &cycle));
                    }
                }
                r.processed[m] = i + 1;
                stats.entries += 1;
                advanced = true;
            }
        }
        if all_done {
            break;
        }
        if !advanced {
            // The recorded constraints come from a real execution; a stall
            // can only happen when constraint sources *outside* the SCC
            // (whose `in_cross` entries `snapshot_component` copies
            // verbatim) gate each other's member predecessors in a
            // circular wait. Break the tie deterministically: pick the
            // stuck member with the smallest id and retire its blocking
            // constraint. Unlike skipping the entry itself, this keeps
            // every log entry flowing into the PDG, so forced progress
            // never silently drops a dependence.
            let stuck = (0..r.chains.len())
                .filter_map(|c| {
                    let chain = &r.chains[c];
                    let pos = r.chain_pos[c];
                    (pos < chain.len()).then(|| (scc.txs[chain[pos]].id, chain[pos]))
                })
                .min();
            match stuck {
                Some((_, m)) => {
                    if r.cons[m].is_empty() {
                        // Defensive: without constraints the member could
                        // not have stalled; retire it outright rather than
                        // loop.
                        r.done[m] = true;
                    } else {
                        // A stuck chain head always stopped on an
                        // unsatisfied constraint at its cursor; step past
                        // it.
                        r.cons_cursor[m] += 1;
                    }
                }
                None => break,
            }
        }
    }
    (violations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_icd::{Edge, EdgeKind, LogEntry, ReplayConstraint, TxKind, TxSnapshot};
    use dc_runtime::ids::{MethodId, ObjId};
    use std::sync::Arc;

    fn tx(id: u64, thread: u16, seq: u64, log: Vec<LogEntry>) -> TxSnapshot {
        TxSnapshot {
            id: TxId(id),
            thread: ThreadId(thread),
            kind: TxKind::Regular(MethodId(id as u32)),
            seq,
            log: Arc::new(log),
        }
    }

    /// Builds a report, deriving constraints from the edges the way the IDG
    /// does (sources' thread/seq must be supplied for external sources).
    fn report(txs: Vec<TxSnapshot>, edges: Vec<Edge>) -> SccReport {
        let seqs: HashMap<TxId, (ThreadId, u64)> =
            txs.iter().map(|t| (t.id, (t.thread, t.seq))).collect();
        let constraints = edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Cross)
            .map(|e| {
                let (src_thread, src_seq) = seqs[&e.src];
                ReplayConstraint {
                    dst: e.dst,
                    dst_pos: e.dst_pos,
                    src: e.src,
                    src_thread,
                    src_seq,
                    src_pos: e.src_pos,
                }
            })
            .collect();
        SccReport {
            txs,
            edges,
            constraints,
        }
    }

    fn cross(src: u64, src_pos: u32, dst: u64, dst_pos: u32) -> Edge {
        Edge {
            src: TxId(src),
            src_pos,
            dst: TxId(dst),
            dst_pos,
            kind: EdgeKind::Cross,
        }
    }

    fn rd(obj: u32, cell: u32) -> LogEntry {
        LogEntry::new(ObjId(obj), cell, false, false)
    }

    fn wr(obj: u32, cell: u32) -> LogEntry {
        LogEntry::new(ObjId(obj), cell, true, false)
    }

    #[test]
    fn detects_classic_two_transaction_cycle() {
        // T0/Tx1: wr o.f … rd o.g;  T1/Tx2: rd o.f then wr o.g between them.
        let scc = report(
            vec![
                tx(1, 0, 1, vec![wr(0, 0), rd(0, 1)]),
                tx(2, 1, 1, vec![rd(0, 0), wr(0, 1)]),
            ],
            vec![cross(1, 1, 2, 0), cross(2, 2, 1, 1)],
        );
        let (violations, stats) = replay_scc(&scc);
        assert_eq!(stats.cycles, 1);
        assert_eq!(violations.len(), 1);
        assert_eq!(stats.entries, 4);
        assert_eq!(violations[0].cycle.len(), 2);
    }

    #[test]
    fn serializable_interleaving_yields_no_violation() {
        let scc = report(
            vec![
                tx(1, 0, 1, vec![wr(0, 0)]),
                tx(2, 1, 1, vec![rd(0, 0), wr(0, 1)]),
            ],
            vec![cross(1, 1, 2, 0)],
        );
        let (violations, stats) = replay_scc(&scc);
        assert!(violations.is_empty());
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn figure3_pcd_finds_smaller_precise_cycle() {
        // ICD found an SCC of four transactions; the precise cycle is just
        // Tx1 and Tx3 (Figure 3).
        let scc = report(
            vec![
                tx(1, 1, 1, vec![wr(0, 0), wr(0, 0)]),
                tx(2, 2, 1, vec![rd(0, 1)]),
                tx(3, 3, 1, vec![rd(0, 0), rd(0, 0)]),
                tx(4, 4, 1, vec![rd(0, 2)]),
            ],
            vec![
                cross(1, 1, 2, 0),
                cross(2, 1, 3, 0),
                cross(3, 1, 1, 1),
                cross(3, 2, 4, 0),
                cross(1, 2, 3, 1),
            ],
        );
        let (violations, _) = replay_scc(&scc);
        assert_eq!(violations.len(), 1);
        let cycle = &violations[0].cycle;
        assert_eq!(cycle.len(), 2, "precise cycle is smaller than the SCC");
        let ids: Vec<TxId> = cycle.iter().map(|c| c.tx).collect();
        assert!(ids.contains(&TxId(1)) && ids.contains(&TxId(3)));
    }

    #[test]
    fn same_thread_transactions_replay_in_sequence_order() {
        let scc = report(
            vec![
                tx(1, 0, 1, vec![wr(0, 0)]),
                tx(3, 0, 2, vec![wr(0, 0)]),
                tx(2, 1, 1, vec![wr(0, 0)]),
            ],
            vec![cross(1, 1, 2, 0), cross(2, 1, 3, 0)],
        );
        let (_, stats) = replay_scc(&scc);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn empty_logs_replay_cleanly() {
        let scc = report(
            vec![tx(1, 0, 1, vec![]), tx(2, 1, 1, vec![])],
            vec![cross(1, 0, 2, 0), cross(2, 0, 1, 0)],
        );
        let (violations, stats) = replay_scc(&scc);
        assert!(violations.is_empty());
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.txs, 2);
    }

    #[test]
    fn constraints_order_cross_thread_entries() {
        let scc = report(
            vec![tx(2, 1, 1, vec![rd(0, 0)]), tx(1, 0, 1, vec![wr(0, 0)])],
            vec![cross(1, 1, 2, 0)],
        );
        let (_, stats) = replay_scc(&scc);
        assert_eq!(stats.entries, 2);
    }

    /// The philo regression: the ordering constraint arrives via an edge
    /// whose source is a *later, empty* transaction of the writer's thread;
    /// `src_pos = 0` must still order the writer (a program-order
    /// predecessor of the source) before the sink.
    #[test]
    fn constraint_source_predecessors_are_ordered() {
        // T0: Tx1 (wr f, rd f, wr f  = lock-protected use), then Tx3 (empty,
        // e.g. a think() transaction). T1: Tx2 reads/writes f after T0's
        // release; the only edge into Tx2 comes from Tx3 with src_pos 0.
        let txs = vec![
            tx(1, 0, 1, vec![rd(0, 0), wr(0, 0)]),
            tx(3, 0, 2, vec![]),
            tx(2, 1, 1, vec![rd(0, 0), wr(0, 0)]),
        ];
        let edges = vec![
            cross(3, 0, 2, 0), // the constraint carrier
            cross(2, 2, 1, 2), // imprecise back edge closing the ICD cycle
        ];
        let scc = report(txs, edges);
        let (violations, stats) = replay_scc(&scc);
        assert_eq!(stats.entries, 4);
        assert!(
            violations.is_empty(),
            "replay must order Tx1 fully before Tx2: {violations:?}"
        );
    }

    /// External-source constraints: the source is not a member, but its
    /// member predecessors must still be ordered before the sink.
    #[test]
    fn external_source_constraints_order_member_predecessors() {
        let txs = vec![
            tx(1, 0, 1, vec![rd(0, 0), wr(0, 0)]),
            tx(2, 1, 1, vec![rd(0, 0), wr(0, 0)]),
        ];
        let edges = vec![cross(2, 2, 1, 2)];
        let mut scc = report(txs, edges);
        // Tx9 (thread 0, seq 5) is outside the SCC; its edge into Tx2 orders
        // Tx1 (seq 1 < 5) before Tx2's entries.
        scc.constraints.push(ReplayConstraint {
            dst: TxId(2),
            dst_pos: 0,
            src: TxId(9),
            src_thread: ThreadId(0),
            src_seq: 5,
            src_pos: 0,
        });
        let (violations, _) = replay_scc(&scc);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// `snapshot_component` copies *every* `in_cross` constraint of a
    /// member, including ones whose source lies outside the SCC. Two such
    /// external-source constraints can gate each other's member
    /// predecessors in a circular wait that no constraint ever satisfies —
    /// replay must fall into the deterministic tie-break, force progress,
    /// and terminate with every entry replayed rather than stall.
    #[test]
    fn circular_external_source_constraints_cannot_stall_replay() {
        let txs = vec![
            tx(1, 0, 1, vec![wr(0, 0), rd(0, 1)]),
            tx(2, 1, 1, vec![rd(0, 0), wr(0, 1)]),
        ];
        // The member-to-member edges closing the ICD cycle.
        let edges = vec![cross(1, 1, 2, 0), cross(2, 2, 1, 1)];
        let mut scc = report(txs, edges);
        // Tx8 (thread 1, seq 5, external) gates Tx1's very first entry: it
        // waits for all of thread 1's members with seq < 5 — i.e. Tx2.
        scc.constraints.push(ReplayConstraint {
            dst: TxId(1),
            dst_pos: 0,
            src: TxId(8),
            src_thread: ThreadId(1),
            src_seq: 5,
            src_pos: 0,
        });
        // Tx9 (thread 0, seq 5, external) symmetrically gates Tx2's first
        // entry on Tx1: neither chain can start — a pure constraint cycle.
        scc.constraints.push(ReplayConstraint {
            dst: TxId(2),
            dst_pos: 0,
            src: TxId(9),
            src_thread: ThreadId(0),
            src_seq: 5,
            src_pos: 0,
        });
        let (_, stats) = replay_scc(&scc);
        assert_eq!(
            stats.entries, 4,
            "tie-break must force progress through the circular wait"
        );
    }
}
