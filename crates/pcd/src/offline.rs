//! Offline conflict-serializability analysis over a recorded trace.
//!
//! The related-work alternative to online checking (paper §6, Farzan &
//! Parthasarathy): record the execution, then build the precise
//! transaction dependence graph afterwards and look for cycles. This
//! implementation shares only the low-level [`Pdg`] rules with PCD — no
//! Octet, no ICD, no logs — which makes it an independent oracle for
//! differential testing: on the same deterministic execution it must agree
//! with both Velodrome and DoubleChecker's single-run mode about whether a
//! violation exists.
//!
//! Differences from the online checkers (all precision-neutral):
//! * every non-transactional access is its own unary transaction (no
//!   merging optimization);
//! * cycles are detected once, at end of trace, rather than per edge.

use crate::rules::Pdg;
use crate::violation::Violation;
use dc_icd::TxId;
use dc_runtime::ids::{ThreadId, SYNC_CELL};
use dc_runtime::spec::{AtomicitySpec, EnterOutcome, ExitOutcome, TxKind, TxTracker};
use dc_runtime::trace::TraceEvent;
use std::collections::HashMap;

/// Configuration of the offline analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct OfflineConfig {
    /// Analyze array accesses (off by default, matching the online
    /// checkers' default).
    pub instrument_arrays: bool,
}

/// Result of one offline analysis.
#[derive(Clone, Debug)]
pub struct OfflineReport {
    /// Violations, deduplicated by static identity.
    pub violations: Vec<Violation>,
    /// Transactions demarcated (regular + unary).
    pub transactions: u64,
    /// Precise cross-thread dependence edges.
    pub edges: u64,
}

struct ThreadState {
    tracker: TxTracker,
    current: Option<TxId>,
    prev: Option<TxId>,
}

/// Analyzes a recorded trace against `spec`.
///
/// The trace must be a valid linearization of one execution (what
/// [`dc_runtime::trace::TraceChecker`] records).
pub fn analyze_trace(
    events: &[TraceEvent],
    spec: &AtomicitySpec,
    config: OfflineConfig,
) -> OfflineReport {
    let mut threads: HashMap<ThreadId, ThreadState> = HashMap::new();
    let mut next_tx = 1u64;
    let mut pdg = Pdg::new(std::iter::empty());
    let mut transactions = 0u64;
    let mut raw_violations: Vec<Violation> = Vec::new();

    let begin_tx = |pdg: &mut Pdg,
                    threads: &mut HashMap<ThreadId, ThreadState>,
                    next_tx: &mut u64,
                    transactions: &mut u64,
                    t: ThreadId,
                    kind: TxKind| {
        let id = TxId(*next_tx);
        *next_tx += 1;
        *transactions += 1;
        pdg.add_tx(id, t, kind);
        let st = threads.entry(t).or_insert_with(|| ThreadState {
            tracker: TxTracker::new(),
            current: None,
            prev: None,
        });
        if let Some(prev) = st.current.take().or(st.prev) {
            pdg.add_intra_edge(prev, id);
        }
        st.current = Some(id);
        id
    };

    for event in events {
        let t = event.thread();
        threads.entry(t).or_insert_with(|| ThreadState {
            tracker: TxTracker::new(),
            current: None,
            prev: None,
        });
        match *event {
            TraceEvent::ThreadBegin(_) | TraceEvent::ThreadEnd(_) => {}
            TraceEvent::Enter(_, m) => {
                let outcome = threads.get_mut(&t).expect("state").tracker.enter(m, spec);
                if let EnterOutcome::BeginTransaction(method) = outcome {
                    begin_tx(
                        &mut pdg,
                        &mut threads,
                        &mut next_tx,
                        &mut transactions,
                        t,
                        TxKind::Regular(method),
                    );
                }
            }
            TraceEvent::Exit(_, m) => {
                let outcome = threads.get_mut(&t).expect("state").tracker.exit(m);
                if let ExitOutcome::EndTransaction(_) = outcome {
                    let st = threads.get_mut(&t).expect("state");
                    st.prev = st.current.take();
                }
            }
            TraceEvent::ArrayRead(..) | TraceEvent::ArrayWrite(..) if !config.instrument_arrays => {
            }
            TraceEvent::Read(..)
            | TraceEvent::Write(..)
            | TraceEvent::ArrayRead(..)
            | TraceEvent::ArrayWrite(..)
            | TraceEvent::SyncAcquire(..)
            | TraceEvent::SyncRelease(..) => {
                let (obj, cell, is_write) = match *event {
                    TraceEvent::Read(_, obj, cell) => (obj, cell, false),
                    TraceEvent::Write(_, obj, cell) => (obj, cell, true),
                    // Arrays conflate to one metadata slot, as online.
                    TraceEvent::ArrayRead(_, obj, _) => (obj, 0, false),
                    TraceEvent::ArrayWrite(_, obj, _) => (obj, 0, true),
                    TraceEvent::SyncAcquire(_, obj) => (obj, SYNC_CELL, false),
                    TraceEvent::SyncRelease(_, obj) => (obj, SYNC_CELL, true),
                    _ => unreachable!(),
                };
                let in_tx = threads[&t].current.is_some() && threads[&t].tracker.in_transaction();
                let tx = if in_tx {
                    threads[&t].current.expect("in transaction")
                } else {
                    // A fresh unary transaction per non-transactional access.
                    begin_tx(
                        &mut pdg,
                        &mut threads,
                        &mut next_tx,
                        &mut transactions,
                        t,
                        TxKind::Unary,
                    )
                };
                let new_edges = if is_write {
                    pdg.write((obj, cell), tx)
                } else {
                    pdg.read((obj, cell), tx).into_iter().collect()
                };
                // Offline: still record cycles per edge so blame order is
                // meaningful, but detection could equally run once at the
                // end.
                for edge in new_edges {
                    if let Some(cycle) = pdg.cycle_through(edge) {
                        raw_violations.push(Violation::from_cycle(&pdg, &cycle));
                    }
                }
                if !in_tx {
                    let st = threads.get_mut(&t).expect("state");
                    st.prev = st.current.take();
                }
            }
        }
    }

    let mut seen = std::collections::HashSet::new();
    let violations = raw_violations
        .into_iter()
        .filter(|v| seen.insert(v.static_key()))
        .collect();
    OfflineReport {
        violations,
        transactions,
        edges: pdg.edges().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::ids::{MethodId, ObjId};

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const M0: MethodId = MethodId(0);
    const M1: MethodId = MethodId(1);
    const O: ObjId = ObjId(0);

    #[test]
    fn detects_interleaved_atomic_regions() {
        // T0: [wr f … rd g]; T1: [wr g, rd f] interleaved inside.
        let events = vec![
            TraceEvent::Enter(T0, M0),
            TraceEvent::Write(T0, O, 0),
            TraceEvent::Enter(T1, M1),
            TraceEvent::Write(T1, O, 1),
            TraceEvent::Read(T1, O, 0),
            TraceEvent::Exit(T1, M1),
            TraceEvent::Read(T0, O, 1),
            TraceEvent::Exit(T0, M0),
        ];
        let report = analyze_trace(
            &events,
            &AtomicitySpec::all_atomic(),
            OfflineConfig::default(),
        );
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.transactions, 2);
        assert!(report.edges >= 2);
    }

    #[test]
    fn serial_regions_are_clean() {
        let events = vec![
            TraceEvent::Enter(T0, M0),
            TraceEvent::Write(T0, O, 0),
            TraceEvent::Read(T0, O, 1),
            TraceEvent::Exit(T0, M0),
            TraceEvent::Enter(T1, M1),
            TraceEvent::Write(T1, O, 1),
            TraceEvent::Read(T1, O, 0),
            TraceEvent::Exit(T1, M1),
        ];
        let report = analyze_trace(
            &events,
            &AtomicitySpec::all_atomic(),
            OfflineConfig::default(),
        );
        assert!(report.violations.is_empty());
    }

    #[test]
    fn unary_accesses_are_single_access_transactions() {
        // Excluded method: each access is its own unary transaction; a
        // single access on each side cannot form a cycle.
        let spec = AtomicitySpec::excluding([M0, M1]);
        let events = vec![
            TraceEvent::Enter(T0, M0),
            TraceEvent::Write(T0, O, 0),
            TraceEvent::Enter(T1, M1),
            TraceEvent::Write(T1, O, 0),
            TraceEvent::Read(T1, O, 0),
            TraceEvent::Exit(T1, M1),
            TraceEvent::Read(T0, O, 0),
            TraceEvent::Exit(T0, M0),
        ];
        let report = analyze_trace(&events, &spec, OfflineConfig::default());
        assert!(report.violations.is_empty());
        assert_eq!(report.transactions, 4);
    }

    #[test]
    fn unary_access_can_join_a_cycle_with_a_regular_transaction() {
        // R (T0, atomic): wr f … wr f ; u (T1, unary): rd f between them.
        let spec = AtomicitySpec::excluding([M1]);
        let events = vec![
            TraceEvent::Enter(T0, M0),
            TraceEvent::Write(T0, O, 0),
            TraceEvent::Enter(T1, M1),
            TraceEvent::Read(T1, O, 0),
            TraceEvent::Exit(T1, M1),
            TraceEvent::Write(T0, O, 0),
            TraceEvent::Exit(T0, M0),
        ];
        let report = analyze_trace(&events, &spec, OfflineConfig::default());
        assert_eq!(
            report.violations.len(),
            1,
            "W→R and R→W around the unary read"
        );
    }

    #[test]
    fn arrays_skipped_unless_configured() {
        let events = vec![
            TraceEvent::Enter(T0, M0),
            TraceEvent::ArrayWrite(T0, O, 3),
            TraceEvent::Enter(T1, M1),
            TraceEvent::ArrayWrite(T1, O, 4),
            TraceEvent::ArrayRead(T1, O, 3),
            TraceEvent::Exit(T1, M1),
            TraceEvent::ArrayRead(T0, O, 4),
            TraceEvent::Exit(T0, M0),
        ];
        let spec = AtomicitySpec::all_atomic();
        let off = analyze_trace(&events, &spec, OfflineConfig::default());
        assert!(off.violations.is_empty(), "arrays not analyzed by default");
        let on = analyze_trace(
            &events,
            &spec,
            OfflineConfig {
                instrument_arrays: true,
            },
        );
        assert_eq!(
            on.violations.len(),
            1,
            "conflated array metadata yields the (imprecise) cycle"
        );
    }

    #[test]
    fn lock_discipline_is_serializable() {
        let lock = ObjId(1);
        let mut events = Vec::new();
        for (t, m) in [(T0, M0), (T1, M1), (T0, M0), (T1, M1)] {
            events.extend([
                TraceEvent::Enter(t, m),
                TraceEvent::SyncAcquire(t, lock),
                TraceEvent::Read(t, O, 0),
                TraceEvent::Write(t, O, 0),
                TraceEvent::SyncRelease(t, lock),
                TraceEvent::Exit(t, m),
            ]);
        }
        let report = analyze_trace(
            &events,
            &AtomicitySpec::all_atomic(),
            OfflineConfig::default(),
        );
        assert!(report.violations.is_empty());
    }
}
