//! A small worker pool that replays ICD SCC reports asynchronously, so PCD
//! runs off both the application threads and the pipeline's graph-owner
//! thread (paper §3.3 — PCD cost is proportional to SCCs, not to program
//! accesses, so a couple of background workers absorb it).
//!
//! Reports are submitted through cloneable [`ReplayHandle`]s; workers share
//! one channel, each accumulating violations and [`ReplayStats`] privately.
//! [`ReplayPool::drain`] closes the channel, joins the workers, and merges
//! their results, sorting violations by [`Violation::static_key`] so the
//! outcome is independent of which worker replayed which SCC.

use crate::replay::{replay_scc, ReplayStats};
use crate::violation::Violation;
use crossbeam::channel::{self, Receiver, Sender};
use dc_icd::SccReport;
use dc_obs::{EventKind, PipelineObs, Stage};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Handle for submitting SCC reports to a [`ReplayPool`]. Cheap to clone;
/// drop all handles before [`ReplayPool::drain`] or the drain will wait for
/// work that never arrives.
pub struct ReplayHandle {
    sender: Sender<SccReport>,
    obs: Option<Arc<PipelineObs>>,
}

impl Clone for ReplayHandle {
    fn clone(&self) -> Self {
        ReplayHandle {
            sender: self.sender.clone(),
            obs: self.obs.clone(),
        }
    }
}

impl std::fmt::Debug for ReplayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayHandle").finish_non_exhaustive()
    }
}

impl ReplayHandle {
    /// Queues one SCC for replay. Reports submitted after the pool drained
    /// are dropped (the run is over).
    pub fn submit(&self, scc: SccReport) {
        if let Some(obs) = &self.obs {
            obs.replay.submitted.inc();
            obs.replay.queue_depth.inc();
            obs.trace(Stage::Replay, EventKind::ReplaySubmit, scc.len() as u64);
        }
        let _ = self.sender.send(scc);
    }
}

/// The worker pool. Owns one submission sender (see [`ReplayPool::handle`])
/// and the worker join handles.
pub struct ReplayPool {
    sender: Sender<SccReport>,
    workers: Vec<JoinHandle<(Vec<Violation>, ReplayStats)>>,
    obs: Option<Arc<PipelineObs>>,
}

impl std::fmt::Debug for ReplayPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayPool")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl ReplayPool {
    /// Spawns a pool of `workers` replay threads (at least one).
    pub fn new(workers: usize) -> Self {
        Self::with_obs(workers, None)
    }

    /// Like [`ReplayPool::new`] with an optional observability registry;
    /// `None` runs exactly the uninstrumented code.
    pub fn with_obs(workers: usize, obs: Option<Arc<PipelineObs>>) -> Self {
        let (tx, rx) = channel::unbounded::<SccReport>();
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = rx.clone();
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("dc-pcd-replay-{i}"))
                    .spawn(move || worker(rx, obs))
                    .expect("spawn PCD replay worker")
            })
            .collect();
        ReplayPool {
            sender: tx,
            workers,
            obs,
        }
    }

    /// A new submission handle.
    pub fn handle(&self) -> ReplayHandle {
        ReplayHandle {
            sender: self.sender.clone(),
            obs: self.obs.clone(),
        }
    }

    /// Closes the pool: waits for every submitted SCC to finish replaying,
    /// joins the workers, and returns the merged violations (sorted by
    /// static key, so the result is deterministic regardless of worker
    /// scheduling) and stats. Every [`ReplayHandle`] must already be
    /// dropped — with the ICD pipeline, drain it first: that stops the
    /// graph owner, which drops the SCC sink and its handle.
    pub fn drain(self) -> (Vec<Violation>, ReplayStats) {
        let ReplayPool {
            sender,
            workers,
            obs: _,
        } = self;
        drop(sender);
        let mut violations = Vec::new();
        let mut stats = ReplayStats::default();
        for w in workers {
            let (v, s) = w.join().expect("PCD replay worker panicked");
            violations.extend(v);
            stats.merge(s);
        }
        violations.sort_by_key(Violation::static_key);
        (violations, stats)
    }
}

fn worker(rx: Receiver<SccReport>, obs: Option<Arc<PipelineObs>>) -> (Vec<Violation>, ReplayStats) {
    let mut violations = Vec::new();
    let mut stats = ReplayStats::default();
    for scc in rx.iter() {
        let t0 = obs.as_ref().and_then(|o| o.clock());
        if let Some(obs) = &obs {
            obs.replay.queue_depth.dec();
        }
        let (v, s) = replay_scc(&scc);
        if let Some(obs) = &obs {
            obs.replay.latency.record_elapsed(t0);
            obs.replay.completed.inc();
            obs.replay.violations.add(v.len() as u64);
            obs.trace(Stage::Replay, EventKind::ReplayDone, v.len() as u64);
        }
        violations.extend(v);
        stats.merge(s);
    }
    (violations, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_icd::{LogEntry, ReplayConstraint, TxId, TxKind, TxSnapshot};
    use dc_runtime::ids::{MethodId, ObjId, ThreadId};
    use std::sync::Arc;

    /// The classic two-transaction cycle as an SCC report.
    fn racy_scc(base: u64) -> SccReport {
        let entry = |obj: u32, cell: u32, wr: bool| LogEntry::new(ObjId(obj), cell, wr, false);
        let tx = |id: u64, thread: u16, log: Vec<LogEntry>| TxSnapshot {
            id: TxId(id),
            thread: ThreadId(thread),
            kind: TxKind::Regular(MethodId(id as u32)),
            seq: 1,
            log: Arc::new(log),
        };
        let constraint =
            |src: u64, src_thread: u16, src_pos: u32, dst: u64, dst_pos: u32| ReplayConstraint {
                dst: TxId(dst),
                dst_pos,
                src: TxId(src),
                src_thread: ThreadId(src_thread),
                src_seq: 1,
                src_pos,
            };
        SccReport {
            txs: vec![
                tx(base, 0, vec![entry(0, 0, true), entry(0, 1, false)]),
                tx(base + 1, 1, vec![entry(0, 0, false), entry(0, 1, true)]),
            ],
            edges: vec![],
            constraints: vec![
                constraint(base, 0, 1, base + 1, 0),
                constraint(base + 1, 1, 2, base, 1),
            ],
        }
    }

    #[test]
    fn pool_replays_submissions_and_merges_results() {
        let pool = ReplayPool::new(3);
        let handle = pool.handle();
        let second = handle.clone();
        for i in 0..8u64 {
            let h = if i % 2 == 0 { &handle } else { &second };
            h.submit(racy_scc(1 + i * 10));
        }
        drop(handle);
        drop(second);
        let (violations, stats) = pool.drain();
        assert_eq!(stats.txs, 16);
        assert_eq!(stats.cycles, 8);
        assert_eq!(violations.len(), 8);
    }

    #[test]
    fn drain_of_idle_pool_returns_empty() {
        let pool = ReplayPool::new(2);
        let (violations, stats) = pool.drain();
        assert!(violations.is_empty());
        assert_eq!(stats, ReplayStats::default());
    }
}
