//! The precise dependence graph (PDG) and the Figure-5 last-access rules.
//!
//! PCD tracks, per field, the last transaction to write it (`W(f)`) and each
//! thread's last transaction to read it since that write (`R(T,f)`). Each
//! replayed access adds precise cross-thread PDG edges and updates the
//! tables; a PDG cycle is a precise conflict-serializability violation.

use dc_icd::{TxId, TxKind};
use dc_runtime::ids::{CellId, ObjId, ThreadId};
use std::collections::HashMap;

/// A field identity: object plus cell (arrays are conflated by the caller).
pub type Field = (ObjId, CellId);

/// One precise dependence edge with its creation order (for blame
/// assignment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PdgEdge {
    /// Source transaction.
    pub src: TxId,
    /// Sink transaction.
    pub dst: TxId,
    /// Creation sequence number within this PCD invocation.
    pub order: u32,
}

/// The PDG under construction plus the last-access tables.
#[derive(Debug, Default)]
pub struct Pdg {
    /// `W(f)`: last transaction to write each field.
    last_write: HashMap<Field, TxId>,
    /// `R(T,f)`: per field, each thread's last read transaction since the
    /// last write.
    last_reads: HashMap<Field, Vec<(ThreadId, TxId)>>,
    /// Adjacency (deduplicated).
    out: HashMap<TxId, Vec<TxId>>,
    /// All edges in creation order.
    edges: Vec<PdgEdge>,
    /// Executing thread of each transaction.
    thread_of: HashMap<TxId, ThreadId>,
    /// Kind of each transaction (for reporting).
    kind_of: HashMap<TxId, TxKind>,
}

impl Pdg {
    /// Creates an empty PDG over the given transactions.
    pub fn new(txs: impl IntoIterator<Item = (TxId, ThreadId, TxKind)>) -> Self {
        let mut pdg = Pdg::default();
        for (id, thread, kind) in txs {
            pdg.thread_of.insert(id, thread);
            pdg.kind_of.insert(id, kind);
        }
        pdg
    }

    /// Registers a transaction after construction (used by the offline
    /// analysis, which discovers transactions as it walks the trace).
    pub fn add_tx(&mut self, id: TxId, thread: ThreadId, kind: TxKind) {
        self.thread_of.insert(id, thread);
        self.kind_of.insert(id, kind);
    }

    /// The executing thread of `tx`.
    pub fn thread(&self, tx: TxId) -> ThreadId {
        self.thread_of[&tx]
    }

    /// The kind of `tx`.
    pub fn kind(&self, tx: TxId) -> TxKind {
        self.kind_of[&tx]
    }

    /// All PDG edges in creation order.
    pub fn edges(&self) -> &[PdgEdge] {
        &self.edges
    }

    /// Replays a read of `f` by `tx` (Figure 5, `READ`). Returns the new
    /// cross-thread edge, if one was added.
    pub fn read(&mut self, f: Field, tx: TxId) -> Option<PdgEdge> {
        let t = self.thread(tx);
        let mut added = None;
        if let Some(&w) = self.last_write.get(&f) {
            if self.thread(w) != t {
                added = self.add_edge(w, tx);
            }
        }
        let readers = self.last_reads.entry(f).or_default();
        match readers.iter_mut().find(|(rt, _)| *rt == t) {
            Some(slot) => slot.1 = tx,
            None => readers.push((t, tx)),
        }
        added
    }

    /// Replays a write of `f` by `tx` (Figure 5, `WRITE`). Returns the new
    /// cross-thread edges.
    pub fn write(&mut self, f: Field, tx: TxId) -> Vec<PdgEdge> {
        let t = self.thread(tx);
        let mut added = Vec::new();
        if let Some(&w) = self.last_write.get(&f) {
            if self.thread(w) != t {
                added.extend(self.add_edge(w, tx));
            }
        }
        if let Some(readers) = self.last_reads.get(&f) {
            let edges: Vec<TxId> = readers
                .iter()
                .filter(|&&(rt, _)| rt != t)
                .map(|&(_, rtx)| rtx)
                .collect();
            for rtx in edges {
                added.extend(self.add_edge(rtx, tx));
            }
        }
        self.last_write.insert(f, tx);
        self.last_reads.remove(&f); // ∀T, R(T,f) := null
        added
    }

    /// Adds an intra-thread program-order edge: it participates in cycle
    /// detection (Velodrome's graph chains consecutive transactions of a
    /// thread, §2) but not in blame ordering.
    pub fn add_intra_edge(&mut self, src: TxId, dst: TxId) {
        if src == dst {
            return;
        }
        let succ = self.out.entry(src).or_default();
        if !succ.contains(&dst) {
            succ.push(dst);
        }
    }

    /// Adds `src → dst`, deduplicating; self-edges are ignored.
    fn add_edge(&mut self, src: TxId, dst: TxId) -> Option<PdgEdge> {
        if src == dst {
            return None;
        }
        let succ = self.out.entry(src).or_default();
        if succ.contains(&dst) {
            return None;
        }
        succ.push(dst);
        let edge = PdgEdge {
            src,
            dst,
            order: u32::try_from(self.edges.len()).expect("too many PDG edges"),
        };
        self.edges.push(edge);
        Some(edge)
    }

    /// Finds a cycle through the just-added edge `src → dst`: a path from
    /// `dst` back to `src`. Returns the cycle as a node list
    /// `[src, dst, …, src-predecessor]` if found.
    pub fn cycle_through(&self, edge: PdgEdge) -> Option<Vec<TxId>> {
        // DFS from dst searching for src.
        let mut stack = vec![edge.dst];
        let mut parent: HashMap<TxId, TxId> = HashMap::new();
        let mut visited: std::collections::HashSet<TxId> = [edge.dst].into_iter().collect();
        while let Some(v) = stack.pop() {
            if v == edge.src {
                // Reconstruct dst → … → src, then prepend the edge.
                let mut path = vec![v];
                let mut cur = v;
                while cur != edge.dst {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse(); // dst … src
                let mut cycle = vec![edge.src];
                cycle.extend(path.into_iter().take_while(|&n| n != edge.src));
                return Some(cycle);
            }
            if let Some(succ) = self.out.get(&v) {
                for &w in succ {
                    if visited.insert(w) {
                        parent.insert(w, v);
                        stack.push(w);
                    }
                }
            }
        }
        None
    }

    /// Blame assignment (paper §3.3): blame each cycle member whose first
    /// outgoing cycle edge was created before its first incoming cycle edge
    /// — it "completed" the cycle. Falls back to the sink of the newest
    /// edge if the heuristic selects nobody.
    pub fn blame(&self, cycle: &[TxId]) -> Vec<TxId> {
        let members: std::collections::HashSet<TxId> = cycle.iter().copied().collect();
        let mut first_out: HashMap<TxId, u32> = HashMap::new();
        let mut first_in: HashMap<TxId, u32> = HashMap::new();
        for e in &self.edges {
            if members.contains(&e.src) && members.contains(&e.dst) {
                first_out.entry(e.src).or_insert(e.order);
                first_in.entry(e.dst).or_insert(e.order);
            }
        }
        let mut blamed: Vec<TxId> = cycle
            .iter()
            .copied()
            .filter(|tx| match (first_out.get(tx), first_in.get(tx)) {
                (Some(o), Some(i)) => o < i,
                _ => false,
            })
            .collect();
        if blamed.is_empty() {
            if let Some(last) = self
                .edges
                .iter()
                .rev()
                .find(|e| members.contains(&e.src) && members.contains(&e.dst))
            {
                blamed.push(last.dst);
            }
        }
        blamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::ids::MethodId;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const F: Field = (ObjId(0), 0);
    const G: Field = (ObjId(0), 1);

    fn pdg2() -> Pdg {
        Pdg::new([
            (TxId(1), T0, TxKind::Regular(MethodId(0))),
            (TxId(2), T1, TxKind::Regular(MethodId(1))),
            (TxId(3), T0, TxKind::Unary),
        ])
    }

    #[test]
    fn write_read_dependence() {
        let mut pdg = pdg2();
        assert!(pdg.write(F, TxId(1)).is_empty());
        let e = pdg.read(F, TxId(2)).expect("W→R edge");
        assert_eq!((e.src, e.dst), (TxId(1), TxId(2)));
    }

    #[test]
    fn read_write_dependence() {
        let mut pdg = pdg2();
        pdg.read(F, TxId(1));
        let es = pdg.write(F, TxId(2));
        assert_eq!(es.len(), 1);
        assert_eq!((es[0].src, es[0].dst), (TxId(1), TxId(2)));
    }

    #[test]
    fn write_write_dependence() {
        let mut pdg = pdg2();
        pdg.write(F, TxId(1));
        let es = pdg.write(F, TxId(2));
        assert_eq!(es.len(), 1);
        assert_eq!((es[0].src, es[0].dst), (TxId(1), TxId(2)));
    }

    #[test]
    fn same_thread_accesses_add_no_edges() {
        let mut pdg = pdg2();
        pdg.write(F, TxId(1));
        assert!(pdg.read(F, TxId(3)).is_none(), "same thread: intra");
        assert!(pdg.write(F, TxId(3)).is_empty());
    }

    #[test]
    fn write_clears_reader_table() {
        let mut pdg = pdg2();
        pdg.read(F, TxId(1));
        pdg.write(F, TxId(2)); // clears R(·, F)
                               // A later write by T1's tx again: no stale read→write edge to Tx1.
        let es = pdg.write(F, TxId(2));
        assert!(es.is_empty(), "duplicate edge and cleared readers");
    }

    #[test]
    fn distinct_fields_are_independent() {
        let mut pdg = pdg2();
        pdg.write(F, TxId(1));
        assert!(
            pdg.read(G, TxId(2)).is_none(),
            "no dependence across fields"
        );
    }

    #[test]
    fn edges_are_deduplicated_but_ordered() {
        let mut pdg = pdg2();
        pdg.write(F, TxId(1));
        pdg.read(F, TxId(2));
        pdg.read(F, TxId(2)); // duplicate read: no new edge
        pdg.write(G, TxId(2));
        pdg.read(G, TxId(1)); // second distinct edge
        assert_eq!(pdg.edges().len(), 2);
        assert!(pdg.edges()[0].order < pdg.edges()[1].order);
    }

    #[test]
    fn cycle_detection_finds_two_cycle() {
        let mut pdg = pdg2();
        pdg.write(F, TxId(1));
        pdg.read(F, TxId(2)); // 1→2
        pdg.write(G, TxId(2));
        let e = pdg.read(G, TxId(1)).unwrap(); // 2→1 closes the cycle
        let cycle = pdg.cycle_through(e).expect("cycle");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&TxId(1)) && cycle.contains(&TxId(2)));
    }

    #[test]
    fn no_cycle_on_dag() {
        let mut pdg = pdg2();
        pdg.write(F, TxId(1));
        let e = pdg.read(F, TxId(2)).unwrap();
        assert!(pdg.cycle_through(e).is_none());
    }

    #[test]
    fn blame_prefers_early_outgoing_edge() {
        let mut pdg = pdg2();
        // Tx1's outgoing edge (order 0) precedes its incoming (order 1):
        // Tx1 completes the cycle and is blamed — the Figure 3 situation.
        pdg.write(F, TxId(1));
        pdg.read(F, TxId(2)); // edge 1→2, order 0
        pdg.write(G, TxId(2));
        let e = pdg.read(G, TxId(1)).unwrap(); // edge 2→1, order 1
        let cycle = pdg.cycle_through(e).unwrap();
        assert_eq!(pdg.blame(&cycle), vec![TxId(1)]);
    }
}
