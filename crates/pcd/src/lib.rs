//! PCD — precise cycle detection, the second of DoubleChecker's two
//! cooperating analyses (paper §3.3).
//!
//! PCD is not a standalone analysis: it consumes the SCCs that ICD detects
//! in the imprecise dependence graph, replays the member transactions'
//! read/write logs in an order consistent with the recorded cross-thread
//! edges, tracks precise last-writer / last-reader information per field
//! (Figure 5), builds the precise dependence graph (PDG), detects cycles —
//! each a real conflict-serializability violation — and performs blame
//! assignment for iterative refinement.
//!
//! Entry point: [`replay_scc`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod offline;
pub mod pool;
pub mod replay;
pub mod rules;
pub mod violation;

pub use offline::{analyze_trace, OfflineConfig, OfflineReport};
pub use pool::{ReplayHandle, ReplayPool};
pub use replay::{replay_scc, ReplayStats};
pub use rules::{Field, Pdg, PdgEdge};
pub use violation::{CycleMember, Violation};
