//! Precise atomicity-violation reports with blame assignment.

use crate::rules::Pdg;
use dc_icd::{TxId, TxKind};
use dc_runtime::ids::{MethodId, ThreadId};

/// One transaction participating in a precise cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleMember {
    /// The transaction.
    pub tx: TxId,
    /// Its executing thread.
    pub thread: ThreadId,
    /// Regular (with rooting method) or unary.
    pub kind: TxKind,
}

/// A precise conflict-serializability violation: a PDG cycle, with blame
/// assignment (paper §3.3) identifying the transaction(s) that completed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The cycle's member transactions.
    pub cycle: Vec<CycleMember>,
    /// Blamed transactions (usually one).
    pub blamed: Vec<TxId>,
}

impl Violation {
    /// Builds a violation from a detected PDG cycle.
    pub fn from_cycle(pdg: &Pdg, cycle: &[TxId]) -> Self {
        let members = cycle
            .iter()
            .map(|&tx| CycleMember {
                tx,
                thread: pdg.thread(tx),
                kind: pdg.kind(tx),
            })
            .collect();
        Violation {
            cycle: members,
            blamed: pdg.blame(cycle),
        }
    }

    /// Methods of the blamed regular transactions — the units iterative
    /// refinement removes from the atomicity specification (Figure 6).
    pub fn blamed_methods(&self) -> Vec<MethodId> {
        let mut methods: Vec<MethodId> = self
            .blamed
            .iter()
            .filter_map(|tx| {
                self.cycle
                    .iter()
                    .find(|m| m.tx == *tx)
                    .and_then(|m| m.kind.method())
            })
            .collect();
        // If blame fell only on unary transactions, fall back to every
        // regular member so refinement can still make progress.
        if methods.is_empty() {
            methods = self.cycle.iter().filter_map(|m| m.kind.method()).collect();
        }
        methods.sort();
        methods.dedup();
        methods
    }

    /// A static identity for deduplication across trials: the sorted multiset
    /// of member methods (unary members collapse to `None`).
    pub fn static_key(&self) -> Vec<Option<MethodId>> {
        let mut key: Vec<Option<MethodId>> = self.cycle.iter().map(|m| m.kind.method()).collect();
        key.sort();
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(kinds: &[(u64, u16, TxKind)], blamed: &[u64]) -> Violation {
        Violation {
            cycle: kinds
                .iter()
                .map(|&(id, t, kind)| CycleMember {
                    tx: TxId(id),
                    thread: ThreadId(t),
                    kind,
                })
                .collect(),
            blamed: blamed.iter().map(|&b| TxId(b)).collect(),
        }
    }

    #[test]
    fn blamed_methods_picks_blamed_regular_members() {
        let v = violation(
            &[
                (1, 0, TxKind::Regular(MethodId(10))),
                (2, 1, TxKind::Regular(MethodId(20))),
            ],
            &[1],
        );
        assert_eq!(v.blamed_methods(), vec![MethodId(10)]);
    }

    #[test]
    fn blame_on_unary_falls_back_to_regular_members() {
        let v = violation(
            &[(1, 0, TxKind::Unary), (2, 1, TxKind::Regular(MethodId(20)))],
            &[1],
        );
        assert_eq!(v.blamed_methods(), vec![MethodId(20)]);
    }

    #[test]
    fn static_key_is_order_insensitive() {
        let v1 = violation(
            &[
                (1, 0, TxKind::Regular(MethodId(1))),
                (2, 1, TxKind::Regular(MethodId(2))),
            ],
            &[1],
        );
        let v2 = violation(
            &[
                (9, 1, TxKind::Regular(MethodId(2))),
                (8, 0, TxKind::Regular(MethodId(1))),
            ],
            &[9],
        );
        assert_eq!(v1.static_key(), v2.static_key());
    }
}
