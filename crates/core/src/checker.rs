//! The DoubleChecker [`Checker`]: Octet + ICD (+ logging) + PCD composed
//! into one analysis, configurable into every mode the paper evaluates.
//!
//! * **Single-run mode** — ICD with read/write logging; every ICD SCC is
//!   handed to PCD in the same run. Fully sound and precise (§3.1).
//! * **First run of multi-run mode** — ICD without logging or PCD; collects
//!   the *static transaction information* (methods of regular transactions
//!   in imprecise cycles + whether any unary transaction was in a cycle).
//! * **Second run of multi-run mode** — like single-run, but instruments
//!   only the transactions named by the first run's static information.
//! * **PCD-only variant** (§5.4) — ICD's cycle detection is bypassed as a
//!   filter: PCD processes every executed transaction at run end.

use crate::report::{DcStats, StaticTxInfo};
use dc_icd::{Icd, IcdConfig, OpTransport, PipelineError, PipelineMode, SccReport, SccSink};
use dc_obs::{EventKind, ObsLevel, PipelineObs, PipelineReport, Stage, TraceEvent};
use dc_octet::{BarrierOutcome, CoordinationMode, OctetState, Protocol, TransitionSink};
use dc_pcd::{replay_scc, ReplayPool, ReplayStats, Violation};
use dc_runtime::checker::Checker;
use dc_runtime::heap::Heap;
use dc_runtime::ids::{AccessKind, CellId, MethodId, ObjId, ThreadId, SYNC_CELL};
use dc_runtime::spec::{AtomicitySpec, EnterOutcome, ExitOutcome, TxFilter, TxTracker};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Configuration of a DoubleChecker instance.
#[derive(Clone, Debug)]
pub struct DcConfig {
    /// Record read/write logs (off in the first run of multi-run mode).
    pub logging: bool,
    /// Hand ICD SCCs to PCD in this run.
    pub run_pcd: bool,
    /// Run PCD over *all* transactions at run end (§5.4 PCD-only variant;
    /// forces `collect_every = 0` behaviour).
    pub pcd_only: bool,
    /// Which transactions to instrument.
    pub filter: TxFilter,
    /// Instrument array accesses (off by default, matching the paper).
    pub instrument_arrays: bool,
    /// Detect SCCs in the IDG (disabled only for the §5.4 array-overhead
    /// comparison).
    pub detect_cycles: bool,
    /// Transaction-collector cadence (0 disables).
    pub collect_every: u32,
    /// Octet coordination mode: `Threaded` under the real engine,
    /// `Immediate` under the deterministic engine.
    pub coordination: CoordinationMode,
    /// Run graph maintenance, SCC detection, and PCD replay asynchronously:
    /// application threads enqueue graph operations for a dedicated
    /// graph-owner thread, and SCC reports go to a small PCD replay pool.
    /// Off by default (the deterministic engine and the interleaving tests
    /// use the synchronous path).
    pub pipelined: bool,
    /// How much the pipeline observability layer records. `Off` compiles to
    /// a single pointer test per instrumentation site; no level changes
    /// checker results. Defaults to the `DC_OBS` environment variable
    /// (`off`/`counters`/`full`; legacy `DC_TRACE` means `full`), read once.
    pub observability: ObsLevel,
    /// Transport carrying graph ops to the owner thread in pipelined mode
    /// (ignored otherwise). Defaults to the `DC_TRANSPORT` environment
    /// variable (`ring`/`channel`), read once; `ring` when unset.
    pub op_transport: OpTransport,
    /// IDG shards in pipelined mode (ignored otherwise): 1 keeps the single
    /// graph-owner thread, above 1 partitions the graph by connected
    /// component across that many shard-owner threads. Defaults to the
    /// `DC_SHARDS` environment variable, read once; 1 when unset.
    pub shards: u32,
    /// Octet's per-thread ownership inline cache (hit = no state-word
    /// load). `false` restores the exact uncached barrier — the
    /// differential baseline for `--barrier-cache off`. Defaults to the
    /// `DC_BARRIER_CACHE` environment variable (`on`/`off`), read once;
    /// on when unset.
    pub barrier_cache: bool,
}

/// The process-wide default observability level: `DC_OBS` if set and valid,
/// else `full` when the legacy `DC_TRACE` is set, else off. Read once.
fn default_obs_level() -> ObsLevel {
    static LEVEL: OnceLock<ObsLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if let Some(v) = std::env::var_os("DC_OBS") {
            if let Some(level) = v.to_str().and_then(ObsLevel::parse) {
                return level;
            }
        }
        if std::env::var_os("DC_TRACE").is_some() {
            return ObsLevel::Full;
        }
        ObsLevel::Off
    })
}

/// The process-wide default op transport: `DC_TRANSPORT` if set and valid,
/// else the ring. Read once.
fn default_op_transport() -> OpTransport {
    static TRANSPORT: OnceLock<OpTransport> = OnceLock::new();
    *TRANSPORT.get_or_init(|| {
        std::env::var_os("DC_TRANSPORT")
            .and_then(|v| v.to_str().and_then(OpTransport::parse))
            .unwrap_or_default()
    })
}

/// The process-wide default pipelined shard count: `DC_SHARDS` if set and a
/// positive integer, else 1. Read once.
fn default_shards() -> u32 {
    static SHARDS: OnceLock<u32> = OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::env::var_os("DC_SHARDS")
            .and_then(|v| v.to_str().and_then(|s| s.parse().ok()))
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    })
}

/// The process-wide default barrier-cache switch: `DC_BARRIER_CACHE` if set
/// to `on`/`off`, else on. Read once.
fn default_barrier_cache() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| {
        let v = std::env::var_os("DC_BARRIER_CACHE");
        !matches!(v.as_deref().and_then(|s| s.to_str()), Some("off"))
    })
}

impl DcConfig {
    /// Single-run mode: ICD + logging + PCD, everything instrumented.
    pub fn single_run(coordination: CoordinationMode) -> Self {
        DcConfig {
            logging: true,
            run_pcd: true,
            pcd_only: false,
            filter: TxFilter::all(),
            instrument_arrays: false,
            detect_cycles: true,
            collect_every: 128,
            coordination,
            pipelined: false,
            observability: default_obs_level(),
            op_transport: default_op_transport(),
            shards: default_shards(),
            barrier_cache: default_barrier_cache(),
        }
    }

    /// Returns this configuration with the asynchronous analysis pipeline
    /// switched on or off.
    pub fn with_pipelined(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Returns this configuration with the given observability level
    /// (overriding the `DC_OBS` environment default).
    pub fn with_observability(mut self, level: ObsLevel) -> Self {
        self.observability = level;
        self
    }

    /// Returns this configuration with the given pipelined op transport
    /// (overriding the `DC_TRANSPORT` environment default).
    pub fn with_op_transport(mut self, transport: OpTransport) -> Self {
        self.op_transport = transport;
        self
    }

    /// Returns this configuration with the given pipelined IDG shard count
    /// (overriding the `DC_SHARDS` environment default).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Returns this configuration with Octet's ownership inline cache
    /// switched on or off (overriding the `DC_BARRIER_CACHE` environment
    /// default).
    pub fn with_barrier_cache(mut self, barrier_cache: bool) -> Self {
        self.barrier_cache = barrier_cache;
        self
    }

    /// First run of multi-run mode: ICD only, no logging.
    pub fn first_run(coordination: CoordinationMode) -> Self {
        DcConfig {
            logging: false,
            run_pcd: false,
            ..Self::single_run(coordination)
        }
    }

    /// Second run of multi-run mode: like single-run restricted to the
    /// first run's static transaction information.
    pub fn second_run(info: &StaticTxInfo, coordination: CoordinationMode) -> Self {
        DcConfig {
            filter: info.to_filter(),
            ..Self::single_run(coordination)
        }
    }

    /// The §5.4 PCD-only straw man: no ICD filtering; PCD replays the whole
    /// execution at run end.
    pub fn pcd_only(coordination: CoordinationMode) -> Self {
        DcConfig {
            pcd_only: true,
            run_pcd: false, // per-SCC replay disabled; one bulk replay at end
            collect_every: 0,
            ..Self::single_run(coordination)
        }
    }
}

/// The transition sink wired into Octet: delivers coordination events to
/// ICD's `handleConflictingTransition`.
#[derive(Debug)]
pub struct IcdSink(Arc<Icd>);

impl TransitionSink for IcdSink {
    fn conflicting(&self, resp: ThreadId, req: ThreadId) {
        self.0.handle_conflicting(resp, req);
    }

    fn conflicting_all(&self, resp: ThreadId, reqs: &[ThreadId]) {
        self.0.handle_conflicting_all(resp, reqs);
    }
}

/// Per-thread instrumentation context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Context {
    /// Accesses are analyzed (inside a covered regular transaction, or
    /// unary context with unary instrumentation on).
    Instrumented,
    /// Accesses are skipped (uncovered transaction / filtered unary).
    Skipped,
}

struct Local {
    tracker: TxTracker,
    context: Context,
}

#[repr(align(128))]
struct Slot {
    local: UnsafeCell<Local>,
}

// SAFETY: `local` is only accessed by the owning thread.
unsafe impl Sync for Slot {}

/// The composed DoubleChecker analysis.
pub struct DoubleChecker {
    config: DcConfig,
    spec: AtomicitySpec,
    icd: Arc<Icd>,
    octet: OnceLock<Protocol<IcdSink>>,
    /// Per-object "conflate cells" flags (arrays etc.), sized at run_begin.
    conflated: OnceLock<Vec<bool>>,
    slots: Box<[Slot]>,
    violations: Mutex<Vec<Violation>>,
    pcd_stats: Mutex<ReplayStats>,
    /// Shared with the pipelined SCC sink (graph-owner thread), hence `Arc`.
    static_info: Arc<Mutex<StaticTxInfo>>,
    /// Shared with the pipelined SCC sink, hence `Arc`.
    sccs_to_pcd: Arc<AtomicU64>,
    /// The PCD replay pool (pipelined mode with `run_pcd`); taken at
    /// `run_end`.
    pool: Mutex<Option<ReplayPool>>,
    /// Observability registry shared with Octet, the ICD pipeline, and the
    /// replay pool; `None` when the level is `Off`.
    obs: Option<Arc<PipelineObs>>,
    /// First structural op-stream error the pipeline hit (pipelined mode
    /// only); captured at `run_end`'s drain.
    pipeline_error: Mutex<Option<PipelineError>>,
    n_threads: usize,
}

/// `DC_DEBUG_SCC_SIZE` diagnostic for one detected SCC. The env var is read
/// once (not per SCC).
fn debug_scc_size(scc: &SccReport) {
    static FLAG: OnceLock<bool> = OnceLock::new();
    if !*FLAG.get_or_init(|| std::env::var_os("DC_DEBUG_SCC_SIZE").is_some()) {
        return;
    }
    let regular = scc.txs.iter().filter(|t| t.kind.is_regular()).count();
    let mut methods: Vec<_> = scc
        .txs
        .iter()
        .filter_map(|t| t.kind.method())
        .map(|m| m.0)
        .collect();
    methods.sort_unstable();
    methods.dedup();
    eprintln!(
        "[scc] size {} regular {} methods {:?}",
        scc.len(),
        regular,
        &methods[..methods.len().min(12)]
    );
}

impl std::fmt::Debug for DoubleChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DoubleChecker")
            .field("threads", &self.n_threads)
            .field("config", &self.config)
            .finish()
    }
}

impl DoubleChecker {
    /// Creates a DoubleChecker for `n_threads` threads under `spec`.
    pub fn new(n_threads: usize, spec: AtomicitySpec, config: DcConfig) -> Self {
        let icd_config = IcdConfig {
            logging: config.logging,
            collect_every: if config.pcd_only {
                0
            } else {
                config.collect_every
            },
            detect_sccs: config.detect_cycles && !config.pcd_only,
            pipeline: if config.pipelined {
                PipelineMode::Pipelined
            } else {
                PipelineMode::Sync
            },
            transport: config.op_transport,
            shards: config.shards,
        };
        let static_info = Arc::new(Mutex::new(StaticTxInfo::default()));
        let sccs_to_pcd = Arc::new(AtomicU64::new(0));
        let obs = PipelineObs::new(config.observability);
        let (icd, pool) = if config.pipelined {
            // SCCs are detected on the graph-owner thread; the sink absorbs
            // static transaction info there and forwards the report to the
            // PCD replay pool (when this run executes PCD at all).
            let pool = config.run_pcd.then(|| ReplayPool::with_obs(2, obs.clone()));
            let handle = pool.as_ref().map(ReplayPool::handle);
            let info = Arc::clone(&static_info);
            let counter = Arc::clone(&sccs_to_pcd);
            let sink: SccSink = Box::new(move |scc: SccReport| {
                debug_scc_size(&scc);
                info.lock().absorb_scc(&scc);
                if let Some(handle) = &handle {
                    counter.fetch_add(1, Ordering::Relaxed);
                    handle.submit(scc);
                }
            });
            (
                Icd::with_observability(n_threads, icd_config, Some(sink), obs.clone()),
                pool,
            )
        } else {
            (
                Icd::with_observability(n_threads, icd_config, None, obs.clone()),
                None,
            )
        };
        let icd = Arc::new(icd);
        DoubleChecker {
            config,
            spec,
            icd,
            octet: OnceLock::new(),
            conflated: OnceLock::new(),
            slots: (0..n_threads)
                .map(|_| Slot {
                    local: UnsafeCell::new(Local {
                        tracker: TxTracker::new(),
                        context: Context::Skipped,
                    }),
                })
                .collect(),
            violations: Mutex::new(Vec::new()),
            pcd_stats: Mutex::new(ReplayStats::default()),
            static_info,
            sccs_to_pcd,
            pool: Mutex::new(pool),
            obs,
            pipeline_error: Mutex::new(None),
            n_threads,
        }
    }

    /// The first structural op-stream error the pipeline hit, if any.
    /// `None` until `run_end` has drained the pipeline, and always `None`
    /// in synchronous mode. A `Some` means the analysis results cover only
    /// the prefix applied before the error — incomplete, not wrong.
    pub fn pipeline_error(&self) -> Option<PipelineError> {
        *self.pipeline_error.lock()
    }

    /// The pipeline observability report, or `None` when observability is
    /// off. Complete once `run_end` returned (the pipeline has drained).
    pub fn pipeline_report(&self) -> Option<PipelineReport> {
        self.obs.as_ref().map(|o| o.report())
    }

    /// The trace ring's events (oldest first). Empty below
    /// [`ObsLevel::Full`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.obs
            .as_ref()
            .map(|o| o.trace_events())
            .unwrap_or_default()
    }

    /// The precise violations found, deduplicated by static identity.
    pub fn violations(&self) -> Vec<Violation> {
        let all = self.violations.lock();
        let mut seen = std::collections::HashSet::new();
        all.iter()
            .filter(|v| seen.insert(v.static_key()))
            .cloned()
            .collect()
    }

    /// The static transaction information collected for multi-run mode.
    pub fn static_info(&self) -> StaticTxInfo {
        self.static_info.lock().clone()
    }

    /// Run statistics (Table 3 columns plus analysis internals).
    pub fn stats(&self) -> DcStats {
        let icd = self.icd.stats();
        DcStats {
            regular_txs: icd.regular_txs.load(Ordering::Relaxed),
            unary_txs: icd.unary_txs.load(Ordering::Relaxed),
            regular_accesses: icd.regular_accesses.load(Ordering::Relaxed),
            unary_accesses: icd.unary_accesses.load(Ordering::Relaxed),
            log_entries: icd.log_entries.load(Ordering::Relaxed),
            collected_txs: icd.collected_txs.load(Ordering::Relaxed),
            idg_cross_edges: self.icd.cross_edges(),
            icd_sccs: self.icd.scc_count(),
            sccs_to_pcd: self.sccs_to_pcd.load(Ordering::Relaxed),
            graph_locks: icd.graph_locks.load(Ordering::Relaxed),
            pcd: *self.pcd_stats.lock(),
        }
    }

    /// SAFETY: must only be called from code running on thread `t`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn local(&self, t: ThreadId) -> &mut Local {
        &mut *self.slots[t.index()].local.get()
    }

    fn octet(&self) -> &Protocol<IcdSink> {
        self.octet.get().expect("run_begin initializes octet")
    }

    /// Consumes an SCC report: records static info (first run) and runs PCD
    /// (single-run / second run).
    fn process_scc(&self, scc: Option<SccReport>) {
        let Some(scc) = scc else { return };
        debug_scc_size(&scc);
        {
            let mut info = self.static_info.lock();
            info.absorb_scc(&scc);
        }
        if self.config.run_pcd {
            self.sccs_to_pcd.fetch_add(1, Ordering::Relaxed);
            let (violations, stats) = self.replay_observed(&scc);
            if !violations.is_empty() {
                self.violations.lock().extend(violations);
            }
            self.pcd_stats.lock().merge(stats);
        }
    }

    /// Inline (synchronous-path) replay of one SCC with the same replay
    /// metrics the pool's workers record, so `submitted == completed` holds
    /// in every mode.
    fn replay_observed(&self, scc: &SccReport) -> (Vec<Violation>, ReplayStats) {
        let t0 = self.obs.as_ref().and_then(|o| o.clock());
        if let Some(obs) = &self.obs {
            obs.replay.submitted.inc();
            obs.trace(Stage::Replay, EventKind::ReplaySubmit, scc.len() as u64);
        }
        let (violations, stats) = replay_scc(scc);
        if let Some(obs) = &self.obs {
            obs.replay.latency.record_elapsed(t0);
            obs.replay.completed.inc();
            obs.replay.violations.add(violations.len() as u64);
            obs.trace(
                Stage::Replay,
                EventKind::ReplayDone,
                violations.len() as u64,
            );
        }
        (violations, stats)
    }

    /// The instrumented access body shared by plain, array, and sync hooks.
    #[inline]
    fn access(&self, t: ThreadId, obj: ObjId, cell: CellId, kind: AccessKind, is_sync: bool) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if local.context == Context::Skipped {
            return;
        }
        // Fused fast path: one combined per-access check. No new ICD edge
        // events (so `before_access` would be a no-op) plus an
        // ownership-inline-cache hit (so the Octet barrier would classify
        // same-state without touching the state word) feed the elision
        // probe and the log tail directly — the whole hot kernel is
        // core-local. Anything else takes the full slow kernel.
        if self.icd.edge_events_unchanged(t) && self.octet().cache_probe(t, obj, kind) {
            self.record(t, obj, cell, kind, is_sync, false);
            return;
        }
        self.access_slow(t, obj, cell, kind, is_sync);
    }

    /// The full per-access kernel: unary merging / elision-epoch
    /// maintenance, the uncached Octet barrier (the inline cache was
    /// already probed — a hit with *changed* edge events still lands here
    /// so the unary cut happens first), Figure-4 post-processing, then the
    /// log tail.
    fn access_slow(&self, t: ThreadId, obj: ObjId, cell: CellId, kind: AccessKind, is_sync: bool) {
        // Unary merging / elision-epoch maintenance; may cut the unary tx.
        let scc = self.icd.before_access(t);
        if scc.is_some() {
            self.process_scc(scc);
        }
        // Octet barrier at object granularity, then Figure-4 post-processing.
        let outcome = self.octet().access_uncached(t, obj, kind);
        let mut force_log = false;
        match outcome {
            BarrierOutcome::Same => {}
            BarrierOutcome::FirstTouch => {
                if kind == AccessKind::Read {
                    self.icd.note_rdex_claim(t);
                }
            }
            BarrierOutcome::UpgradedToWrEx => {}
            BarrierOutcome::UpgradedToRdSh { prev_owner, .. } => {
                self.icd.handle_upgrading(t, prev_owner);
                force_log = true;
            }
            BarrierOutcome::Fence { .. } => {
                self.icd.handle_fence(t);
                force_log = true;
            }
            BarrierOutcome::Conflicting { new, .. } => {
                if let OctetState::RdEx(owner) = new {
                    debug_assert_eq!(owner, t);
                    self.icd.note_rdex_claim(t);
                }
                force_log = true;
            }
        }
        self.record(t, obj, cell, kind, is_sync, force_log);
    }

    /// Log the access at field granularity (arrays conflated), shared by
    /// the fused fast path and the slow kernel.
    #[inline]
    fn record(
        &self,
        t: ThreadId,
        obj: ObjId,
        cell: CellId,
        kind: AccessKind,
        is_sync: bool,
        force_log: bool,
    ) {
        let log_cell = if self
            .conflated
            .get()
            .is_some_and(|c| c.get(obj.index()).copied().unwrap_or(false))
        {
            if is_sync {
                SYNC_CELL
            } else {
                0
            }
        } else {
            cell
        };
        self.icd
            .record_access(t, obj, log_cell, kind.is_write(), is_sync, force_log);
    }

    /// Recomputes the thread's instrumentation context from its transaction
    /// state and the configured filter.
    fn refresh_context(&self, local: &mut Local) {
        local.context = match local.tracker.transaction_method() {
            Some(m) => {
                if self.config.filter.covers_method(m) {
                    Context::Instrumented
                } else {
                    Context::Skipped
                }
            }
            None => {
                if self.config.filter.instrument_unary {
                    Context::Instrumented
                } else {
                    Context::Skipped
                }
            }
        };
    }
}

impl Checker for DoubleChecker {
    fn run_begin(&self, heap: &Heap) {
        if let Some(obs) = &self.obs {
            obs.checker.runs_begun.inc();
            obs.trace(Stage::Checker, EventKind::RunBegin, self.n_threads as u64);
        }
        let _ = self.octet.set(Protocol::with_config(
            heap.len(),
            self.n_threads,
            self.config.coordination,
            IcdSink(Arc::clone(&self.icd)),
            self.obs.clone(),
            self.config.barrier_cache,
        ));
        let conflated: Vec<bool> = (0..heap.len())
            .map(|i| heap.kind(ObjId::from_index(i)).conflates_cells())
            .collect();
        let _ = self.conflated.set(conflated);
        self.icd
            .attach_layout(dc_runtime::heap::CellLayout::new(heap));
    }

    fn run_end(&self) {
        // Pipelined mode: stop the graph owner first (applying every queued
        // graph op and emitting the remaining SCCs, which drops the sink's
        // replay handle), then drain the PCD pool. After this, violations,
        // static info, and stats are as complete as in synchronous mode.
        let t0 = self.obs.as_ref().and_then(|o| o.clock());
        if let Some(e) = self.icd.drain_pipeline() {
            self.pipeline_error.lock().get_or_insert(e);
        }
        if let Some(pool) = self.pool.lock().take() {
            let (violations, stats) = pool.drain();
            if !violations.is_empty() {
                self.violations.lock().extend(violations);
            }
            self.pcd_stats.lock().merge(stats);
        }
        if self.config.pcd_only {
            // Straw-man variant: replay every executed transaction.
            let all = self.icd.snapshot_all_finished();
            self.sccs_to_pcd.fetch_add(1, Ordering::Relaxed);
            let (violations, stats) = self.replay_observed(&all);
            if !violations.is_empty() {
                self.violations.lock().extend(violations);
            }
            self.pcd_stats.lock().merge(stats);
        }
        if let Some(obs) = &self.obs {
            obs.checker.runs_ended.inc();
            let drain_ns = t0.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if let Some(ns) = drain_ns {
                obs.checker.drain_latency.record(ns);
            }
            obs.trace(Stage::Checker, EventKind::RunEnd, drain_ns.unwrap_or(0));
        }
    }

    fn thread_begin(&self, t: ThreadId) {
        self.octet().thread_begin(t);
        let scc = self.icd.thread_begin(t);
        debug_assert!(scc.is_none());
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        self.refresh_context(local);
    }

    fn thread_end(&self, t: ThreadId) {
        let scc = self.icd.thread_end(t);
        self.process_scc(scc);
        self.octet().thread_end(t);
    }

    fn enter_method(&self, t: ThreadId, m: MethodId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if let EnterOutcome::BeginTransaction(method) = local.tracker.enter(m, &self.spec) {
            self.refresh_context(local);
            if local.context == Context::Instrumented {
                let scc = self.icd.begin_regular(t, method);
                self.process_scc(scc);
            }
        }
    }

    fn exit_method(&self, t: ThreadId, m: MethodId) {
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if let ExitOutcome::EndTransaction(_) = local.tracker.exit(m) {
            if local.context == Context::Instrumented {
                let scc = self.icd.end_regular(t);
                self.process_scc(scc);
            }
            self.refresh_context(local);
        }
    }

    #[inline]
    fn read(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.access(t, obj, cell, AccessKind::Read, false);
    }

    #[inline]
    fn write(&self, t: ThreadId, obj: ObjId, cell: CellId) {
        self.access(t, obj, cell, AccessKind::Write, false);
    }

    fn array_read(&self, t: ThreadId, obj: ObjId, index: CellId) {
        if self.config.instrument_arrays {
            self.access(t, obj, index, AccessKind::Read, false);
        }
    }

    fn array_write(&self, t: ThreadId, obj: ObjId, index: CellId) {
        if self.config.instrument_arrays {
            self.access(t, obj, index, AccessKind::Write, false);
        }
    }

    fn sync_acquire(&self, t: ThreadId, obj: ObjId) {
        self.access(t, obj, SYNC_CELL, AccessKind::Read, true);
    }

    fn sync_release(&self, t: ThreadId, obj: ObjId) {
        self.access(t, obj, SYNC_CELL, AccessKind::Write, true);
    }

    #[inline]
    fn safe_point(&self, t: ThreadId) {
        self.octet().safe_point(t);
    }

    fn before_block(&self, t: ThreadId) {
        self.octet().before_block(t);
    }

    fn after_unblock(&self, t: ThreadId) {
        self.octet().after_unblock(t);
    }
}
