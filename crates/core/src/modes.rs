//! End-to-end drivers for the paper's execution modes.
//!
//! These wrap checker construction, engine selection, and result collection
//! so examples, tests, and the benchmark harness all run modes the same way.

use crate::checker::{DcConfig, DoubleChecker};
use crate::report::{DcStats, StaticTxInfo};
use dc_icd::PipelineError;
use dc_obs::{PipelineReport, TraceEvent};
use dc_octet::CoordinationMode;
use dc_pcd::Violation;
use dc_runtime::engine::det::{run_det, DetError, Schedule};
use dc_runtime::engine::real::run_real;
use dc_runtime::engine::RunStats;
use dc_runtime::program::Program;
use dc_runtime::spec::AtomicitySpec;

/// How to execute a program.
#[derive(Clone, Debug)]
pub enum ExecPlan {
    /// Real OS threads (performance experiments).
    Real,
    /// Deterministic scheduler with the given interleaving policy.
    Det(Schedule),
}

impl ExecPlan {
    /// The Octet coordination mode matching this plan.
    pub fn coordination(&self) -> CoordinationMode {
        match self {
            ExecPlan::Real => CoordinationMode::Threaded,
            ExecPlan::Det(_) => CoordinationMode::Immediate,
        }
    }

    fn run<C: dc_runtime::checker::Checker>(
        &self,
        program: &Program,
        checker: &C,
    ) -> Result<RunStats, DetError> {
        match self {
            ExecPlan::Real => Ok(run_real(program, checker)),
            ExecPlan::Det(schedule) => run_det(program, checker, schedule),
        }
    }
}

/// Everything one DoubleChecker run produced.
#[derive(Clone, Debug)]
pub struct DcReport {
    /// Precise violations (empty for the first run of multi-run mode).
    pub violations: Vec<Violation>,
    /// Static transaction information (meaningful for the first run).
    pub static_info: StaticTxInfo,
    /// Analysis statistics (Table 3 columns).
    pub stats: DcStats,
    /// Engine statistics (access counts, wall-clock time).
    pub run: RunStats,
    /// Pipeline observability report (`None` when observability is off).
    pub pipeline: Option<PipelineReport>,
    /// Pipeline trace events (empty below the `Full` observability level).
    pub trace: Vec<TraceEvent>,
    /// First structural op-stream error the pipeline hit (`None` in
    /// synchronous mode and on every healthy run). `Some` marks the run's
    /// results as a prefix: the pipeline stopped applying at the error and
    /// drained instead of aborting the process.
    pub pipeline_error: Option<PipelineError>,
}

/// Runs one DoubleChecker configuration over `program`.
///
/// # Errors
///
/// Propagates [`DetError`] from the deterministic engine (deadlock, bad
/// script, invalid program).
pub fn run_doublechecker(
    program: &Program,
    spec: &AtomicitySpec,
    config: DcConfig,
    plan: &ExecPlan,
) -> Result<DcReport, DetError> {
    let checker = DoubleChecker::new(program.threads.len(), spec.clone(), config);
    let run = plan.run(program, &checker)?;
    Ok(DcReport {
        violations: checker.violations(),
        static_info: checker.static_info(),
        stats: checker.stats(),
        run,
        pipeline: checker.pipeline_report(),
        trace: checker.trace_events(),
        pipeline_error: checker.pipeline_error(),
    })
}

/// Runs single-run mode (ICD + logging + PCD in one execution).
///
/// # Errors
///
/// See [`run_doublechecker`].
pub fn run_single(
    program: &Program,
    spec: &AtomicitySpec,
    plan: &ExecPlan,
) -> Result<DcReport, DetError> {
    run_doublechecker(
        program,
        spec,
        DcConfig::single_run(plan.coordination()),
        plan,
    )
}

/// Result of a full multi-run cycle.
#[derive(Clone, Debug)]
pub struct MultiRunReport {
    /// Per-trial reports of the first run.
    pub first_runs: Vec<DcReport>,
    /// The unioned static transaction information fed to the second run.
    pub static_info: StaticTxInfo,
    /// The second run's report (this is where violations appear).
    pub second_run: DcReport,
}

/// Runs multi-run mode: `first_plans` executions of the first run (their
/// static information is unioned, per §5.1's methodology of 10 first-run
/// trials), then one second run under `second_plan`.
///
/// # Errors
///
/// See [`run_doublechecker`].
pub fn run_multi(
    program: &Program,
    spec: &AtomicitySpec,
    first_plans: &[ExecPlan],
    second_plan: &ExecPlan,
) -> Result<MultiRunReport, DetError> {
    let mut first_runs = Vec::with_capacity(first_plans.len());
    let mut info = StaticTxInfo::default();
    for plan in first_plans {
        let report = run_doublechecker(
            program,
            spec,
            DcConfig::first_run(plan.coordination()),
            plan,
        )?;
        info.union(&report.static_info);
        first_runs.push(report);
    }
    let second_run = run_doublechecker(
        program,
        spec,
        DcConfig::second_run(&info, second_plan.coordination()),
        second_plan,
    )?;
    Ok(MultiRunReport {
        first_runs,
        static_info: info,
        second_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::heap::ObjKind;
    use dc_runtime::program::{Op, ProgramBuilder};

    /// Two atomic methods whose accesses interleave under most random
    /// schedules, producing a real atomicity violation.
    fn racy_program(iters: u32) -> (Program, AtomicitySpec) {
        let mut b = ProgramBuilder::new();
        let o = b.object(ObjKind::Plain { fields: 2 });
        let alpha = b.method(
            "alpha",
            vec![Op::Write(o, 0), Op::Compute(5), Op::Read(o, 1)],
        );
        let beta = b.method(
            "beta",
            vec![Op::Write(o, 1), Op::Compute(5), Op::Read(o, 0)],
        );
        let t0 = b.method(
            "t0",
            vec![Op::Loop {
                count: iters,
                body: vec![Op::Call(alpha)],
            }],
        );
        let t1 = b.method(
            "t1",
            vec![Op::Loop {
                count: iters,
                body: vec![Op::Call(beta)],
            }],
        );
        b.thread(t0);
        b.thread(t1);
        let p = b.build().unwrap();
        let spec = AtomicitySpec::excluding([
            p.method_by_name("t0").unwrap(),
            p.method_by_name("t1").unwrap(),
        ]);
        (p, spec)
    }

    #[test]
    fn single_run_detects_violation_deterministically() {
        let (p, spec) = racy_program(10);
        let report = run_single(&p, &spec, &ExecPlan::Det(Schedule::random(3))).unwrap();
        assert!(
            !report.violations.is_empty(),
            "interleaved atomic regions must produce a violation"
        );
        assert!(report.stats.icd_sccs > 0);
        assert!(report.stats.sccs_to_pcd > 0);
        assert!(
            report.stats.log_entries > 0,
            "single-run mode logs accesses"
        );
    }

    #[test]
    fn single_run_on_serial_schedule_is_clean() {
        let (p, spec) = racy_program(10);
        let report = run_single(
            &p,
            &spec,
            &ExecPlan::Det(Schedule::RoundRobin { quantum: 100_000 }),
        )
        .unwrap();
        assert!(report.violations.is_empty());
    }

    #[test]
    fn first_run_logs_nothing_but_identifies_methods() {
        let (p, spec) = racy_program(10);
        let report = run_doublechecker(
            &p,
            &spec,
            DcConfig::first_run(CoordinationMode::Immediate),
            &ExecPlan::Det(Schedule::random(3)),
        )
        .unwrap();
        assert!(report.violations.is_empty(), "first run has no PCD");
        assert_eq!(report.stats.log_entries, 0);
        assert!(
            !report.static_info.methods.is_empty(),
            "methods in imprecise cycles are identified statically"
        );
    }

    #[test]
    fn multi_run_finds_the_violation_in_the_second_run() {
        let (p, spec) = racy_program(10);
        let firsts: Vec<ExecPlan> = (0..5).map(|s| ExecPlan::Det(Schedule::random(s))).collect();
        let report = run_multi(&p, &spec, &firsts, &ExecPlan::Det(Schedule::random(3))).unwrap();
        assert!(
            !report.second_run.violations.is_empty(),
            "second run should reproduce the violation"
        );
        // The second run instrumented a subset (or all) of transactions.
        assert!(report.static_info.methods.len() <= 2);
    }

    #[test]
    fn second_run_with_empty_info_instruments_nothing() {
        let (p, spec) = racy_program(5);
        let info = StaticTxInfo::default();
        let report = run_doublechecker(
            &p,
            &spec,
            DcConfig::second_run(&info, CoordinationMode::Immediate),
            &ExecPlan::Det(Schedule::random(3)),
        )
        .unwrap();
        assert_eq!(report.stats.regular_accesses, 0);
        assert_eq!(report.stats.unary_accesses, 0);
        assert!(report.violations.is_empty());
    }

    #[test]
    fn pcd_only_variant_finds_the_same_violation() {
        let (p, spec) = racy_program(10);
        let report = run_doublechecker(
            &p,
            &spec,
            DcConfig::pcd_only(CoordinationMode::Immediate),
            &ExecPlan::Det(Schedule::random(3)),
        )
        .unwrap();
        assert!(!report.violations.is_empty());
        assert_eq!(report.stats.icd_sccs, 0, "ICD filtering disabled");
        assert!(
            report.stats.pcd.txs >= report.stats.regular_txs,
            "PCD processed every transaction"
        );
    }

    #[test]
    fn pipelined_and_sharded_runs_report_no_pipeline_error_when_healthy() {
        let (p, spec) = racy_program(10);
        for shards in [1u32, 2, 4] {
            let config = DcConfig::single_run(CoordinationMode::Immediate)
                .with_pipelined(true)
                .with_shards(shards);
            let report =
                run_doublechecker(&p, &spec, config, &ExecPlan::Det(Schedule::random(3))).unwrap();
            assert_eq!(report.pipeline_error, None, "shards={shards}");
            assert!(!report.violations.is_empty(), "shards={shards}");
        }
    }

    #[test]
    fn single_run_on_real_threads_is_stable() {
        let (p, spec) = racy_program(200);
        let report = run_single(&p, &spec, &ExecPlan::Real).unwrap();
        // Violations depend on real timing; the analysis must at least have
        // demarcated all transactions and logged accesses.
        assert_eq!(report.stats.regular_txs, 400);
        assert!(report.stats.log_entries > 0);
    }
}
