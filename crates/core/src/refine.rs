//! Iterative refinement of atomicity specifications (paper Figure 6, §5.1).
//!
//! Starting from the strictest specification (all methods atomic except
//! top-level thread entries and methods containing interrupting calls), run
//! the checker repeatedly; whenever violations are reported, remove the
//! blamed methods from the specification and repeat. Terminate when no new
//! violations are reported for a configured number of trials — approximating
//! well-tested software with an accurate specification.

use dc_runtime::ids::MethodId;
use dc_runtime::program::{Op, Program};
use dc_runtime::spec::AtomicitySpec;
use std::collections::HashSet;

/// A violation as seen by the refinement loop: blamed methods plus a static
/// identity for counting distinct violations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ReportedViolation {
    /// Methods blame assignment points at.
    pub blamed: Vec<MethodId>,
    /// Static identity (sorted member methods) for deduplication.
    pub key: Vec<Option<MethodId>>,
}

/// Outcome of running iterative refinement to quiescence.
#[derive(Clone, Debug)]
pub struct RefinementResult {
    /// The final specification (no violations reported for the quiescence
    /// window).
    pub final_spec: AtomicitySpec,
    /// Every distinct violation reported along the way — the paper's
    /// Table 2 counts these.
    pub violations: Vec<ReportedViolation>,
    /// Refinement rounds executed (spec-shrinking steps).
    pub rounds: u32,
    /// Total checker trials executed.
    pub trials: u32,
}

impl RefinementResult {
    /// Number of distinct violations reported during refinement (a Table 2
    /// cell).
    pub fn distinct_violations(&self) -> usize {
        self.violations.len()
    }
}

/// Builds the paper's initial specification: all methods atomic except
/// top-level thread entry methods and methods containing interrupting
/// calls (wait/notify, join, barriers) — plus any extra exclusions the
/// workload declares (e.g. DaCapo driver threads).
pub fn initial_spec(program: &Program, extra_exclusions: &[MethodId]) -> AtomicitySpec {
    fn interrupting(ops: &[Op]) -> bool {
        ops.iter().any(|op| match op {
            Op::Wait(_) | Op::NotifyAll(_) | Op::Join(_) | Op::Barrier(_) => true,
            Op::Loop { body, .. } => interrupting(body),
            _ => false,
        })
    }
    let mut excluded: HashSet<MethodId> = extra_exclusions.iter().copied().collect();
    for spec in &program.threads {
        excluded.insert(spec.entry);
    }
    for (i, method) in program.methods.iter().enumerate() {
        if interrupting(&method.body) {
            excluded.insert(MethodId::from_index(i));
        }
    }
    AtomicitySpec::excluding(excluded)
}

/// Runs iterative refinement to quiescence.
///
/// `run_trial(spec, trial_index)` executes the checker once and returns the
/// violations it reported. Refinement performs trials in windows of
/// `quiescent_trials`; a window with no *new* distinct violations terminates
/// the loop (paper §5.1 uses 10 trials). `max_rounds` bounds runaway
/// refinement.
pub fn iterative_refinement<F>(
    start: AtomicitySpec,
    quiescent_trials: u32,
    max_rounds: u32,
    mut run_trial: F,
) -> RefinementResult
where
    F: FnMut(&AtomicitySpec, u32) -> Vec<ReportedViolation>,
{
    let mut spec = start;
    let mut seen: HashSet<Vec<Option<MethodId>>> = HashSet::new();
    let mut violations: Vec<ReportedViolation> = Vec::new();
    let mut rounds = 0u32;
    let mut trials = 0u32;

    'refine: for _round in 0..max_rounds {
        let mut new_blames: HashSet<MethodId> = HashSet::new();
        let mut window_found_new = false;
        for w in 0..quiescent_trials {
            let reported = run_trial(&spec, trials);
            trials += 1;
            for v in reported {
                if seen.insert(v.key.clone()) {
                    window_found_new = true;
                    new_blames.extend(v.blamed.iter().copied());
                    violations.push(v);
                }
            }
            // Refine eagerly once something new shows up; remaining window
            // trials would re-find the same violation.
            if window_found_new && w + 1 < quiescent_trials {
                break;
            }
        }
        if !window_found_new {
            break 'refine;
        }
        rounds += 1;
        let mut changed = false;
        for m in new_blames {
            changed |= spec.exclude(m);
        }
        if !changed {
            // Blame produced nothing removable (e.g. unary-only cycles);
            // further rounds cannot converge.
            break 'refine;
        }
    }
    RefinementResult {
        final_spec: spec,
        violations,
        rounds,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::heap::ObjKind;
    use dc_runtime::program::ProgramBuilder;

    #[test]
    fn initial_spec_excludes_entries_and_interrupting_methods() {
        let mut b = ProgramBuilder::new();
        let mon = b.object(ObjKind::Monitor);
        let waity = b.method(
            "waity",
            vec![Op::Acquire(mon), Op::Wait(mon), Op::Release(mon)],
        );
        let plain = b.method("plain", vec![Op::Compute(1)]);
        let entry = b.method("entry", vec![Op::Call(waity), Op::Call(plain)]);
        b.thread(entry);
        let p = b.build().unwrap();
        let spec = initial_spec(&p, &[]);
        assert!(!spec.is_atomic(entry));
        assert!(!spec.is_atomic(waity));
        assert!(spec.is_atomic(plain));
    }

    #[test]
    fn initial_spec_honors_extra_exclusions() {
        let mut b = ProgramBuilder::new();
        let m = b.method("driver", vec![Op::Compute(1)]);
        let entry = b.method("entry", vec![Op::Call(m)]);
        b.thread(entry);
        let p = b.build().unwrap();
        let spec = initial_spec(&p, &[m]);
        assert!(!spec.is_atomic(m));
    }

    #[test]
    fn refinement_converges_by_excluding_blamed_methods() {
        // Synthetic checker: reports a violation blaming M1 while M1 is
        // atomic; then one blaming M2 while M2 is atomic; then clean.
        let m1 = MethodId(1);
        let m2 = MethodId(2);
        let result = iterative_refinement(AtomicitySpec::all_atomic(), 3, 10, |spec, _| {
            if spec.is_atomic(m1) {
                vec![ReportedViolation {
                    blamed: vec![m1],
                    key: vec![Some(m1)],
                }]
            } else if spec.is_atomic(m2) {
                vec![ReportedViolation {
                    blamed: vec![m2],
                    key: vec![Some(m2)],
                }]
            } else {
                vec![]
            }
        });
        assert_eq!(result.rounds, 2);
        assert_eq!(result.distinct_violations(), 2);
        assert!(!result.final_spec.is_atomic(m1));
        assert!(!result.final_spec.is_atomic(m2));
    }

    #[test]
    fn refinement_stops_immediately_when_clean() {
        let result = iterative_refinement(AtomicitySpec::all_atomic(), 5, 10, |_, _| vec![]);
        assert_eq!(result.rounds, 0);
        assert_eq!(result.trials, 5, "full quiescence window runs");
        assert_eq!(result.distinct_violations(), 0);
    }

    #[test]
    fn refinement_is_bounded_by_max_rounds() {
        // Pathological checker always reporting a fresh violation with an
        // unexcludable (unary) blame.
        let mut n = 0u32;
        let result = iterative_refinement(AtomicitySpec::all_atomic(), 2, 4, |_, _| {
            n += 1;
            vec![ReportedViolation {
                blamed: vec![],
                key: vec![None, Some(MethodId(n))],
            }]
        });
        assert!(result.rounds <= 4);
        assert!(result.distinct_violations() >= 1);
    }

    #[test]
    fn duplicate_violations_are_counted_once() {
        let m1 = MethodId(1);
        let mut calls = 0;
        let result = iterative_refinement(AtomicitySpec::all_atomic(), 2, 10, |spec, _| {
            calls += 1;
            if spec.is_atomic(m1) {
                vec![
                    ReportedViolation {
                        blamed: vec![m1],
                        key: vec![Some(m1)],
                    };
                    3
                ]
            } else {
                vec![]
            }
        });
        assert_eq!(result.distinct_violations(), 1);
    }
}
