//! Run reports: statistics (Table 3 columns), the static transaction
//! information passed between multi-run mode's two runs, and the JSON
//! encodings of both plus the pipeline observability report.

use dc_icd::{PipelineError, SccReport};
use dc_obs::{GaugeSummary, HistogramSummary, PipelineReport, TraceEvent};
use dc_pcd::ReplayStats;
use dc_runtime::ids::MethodId;
use dc_runtime::spec::TxFilter;
use serde_json::Value;
use std::collections::HashSet;

/// Aggregated statistics of one DoubleChecker run (the Table 3 columns plus
/// analysis internals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DcStats {
    /// Regular (non-unary) transactions.
    pub regular_txs: u64,
    /// Merged unary transactions.
    pub unary_txs: u64,
    /// Instrumented accesses inside regular transactions.
    pub regular_accesses: u64,
    /// Instrumented accesses in non-transactional context.
    pub unary_accesses: u64,
    /// Read/write log entries recorded (memory-cost proxy).
    pub log_entries: u64,
    /// Transactions reclaimed by the collector.
    pub collected_txs: u64,
    /// Cross-thread IDG edges.
    pub idg_cross_edges: u64,
    /// ICD SCCs detected.
    pub icd_sccs: u64,
    /// SCC reports handed to PCD.
    pub sccs_to_pcd: u64,
    /// Hot-path graph-mutex acquisitions by application threads (zero when
    /// the asynchronous analysis pipeline is enabled).
    pub graph_locks: u64,
    /// PCD replay statistics (not part of the JSON representation).
    pub pcd: ReplayStats,
}

impl From<DcStats> for Value {
    fn from(s: DcStats) -> Value {
        serde_json::json!({
            "regular_txs": s.regular_txs,
            "unary_txs": s.unary_txs,
            "regular_accesses": s.regular_accesses,
            "unary_accesses": s.unary_accesses,
            "log_entries": s.log_entries,
            "collected_txs": s.collected_txs,
            "idg_cross_edges": s.idg_cross_edges,
            "icd_sccs": s.icd_sccs,
            "sccs_to_pcd": s.sccs_to_pcd,
            "graph_locks": s.graph_locks,
        })
    }
}

fn gauge_json(g: GaugeSummary) -> Value {
    serde_json::json!({
        "current": g.current,
        "high_watermark": g.high_watermark,
    })
}

fn histogram_json(h: HistogramSummary) -> Value {
    serde_json::json!({
        "count": h.count,
        "sum_ns": h.sum,
        "p50_ns": h.p50,
        "p90_ns": h.p90,
        "p99_ns": h.p99,
        "max_ns": h.max,
    })
}

/// Encodes a [`PipelineReport`] with a stable schema: fixed key set per
/// section, integers only (histogram percentiles are bucket upper bounds in
/// nanoseconds).
pub fn pipeline_report_to_json(r: &PipelineReport) -> Value {
    serde_json::json!({
        "level": r.level.as_str(),
        "octet": serde_json::json!({
            "first_touch": r.octet.first_touch,
            "upgrades": r.octet.upgrades,
            "fences": r.octet.fences,
            "conflicts": r.octet.conflicts,
            "coalesced": r.octet.coalesced,
            "cache_hits": r.octet.cache_hits,
            "cache_flushes": r.octet.cache_flushes,
        }),
        "graph": serde_json::json!({
            "ops_enqueued": r.graph.ops_enqueued,
            "ops_applied": r.graph.ops_applied,
            "batches": r.graph.batches,
            "singles": r.graph.singles,
            "ring_full_waits": r.graph.ring_full_waits,
            "pooled_buffers": gauge_json(r.graph.pooled_buffers),
            "queue_depth": gauge_json(r.graph.queue_depth),
            "reorder_depth": gauge_json(r.graph.reorder_depth),
            "sccs_detected": r.graph.sccs_detected,
            "sccs_skipped_trivial": r.graph.sccs_skipped_trivial,
            "scc_latency": histogram_json(r.graph.scc_latency),
            "collect_latency": histogram_json(r.graph.collect_latency),
            "enqueue_latency": histogram_json(r.graph.enqueue_latency),
            "apply_latency": histogram_json(r.graph.apply_latency),
            "shards": gauge_json(r.graph.shards),
            "shard_merges": r.graph.shard_merges,
            "shard_queue_depth": r.graph.shard_depth.iter()
                .map(|&g| gauge_json(g))
                .collect::<Vec<_>>(),
            "shard_busy_ns": r.graph.shard_busy.to_vec(),
        }),
        "replay": serde_json::json!({
            "submitted": r.replay.submitted,
            "completed": r.replay.completed,
            "queue_depth": gauge_json(r.replay.queue_depth),
            "latency": histogram_json(r.replay.latency),
            "violations": r.replay.violations,
        }),
        "checker": serde_json::json!({
            "runs_begun": r.checker.runs_begun,
            "runs_ended": r.checker.runs_ended,
            "drain_latency": histogram_json(r.checker.drain_latency),
        }),
        "trace_recorded": r.trace_recorded,
    })
}

/// The `--stats-json` document: the [`DcStats`] fields at the top level,
/// plus a `pipeline` member (the [`PipelineReport`] schema) when
/// observability was on and `null` otherwise, plus a `pipeline_error`
/// member (the drained [`PipelineError`]'s message, `null` on a healthy
/// run) — so the schema is stable across levels and outcomes.
pub fn stats_to_json(
    stats: DcStats,
    pipeline: Option<&PipelineReport>,
    pipeline_error: Option<&PipelineError>,
) -> Value {
    let mut value = Value::from(stats);
    if let Value::Object(map) = &mut value {
        map.insert(
            "pipeline".to_string(),
            match pipeline {
                Some(r) => pipeline_report_to_json(r),
                None => Value::Null,
            },
        );
        map.insert(
            "pipeline_error".to_string(),
            match pipeline_error {
                Some(e) => Value::from(e.to_string()),
                None => Value::Null,
            },
        );
    }
    value
}

/// Encodes one trace event as a JSON-lines record (`--trace-out` format).
pub fn trace_event_to_json(e: &TraceEvent) -> Value {
    serde_json::json!({
        "seq": e.seq,
        "t_ns": e.t_ns,
        "stage": e.stage.as_str(),
        "kind": e.kind.as_str(),
        "value": e.value,
    })
}

/// The static transaction information the first run of multi-run mode
/// passes to the second run (paper §3.1): regular transactions in imprecise
/// cycles identified by their static starting location (method), plus one
/// boolean saying whether any unary transaction was in any cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticTxInfo {
    /// Methods rooting regular transactions seen in imprecise cycles.
    pub methods: HashSet<MethodId>,
    /// True if any unary transaction participated in any imprecise cycle.
    pub any_unary: bool,
}

impl StaticTxInfo {
    /// Records the transactions of one detected SCC.
    pub fn absorb_scc(&mut self, scc: &SccReport) {
        for tx in &scc.txs {
            match tx.kind.method() {
                Some(m) => {
                    self.methods.insert(m);
                }
                None => self.any_unary = true,
            }
        }
    }

    /// Unions information from several first runs (paper §5.1: "the second
    /// run can take as input all transactions identified across multiple
    /// executions of the first run").
    pub fn union(&mut self, other: &StaticTxInfo) {
        self.methods.extend(other.methods.iter().copied());
        self.any_unary |= other.any_unary;
    }

    /// Converts into the checker-facing [`TxFilter`].
    pub fn to_filter(&self) -> TxFilter {
        TxFilter {
            methods: Some(self.methods.clone()),
            instrument_unary: self.any_unary,
        }
    }

    /// A filter like [`Self::to_filter`] but always instrumenting
    /// non-transactional accesses — the §5.3 configuration whose overhead
    /// justifies conditional unary instrumentation.
    pub fn to_filter_always_unary(&self) -> TxFilter {
        TxFilter {
            methods: Some(self.methods.clone()),
            instrument_unary: true,
        }
    }

    /// Serializes to the JSON text passed between multi-run mode's runs.
    /// Method ids are emitted sorted so the output is deterministic.
    pub fn to_json(&self) -> String {
        let mut methods: Vec<u32> = self.methods.iter().map(|m| m.0).collect();
        methods.sort_unstable();
        serde_json::json!({
            "methods": methods,
            "any_unary": self.any_unary,
        })
        .to_string()
    }

    /// Parses the JSON text produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let obj = value.as_object().ok_or("expected a JSON object")?;
        let methods = obj
            .get("methods")
            .and_then(Value::as_array)
            .ok_or("missing 'methods' array")?
            .iter()
            .map(|v| {
                let raw = v.as_u64().ok_or("non-integer method id")?;
                u32::try_from(raw).map(MethodId).map_err(|e| e.to_string())
            })
            .collect::<Result<HashSet<MethodId>, String>>()?;
        let any_unary = obj
            .get("any_unary")
            .and_then(Value::as_bool)
            .ok_or("missing 'any_unary' bool")?;
        Ok(StaticTxInfo { methods, any_unary })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_icd::{TxId, TxKind, TxSnapshot};
    use dc_runtime::ids::ThreadId;
    use std::sync::Arc;

    fn scc(kinds: &[TxKind]) -> SccReport {
        SccReport {
            txs: kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| TxSnapshot {
                    id: TxId(i as u64 + 1),
                    thread: ThreadId(i as u16),
                    kind,
                    seq: 1,
                    log: Arc::new(vec![]),
                })
                .collect(),
            edges: vec![],
            constraints: vec![],
        }
    }

    #[test]
    fn absorb_collects_methods_and_unary_flag() {
        let mut info = StaticTxInfo::default();
        info.absorb_scc(&scc(&[
            TxKind::Regular(MethodId(1)),
            TxKind::Regular(MethodId(2)),
        ]));
        assert_eq!(info.methods.len(), 2);
        assert!(!info.any_unary);
        info.absorb_scc(&scc(&[TxKind::Unary, TxKind::Regular(MethodId(1))]));
        assert!(info.any_unary);
        assert_eq!(info.methods.len(), 2);
    }

    #[test]
    fn union_merges_runs() {
        let mut a = StaticTxInfo {
            methods: [MethodId(1)].into_iter().collect(),
            any_unary: false,
        };
        let b = StaticTxInfo {
            methods: [MethodId(2)].into_iter().collect(),
            any_unary: true,
        };
        a.union(&b);
        assert_eq!(a.methods.len(), 2);
        assert!(a.any_unary);
    }

    #[test]
    fn filters_reflect_info() {
        let info = StaticTxInfo {
            methods: [MethodId(3)].into_iter().collect(),
            any_unary: false,
        };
        let f = info.to_filter();
        assert!(f.covers_method(MethodId(3)));
        assert!(!f.covers_method(MethodId(4)));
        assert!(!f.instrument_unary);
        assert!(info.to_filter_always_unary().instrument_unary);
    }

    #[test]
    fn static_info_round_trips_through_json() {
        let info = StaticTxInfo {
            methods: [MethodId(7), MethodId(9)].into_iter().collect(),
            any_unary: true,
        };
        let json = info.to_json();
        let back = StaticTxInfo::from_json(&json).unwrap();
        assert_eq!(info, back);
    }
}
