//! Run reports: statistics (Table 3 columns) and the static transaction
//! information passed between multi-run mode's two runs.

use dc_icd::SccReport;
use dc_runtime::ids::MethodId;
use dc_pcd::ReplayStats;
use dc_runtime::spec::TxFilter;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Aggregated statistics of one DoubleChecker run (the Table 3 columns plus
/// analysis internals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DcStats {
    /// Regular (non-unary) transactions.
    pub regular_txs: u64,
    /// Merged unary transactions.
    pub unary_txs: u64,
    /// Instrumented accesses inside regular transactions.
    pub regular_accesses: u64,
    /// Instrumented accesses in non-transactional context.
    pub unary_accesses: u64,
    /// Read/write log entries recorded (memory-cost proxy).
    pub log_entries: u64,
    /// Transactions reclaimed by the collector.
    pub collected_txs: u64,
    /// Cross-thread IDG edges.
    pub idg_cross_edges: u64,
    /// ICD SCCs detected.
    pub icd_sccs: u64,
    /// SCC reports handed to PCD.
    pub sccs_to_pcd: u64,
    /// PCD replay statistics.
    #[serde(skip)]
    pub pcd: ReplayStats,
}

/// The static transaction information the first run of multi-run mode
/// passes to the second run (paper §3.1): regular transactions in imprecise
/// cycles identified by their static starting location (method), plus one
/// boolean saying whether any unary transaction was in any cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticTxInfo {
    /// Methods rooting regular transactions seen in imprecise cycles.
    pub methods: HashSet<MethodId>,
    /// True if any unary transaction participated in any imprecise cycle.
    pub any_unary: bool,
}

impl StaticTxInfo {
    /// Records the transactions of one detected SCC.
    pub fn absorb_scc(&mut self, scc: &SccReport) {
        for tx in &scc.txs {
            match tx.kind.method() {
                Some(m) => {
                    self.methods.insert(m);
                }
                None => self.any_unary = true,
            }
        }
    }

    /// Unions information from several first runs (paper §5.1: "the second
    /// run can take as input all transactions identified across multiple
    /// executions of the first run").
    pub fn union(&mut self, other: &StaticTxInfo) {
        self.methods.extend(other.methods.iter().copied());
        self.any_unary |= other.any_unary;
    }

    /// Converts into the checker-facing [`TxFilter`].
    pub fn to_filter(&self) -> TxFilter {
        TxFilter {
            methods: Some(self.methods.clone()),
            instrument_unary: self.any_unary,
        }
    }

    /// A filter like [`Self::to_filter`] but always instrumenting
    /// non-transactional accesses — the §5.3 configuration whose overhead
    /// justifies conditional unary instrumentation.
    pub fn to_filter_always_unary(&self) -> TxFilter {
        TxFilter {
            methods: Some(self.methods.clone()),
            instrument_unary: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_icd::{TxId, TxKind, TxSnapshot};
    use dc_runtime::ids::ThreadId;
    use std::sync::Arc;

    fn scc(kinds: &[TxKind]) -> SccReport {
        SccReport {
            txs: kinds
                .iter()
                .enumerate()
                .map(|(i, &kind)| TxSnapshot {
                    id: TxId(i as u64 + 1),
                    thread: ThreadId(i as u16),
                    kind,
                    seq: 1,
                    log: Arc::new(vec![]),
                })
                .collect(),
            edges: vec![],
            constraints: vec![],
        }
    }

    #[test]
    fn absorb_collects_methods_and_unary_flag() {
        let mut info = StaticTxInfo::default();
        info.absorb_scc(&scc(&[TxKind::Regular(MethodId(1)), TxKind::Regular(MethodId(2))]));
        assert_eq!(info.methods.len(), 2);
        assert!(!info.any_unary);
        info.absorb_scc(&scc(&[TxKind::Unary, TxKind::Regular(MethodId(1))]));
        assert!(info.any_unary);
        assert_eq!(info.methods.len(), 2);
    }

    #[test]
    fn union_merges_runs() {
        let mut a = StaticTxInfo {
            methods: [MethodId(1)].into_iter().collect(),
            any_unary: false,
        };
        let b = StaticTxInfo {
            methods: [MethodId(2)].into_iter().collect(),
            any_unary: true,
        };
        a.union(&b);
        assert_eq!(a.methods.len(), 2);
        assert!(a.any_unary);
    }

    #[test]
    fn filters_reflect_info() {
        let info = StaticTxInfo {
            methods: [MethodId(3)].into_iter().collect(),
            any_unary: false,
        };
        let f = info.to_filter();
        assert!(f.covers_method(MethodId(3)));
        assert!(!f.covers_method(MethodId(4)));
        assert!(!f.instrument_unary);
        assert!(info.to_filter_always_unary().instrument_unary);
    }

    #[test]
    fn static_info_round_trips_through_json() {
        let info = StaticTxInfo {
            methods: [MethodId(7), MethodId(9)].into_iter().collect(),
            any_unary: true,
        };
        let json = serde_json::to_string(&info).unwrap();
        let back: StaticTxInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);
    }
}
