//! DoubleChecker: efficient sound and precise atomicity checking
//! (Biswas, Huang, Sengupta, Bond — PLDI 2014), reproduced in Rust.
//!
//! DoubleChecker stages dynamic conflict-serializability checking across two
//! cooperating analyses: **ICD** tracks cross-thread dependences soundly but
//! imprecisely by piggybacking on the Octet concurrency-control protocol and
//! detects cycles in an imprecise dependence graph; **PCD** replays only the
//! transactions ICD implicates and detects precise cycles — real atomicity
//! violations. Two modes trade soundness for speed:
//!
//! * **single-run** ([`DcConfig::single_run`]): both analyses in one
//!   execution — fully sound and precise;
//! * **multi-run** ([`run_multi`]): a first run executes ICD alone and
//!   passes static transaction information to a second run that instruments
//!   only the implicated transactions.
//!
//! The crate also hosts the iterative-refinement methodology (Figure 6) for
//! deriving atomicity specifications, and mode drivers shared by examples,
//! tests, and the table/figure harnesses.
//!
//! # Example
//!
//! ```
//! use dc_core::{run_single, ExecPlan};
//! use dc_runtime::{AtomicitySpec, ObjKind, Op, ProgramBuilder, Schedule};
//!
//! let mut b = ProgramBuilder::new();
//! let o = b.object(ObjKind::Plain { fields: 2 });
//! let alpha = b.method("alpha", vec![Op::Write(o, 0), Op::Read(o, 1)]);
//! let beta = b.method("beta", vec![Op::Write(o, 1), Op::Read(o, 0)]);
//! let t0 = b.method("t0", vec![Op::Call(alpha)]);
//! let t1 = b.method("t1", vec![Op::Call(beta)]);
//! b.thread(t0);
//! b.thread(t1);
//! let program = b.build()?;
//! let spec = AtomicitySpec::excluding([
//!     program.method_by_name("t0").unwrap(),
//!     program.method_by_name("t1").unwrap(),
//! ]);
//! let report = run_single(&program, &spec, &ExecPlan::Det(Schedule::random(3)))?;
//! // Whether a violation manifests depends on the interleaving; the
//! // analysis itself always demarcates both transactions.
//! assert_eq!(report.stats.regular_txs, 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checker;
pub mod modes;
pub mod refine;
pub mod report;

pub use checker::{DcConfig, DoubleChecker};
pub use dc_icd::{OpTransport, PipelineError};
pub use dc_obs::{ObsLevel, PipelineReport, TraceEvent};
pub use modes::{run_doublechecker, run_multi, run_single, DcReport, ExecPlan, MultiRunReport};
pub use refine::{initial_spec, iterative_refinement, RefinementResult, ReportedViolation};
pub use report::{
    pipeline_report_to_json, stats_to_json, trace_event_to_json, DcStats, StaticTxInfo,
};
