//! Prints the refined final specification of one workload (diagnostics).

use dc_bench::{final_spec, refine, RefineDriver};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tsp".into());
    let wl = dc_workloads::by_name(&name, dc_workloads::Scale::Small).unwrap();
    let initial = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    let single = refine(&wl, RefineDriver::SingleRun, 5);
    let spec = final_spec(&wl, 5);
    println!("initial exclusions: {}", initial.excluded_len());
    println!(
        "single-run refinement: {} rounds, {} violations, {} exclusions",
        single.rounds,
        single.distinct_violations(),
        single.final_spec.excluded_len()
    );
    println!("final (intersected) exclusions:");
    let mut names: Vec<_> = spec
        .excluded()
        .map(|m| wl.program.method_name(m).to_string())
        .collect();
    names.sort();
    for n in &names {
        println!("  {n}");
    }
    let racy_still_atomic: Vec<_> = wl
        .program
        .methods
        .iter()
        .enumerate()
        .filter(|(i, m)| {
            spec.is_atomic(dc_runtime::ids::MethodId::from_index(*i))
                && (m.name.contains("racy") || m.name.contains("Racy"))
        })
        .map(|(_, m)| m.name.clone())
        .collect();
    println!("seeded-racy methods still atomic: {racy_still_atomic:?}");
}
