//! Regenerates **Table 3**: run-time characteristics of DoubleChecker for
//! single-run mode and the second run of multi-run mode — regular
//! transactions, instrumented accesses in regular and non-transactional
//! context, IDG cross-thread edges, and ICD SCCs.
//!
//! Shapes to check against the paper: edges ≪ accesses everywhere (the
//! justification for ICD's optimistic design); few SCCs except the xalan
//! analogs; the second run instrumenting a subset — or nothing at all for
//! benchmarks whose first runs report no SCCs.

use dc_bench::{filter_workloads, final_spec, scale_from_env};
use dc_core::{run_doublechecker, DcConfig, ExecPlan, StaticTxInfo};
use dc_octet::CoordinationMode;
use dc_runtime::engine::det::Schedule;

fn main() {
    let scale = scale_from_env();
    let quiescent = 4;
    let workloads = filter_workloads(dc_workloads::all(scale));
    let mut rows = Vec::new();

    for wl in &workloads {
        eprintln!("[table3] {} …", wl.name);
        let spec = final_spec(wl, quiescent);
        let plan = ExecPlan::Det(Schedule::random(42));

        // Single-run mode: instruments everything.
        let single = run_doublechecker(
            &wl.program,
            &spec,
            DcConfig::single_run(CoordinationMode::Immediate),
            &plan,
        )
        .expect("single run");

        // First runs gather static info, then the second run.
        let mut info = StaticTxInfo::default();
        for k in 0..4u64 {
            let fp = ExecPlan::Det(Schedule::random(500 + k));
            let first = run_doublechecker(
                &wl.program,
                &spec,
                DcConfig::first_run(CoordinationMode::Immediate),
                &fp,
            )
            .expect("first run");
            info.union(&first.static_info);
        }
        let second = run_doublechecker(
            &wl.program,
            &spec,
            DcConfig::second_run(&info, CoordinationMode::Immediate),
            &plan,
        )
        .expect("second run");

        let s = &single.stats;
        let r = &second.stats;
        rows.push(vec![
            wl.name.to_string(),
            s.regular_txs.to_string(),
            s.regular_accesses.to_string(),
            s.unary_accesses.to_string(),
            s.idg_cross_edges.to_string(),
            s.icd_sccs.to_string(),
            r.regular_txs.to_string(),
            r.regular_accesses.to_string(),
            r.unary_accesses.to_string(),
            r.idg_cross_edges.to_string(),
            r.icd_sccs.to_string(),
        ]);
        dc_bench::record_json(
            "table3.jsonl",
            &serde_json::json!({
                "benchmark": wl.name,
                "single": *s,
                "second": *r,
            }),
        );
    }
    dc_bench::print_table(
        "Table 3 — run-time characteristics (single-run vs second run of multi-run)",
        &[
            "Benchmark",
            "1run reg tx",
            "1run reg acc",
            "1run non-tx acc",
            "1run IDG edges",
            "1run SCCs",
            "2nd reg tx",
            "2nd reg acc",
            "2nd non-tx acc",
            "2nd IDG edges",
            "2nd SCCs",
        ],
        &rows,
    );
}
