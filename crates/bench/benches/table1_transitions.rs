//! Regenerates **Table 1**: the Octet state-transition rules, printed from
//! the live state machine by classifying every row's (state, access,
//! thread-relation, counter-relation) combination.

use dc_octet::{classify, possibly_dependent, OctetState, Responders, TransitionKind};
use dc_runtime::ids::{AccessKind, ThreadId};

fn main() {
    let t = ThreadId(1);
    let other = ThreadId(2);
    let mut rows: Vec<Vec<String>> = Vec::new();

    let mut add = |old: &str, access: &str, kind: TransitionKind| {
        let (class, new, dep) = describe(kind);
        rows.push(vec![
            class.to_string(),
            old.to_string(),
            access.to_string(),
            new,
            dep.to_string(),
        ]);
    };

    // Same state rows.
    add(
        "WrExT",
        "R or W by T",
        classify(OctetState::WrEx(t), AccessKind::Read, t, 0),
    );
    add(
        "RdExT",
        "R by T",
        classify(OctetState::RdEx(t), AccessKind::Read, t, 0),
    );
    add(
        "RdShc",
        "R by T (rdShCnt >= c)",
        classify(OctetState::RdSh(5), AccessKind::Read, t, 9),
    );
    // Upgrading rows.
    add(
        "RdExT",
        "W by T",
        classify(OctetState::RdEx(t), AccessKind::Write, t, 0),
    );
    add(
        "RdExT1",
        "R by T2",
        classify(OctetState::RdEx(other), AccessKind::Read, t, 0),
    );
    // Fence row.
    add(
        "RdShc",
        "R by T (rdShCnt < c)",
        classify(OctetState::RdSh(5), AccessKind::Read, t, 3),
    );
    // Conflicting rows.
    add(
        "WrExT1",
        "W by T2",
        classify(OctetState::WrEx(other), AccessKind::Write, t, 0),
    );
    add(
        "WrExT1",
        "R by T2",
        classify(OctetState::WrEx(other), AccessKind::Read, t, 0),
    );
    add(
        "RdExT1",
        "W by T2",
        classify(OctetState::RdEx(other), AccessKind::Write, t, 0),
    );
    add(
        "RdShc",
        "W by T",
        classify(OctetState::RdSh(5), AccessKind::Write, t, 9),
    );

    dc_bench::print_table(
        "Table 1 — Octet state transitions (from the implementation)",
        &[
            "Transition type",
            "Old state",
            "Access",
            "New state",
            "Cross-thread dependence?",
        ],
        &rows,
    );
    dc_bench::record_json(
        "table1.jsonl",
        &serde_json::json!({ "rows": rows.len(), "ok": true }),
    );
}

fn describe(kind: TransitionKind) -> (&'static str, String, &'static str) {
    let dep = if possibly_dependent(kind) {
        "Possibly"
    } else {
        "No"
    };
    match kind {
        TransitionKind::Same => ("Same state", "Same".into(), dep),
        TransitionKind::FirstTouch { new } => ("First touch", format!("{new:?}"), dep),
        TransitionKind::UpgradeToWrEx => ("Upgrading", "WrExT".into(), dep),
        TransitionKind::UpgradeToRdSh { .. } => ("Upgrading", "RdSh(gRdShCnt)".into(), dep),
        TransitionKind::Fence { .. } => ("Fence", "Same (fence)".into(), dep),
        TransitionKind::Conflicting { new, responders } => {
            let who = match responders {
                Responders::One(_) => "",
                Responders::AllOthers => " (all threads respond)",
            };
            ("Conflicting", format!("{new:?}{who}"), dep)
        }
    }
}
