//! Regenerates **Table 2**: static atomicity violations reported during
//! iterative refinement by Velodrome, DoubleChecker single-run mode, and
//! DoubleChecker multi-run mode, plus the "Unique" counts (violations a
//! checker reported that single-run mode did not).
//!
//! Like the paper's numbers, the absolute counts depend on the programs
//! (here: synthetic analogs) and on scheduling nondeterminism; the *shape*
//! to check is which benchmarks have violations, the relative magnitudes,
//! and multi-run mode detecting a high fraction of single-run's violations.

use dc_bench::{filter_workloads, refine, scale_from_env, RefineDriver};
use std::collections::HashSet;

fn main() {
    let scale = scale_from_env();
    let quiescent = dc_bench::trials_from_env(5);
    let workloads = filter_workloads(dc_workloads::all(scale));
    let mut rows = Vec::new();
    let mut totals = [0usize; 4]; // velodrome, single, multi, multi-unique
    let mut single_total_detected_by_multi = (0usize, 0usize);

    for wl in &workloads {
        eprintln!("[table2] refining {} …", wl.name);
        let velo = refine(wl, RefineDriver::Velodrome, quiescent);
        let single = refine(wl, RefineDriver::SingleRun, quiescent);
        let multi = refine(wl, RefineDriver::MultiRun { first_runs: 4 }, quiescent);

        let single_keys: HashSet<_> = single.violations.iter().map(|v| v.key.clone()).collect();
        let velo_unique = velo
            .violations
            .iter()
            .filter(|v| !single_keys.contains(&v.key))
            .count();
        let multi_keys: HashSet<_> = multi.violations.iter().map(|v| v.key.clone()).collect();
        let multi_unique = multi
            .violations
            .iter()
            .filter(|v| !single_keys.contains(&v.key))
            .count();
        let detected = single_keys
            .iter()
            .filter(|k| multi_keys.contains(*k))
            .count();
        single_total_detected_by_multi.0 += detected;
        single_total_detected_by_multi.1 += single_keys.len();

        totals[0] += velo.distinct_violations();
        totals[1] += single.distinct_violations();
        totals[2] += multi.distinct_violations();
        totals[3] += multi_unique;
        rows.push(vec![
            wl.name.to_string(),
            format!("{} ({})", velo.distinct_violations(), velo_unique),
            single.distinct_violations().to_string(),
            format!("{} ({})", multi.distinct_violations(), multi_unique),
        ]);
        dc_bench::record_json(
            "table2.jsonl",
            &serde_json::json!({
                "benchmark": wl.name,
                "velodrome": velo.distinct_violations(),
                "velodrome_unique": velo_unique,
                "single_run": single.distinct_violations(),
                "multi_run": multi.distinct_violations(),
                "multi_unique": multi_unique,
            }),
        );
    }
    rows.push(vec![
        "Total".into(),
        totals[0].to_string(),
        totals[1].to_string(),
        format!("{} ({})", totals[2], totals[3]),
    ]);
    dc_bench::print_table(
        "Table 2 — static atomicity violations during iterative refinement",
        &[
            "Benchmark",
            "Velodrome total (unique)",
            "DoubleChecker single-run",
            "DoubleChecker multi-run (unique)",
        ],
        &rows,
    );
    if single_total_detected_by_multi.1 > 0 {
        println!(
            "Multi-run detected {}/{} ({:.0}%) of single-run's violations (paper: 83%).",
            single_total_detected_by_multi.0,
            single_total_detected_by_multi.1,
            100.0 * single_total_detected_by_multi.0 as f64
                / single_total_detected_by_multi.1 as f64
        );
    }
}
