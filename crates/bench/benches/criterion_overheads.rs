//! Criterion microbenchmarks for the per-access costs underlying Figure 7:
//!
//! * Octet's fence-free fast path (a load and compare) vs its conflicting
//!   transition (coordination protocol);
//! * Velodrome's per-access metadata lock (CAS + metadata updates);
//! * ICD read/write logging with duplicate elision.
//!
//! These are the paper's cost model in miniature: the fast path must be far
//! cheaper than Velodrome's locked access, which is why ICD can afford to
//! monitor everything.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dc_icd::{Icd, IcdConfig};
use dc_octet::{CoordinationMode, NullSink, Protocol};
use dc_runtime::heap::{Heap, ObjKind};
use dc_runtime::ids::{ObjId, ThreadId};
use dc_velodrome::MetaTable;
use std::hint::black_box;

fn octet_fast_path(c: &mut Criterion) {
    // Cache explicitly OFF: this row is the uncached metadata-word load
    // and compare, the baseline the inline-cache row must beat.
    let p = Protocol::with_config(1, 2, CoordinationMode::Immediate, NullSink, None, false);
    p.thread_begin(ThreadId(0));
    p.write_barrier(ThreadId(0), ObjId(0)); // claim WrEx
    c.bench_function("octet/fast_path_same_state", |b| {
        b.iter(|| black_box(p.write_barrier(black_box(ThreadId(0)), black_box(ObjId(0)))))
    });
}

fn octet_inline_cache_hit(c: &mut Criterion) {
    // Cache ON: an owned-object re-access hits the per-thread ownership
    // inline cache and skips the metadata-word load entirely. Must be
    // strictly cheaper than `octet/fast_path_same_state`.
    let p = Protocol::with_config(1, 2, CoordinationMode::Immediate, NullSink, None, true);
    p.thread_begin(ThreadId(0));
    p.write_barrier(ThreadId(0), ObjId(0)); // claim WrEx + fill the cache line
    c.bench_function("octet/inline_cache_hit", |b| {
        b.iter(|| black_box(p.write_barrier(black_box(ThreadId(0)), black_box(ObjId(0)))))
    });
}

fn octet_conflicting(c: &mut Criterion) {
    c.bench_function("octet/conflicting_transition_immediate", |b| {
        b.iter_batched(
            || {
                let p = Protocol::new(1, 2, CoordinationMode::Immediate, NullSink);
                p.thread_begin(ThreadId(0));
                p.thread_begin(ThreadId(1));
                p.write_barrier(ThreadId(0), ObjId(0));
                p
            },
            |p| black_box(p.write_barrier(ThreadId(1), ObjId(0))),
            BatchSize::SmallInput,
        )
    });
}

fn velodrome_locked_access(c: &mut Criterion) {
    let heap = Heap::new(&[ObjKind::Plain { fields: 4 }], 2);
    let meta = MetaTable::new(&heap);
    let slot = meta.slot(ObjId(0), 0);
    c.bench_function("velodrome/metadata_lock_roundtrip", |b| {
        b.iter(|| {
            meta.lock(slot);
            let w = meta.writer(slot);
            meta.set_writer(slot, dc_velodrome::VTxId::new(ThreadId(0), 1));
            meta.unlock(slot);
            black_box(w)
        })
    });
}

fn icd_logging(c: &mut Criterion) {
    c.bench_function("icd/record_access_distinct_fields", |b| {
        b.iter_batched(
            || {
                let icd = Icd::new(1, IcdConfig::default());
                icd.thread_begin(ThreadId(0));
                icd
            },
            |icd| {
                for f in 0..64u32 {
                    icd.record_access(ThreadId(0), ObjId(0), f, f % 2 == 0, false, false);
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("icd/record_access_elided_duplicates", |b| {
        b.iter_batched(
            || {
                let icd = Icd::new(1, IcdConfig::default());
                icd.thread_begin(ThreadId(0));
                icd.record_access(ThreadId(0), ObjId(0), 0, true, false, false);
                icd
            },
            |icd| {
                for _ in 0..64 {
                    icd.record_access(ThreadId(0), ObjId(0), 0, false, false, false);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = overheads;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = octet_fast_path, octet_inline_cache_hit, octet_conflicting, velodrome_locked_access, icd_logging
}
criterion_main!(overheads);
