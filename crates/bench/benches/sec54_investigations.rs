//! Regenerates the **§5.4 investigations**:
//!
//! 1. single-run performance *during* iterative refinement (strictest spec,
//!    halfway-refined spec, final spec — paper: 3.4x / 3.6x / 3.6x, i.e.
//!    roughly flat);
//! 2. array-instrumentation overhead with conflated (array-level) metadata
//!    and cycle detection disabled, for both DoubleChecker and Velodrome
//!    (paper: 3.1x→3.7x and 6.3x→7.3x);
//! 3. the PCD-only variant of single-run mode, where PCD processes every
//!    transaction instead of only ICD's SCCs (paper: 3.1x → 16.6x —
//!    confirming ICD is essential as a first-pass filter).

use dc_bench::{
    filter_workloads, final_spec, fmt_ratio, geomean, refine, scale_from_env, time_real,
    RefineDriver,
};
use dc_core::{DcConfig, DoubleChecker};
use dc_octet::CoordinationMode;
use dc_runtime::checker::NopChecker;
use dc_runtime::spec::AtomicitySpec;
use dc_velodrome::{Velodrome, VelodromeConfig};
use dc_workloads::Workload;

fn main() {
    let scale = scale_from_env();
    let trials = dc_bench::trials_from_env(3);
    let workloads = filter_workloads(dc_workloads::performance_suite(scale));

    refinement_stage_performance(&workloads, trials);
    array_instrumentation_overhead(&workloads, trials);
    pcd_only(&workloads, trials);
}

fn single_run_ratio(wl: &Workload, spec: &AtomicitySpec, config: DcConfig, trials: u32) -> f64 {
    let n = wl.program.threads.len();
    let (base, _) = time_real(&wl.program, || NopChecker, trials);
    let (t, _) = time_real(
        &wl.program,
        || DoubleChecker::new(n, spec.clone(), config.clone()),
        trials,
    );
    t as f64 / base.max(1) as f64
}

/// §5.4 experiment 1: performance at the start, halfway point, and end of
/// iterative refinement.
fn refinement_stage_performance(workloads: &[Workload], trials: u32) {
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for wl in workloads {
        eprintln!("[sec54/refinement] {} …", wl.name);
        let strictest = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        let refined = refine(wl, RefineDriver::SingleRun, 4);
        // Halfway: exclude the first half of the additionally-excluded
        // methods.
        let mut halfway = strictest.clone();
        let extra: Vec<_> = refined
            .final_spec
            .excluded()
            .filter(|m| strictest.is_atomic(*m))
            .collect();
        for m in extra.iter().take(extra.len() / 2) {
            halfway.exclude(*m);
        }
        let config = DcConfig::single_run(CoordinationMode::Threaded);
        let specs = [&strictest, &halfway, &refined.final_spec];
        let mut row = vec![wl.name.to_string()];
        for (i, spec) in specs.iter().enumerate() {
            let r = single_run_ratio(wl, spec, config.clone(), trials);
            cols[i].push(r);
            row.push(fmt_ratio(r));
        }
        rows.push(row);
    }
    rows.push(vec![
        "geomean".into(),
        fmt_ratio(geomean(&cols[0])),
        fmt_ratio(geomean(&cols[1])),
        fmt_ratio(geomean(&cols[2])),
    ]);
    rows.push(vec![
        "paper".into(),
        "3.4x".into(),
        "3.6x".into(),
        "3.6x".into(),
    ]);
    dc_bench::print_table(
        "Sec 5.4(1) — single-run slowdown during iterative refinement",
        &["Benchmark", "strictest spec", "halfway", "final"],
        &rows,
    );
}

/// §5.4 experiment 2: array instrumentation with conflated metadata; cycle
/// detection disabled for both checkers (conflation makes both imprecise).
fn array_instrumentation_overhead(workloads: &[Workload], trials: u32) {
    // The paper excludes xalan6/xalan9 here (out-of-memory there).
    let subset: Vec<&Workload> = workloads
        .iter()
        .filter(|w| !w.name.starts_with("xalan"))
        .collect();
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 4] = Default::default();
    for wl in &subset {
        eprintln!("[sec54/arrays] {} …", wl.name);
        let spec = final_spec(wl, 3);
        let n = wl.program.threads.len();
        let (base, _) = time_real(&wl.program, || NopChecker, trials);
        let ratio = |t: u64| t as f64 / base.max(1) as f64;

        let dc = |arrays: bool| DcConfig {
            instrument_arrays: arrays,
            detect_cycles: false,
            run_pcd: false,
            ..DcConfig::single_run(CoordinationMode::Threaded)
        };
        let velo = |arrays: bool| VelodromeConfig {
            instrument_arrays: arrays,
            detect_cycles: false,
            ..VelodromeConfig::default()
        };
        let measurements = [
            time_real(
                &wl.program,
                || DoubleChecker::new(n, spec.clone(), dc(false)),
                trials,
            )
            .0,
            time_real(
                &wl.program,
                || DoubleChecker::new(n, spec.clone(), dc(true)),
                trials,
            )
            .0,
            time_real(
                &wl.program,
                || Velodrome::new(n, spec.clone(), velo(false)),
                trials,
            )
            .0,
            time_real(
                &wl.program,
                || Velodrome::new(n, spec.clone(), velo(true)),
                trials,
            )
            .0,
        ];
        let mut row = vec![wl.name.to_string()];
        for (i, m) in measurements.iter().enumerate() {
            let r = ratio(*m);
            cols[i].push(r);
            row.push(fmt_ratio(r));
        }
        rows.push(row);
    }
    rows.push(vec![
        "geomean".into(),
        fmt_ratio(geomean(&cols[0])),
        fmt_ratio(geomean(&cols[1])),
        fmt_ratio(geomean(&cols[2])),
        fmt_ratio(geomean(&cols[3])),
    ]);
    rows.push(vec![
        "paper".into(),
        "3.1x".into(),
        "3.7x".into(),
        "6.3x".into(),
        "7.3x".into(),
    ]);
    dc_bench::print_table(
        "Sec 5.4(2) — array instrumentation (cycle detection off, xalan* excluded)",
        &[
            "Benchmark",
            "DC no arrays",
            "DC arrays",
            "Velo no arrays",
            "Velo arrays",
        ],
        &rows,
    );
}

/// §5.4 experiment 3: the PCD-only straw man.
fn pcd_only(workloads: &[Workload], trials: u32) {
    // The paper excludes eclipse6, xalan6, avrora9, xalan9 (out of memory).
    let subset: Vec<&Workload> = workloads
        .iter()
        .filter(|w| !matches!(w.name, "eclipse6" | "xalan6" | "avrora9" | "xalan9"))
        .collect();
    let mut rows = Vec::new();
    let mut cols: [Vec<f64>; 2] = Default::default();
    for wl in &subset {
        eprintln!("[sec54/pcd-only] {} …", wl.name);
        let spec = final_spec(wl, 3);
        let single = single_run_ratio(
            wl,
            &spec,
            DcConfig::single_run(CoordinationMode::Threaded),
            trials,
        );
        let pcd_only = single_run_ratio(
            wl,
            &spec,
            DcConfig::pcd_only(CoordinationMode::Threaded),
            trials,
        );
        cols[0].push(single);
        cols[1].push(pcd_only);
        rows.push(vec![
            wl.name.to_string(),
            fmt_ratio(single),
            fmt_ratio(pcd_only),
        ]);
        dc_bench::record_json(
            "sec54.jsonl",
            &serde_json::json!({
                "benchmark": wl.name,
                "single": single,
                "pcd_only": pcd_only,
            }),
        );
    }
    rows.push(vec![
        "geomean".into(),
        fmt_ratio(geomean(&cols[0])),
        fmt_ratio(geomean(&cols[1])),
    ]);
    rows.push(vec!["paper".into(), "3.1x".into(), "16.6x".into()]);
    dc_bench::print_table(
        "Sec 5.4(3) — PCD-only variant (ICD as first-pass filter disabled)",
        &["Benchmark", "single-run", "PCD-only"],
        &rows,
    );
}
