//! Regenerates **Figure 7**: run-time performance of Velodrome,
//! DoubleChecker's single-run mode, and the first and second runs of
//! multi-run mode, normalized to an unmodified run — plus the §5.3 extra
//! configurations: the unsound Velodrome variant, Velodrome as the second
//! run, and the always-instrument-unary second run.
//!
//! Shapes to check against the paper: Velodrome slowest among sound
//! checkers (6.1x there); single-run clearly faster (3.6x); first run
//! fastest (1.9x); second run in between (2.4x); unsound Velodrome between
//! Velodrome and single-run (4.1x); Velodrome-as-second-run slower than the
//! ICD+PCD second run (2.9x); always-instrument-unary slower than the
//! conditional second run.
//!
//! `single-run-pipelined` is this reproduction's addition (no paper
//! counterpart): single-run with the asynchronous analysis pipeline, where
//! application threads never take the graph mutex (`graph_locks = 0`) and
//! SCC detection + PCD replay run on background threads.
//! `single-run-shards2` splits that pipeline's IDG across two shard owners
//! partitioned by connected component; the observed records compare the
//! single owner's busy time against the sharded maximum.
//! `single-run-aerodrome` races the vector-clock backend (no paper
//! counterpart): same dependence discovery as Velodrome, but cycle
//! detection is a constant-time clock comparison per join instead of a
//! graph search; the observed record carries the clock-join latency
//! histogram.

use dc_aerodrome::{AeroConfig, AeroDrome};
use dc_bench::{filter_workloads, final_spec, fmt_ratio, geomean, scale_from_env, time_real};
use dc_core::{DcConfig, DoubleChecker, ExecPlan, StaticTxInfo};
use dc_octet::CoordinationMode;
use dc_runtime::checker::NopChecker;
use dc_runtime::spec::AtomicitySpec;
use dc_velodrome::{Variant, Velodrome, VelodromeConfig};
use dc_workloads::Workload;

struct Config {
    name: &'static str,
    paper: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        name: "velodrome",
        paper: "6.1x",
    },
    Config {
        name: "velodrome-unsound",
        paper: "4.1x",
    },
    Config {
        name: "single-run-aerodrome",
        paper: "n/a (this repro)",
    },
    Config {
        name: "single-run",
        paper: "3.6x",
    },
    Config {
        name: "single-run-pipelined",
        paper: "n/a (this repro)",
    },
    Config {
        name: "single-run-shards2",
        paper: "n/a (this repro)",
    },
    Config {
        name: "first-run",
        paper: "1.9x",
    },
    Config {
        name: "second-run",
        paper: "2.4x",
    },
    Config {
        name: "second-run-always-unary",
        paper: "2.69x (169%)",
    },
    Config {
        name: "velodrome-second-run",
        paper: "2.9x",
    },
];

fn main() {
    let scale = scale_from_env();
    let trials = dc_bench::trials_from_env(3);
    let quiescent = 4;
    let workloads = filter_workloads(dc_workloads::performance_suite(scale));

    let mut headers: Vec<&str> = vec!["Benchmark", "base (ms)"];
    headers.extend(CONFIGS.iter().map(|c| c.name));
    headers.push("pipeline metrics");
    let mut rows = Vec::new();
    let mut ratio_columns: Vec<Vec<f64>> = vec![Vec::new(); CONFIGS.len()];

    for wl in &workloads {
        eprintln!("[figure7] {} …", wl.name);
        let spec = final_spec(wl, quiescent);
        // First-run static info for the second-run configurations
        // (union of several first runs, §5.1's methodology).
        let info = first_run_info(wl, &spec, 4);

        let (base, _) = time_real(&wl.program, || NopChecker, trials);
        let mut row = vec![wl.name.to_string(), format!("{:.1}", base as f64 / 1e6)];
        for (i, config) in CONFIGS.iter().enumerate() {
            let nanos = run_config(wl, &spec, &info, config.name, trials);
            let ratio = nanos as f64 / base.max(1) as f64;
            ratio_columns[i].push(ratio);
            row.push(fmt_ratio(ratio));
            dc_bench::record_json(
                "figure7.jsonl",
                &serde_json::json!({
                    "benchmark": wl.name,
                    "config": config.name,
                    "base_ns": base,
                    "checker_ns": nanos,
                    "slowdown": ratio,
                }),
            );
        }
        // One extra instrumented run of the pipelined configuration
        // (observability `full`, excluded from the timing columns): queue
        // high-watermarks and stage tail latencies for the metrics column,
        // full pipeline report to the jsonl record.
        let (cell, pipeline_json) = pipeline_metrics(wl, &spec, 1);
        row.push(cell);
        dc_bench::record_json(
            "figure7.jsonl",
            &serde_json::json!({
                "benchmark": wl.name,
                "config": "single-run-pipelined-observed",
                "pipeline": pipeline_json,
            }),
        );
        // The same instrumented run with two shard owners: the jsonl record
        // carries per-shard busy time and the merge count so the shard-
        // scaling comparison (EXPERIMENTS.md) can be read off directly.
        let (_, sharded_json) = pipeline_metrics(wl, &spec, 2);
        dc_bench::record_json(
            "figure7.jsonl",
            &serde_json::json!({
                "benchmark": wl.name,
                "config": "single-run-sharded-observed",
                "shards": 2,
                "pipeline": sharded_json,
            }),
        );
        // One instrumented AeroDrome run (join timing on, excluded from the
        // timing columns): edge/join counters plus the clock-join latency
        // histogram for the vector-clock race in EXPERIMENTS.md.
        dc_bench::record_json(
            "figure7.jsonl",
            &serde_json::json!({
                "benchmark": wl.name,
                "config": "single-run-aerodrome-observed",
                "aerodrome": aerodrome_metrics(wl, &spec),
            }),
        );
        rows.push(row);
    }
    let mut geo = vec!["geomean".to_string(), String::new()];
    for column in &ratio_columns {
        geo.push(fmt_ratio(geomean(column)));
    }
    geo.push(String::new());
    rows.push(geo);
    let mut paper_row = vec!["paper geomean".to_string(), String::new()];
    paper_row.extend(CONFIGS.iter().map(|c| c.paper.to_string()));
    paper_row.push(String::new());
    rows.push(paper_row);
    let header_refs: Vec<&str> = headers.clone();
    dc_bench::print_table(
        "Figure 7 — normalized execution time (median of trials, real threads)",
        &header_refs,
        &rows,
    );
}

/// Runs the pipelined configuration once with full observability and
/// distils the pipeline report into a table cell (queue high-watermark and
/// stage p99s) plus the complete JSON record.
fn pipeline_metrics(
    wl: &Workload,
    spec: &AtomicitySpec,
    shards: u32,
) -> (String, serde_json::Value) {
    let report = dc_core::run_doublechecker(
        &wl.program,
        spec,
        DcConfig::single_run(CoordinationMode::Threaded)
            .with_pipelined(true)
            .with_shards(shards)
            .with_observability(dc_core::ObsLevel::Full),
        &ExecPlan::Real,
    )
    .expect("instrumented pipelined run");
    let p = report.pipeline.expect("observability was on");
    let cell = format!(
        "q hwm {}, scc p99 {}ns, replay p99 {}ns",
        p.graph.queue_depth.high_watermark, p.graph.scc_latency.p99, p.replay.latency.p99,
    );
    (cell, dc_core::pipeline_report_to_json(&p))
}

/// Runs AeroDrome once on real threads with join timing enabled and
/// distils the counters and the clock-join latency histogram into the
/// observed JSON record.
fn aerodrome_metrics(wl: &Workload, spec: &AtomicitySpec) -> serde_json::Value {
    let (_, aero) = time_real(
        &wl.program,
        || {
            AeroDrome::new(
                wl.program.threads.len(),
                spec.clone(),
                AeroConfig {
                    time_joins: true,
                    ..AeroConfig::default()
                },
            )
        },
        1,
    );
    let h = aero.stats().clock_join_latency.summary();
    serde_json::json!({
        "violations": aero.violations().len(),
        "cross_edges": aero.cross_edges(),
        "clock_joins": aero.clock_joins(),
        "propagated_joins": aero.propagated_joins(),
        "clock_join_latency": serde_json::json!({
            "count": h.count,
            "sum_ns": h.sum,
            "p50_ns": h.p50,
            "p90_ns": h.p90,
            "p99_ns": h.p99,
            "max_ns": h.max,
        }),
    })
}

fn first_run_info(wl: &Workload, spec: &AtomicitySpec, n: u32) -> StaticTxInfo {
    let mut info = StaticTxInfo::default();
    for k in 0..n {
        let plan = ExecPlan::Det(dc_runtime::engine::det::Schedule::random(
            1000 + u64::from(k),
        ));
        let report = dc_core::run_doublechecker(
            &wl.program,
            spec,
            DcConfig::first_run(CoordinationMode::Immediate),
            &plan,
        )
        .expect("first run");
        info.union(&report.static_info);
    }
    info
}

fn run_config(
    wl: &Workload,
    spec: &AtomicitySpec,
    info: &StaticTxInfo,
    name: &str,
    trials: u32,
) -> u64 {
    let n = wl.program.threads.len();
    match name {
        "velodrome" => {
            time_real(
                &wl.program,
                || Velodrome::new(n, spec.clone(), VelodromeConfig::default()),
                trials,
            )
            .0
        }
        "velodrome-unsound" => {
            time_real(
                &wl.program,
                || {
                    Velodrome::new(
                        n,
                        spec.clone(),
                        VelodromeConfig {
                            variant: Variant::Unsound,
                            ..VelodromeConfig::default()
                        },
                    )
                },
                trials,
            )
            .0
        }
        "single-run-aerodrome" => {
            time_real(
                &wl.program,
                || AeroDrome::new(n, spec.clone(), AeroConfig::default()),
                trials,
            )
            .0
        }
        "single-run" => {
            time_real(
                &wl.program,
                || {
                    DoubleChecker::new(
                        n,
                        spec.clone(),
                        DcConfig::single_run(CoordinationMode::Threaded),
                    )
                },
                trials,
            )
            .0
        }
        "single-run-pipelined" => {
            time_real(
                &wl.program,
                || {
                    DoubleChecker::new(
                        n,
                        spec.clone(),
                        DcConfig::single_run(CoordinationMode::Threaded).with_pipelined(true),
                    )
                },
                trials,
            )
            .0
        }
        "single-run-shards2" => {
            time_real(
                &wl.program,
                || {
                    DoubleChecker::new(
                        n,
                        spec.clone(),
                        DcConfig::single_run(CoordinationMode::Threaded)
                            .with_pipelined(true)
                            .with_shards(2),
                    )
                },
                trials,
            )
            .0
        }
        "first-run" => {
            time_real(
                &wl.program,
                || {
                    DoubleChecker::new(
                        n,
                        spec.clone(),
                        DcConfig::first_run(CoordinationMode::Threaded),
                    )
                },
                trials,
            )
            .0
        }
        "second-run" => {
            time_real(
                &wl.program,
                || {
                    DoubleChecker::new(
                        n,
                        spec.clone(),
                        DcConfig::second_run(info, CoordinationMode::Threaded),
                    )
                },
                trials,
            )
            .0
        }
        "second-run-always-unary" => {
            time_real(
                &wl.program,
                || {
                    DoubleChecker::new(
                        n,
                        spec.clone(),
                        DcConfig {
                            filter: info.to_filter_always_unary(),
                            ..DcConfig::single_run(CoordinationMode::Threaded)
                        },
                    )
                },
                trials,
            )
            .0
        }
        "velodrome-second-run" => {
            time_real(
                &wl.program,
                || {
                    Velodrome::new(
                        n,
                        spec.clone(),
                        VelodromeConfig {
                            filter: info.to_filter(),
                            ..VelodromeConfig::default()
                        },
                    )
                },
                trials,
            )
            .0
        }
        other => unreachable!("unknown config {other}"),
    }
}
