//! Shared infrastructure for the table/figure harnesses.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! `DESIGN.md` §5 for the index). The harnesses print markdown tables to
//! stdout and append machine-readable JSON lines to
//! `target/experiment-results/` so `EXPERIMENTS.md` can be refreshed.
//!
//! Environment knobs:
//!
//! * `DC_SCALE` — `tiny` | `small` (default) | `full`;
//! * `DC_TRIALS` — timing trials per configuration (default 3);
//! * `DC_BENCH_FILTER` — run only benchmarks whose name contains this
//!   substring.

#![warn(missing_docs)]

use dc_core::{
    initial_spec, iterative_refinement, run_doublechecker, DcConfig, ExecPlan, RefinementResult,
    ReportedViolation, StaticTxInfo,
};
use dc_runtime::checker::Checker;
use dc_runtime::engine::det::Schedule;
use dc_runtime::program::Program;
use dc_runtime::spec::AtomicitySpec;
use dc_velodrome::{Velodrome, VelodromeConfig};
use dc_workloads::{Scale, Workload};
use std::io::Write as _;
use std::time::Instant;

/// Reads the workload scale from `DC_SCALE`.
pub fn scale_from_env() -> Scale {
    match std::env::var("DC_SCALE").as_deref() {
        Ok("tiny") => Scale::Tiny,
        Ok("full") => Scale::Full,
        _ => Scale::Small,
    }
}

/// Reads the trial count from `DC_TRIALS`.
pub fn trials_from_env(default: u32) -> u32 {
    std::env::var("DC_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Applies the `DC_BENCH_FILTER` substring filter.
pub fn filter_workloads(mut workloads: Vec<Workload>) -> Vec<Workload> {
    if let Ok(filter) = std::env::var("DC_BENCH_FILTER") {
        workloads.retain(|w| w.name.contains(&filter));
    }
    workloads
}

/// Prints a markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Appends one JSON line with the harness results.
pub fn record_json(file: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/experiment-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(file))
    {
        let _ = writeln!(f, "{value}");
    }
}

/// Runs one checker trial for iterative refinement and returns the reported
/// violations in the refinement loop's shape.
pub fn dc_trial(
    program: &Program,
    spec: &AtomicitySpec,
    config: DcConfig,
    seed: u64,
) -> Vec<ReportedViolation> {
    let plan = ExecPlan::Det(Schedule::random(seed));
    let report = run_doublechecker(program, spec, config, &plan).expect("trial run");
    report
        .violations
        .iter()
        .map(|v| ReportedViolation {
            blamed: v.blamed_methods(),
            key: v.static_key(),
        })
        .collect()
}

/// Runs one Velodrome trial for iterative refinement.
pub fn velodrome_trial(
    program: &Program,
    spec: &AtomicitySpec,
    seed: u64,
) -> Vec<ReportedViolation> {
    let v = Velodrome::new(
        program.threads.len(),
        spec.clone(),
        VelodromeConfig::default(),
    );
    dc_runtime::engine::det::run_det(program, &v, &Schedule::random(seed)).expect("trial run");
    v.violations()
        .into_iter()
        .map(|violation| ReportedViolation {
            blamed: violation.blamed_methods.clone(),
            key: violation.static_key(),
        })
        .collect()
}

/// Which checker drives a refinement (Table 2 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineDriver {
    /// Velodrome baseline.
    Velodrome,
    /// DoubleChecker single-run mode.
    SingleRun,
    /// DoubleChecker multi-run mode (`first_runs` first-run trials feed each
    /// second run).
    MultiRun {
        /// First-run trials unioned per refinement trial (paper: 10).
        first_runs: u32,
    },
}

/// Runs iterative refinement (Figure 6) to quiescence for one driver.
pub fn refine(wl: &Workload, driver: RefineDriver, quiescent_trials: u32) -> RefinementResult {
    let start = initial_spec(&wl.program, &wl.extra_exclusions);
    let mut salt = match driver {
        RefineDriver::Velodrome => 0x10_000u64,
        RefineDriver::SingleRun => 0x20_000,
        RefineDriver::MultiRun { .. } => 0x30_000,
    };
    iterative_refinement(start, quiescent_trials, 32, move |spec, trial| {
        salt += 1;
        let seed = salt * 1000 + u64::from(trial);
        match driver {
            RefineDriver::Velodrome => velodrome_trial(&wl.program, spec, seed),
            RefineDriver::SingleRun => dc_trial(
                &wl.program,
                spec,
                DcConfig::single_run(dc_octet::CoordinationMode::Immediate),
                seed,
            ),
            RefineDriver::MultiRun { first_runs } => {
                // Union the static info of `first_runs` first-run trials,
                // then check with a second run.
                let mut info = StaticTxInfo::default();
                for k in 0..first_runs {
                    let plan = ExecPlan::Det(Schedule::random(seed + 7 * u64::from(k)));
                    let report = run_doublechecker(
                        &wl.program,
                        spec,
                        DcConfig::first_run(dc_octet::CoordinationMode::Immediate),
                        &plan,
                    )
                    .expect("first run");
                    info.union(&report.static_info);
                }
                dc_trial(
                    &wl.program,
                    spec,
                    DcConfig::second_run(&info, dc_octet::CoordinationMode::Immediate),
                    seed,
                )
            }
        }
    })
}

/// Derives the *final specification* for performance runs: the intersection
/// of the atomic sets refined by Velodrome and by single-run mode
/// (paper §5.1, "to avoid any bias toward one approach").
pub fn final_spec(wl: &Workload, quiescent_trials: u32) -> AtomicitySpec {
    let v = refine(wl, RefineDriver::Velodrome, quiescent_trials);
    let d = refine(wl, RefineDriver::SingleRun, quiescent_trials);
    v.final_spec.intersect_atomic(&d.final_spec)
}

/// Times `checker` over `trials` real-thread runs of `program`, returning
/// the median wall-clock nanoseconds and the last checker instance (for
/// statistics inspection).
pub fn time_real<C: Checker, F: Fn() -> C>(
    program: &Program,
    make_checker: F,
    trials: u32,
) -> (u64, C) {
    let mut times = Vec::with_capacity(trials as usize);
    let mut last = None;
    for _ in 0..trials.max(1) {
        let checker = make_checker();
        let start = Instant::now();
        dc_runtime::engine::real::run_real(program, &checker);
        times.push(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        last = Some(checker);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("at least one trial"))
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-9).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a slowdown ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_identity() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn fmt_ratio_is_two_decimals() {
        assert_eq!(fmt_ratio(std::f64::consts::PI), "3.14x");
    }

    #[test]
    fn refinement_converges_on_tsp() {
        let wl = dc_workloads::by_name("tsp", Scale::Tiny).unwrap();
        let initial = initial_spec(&wl.program, &wl.extra_exclusions);
        let result = refine(&wl, RefineDriver::SingleRun, 4);
        // The seeded racy methods should eventually be blamed and excluded.
        assert!(result.distinct_violations() >= 1);
        assert!(result.rounds >= 1);
        assert!(
            result.final_spec.excluded_len() > initial.excluded_len(),
            "refinement must exclude blamed methods"
        );
        // Refinement quiesced: the final window of trials it ran was clean
        // (a *fresh* seed may still expose a violation — the methodology is
        // approximate, as the paper notes).
    }

    #[test]
    fn final_spec_is_clean_for_both_checkers() {
        let wl = dc_workloads::by_name("hsqldb6", Scale::Tiny).unwrap();
        let spec = final_spec(&wl, 3);
        for seed in [5u64, 17, 23] {
            assert!(velodrome_trial(&wl.program, &spec, seed).is_empty());
            assert!(dc_trial(
                &wl.program,
                &spec,
                DcConfig::single_run(dc_octet::CoordinationMode::Immediate),
                seed
            )
            .is_empty());
        }
    }

    #[test]
    fn time_real_returns_positive_median() {
        let wl = dc_workloads::by_name("sor", Scale::Tiny).unwrap();
        let (nanos, _) = time_real(&wl.program, || dc_runtime::checker::NopChecker, 3);
        assert!(nanos > 0);
    }
}
