//! The `dc` command-line tool. See [`dc_cli::usage`] and the crate docs.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dc_cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(dc_cli::CliError::Usage(message)) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
        Err(dc_cli::CliError::Failed(message)) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
