//! Library backing the `dc` command-line tool: argument parsing and the
//! subcommand implementations, kept separate from `main` for testability.
//!
//! Subcommands:
//!
//! * `dc list` — the benchmark workloads and their shapes;
//! * `dc check --workload <name> [--checker <which>] [--seed N] …` — run
//!   one checker over one workload and report violations;
//! * `dc refine --workload <name> …` — iterative refinement (Figure 6);
//! * `dc trace --workload <name> …` — record and print an execution trace,
//!   with the offline oracle's verdict.
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within
//! the workspace's dependency policy.

#![warn(missing_docs)]

use dc_aerodrome::{AeroConfig, AeroDrome};
use dc_core::{
    run_doublechecker, stats_to_json, trace_event_to_json, DcConfig, DcReport, ExecPlan, ObsLevel,
    OpTransport, ReportedViolation, StaticTxInfo,
};
use dc_octet::CoordinationMode;
use dc_pcd::{analyze_trace, OfflineConfig};
use dc_runtime::engine::det::Schedule;
use dc_runtime::program::Program;
use dc_runtime::spec::AtomicitySpec;
use dc_runtime::trace::TraceChecker;
use dc_velodrome::{Variant, Velodrome, VelodromeConfig};
use dc_workloads::{by_name, Scale, Workload};
use std::fmt::Write as _;

/// Everything that can go wrong while handling a command.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// Unknown subcommand or malformed flags; the message is user-facing.
    Usage(String),
    /// The command ran but failed (unknown workload, deadlock, …).
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    /// Parses `--key value` pairs from raw arguments.
    ///
    /// # Errors
    ///
    /// Rejects positional arguments and dangling `--key`s.
    pub fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(CliError::Usage(format!("unexpected argument {a:?}")));
            };
            let Some(value) = it.next() else {
                return Err(CliError::Usage(format!("--{key} needs a value")));
            };
            pairs.push((key.to_string(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key} expects a number, got {v:?}"))),
        }
    }

    fn scale(&self) -> Result<Scale, CliError> {
        match self.get("scale") {
            None | Some("tiny") => Ok(Scale::Tiny),
            Some("small") => Ok(Scale::Small),
            Some("full") => Ok(Scale::Full),
            Some(other) => Err(CliError::Usage(format!(
                "--scale must be tiny|small|full, got {other:?}"
            ))),
        }
    }

    fn workload(&self) -> Result<Workload, CliError> {
        let name = self
            .get("workload")
            .ok_or_else(|| CliError::Usage("--workload <name> is required".into()))?;
        by_name(name, self.scale()?).ok_or_else(|| {
            CliError::Failed(format!(
                "unknown workload {name:?}; `dc list` shows the available ones"
            ))
        })
    }
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "usage: dc <command> [--key value …]\n\
     commands:\n\
       list                         list benchmark workloads\n\
       check   --workload <name>    run one checker over one execution\n\
               | --history <file>   … or replay an imported dc-history JSON\n\
                                    file (fixed interleaving; excludes\n\
                                    --workload/--seed/--engine real)\n\
               [--checker dc|single|first-run|second-run|pcd-only|\n\
                          velodrome|velodrome-unsound|aerodrome]\n\
               [--seed N] [--scale tiny|small|full] [--engine det|real]\n\
               [--pipelined on|off]  async graph/SCC/PCD pipeline (DoubleChecker modes)\n\
               [--transport ring|channel]  pipelined op transport (default ring)\n\
               [--shards N]          pipelined IDG shards (default 1 = single owner)\n\
               [--barrier-cache on|off]  Octet ownership inline cache (default on)\n\
               [--obs off|counters|full]  pipeline observability level\n\
               [--stats-json <path>] write stats + pipeline metrics as JSON\n\
               [--trace-out <path>]  write the pipeline trace as JSON lines (implies --obs full)\n\
       refine  --workload <name>    iterative refinement (Figure 6)\n\
               [--window N] [--scale tiny|small|full]\n\
       trace   --workload <name>    record a trace; offline-oracle verdict\n\
               [--seed N] [--limit N] [--scale tiny|small|full]"
}

/// Dispatches a command line (without the program name). Returns the text
/// to print on success.
///
/// # Errors
///
/// [`CliError::Usage`] for malformed invocations, [`CliError::Failed`] for
/// runtime failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage(usage().into()));
    };
    let flags = Flags::parse(rest)?;
    match command.as_str() {
        "list" => cmd_list(&flags),
        "check" => cmd_check(&flags),
        "refine" => cmd_refine(&flags),
        "trace" => cmd_trace(&flags),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

fn cmd_list(flags: &Flags) -> Result<String, CliError> {
    let scale = flags.scale()?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<12} {:>8} {:>9} {:>12}  notes",
        "name", "threads", "methods", "dynamic ops"
    )
    .ok();
    for wl in dc_workloads::all(scale) {
        writeln!(
            out,
            "{:<12} {:>8} {:>9} {:>12}  {}",
            wl.name,
            wl.program.threads.len(),
            wl.program.methods.len(),
            wl.program.dynamic_op_count(),
            if wl.compute_bound {
                "compute-bound"
            } else {
                "excluded from Figure 7"
            },
        )
        .ok();
    }
    Ok(out)
}

fn spec_for(wl: &Workload) -> AtomicitySpec {
    dc_core::initial_spec(&wl.program, &wl.extra_exclusions)
}

fn plan(flags: &Flags) -> Result<ExecPlan, CliError> {
    let seed = flags.u64_or("seed", 42)?;
    match flags.get("engine") {
        None | Some("det") => Ok(ExecPlan::Det(Schedule::random(seed))),
        Some("real") => Ok(ExecPlan::Real),
        Some(other) => Err(CliError::Usage(format!(
            "--engine must be det|real, got {other:?}"
        ))),
    }
}

/// Observability-related `check` flags: level override plus output paths.
struct ObsFlags {
    level: Option<ObsLevel>,
    stats_json: Option<String>,
    trace_out: Option<String>,
}

impl ObsFlags {
    fn parse(flags: &Flags) -> Result<ObsFlags, CliError> {
        let level = match flags.get("obs") {
            None => None,
            Some(v) => Some(ObsLevel::parse(v).ok_or_else(|| {
                CliError::Usage(format!("--obs must be off|counters|full, got {v:?}"))
            })?),
        };
        Ok(ObsFlags {
            level,
            stats_json: flags.get("stats-json").map(String::from),
            trace_out: flags.get("trace-out").map(String::from),
        })
    }

    fn any(&self) -> bool {
        self.level.is_some() || self.stats_json.is_some() || self.trace_out.is_some()
    }

    /// The effective level: `--trace-out` needs the trace ring (`full`);
    /// `--stats-json` needs at least counters to have anything to report.
    fn effective(&self, default: ObsLevel) -> ObsLevel {
        let level = self.level.unwrap_or(default);
        if self.trace_out.is_some() {
            ObsLevel::Full
        } else if self.stats_json.is_some() && level == ObsLevel::Off {
            ObsLevel::Counters
        } else {
            level
        }
    }
}

/// What `check` runs on: a named benchmark workload or an imported history.
struct CheckTarget {
    program: Program,
    spec: AtomicitySpec,
    plan: ExecPlan,
    /// `Some` when the target came from `--history`: the parsed history,
    /// used for the summary line and expected-verdict enforcement.
    history: Option<dc_histories::History>,
}

fn check_target(flags: &Flags) -> Result<CheckTarget, CliError> {
    let Some(path) = flags.get("history") else {
        let wl = flags.workload()?;
        let spec = spec_for(&wl);
        return Ok(CheckTarget {
            program: wl.program,
            spec,
            plan: plan(flags)?,
            history: None,
        });
    };
    if flags.get("workload").is_some() {
        return Err(CliError::Usage(
            "--history and --workload are mutually exclusive".into(),
        ));
    }
    // A history fixes its own interleaving; flags that pick one are
    // contradictions, not no-ops.
    if flags.get("seed").is_some() {
        return Err(CliError::Usage(
            "--seed has no effect with --history: the interleaving is fixed by the file".into(),
        ));
    }
    if matches!(flags.get("engine"), Some("real")) {
        return Err(CliError::Usage(
            "--engine real cannot replay a history: the interleaving is fixed by the file".into(),
        ));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Failed(format!("reading {path:?}: {e}")))?;
    let (history, lowered) = dc_histories::import(&text)
        .map_err(|e| CliError::Usage(format!("invalid history {path:?}: {e}")))?;
    Ok(CheckTarget {
        program: lowered.program,
        spec: lowered.spec,
        plan: ExecPlan::Det(lowered.schedule),
        history: Some(history),
    })
}

fn cmd_check(flags: &Flags) -> Result<String, CliError> {
    let CheckTarget {
        program,
        spec,
        plan,
        history,
    } = check_target(flags)?;
    let checker = flags.get("checker").unwrap_or("single");
    let obs_flags = ObsFlags::parse(flags)?;
    let mut out = String::new();
    if let Some(h) = &history {
        writeln!(
            out,
            "history: {} — {} session(s), {} transaction(s), {} event(s)",
            h.name.as_deref().unwrap_or("<unnamed>"),
            h.sessions.len(),
            h.transaction_count(),
            h.event_count(),
        )
        .ok();
    }
    let found_violation;

    let describe_violation = |out: &mut String, cycle_methods: &[String], blamed: &[String]| {
        writeln!(
            out,
            "violation: cycle through [{}], blamed [{}]",
            cycle_methods.join(", "),
            blamed.join(", ")
        )
        .ok();
    };

    match checker {
        "velodrome" | "velodrome-unsound" | "aerodrome" => {
            if obs_flags.any() {
                return Err(CliError::Usage(
                    "--obs/--stats-json/--trace-out apply only to DoubleChecker checkers".into(),
                ));
            }
            let (violations, summary) = if checker == "aerodrome" {
                let a = AeroDrome::new(program.threads.len(), spec, AeroConfig::default());
                run_plan(&program, &a, &plan)?;
                let violations = a.violations();
                let summary = format!(
                    "{}: {} violation(s), {} cross edges, {} clock joins ({} propagated)",
                    checker,
                    violations.len(),
                    a.cross_edges(),
                    a.clock_joins(),
                    a.propagated_joins(),
                );
                (violations, summary)
            } else {
                let config = VelodromeConfig {
                    variant: if checker == "velodrome" {
                        Variant::Sound
                    } else {
                        Variant::Unsound
                    },
                    ..VelodromeConfig::default()
                };
                let v = Velodrome::new(program.threads.len(), spec, config);
                run_plan(&program, &v, &plan)?;
                let violations = v.violations();
                let summary = format!(
                    "{}: {} violation(s), {} cross edges",
                    checker,
                    violations.len(),
                    v.cross_edges()
                );
                (violations, summary)
            };
            for violation in &violations {
                let methods: Vec<String> = violation
                    .cycle
                    .iter()
                    .map(|(_, k)| method_name(&program, k.method()))
                    .collect();
                let blamed: Vec<String> = violation
                    .blamed_methods
                    .iter()
                    .map(|m| program.method_name(*m).to_string())
                    .collect();
                describe_violation(&mut out, &methods, &blamed);
            }
            writeln!(out, "{summary}").ok();
            found_violation = !violations.is_empty();
        }
        _ => {
            let coordination = match plan {
                ExecPlan::Real => CoordinationMode::Threaded,
                ExecPlan::Det(_) => CoordinationMode::Immediate,
            };
            let config = match checker {
                "single" | "dc" => DcConfig::single_run(coordination),
                "first-run" => DcConfig::first_run(coordination),
                "second-run" => {
                    // Derive static info from a handful of first runs. A
                    // history has exactly one meaningful interleaving, so
                    // its first run replays the same scripted plan.
                    let first_plans: Vec<ExecPlan> = if history.is_some() {
                        vec![plan.clone()]
                    } else {
                        (0..4u64)
                            .map(|s| ExecPlan::Det(Schedule::random(s)))
                            .collect()
                    };
                    let mut info = StaticTxInfo::default();
                    for p in &first_plans {
                        let r = run_doublechecker(
                            &program,
                            &spec,
                            DcConfig::first_run(CoordinationMode::Immediate),
                            p,
                        )
                        .map_err(|e| CliError::Failed(e.to_string()))?;
                        info.union(&r.static_info);
                    }
                    DcConfig::second_run(&info, coordination)
                }
                "pcd-only" => DcConfig::pcd_only(coordination),
                other => return Err(CliError::Usage(format!("unknown --checker {other:?}"))),
            };
            let config = match flags.get("pipelined") {
                None | Some("off") => config,
                Some("on") => config.with_pipelined(true),
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "--pipelined must be on|off, got {other:?}"
                    )))
                }
            };
            let config = match flags.get("transport") {
                None => config,
                Some(v) => match OpTransport::parse(v) {
                    Some(t) => config.with_op_transport(t),
                    None => {
                        return Err(CliError::Usage(format!(
                            "--transport must be ring|channel, got {v:?}"
                        )))
                    }
                },
            };
            let config = match flags.get("shards") {
                None => config,
                Some(v) => {
                    let shards = v.parse::<u32>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        CliError::Usage(format!("--shards expects a positive integer, got {v:?}"))
                    })?;
                    config.with_shards(shards)
                }
            };
            let config = match flags.get("barrier-cache") {
                None => config,
                Some("on") => config.with_barrier_cache(true),
                Some("off") => config.with_barrier_cache(false),
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "--barrier-cache must be on|off, got {other:?}"
                    )))
                }
            };
            let level = obs_flags.effective(config.observability);
            let config = config.with_observability(level);
            let report = run_doublechecker(&program, &spec, config, &plan)
                .map_err(|e| CliError::Failed(e.to_string()))?;
            found_violation = !report.violations.is_empty();
            out.push_str(&finish_check(checker, &program, &report, &obs_flags)?);
        }
    }
    // `first-run` never reports violations and `velodrome-unsound` may
    // legitimately miss them, so the expected verdict binds every other
    // checker only.
    let verdict_binds = !matches!(checker, "first-run" | "velodrome-unsound");
    if let Some(expected) = history
        .as_ref()
        .and_then(|h| h.expected)
        .filter(|_| verdict_binds)
    {
        if expected.violation() != found_violation {
            return Err(CliError::Failed(format!(
                "history expects {} but the {} checker found {}",
                expected.as_str(),
                checker,
                if found_violation {
                    "a violation"
                } else {
                    "no violation"
                },
            )));
        }
        writeln!(out, "expected verdict: {} — matched", expected.as_str()).ok();
    }
    Ok(out)
}

/// Runs any plain [`Checker`] under the selected execution plan.
fn run_plan(
    program: &Program,
    checker: &impl dc_runtime::checker::Checker,
    plan: &ExecPlan,
) -> Result<(), CliError> {
    match plan {
        ExecPlan::Real => {
            dc_runtime::engine::real::run_real(program, checker);
            Ok(())
        }
        ExecPlan::Det(schedule) => dc_runtime::engine::det::run_det(program, checker, schedule)
            .map(|_| ())
            .map_err(|e| CliError::Failed(e.to_string())),
    }
}

/// Writes the `check` artifacts and renders the report for a DoubleChecker
/// run. Split from [`cmd_check`] so a synthetic [`DcReport`] — e.g. one
/// carrying a pipeline error, which no healthy run produces — can exercise
/// the full reporting path.
///
/// A drained pipeline error fails the command *after* the artifacts are
/// written: `--stats-json` carries the error (never a clean-looking
/// document), and the process exit code is nonzero.
fn finish_check(
    checker: &str,
    program: &Program,
    report: &DcReport,
    obs_flags: &ObsFlags,
) -> Result<String, CliError> {
    let mut out = String::new();
    if let Some(path) = &obs_flags.stats_json {
        let doc = stats_to_json(
            report.stats,
            report.pipeline.as_ref(),
            report.pipeline_error.as_ref(),
        );
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| CliError::Failed(format!("writing {path:?}: {e}")))?;
    }
    if let Some(path) = &obs_flags.trace_out {
        let mut lines = String::new();
        for event in &report.trace {
            writeln!(lines, "{}", trace_event_to_json(event)).ok();
        }
        std::fs::write(path, lines)
            .map_err(|e| CliError::Failed(format!("writing {path:?}: {e}")))?;
    }
    if let Some(err) = &report.pipeline_error {
        return Err(CliError::Failed(format!(
            "analysis pipeline failed: {err}; results are a prefix of the run"
        )));
    }
    if let Some(p) = &report.pipeline {
        writeln!(
            out,
            "pipeline: level {}, graph ops {}/{} (queue hwm {}, {} ring-full waits), \
             {} SCCs detected, replay {}/{} (queue hwm {}), {} trace events",
            p.level.as_str(),
            p.graph.ops_applied,
            p.graph.ops_enqueued,
            p.graph.queue_depth.high_watermark,
            p.graph.ring_full_waits,
            p.graph.sccs_detected,
            p.replay.completed,
            p.replay.submitted,
            p.replay.queue_depth.high_watermark,
            p.trace_recorded,
        )
        .ok();
    }
    for violation in &report.violations {
        let methods: Vec<String> = violation
            .cycle
            .iter()
            .map(|m| method_name(program, m.kind.method()))
            .collect();
        let blamed: Vec<String> = violation
            .blamed_methods()
            .iter()
            .map(|m| program.method_name(*m).to_string())
            .collect();
        let mut line = String::new();
        writeln!(
            line,
            "violation: cycle through [{}], blamed [{}]",
            methods.join(", "),
            blamed.join(", ")
        )
        .ok();
        out.push_str(&line);
    }
    let s = &report.stats;
    writeln!(
        out,
        "{}: {} violation(s); {} regular tx, {} unary tx, {} accesses, \
         {} IDG edges, {} SCCs ({} to PCD), {} log entries, {} app-thread graph locks",
        checker,
        report.violations.len(),
        s.regular_txs,
        s.unary_txs,
        s.regular_accesses + s.unary_accesses,
        s.idg_cross_edges,
        s.icd_sccs,
        s.sccs_to_pcd,
        s.log_entries,
        s.graph_locks,
    )
    .ok();
    Ok(out)
}

fn method_name(program: &Program, m: Option<dc_runtime::ids::MethodId>) -> String {
    match m {
        Some(m) => program.method_name(m).to_string(),
        None => "<non-transactional>".into(),
    }
}

fn cmd_refine(flags: &Flags) -> Result<String, CliError> {
    let wl = flags.workload()?;
    let window = u32::try_from(flags.u64_or("window", 5)?)
        .map_err(|_| CliError::Usage("--window too large".into()))?;
    let start = spec_for(&wl);
    let mut seed = 0u64;
    let program = &wl.program;
    let result = dc_core::iterative_refinement(start, window, 32, |spec, _| {
        seed += 1;
        let report = run_doublechecker(
            program,
            spec,
            DcConfig::single_run(CoordinationMode::Immediate),
            &ExecPlan::Det(Schedule::random(seed)),
        )
        .expect("refinement trial");
        report
            .violations
            .iter()
            .map(|v| ReportedViolation {
                blamed: v.blamed_methods(),
                key: v.static_key(),
            })
            .collect()
    });
    let mut out = String::new();
    writeln!(
        out,
        "{}: {} round(s), {} trial(s), {} distinct violation(s)",
        wl.name,
        result.rounds,
        result.trials,
        result.distinct_violations()
    )
    .ok();
    let mut excluded: Vec<&str> = result
        .final_spec
        .excluded()
        .map(|m| wl.program.method_name(m))
        .collect();
    excluded.sort_unstable();
    writeln!(out, "final specification excludes: {excluded:?}").ok();
    Ok(out)
}

fn cmd_trace(flags: &Flags) -> Result<String, CliError> {
    let wl = flags.workload()?;
    let seed = flags.u64_or("seed", 42)?;
    // Checked like --window: `as usize` would silently truncate an
    // over-large value (to 0 on 32-bit, arbitrary elsewhere) instead of
    // telling the user.
    let limit = u32::try_from(flags.u64_or("limit", 40)?)
        .map_err(|_| CliError::Usage("--limit too large".into()))? as usize;
    let trace = TraceChecker::new();
    dc_runtime::engine::det::run_det(&wl.program, &trace, &Schedule::random(seed))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let events = trace.into_events();
    let spec = spec_for(&wl);
    let report = analyze_trace(&events, &spec, OfflineConfig::default());
    let mut out = String::new();
    writeln!(
        out,
        "{}: {} events; offline oracle: {} violation(s), {} transactions, {} precise edges",
        wl.name,
        events.len(),
        report.violations.len(),
        report.transactions,
        report.edges
    )
    .ok();
    for e in events.iter().take(limit) {
        writeln!(out, "  {e:?}").ok();
    }
    if events.len() > limit {
        writeln!(out, "  … {} more (raise --limit)", events.len() - limit).ok();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn flags_parse_key_value_pairs() {
        let f = Flags::parse(&argv("--workload tsp --seed 7")).unwrap();
        assert_eq!(f.get("workload"), Some("tsp"));
        assert_eq!(f.get("seed"), Some("7"));
        assert_eq!(f.get("missing"), None);
    }

    #[test]
    fn flags_reject_positional_and_dangling() {
        assert!(matches!(
            Flags::parse(&argv("positional")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Flags::parse(&argv("--key")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn empty_invocation_prints_usage() {
        let err = run(&[]).unwrap_err();
        assert!(matches!(err, CliError::Usage(m) if m.contains("usage")));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        assert!(matches!(run(&argv("bogus")), Err(CliError::Usage(_))));
    }

    #[test]
    fn list_includes_all_nineteen() {
        let out = run(&argv("list")).unwrap();
        for name in ["eclipse6", "tsp", "raytracer", "philo"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        assert!(out.contains("excluded from Figure 7"));
    }

    #[test]
    fn check_single_runs_and_reports() {
        let out = run(&argv("check --workload tsp --seed 3")).unwrap();
        assert!(out.contains("single:"), "{out}");
        assert!(out.contains("IDG edges"));
    }

    #[test]
    fn check_pipelined_reports_zero_graph_locks() {
        let out = run(&argv("check --workload tsp --seed 3 --pipelined on")).unwrap();
        assert!(out.contains("0 app-thread graph locks"), "{out}");
        let sync = run(&argv("check --workload tsp --seed 3 --pipelined off")).unwrap();
        assert!(!sync.contains("0 app-thread graph locks"), "{sync}");
        assert!(matches!(
            run(&argv("check --workload tsp --pipelined maybe")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn check_obs_flag_prints_pipeline_summary() {
        let out = run(&argv("check --workload tsp --seed 3 --obs full")).unwrap();
        assert!(out.contains("pipeline: level full"), "{out}");
        assert!(out.contains("trace events"), "{out}");
        let off = run(&argv("check --workload tsp --seed 3 --obs off")).unwrap();
        assert!(!off.contains("pipeline: level"), "{off}");
        assert!(matches!(
            run(&argv("check --workload tsp --obs verbose")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn effective_level_upgrades_are_exact() {
        let flags = |level, stats_json: bool, trace_out: bool| ObsFlags {
            level,
            stats_json: stats_json.then(|| "s.json".into()),
            trace_out: trace_out.then(|| "t.jsonl".into()),
        };
        // --stats-json lifts Off to Counters, leaves higher levels alone.
        assert_eq!(
            flags(None, true, false).effective(ObsLevel::Off),
            ObsLevel::Counters
        );
        assert_eq!(
            flags(None, true, false).effective(ObsLevel::Full),
            ObsLevel::Full
        );
        // --trace-out always needs the trace ring.
        assert_eq!(
            flags(Some(ObsLevel::Off), false, true).effective(ObsLevel::Off),
            ObsLevel::Full
        );
        // An explicit --obs wins over the default.
        assert_eq!(
            flags(Some(ObsLevel::Counters), false, false).effective(ObsLevel::Full),
            ObsLevel::Counters
        );
        assert_eq!(
            flags(None, false, false).effective(ObsLevel::Off),
            ObsLevel::Off
        );
    }

    #[test]
    fn check_stats_json_writes_stable_schema() {
        let dir = std::env::temp_dir().join("dc-cli-test-stats");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let path_str = path.to_str().unwrap();
        run(&argv(&format!(
            "check --workload tsp --seed 3 --pipelined on --stats-json {path_str}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde_json::from_str(&text).unwrap();
        assert!(doc.get("regular_txs").and_then(|v| v.as_u64()).is_some());
        let pipeline = doc.get("pipeline").expect("pipeline member");
        // --stats-json without --obs implies at least the counters level
        // (a DC_OBS environment default may raise it further).
        let level = pipeline.get("level").and_then(|v| v.as_str());
        assert!(
            level == Some("counters") || level == Some("full"),
            "stats-json must imply at least counters, got {level:?}"
        );
        for section in ["octet", "graph", "replay", "checker"] {
            assert!(pipeline.get(section).is_some(), "missing {section}");
        }
        let graph = pipeline.get("graph").unwrap();
        assert_eq!(
            graph.get("ops_enqueued"),
            graph.get("ops_applied"),
            "pipeline fully drained"
        );
        assert!(graph
            .get("ring_full_waits")
            .and_then(|v| v.as_u64())
            .is_some());
        assert!(graph.get("singles").and_then(|v| v.as_u64()).is_some());
        let pooled = graph.get("pooled_buffers").expect("pooled_buffers gauge");
        assert!(pooled
            .get("high_watermark")
            .and_then(|v| v.as_u64())
            .is_some());
        let octet = pipeline.get("octet").unwrap();
        assert!(octet.get("coalesced").and_then(|v| v.as_u64()).is_some());
        assert!(octet.get("cache_hits").and_then(|v| v.as_u64()).is_some());
        assert!(octet
            .get("cache_flushes")
            .and_then(|v| v.as_u64())
            .is_some());
        let shards = graph.get("shards").expect("shards gauge");
        assert!(shards.get("current").and_then(|v| v.as_u64()).is_some());
        assert!(graph.get("shard_merges").and_then(|v| v.as_u64()).is_some());
        let depths = graph
            .get("shard_queue_depth")
            .and_then(|v| v.as_array())
            .expect("shard_queue_depth array");
        assert!(!depths.is_empty());
        assert!(depths[0].get("high_watermark").is_some());
        let busy = graph
            .get("shard_busy_ns")
            .and_then(|v| v.as_array())
            .expect("shard_busy_ns array");
        assert_eq!(busy.len(), depths.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_sharded_stats_json_reports_shard_metrics() {
        let dir = std::env::temp_dir().join("dc-cli-test-stats-sharded");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let path_str = path.to_str().unwrap();
        run(&argv(&format!(
            "check --workload tsp --seed 3 --pipelined on --shards 2 --stats-json {path_str}"
        )))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let graph = doc
            .get("pipeline")
            .and_then(|p| p.get("graph"))
            .expect("graph section");
        assert_eq!(
            graph
                .get("shards")
                .and_then(|s| s.get("current"))
                .and_then(|v| v.as_u64()),
            Some(2),
            "{graph:?}"
        );
        assert_eq!(
            graph.get("ops_enqueued"),
            graph.get("ops_applied"),
            "sharded pipeline fully drained"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_transport_flag_selects_transport_and_rejects_garbage() {
        let ring = run(&argv(
            "check --workload tsp --seed 3 --pipelined on --transport ring",
        ))
        .unwrap();
        let chan = run(&argv(
            "check --workload tsp --seed 3 --pipelined on --transport channel",
        ))
        .unwrap();
        // Same analysis either way: the summary lines agree.
        assert_eq!(ring, chan);
        assert!(matches!(
            run(&argv("check --workload tsp --transport bus")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn check_trace_out_writes_json_lines_and_implies_full() {
        let dir = std::env::temp_dir().join("dc-cli-test-trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let path_str = path.to_str().unwrap();
        let out = run(&argv(&format!(
            "check --workload tsp --seed 3 --pipelined on --trace-out {path_str}"
        )))
        .unwrap();
        assert!(out.contains("pipeline: level full"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "trace must contain events");
        for line in text.lines() {
            let event = serde_json::from_str(line).unwrap();
            assert!(event.get("seq").is_some());
            assert!(event.get("stage").and_then(|v| v.as_str()).is_some());
            assert!(event.get("kind").and_then(|v| v.as_str()).is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn obs_flags_are_rejected_for_velodrome() {
        for checker in ["velodrome", "aerodrome"] {
            for flag in ["--obs full", "--stats-json /tmp/x", "--trace-out /tmp/y"] {
                assert!(
                    matches!(
                        run(&argv(&format!(
                            "check --workload tsp --checker {checker} {flag}"
                        ))),
                        Err(CliError::Usage(_))
                    ),
                    "{flag} must be rejected for {checker}"
                );
            }
        }
    }

    #[test]
    fn check_velodrome_runs() {
        let out = run(&argv(
            "check --workload hsqldb6 --checker velodrome --seed 1",
        ))
        .unwrap();
        assert!(out.contains("velodrome:"), "{out}");
    }

    #[test]
    fn check_aerodrome_runs_and_reports_joins() {
        let out = run(&argv(
            "check --workload hsqldb6 --checker aerodrome --seed 1",
        ))
        .unwrap();
        assert!(out.contains("aerodrome:"), "{out}");
        assert!(out.contains("clock joins"), "{out}");
    }

    #[test]
    fn check_aerodrome_and_velodrome_report_identical_violations() {
        for wl in ["hsqldb6", "tsp", "sor"] {
            let velo = run(&argv(&format!(
                "check --workload {wl} --checker velodrome --seed 5"
            )))
            .unwrap();
            let aero = run(&argv(&format!(
                "check --workload {wl} --checker aerodrome --seed 5"
            )))
            .unwrap();
            let lines = |s: &str| -> Vec<String> {
                s.lines()
                    .filter(|l| l.starts_with("violation:"))
                    .map(String::from)
                    .collect()
            };
            assert_eq!(lines(&velo), lines(&aero), "{wl}: violation lines");
        }
    }

    #[test]
    fn check_dc_alias_matches_single() {
        let single = run(&argv("check --workload tsp --seed 3 --checker single")).unwrap();
        let dc = run(&argv("check --workload tsp --seed 3 --checker dc")).unwrap();
        assert_eq!(
            single.replace("single:", "checker:"),
            dc.replace("dc:", "checker:")
        );
    }

    #[test]
    fn pipeline_error_fails_the_command_with_the_error_in_stats_json() {
        use dc_core::{DcStats, PipelineError};
        let dir = std::env::temp_dir().join("dc-cli-test-pipeline-error");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let wl = dc_workloads::by_name("tsp", Scale::Tiny).unwrap();
        // No healthy run produces a malformed op stream, so drive the
        // reporting path with a synthetic report carrying the drained
        // error — the same shape `run_doublechecker` returns when the
        // pipeline hits one.
        let report = DcReport {
            violations: Vec::new(),
            static_info: StaticTxInfo::default(),
            stats: DcStats::default(),
            run: dc_runtime::engine::RunStats::default(),
            pipeline: None,
            trace: Vec::new(),
            pipeline_error: Some(PipelineError::DuplicateTicket { ticket: 7 }),
        };
        let obs = ObsFlags {
            level: None,
            stats_json: Some(path.to_str().unwrap().into()),
            trace_out: None,
        };
        let err = finish_check("single", &wl.program, &report, &obs).unwrap_err();
        assert!(
            matches!(err, CliError::Failed(ref m) if m.contains("duplicate op ticket 7")),
            "{err:?}"
        );
        // The artifact was still written, and it carries the error rather
        // than looking like a clean run.
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("pipeline_error").and_then(|v| v.as_str()),
            Some("duplicate op ticket 7"),
            "{doc}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn healthy_run_stats_json_reports_null_pipeline_error() {
        let dir = std::env::temp_dir().join("dc-cli-test-healthy-error");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.json");
        let path_str = path.to_str().unwrap();
        run(&argv(&format!(
            "check --workload tsp --seed 3 --pipelined on --shards 2 --stats-json {path_str}"
        )))
        .unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let member = doc.get("pipeline_error").expect("member always present");
        assert!(
            matches!(member, serde_json::Value::Null),
            "healthy run must report null, got {member}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_unknown_workload_fails_cleanly() {
        let err = run(&argv("check --workload nope")).unwrap_err();
        assert!(matches!(err, CliError::Failed(m) if m.contains("unknown workload")));
    }

    #[test]
    fn trace_prints_prefix_and_oracle_verdict() {
        let out = run(&argv("trace --workload philo --seed 1 --limit 5")).unwrap();
        assert!(out.contains("offline oracle"), "{out}");
        assert!(out.contains("more (raise --limit)"));
    }

    #[test]
    fn trace_limit_overflow_is_a_usage_error_not_silent_truncation() {
        // 5e9 exceeds u32: the old `as usize` cast silently truncated it.
        let err = run(&argv("trace --workload philo --seed 1 --limit 5000000000")).unwrap_err();
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("--limit")),
            "{err:?}"
        );
        assert!(matches!(
            run(&argv("trace --workload philo --limit nope")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn check_shards_flag_preserves_results_and_rejects_garbage() {
        let single = run(&argv("check --workload tsp --seed 3 --pipelined on")).unwrap();
        let sharded = run(&argv(
            "check --workload tsp --seed 3 --pipelined on --shards 2",
        ))
        .unwrap();
        // Sharding is a pure performance knob: identical summary output.
        assert_eq!(single, sharded);
        for bad in ["0", "-1", "many"] {
            assert!(
                matches!(
                    run(&argv(&format!("check --workload tsp --shards {bad}"))),
                    Err(CliError::Usage(_))
                ),
                "--shards {bad} must be rejected"
            );
        }
    }

    #[test]
    fn check_barrier_cache_flag_preserves_results_and_rejects_garbage() {
        let default = run(&argv("check --workload tsp --seed 3")).unwrap();
        let on = run(&argv("check --workload tsp --seed 3 --barrier-cache on")).unwrap();
        let off = run(&argv("check --workload tsp --seed 3 --barrier-cache off")).unwrap();
        // The inline cache is a pure performance knob: identical summary
        // output with it on, off, or defaulted.
        assert_eq!(default, on);
        assert_eq!(on, off);
        assert!(matches!(
            run(&argv("check --workload tsp --barrier-cache maybe")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn refine_converges_on_elevator() {
        let out = run(&argv("refine --workload elevator --window 4")).unwrap();
        assert!(out.contains("final specification excludes"), "{out}");
    }

    // ---- --history ----------------------------------------------------

    fn lost_update_history() -> String {
        r#"{
          "format": "dc-history",
          "version": 1,
          "name": "lost-update",
          "expected": "violation",
          "sessions": [
            [ {"id": 1, "events": [{"op": "r", "key": "x", "value": 0},
                                   {"op": "w", "key": "x", "value": 1}]} ],
            [ {"id": 2, "events": [{"op": "r", "key": "x", "value": 0},
                                   {"op": "w", "key": "x", "value": 2}]} ]
          ]
        }"#
        .to_string()
    }

    /// Writes `text` to a fresh temp file and returns its path as a string.
    fn history_file(name: &str, text: &str) -> String {
        let dir = std::env::temp_dir().join("dc-cli-test-histories");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn check_history_replays_and_matches_expected_verdict() {
        let path = history_file("lost-update.json", &lost_update_history());
        let out = run(&argv(&format!("check --history {path}"))).unwrap();
        assert!(out.contains("history: lost-update"), "{out}");
        assert!(
            out.contains("2 session(s), 2 transaction(s), 4 event(s)"),
            "{out}"
        );
        assert!(out.contains("violation: cycle through"), "{out}");
        assert!(
            out.contains("expected verdict: violation — matched"),
            "{out}"
        );
    }

    #[test]
    fn check_history_runs_every_checker() {
        let path = history_file("lost-update-all.json", &lost_update_history());
        for checker in [
            "single",
            "dc",
            "second-run",
            "pcd-only",
            "velodrome",
            "aerodrome",
        ] {
            let out = run(&argv(&format!(
                "check --history {path} --checker {checker}"
            )))
            .unwrap_or_else(|e| panic!("{checker}: {e:?}"));
            assert!(
                out.contains("expected verdict: violation — matched"),
                "{checker}:\n{out}"
            );
        }
        // first-run reports no violations by design; the expected verdict
        // must not bind it.
        let out = run(&argv(&format!(
            "check --history {path} --checker first-run"
        )))
        .unwrap();
        assert!(!out.contains("expected verdict"), "{out}");
    }

    #[test]
    fn check_history_composes_with_pipeline_flags_and_stats_json() {
        let path = history_file("lost-update-pipe.json", &lost_update_history());
        let stats = std::env::temp_dir()
            .join("dc-cli-test-histories")
            .join("stats.json");
        let stats_str = stats.to_str().unwrap();
        let out = run(&argv(&format!(
            "check --history {path} --pipelined on --shards 2 --transport channel \
             --stats-json {stats_str}"
        )))
        .unwrap();
        assert!(
            out.contains("expected verdict: violation — matched"),
            "{out}"
        );
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&stats).unwrap()).unwrap();
        assert!(
            matches!(doc.get("pipeline_error"), Some(serde_json::Value::Null)),
            "{doc}"
        );
        assert!(doc.get("regular_txs").and_then(|v| v.as_u64()).is_some());
        std::fs::remove_file(&stats).ok();
    }

    #[test]
    fn check_history_expected_mismatch_fails_the_command() {
        // Claim serializable on a violating history: the run must fail.
        let text = lost_update_history().replace("\"violation\"", "\"serializable\"");
        let path = history_file("mismatch.json", &text);
        let err = run(&argv(&format!("check --history {path}"))).unwrap_err();
        assert!(
            matches!(err, CliError::Failed(ref m) if m.contains("expects serializable")),
            "{err:?}"
        );
    }

    #[test]
    fn check_history_truncated_json_is_a_usage_error() {
        let text = lost_update_history();
        let path = history_file("truncated.json", &text[..text.len() / 2]);
        let err = run(&argv(&format!("check --history {path}"))).unwrap_err();
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("invalid JSON")),
            "{err:?}"
        );
    }

    #[test]
    fn check_history_unknown_version_is_a_usage_error() {
        let text = lost_update_history().replace("\"version\": 1", "\"version\": 99");
        let path = history_file("version99.json", &text);
        let err = run(&argv(&format!("check --history {path}"))).unwrap_err();
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("unknown schema version 99")),
            "{err:?}"
        );
    }

    #[test]
    fn check_history_duplicate_tx_id_is_a_usage_error() {
        let text = lost_update_history().replace("\"id\": 2", "\"id\": 1");
        let path = history_file("dup-id.json", &text);
        let err = run(&argv(&format!("check --history {path}"))).unwrap_err();
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("duplicate transaction id 1")),
            "{err:?}"
        );
    }

    #[test]
    fn check_history_read_of_never_written_key_is_a_usage_error() {
        let text = lost_update_history().replace(
            r#"{"op": "r", "key": "x", "value": 0},
                                   {"op": "w", "key": "x", "value": 2}"#,
            r#"{"op": "r", "key": "ghost", "value": 9}"#,
        );
        let path = history_file("never-written.json", &text);
        let err = run(&argv(&format!("check --history {path}"))).unwrap_err();
        assert!(
            matches!(err, CliError::Usage(ref m) if m.contains("never-written value 9")),
            "{err:?}"
        );
    }

    #[test]
    fn check_history_missing_file_fails_cleanly() {
        let err = run(&argv("check --history /nonexistent/h.json")).unwrap_err();
        assert!(
            matches!(err, CliError::Failed(ref m) if m.contains("reading")),
            "{err:?}"
        );
    }

    #[test]
    fn check_history_conflicting_flags_are_usage_errors() {
        let path = history_file("conflicts.json", &lost_update_history());
        for extra in ["--workload tsp", "--seed 3", "--engine real"] {
            let err = run(&argv(&format!("check --history {path} {extra}"))).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{extra}: {err:?}");
        }
        // --engine det is redundant but not contradictory.
        assert!(run(&argv(&format!("check --history {path} --engine det"))).is_ok());
    }
}
