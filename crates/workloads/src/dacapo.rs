//! Analogs of the multithreaded DaCapo benchmarks the paper evaluates
//! (§5.1). A parameterized generator composes the sharing shapes; the
//! per-benchmark parameters are chosen to echo the paper's Table 2/3 rows:
//!
//! * `jython9`, `luindex9`, `pmd9` — essentially thread-local work, a
//!   handful of regular transactions, no cycles;
//! * `lusearch6`/`lusearch9` — mostly thread-local indexing, few shared
//!   counters (lusearch9's cycles never involve unary transactions, so the
//!   second run skips non-transactional instrumentation);
//! * `hsqldb6` — lock-protected table operations plus racy statistics;
//! * `xalan6`/`xalan9` — heavy *serializable* ping-pong on shared pool
//!   objects: Octet's object-granularity conflicts produce imprecise IDG
//!   cycles en masse (many SCCs, high PCD load — the paper's xalan6 story)
//!   while precise (field-level) dependences stay acyclic, plus racy
//!   methods that are real violations;
//! * `avrora9` — very many tiny transactions over a shared event queue;
//! * `sunflow9` — a read-shared scene scanned by all threads (RdSh states
//!   and fence transitions) plus racy statistics;
//! * `eclipse6` — a broad mix with the most distinct racy methods.
//!
//! Each benchmark uses the DaCapo driver-thread structure: a driver forks
//! workers and joins them; the driver is excluded from the specification
//! (paper §5.1).

use crate::builder::{churn, locked, repeat, rmw, scan, Scale, Workload, WorkloadBuilder};
use dc_runtime::ids::{CellId, MethodId, ObjId};
use dc_runtime::program::Op;

/// Parameters of the DaCapo-analog generator.
#[derive(Clone, Copy, Debug)]
struct Shape {
    name: &'static str,
    workers: usize,
    /// Per-worker private objects (fast-path traffic).
    private_objs: usize,
    private_fields: u16,
    /// Churn rounds per iteration (thread-local work volume).
    churn_rounds: u32,
    /// Shared read-only table objects scanned per iteration (RdSh traffic);
    /// 0 disables.
    shared_tables: usize,
    /// Lock-protected shared operations per iteration.
    locked_ops: u32,
    /// Distinct racy atomic methods (each a real atomicity violation).
    racy_methods: usize,
    /// Serializable ping-pong writes per iteration on a shared object
    /// (distinct fields per worker) — imprecise-cycle fuel; 0 disables.
    pingpong: u32,
    /// Iterations of non-transactional (unary-context) churn per iteration.
    unary_rounds: u32,
    /// Outer iterations per unit of [`Scale::factor`].
    iters_per_unit: u32,
    /// Put the racy work in transactional context (true) or leave some in
    /// unary context so cycles involve unary transactions.
    racy_in_unary_too: bool,
}

fn generate(shape: Shape, scale: Scale) -> Workload {
    let mut w = WorkloadBuilder::new(shape.name);
    let f = scale.factor();
    let class = shape.name;

    let lock = w.monitor();
    let shared = w.object(16);
    let racy_obj = w.object(16);
    let pingpong_obj = w.object(16);
    let tables: Vec<ObjId> = (0..shape.shared_tables).map(|_| w.object(8)).collect();

    // Racy methods shared by all workers: each is one seeded violation.
    let racy: Vec<MethodId> = (0..shape.racy_methods)
        .map(|k| {
            w.method(
                format!("{class}.racyUpdate{k}"),
                rmw(racy_obj, (k % 16) as CellId, 4),
            )
        })
        .collect();

    let locked_op = w.method(
        format!("{class}.lockedOp"),
        locked(
            lock,
            vec![Op::Read(shared, 0), Op::Write(shared, 1), Op::Compute(3)],
        ),
    );

    let mut worker_entries = Vec::new();
    for i in 0..shape.workers {
        let private: Vec<ObjId> = (0..shape.private_objs)
            .map(|_| w.object(shape.private_fields))
            .collect();
        let local_work = w.method(
            format!("{class}.localWork{i}"),
            vec![churn(&private, shape.private_fields, shape.churn_rounds, 4)],
        );
        let scan_tables = if tables.is_empty() {
            None
        } else {
            Some(w.method(format!("{class}.scanTables{i}"), scan(&tables, 8, 2)))
        };
        let pingpong_m = if shape.pingpong > 0 {
            // Each worker writes its own field: serializable, but Octet's
            // object-granularity state ping-pongs between threads.
            Some(w.method(
                format!("{class}.pingPong{i}"),
                vec![repeat(
                    shape.pingpong,
                    vec![
                        Op::Write(pingpong_obj, i as CellId),
                        Op::Read(pingpong_obj, i as CellId),
                    ],
                )],
            ))
        } else {
            None
        };

        // Clean iteration: thread-local work plus the benign shared
        // operations. Executed several times between each racy batch so
        // shared conflicts stay sparse relative to accesses (Table 3's
        // edges ≪ accesses) and imprecise SCCs stay window-bounded.
        let mut clean_iter = vec![Op::Call(local_work)];
        if let Some(m) = scan_tables {
            clean_iter.push(Op::Call(m));
        }
        for _ in 0..shape.locked_ops {
            clean_iter.push(Op::Call(locked_op));
            clean_iter.push(Op::Call(local_work));
        }
        // Racy batch: the seeded violations plus ping-pong and
        // unary-context shared churn.
        let mut racy_batch = Vec::new();
        if let Some(m) = pingpong_m {
            racy_batch.push(Op::Call(m));
        }
        for (k, &m) in racy.iter().enumerate() {
            // Spread racy methods across workers so every method is shared
            // by at least two threads.
            if shape.workers == 1 || (i + k) % 2 == 0 || shape.workers == 2 {
                racy_batch.push(Op::Call(m));
            }
        }
        if shape.unary_rounds > 0 {
            // Unary-context churn over a shared object: non-transactional
            // accesses that can join imprecise cycles.
            racy_batch.push(repeat(
                shape.unary_rounds,
                vec![
                    Op::Read(racy_obj, (i % 16) as CellId),
                    Op::Write(racy_obj, (i % 16) as CellId),
                ],
            ));
            if shape.racy_in_unary_too {
                racy_batch.push(Op::Read(racy_obj, 0));
            }
        }
        let mut outer = vec![repeat(3, clean_iter.clone())];
        outer.extend(clean_iter);
        outer.extend(racy_batch);
        let entry = w.excluded_method(
            format!("{class}.worker{i}"),
            vec![repeat(shape.iters_per_unit * f, outer)],
        );
        worker_entries.push(entry);
    }

    // DaCapo driver: forks every worker, then joins them. Excluded from the
    // specification (it "executes non-atomically", §5.1).
    let mut driver_body = Vec::new();
    let worker_threads: Vec<_> = (0..shape.workers)
        .map(|i| dc_runtime::ids::ThreadId((i + 1) as u16))
        .collect();
    for &t in &worker_threads {
        driver_body.push(Op::Fork(t));
    }
    for &t in &worker_threads {
        driver_body.push(Op::Join(t));
    }
    let driver = w.excluded_method(format!("{class}.driver"), driver_body);
    w.thread(driver);
    for entry in worker_entries {
        w.forked_thread(entry);
    }
    w.build(true)
}

/// `eclipse6`: the broadest mix — most distinct racy methods (the paper's
/// largest Table 2 row), moderate everything else.
pub fn eclipse6(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "eclipse6",
            workers: 4,
            private_objs: 6,
            private_fields: 8,
            churn_rounds: 20,
            shared_tables: 2,
            locked_ops: 1,
            racy_methods: 10,
            pingpong: 2,
            unary_rounds: 2,
            iters_per_unit: 1,
            racy_in_unary_too: true,
        },
        scale,
    )
}

/// `hsqldb6`: lock-protected table transactions plus racy statistics.
pub fn hsqldb6(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "hsqldb6",
            workers: 4,
            private_objs: 4,
            private_fields: 6,
            churn_rounds: 16,
            shared_tables: 1,
            locked_ops: 1,
            racy_methods: 6,
            pingpong: 0,
            unary_rounds: 1,
            iters_per_unit: 1,
            racy_in_unary_too: true,
        },
        scale,
    )
}

/// `lusearch6`: almost entirely thread-local index search; a single rare
/// racy counter.
pub fn lusearch6(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "lusearch6",
            workers: 4,
            private_objs: 10,
            private_fields: 8,
            churn_rounds: 40,
            shared_tables: 0,
            locked_ops: 1,
            racy_methods: 1,
            pingpong: 0,
            unary_rounds: 8,
            iters_per_unit: 1,
            racy_in_unary_too: false,
        },
        scale,
    )
}

/// `xalan6`: heavy serializable ping-pong — very many imprecise SCCs with
/// no matching precise cycles (ICD's worst case, §5.3) — plus racy methods.
pub fn xalan6(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "xalan6",
            workers: 4,
            private_objs: 4,
            private_fields: 6,
            churn_rounds: 6,
            shared_tables: 1,
            locked_ops: 1,
            racy_methods: 6,
            pingpong: 6,
            unary_rounds: 3,
            iters_per_unit: 2,
            racy_in_unary_too: true,
        },
        scale,
    )
}

/// `avrora9`: a huge number of tiny transactions over shared simulator
/// state.
pub fn avrora9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "avrora9",
            workers: 4,
            private_objs: 2,
            private_fields: 4,
            churn_rounds: 3,
            shared_tables: 0,
            locked_ops: 1,
            racy_methods: 4,
            pingpong: 2,
            unary_rounds: 6,
            iters_per_unit: 3,
            racy_in_unary_too: true,
        },
        scale,
    )
}

/// `jython9`: effectively single-threaded: one worker, pure private work.
pub fn jython9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "jython9",
            workers: 1,
            private_objs: 12,
            private_fields: 10,
            churn_rounds: 40,
            shared_tables: 0,
            locked_ops: 0,
            racy_methods: 0,
            pingpong: 0,
            unary_rounds: 10,
            iters_per_unit: 2,
            racy_in_unary_too: false,
        },
        scale,
    )
}

/// `luindex9`: single indexing worker, thread-local.
pub fn luindex9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "luindex9",
            workers: 1,
            private_objs: 8,
            private_fields: 8,
            churn_rounds: 32,
            shared_tables: 0,
            locked_ops: 0,
            racy_methods: 0,
            pingpong: 0,
            unary_rounds: 6,
            iters_per_unit: 2,
            racy_in_unary_too: false,
        },
        scale,
    )
}

/// `lusearch9`: thread-local search plus a few racy counters; its cycles
/// never involve unary transactions (no unary-context shared churn), so
/// multi-run mode's second run skips non-transactional instrumentation
/// (paper §5.5).
pub fn lusearch9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "lusearch9",
            workers: 4,
            private_objs: 8,
            private_fields: 8,
            churn_rounds: 32,
            shared_tables: 0,
            locked_ops: 1,
            racy_methods: 3,
            pingpong: 0,
            unary_rounds: 0,
            iters_per_unit: 1,
            racy_in_unary_too: false,
        },
        scale,
    )
}

/// `pmd9`: single analysis worker, thread-local.
pub fn pmd9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "pmd9",
            workers: 1,
            private_objs: 6,
            private_fields: 6,
            churn_rounds: 24,
            shared_tables: 0,
            locked_ops: 0,
            racy_methods: 0,
            pingpong: 0,
            unary_rounds: 4,
            iters_per_unit: 2,
            racy_in_unary_too: false,
        },
        scale,
    )
}

/// `sunflow9`: all threads scan a read-shared scene (RdSh + fence Octet
/// traffic) with a couple of racy statistics methods.
pub fn sunflow9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "sunflow9",
            workers: 4,
            private_objs: 6,
            private_fields: 8,
            churn_rounds: 20,
            shared_tables: 4,
            locked_ops: 0,
            racy_methods: 2,
            pingpong: 0,
            unary_rounds: 0,
            iters_per_unit: 1,
            racy_in_unary_too: false,
        },
        scale,
    )
}

/// `xalan9`: like `xalan6` with less extreme ping-pong.
pub fn xalan9(scale: Scale) -> Workload {
    generate(
        Shape {
            name: "xalan9",
            workers: 4,
            private_objs: 4,
            private_fields: 6,
            churn_rounds: 10,
            shared_tables: 1,
            locked_ops: 1,
            racy_methods: 7,
            pingpong: 4,
            unary_rounds: 2,
            iters_per_unit: 2,
            racy_in_unary_too: true,
        },
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check;

    fn all_tiny() -> Vec<Workload> {
        vec![
            eclipse6(Scale::Tiny),
            hsqldb6(Scale::Tiny),
            lusearch6(Scale::Tiny),
            xalan6(Scale::Tiny),
            avrora9(Scale::Tiny),
            jython9(Scale::Tiny),
            luindex9(Scale::Tiny),
            lusearch9(Scale::Tiny),
            pmd9(Scale::Tiny),
            sunflow9(Scale::Tiny),
            xalan9(Scale::Tiny),
        ]
    }

    #[test]
    fn all_dacapo_workloads_validate() {
        for wl in all_tiny() {
            assert!(check(&wl).is_ok(), "{} must validate", wl.name);
            assert!(
                wl.extra_exclusions.len() >= wl.program.threads.len(),
                "{}: driver and worker entries are excluded",
                wl.name
            );
        }
    }

    #[test]
    fn driver_forks_and_joins_all_workers() {
        for wl in all_tiny() {
            dc_runtime::engine::det::run_det(
                &wl.program,
                &dc_runtime::checker::NopChecker,
                &dc_runtime::engine::det::Schedule::random(7),
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", wl.name));
        }
    }

    #[test]
    fn single_worker_benchmarks_have_two_threads() {
        for wl in [
            jython9(Scale::Tiny),
            luindex9(Scale::Tiny),
            pmd9(Scale::Tiny),
        ] {
            assert_eq!(wl.program.threads.len(), 2, "{}: driver + worker", wl.name);
        }
    }

    #[test]
    fn racy_method_counts_echo_the_paper_ordering() {
        // eclipse6 seeds the most violations; xalan9 > xalan6 is not
        // required, but all xalans exceed lusearch6.
        let count = |wl: &Workload| {
            wl.program
                .methods
                .iter()
                .filter(|m| m.name.contains("racyUpdate"))
                .count()
        };
        assert!(count(&eclipse6(Scale::Tiny)) >= count(&xalan9(Scale::Tiny)));
        assert!(count(&xalan9(Scale::Tiny)) > count(&lusearch6(Scale::Tiny)));
        assert_eq!(count(&jython9(Scale::Tiny)), 0);
    }
}
