//! Benchmark workload programs for the DoubleChecker reproduction.
//!
//! The paper evaluates on the multithreaded DaCapo benchmarks, five
//! microbenchmarks, and three Java Grande programs (§5.1). None of those
//! Java programs can run on this Rust substrate, so each is modeled by a
//! synthetic analog with the same *sharing shape* — the mix of thread-local,
//! read-shared, lock-protected, and racy accesses that determines what the
//! atomicity checkers see (transition mix, dependence edges, imprecise
//! SCCs, and real violations). See `DESIGN.md` §2 for the substitution
//! rationale and each generator's docs for what it mimics.
//!
//! Entry points: [`suite::all`], [`suite::performance_suite`],
//! [`suite::by_name`], and [`builder::Scale`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod dacapo;
pub mod grande;
pub mod micro;
pub mod suite;

pub use builder::{Scale, Workload, WorkloadBuilder};
pub use suite::{all, by_name, performance_suite};
