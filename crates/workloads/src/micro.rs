//! Analogs of the microbenchmarks the paper evaluates (elevator, hedc,
//! philo, sor, tsp — §5.1). Each models the original program's *sharing
//! shape*: what is thread-local, what is read-shared, what is protected by
//! locks, and where the known atomicity bugs sit.

use crate::builder::{churn, locked, repeat, rmw, Scale, Workload, WorkloadBuilder};
use dc_runtime::ids::CellId;
use dc_runtime::program::Op;

/// `elevator`: discrete-event elevator controllers polling a shared
/// control board. Mostly lock-protected; two status-update methods touch
/// shared fields without holding the lock (the paper reports 2 violations).
/// Not compute-bound.
pub fn elevator(scale: Scale) -> Workload {
    let mut w = WorkloadBuilder::new("elevator");
    let f = scale.factor();
    let controls = w.object(8);
    let status = w.object(4);
    let lock = w.monitor();
    let private: Vec<_> = (0..3).map(|_| w.object(4)).collect();

    let claim = w.method(
        "Elevator.claimRequest",
        locked(
            lock,
            vec![
                Op::Read(controls, 0),
                Op::Write(controls, 1),
                Op::Compute(4),
            ],
        ),
    );
    // Racy read–modify–writes of shared status: atomicity violations.
    let update_status = w.method("Elevator.updateStatus", rmw(status, 0, 6));
    let record_motion = w.method("Elevator.recordMotion", rmw(status, 1, 6));
    let mut threads = Vec::new();
    for i in 0..3u16 {
        let body = vec![repeat(
            6 * f,
            vec![
                Op::Call(claim),
                Op::Call(update_status),
                Op::Call(record_motion),
                churn(&private[i as usize..=i as usize], 4, 1, 2),
            ],
        )];
        threads.push(w.excluded_method(format!("Elevator.run{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(false)
}

/// `hedc`: a crawler with a worker pool pulling tasks from a shared queue
/// under a lock. Three task-bookkeeping methods race on shared metadata
/// (the paper reports 3 violations). Not compute-bound.
pub fn hedc(scale: Scale) -> Workload {
    let mut w = WorkloadBuilder::new("hedc");
    let f = scale.factor();
    let queue = w.object(8);
    let meta = w.object(6);
    let lock = w.monitor();
    let private: Vec<_> = (0..3).map(|_| w.object(8)).collect();

    let take_task = w.method(
        "Hedc.takeTask",
        locked(lock, vec![Op::Read(queue, 0), Op::Write(queue, 1)]),
    );
    let fetch = w.method("Hedc.fetch", vec![Op::Compute(30)]);
    let mark_done = w.method("Hedc.markDone", rmw(meta, 0, 4));
    let count_bytes = w.method("Hedc.countBytes", rmw(meta, 1, 4));
    let log_status = w.method("Hedc.logStatus", rmw(meta, 2, 4));
    let mut threads = Vec::new();
    for i in 0..3u16 {
        let body = vec![repeat(
            4 * f,
            vec![
                Op::Call(take_task),
                Op::Call(fetch),
                churn(&private[i as usize..=i as usize], 8, 1, 3),
                Op::Call(mark_done),
                Op::Call(count_bytes),
                Op::Call(log_status),
            ],
        )];
        threads.push(w.excluded_method(format!("Hedc.worker{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(false)
}

/// `philo`: dining philosophers with ordered fork acquisition. All shared
/// state is lock-protected — no violations. Not compute-bound.
pub fn philo(scale: Scale) -> Workload {
    const N: usize = 5;
    let mut w = WorkloadBuilder::new("philo");
    let f = scale.factor();
    let forks: Vec<_> = (0..N).map(|_| w.monitor()).collect();
    let table = w.object(N as u16);
    let mut threads = Vec::new();
    for i in 0..N {
        let (lo, hi) = (i.min((i + 1) % N), i.max((i + 1) % N));
        let eat = w.method(
            format!("Philo.eat{i}"),
            vec![
                Op::Acquire(forks[lo]),
                Op::Acquire(forks[hi]),
                Op::Read(table, i as CellId),
                Op::Write(table, i as CellId),
                Op::Compute(5),
                Op::Release(forks[hi]),
                Op::Release(forks[lo]),
            ],
        );
        let think = w.method(format!("Philo.think{i}"), vec![Op::Compute(20)]);
        let body = vec![repeat(4 * f, vec![Op::Call(think), Op::Call(eat)])];
        threads.push(w.excluded_method(format!("Philo.run{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(false)
}

/// `sor`: successive over-relaxation — red-black double buffering with
/// barrier-separated phases: the red phase reads the black rows and writes
/// the red rows; the black phase does the opposite. Reads and writes within
/// a phase touch disjoint objects, so the relax transactions are
/// serializable; no violations. Compute-bound.
pub fn sor(scale: Scale) -> Workload {
    const THREADS: usize = 4;
    const COLS: u16 = 64;
    let mut w = WorkloadBuilder::new("sor");
    let f = scale.factor();
    // Rows are arrays (`double[]` in the Java original): not instrumented
    // in the default configuration (paper §4), which is why the paper's
    // sor shows tiny access counts and no SCCs.
    let red: Vec<_> = (0..THREADS).map(|_| w.array(u32::from(COLS))).collect();
    let black: Vec<_> = (0..THREADS).map(|_| w.array(u32::from(COLS))).collect();
    let bar = w.barrier(THREADS as u32);
    let mut threads = Vec::new();
    for i in 0..THREADS {
        let up = (i + THREADS - 1) % THREADS;
        let down = (i + 1) % THREADS;
        let phase = |from: &[dc_runtime::ids::ObjId], to: dc_runtime::ids::ObjId| {
            let mut ops = Vec::new();
            for c in 0..COLS {
                ops.push(Op::ArrayRead(from[up], CellId::from(c)));
                ops.push(Op::ArrayRead(from[down], CellId::from(c)));
                ops.push(Op::Compute(3));
                ops.push(Op::ArrayWrite(to, CellId::from(c)));
            }
            ops
        };
        let relax_red = w.method(format!("Sor.relaxRed{i}"), phase(&black, red[i]));
        let relax_black = w.method(format!("Sor.relaxBlack{i}"), phase(&red, black[i]));
        // The phase loop (with the barrier) is interrupting → auto-excluded.
        let body = vec![repeat(
            f,
            vec![
                Op::Call(relax_red),
                Op::Barrier(bar),
                Op::Call(relax_black),
                Op::Barrier(bar),
            ],
        )];
        threads.push(w.excluded_method(format!("Sor.run{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(true)
}

/// `tsp`: branch-and-bound traveling salesman — thread-local tour search
/// with a shared best-bound read racily for pruning and updated both under
/// a lock and (buggily) without it (the paper reports 7 violations; this
/// analog seeds four racy bound/statistics methods). Compute-bound.
pub fn tsp(scale: Scale) -> Workload {
    const THREADS: usize = 4;
    let mut w = WorkloadBuilder::new("tsp");
    let f = scale.factor();
    let best = w.object(4);
    let stats = w.object(4);
    let lock = w.monitor();
    let private: Vec<_> = (0..THREADS).map(|_| w.object(12)).collect();

    // The subtree search is pure thread-local work; the racy bound check is
    // its own *short* transaction. (Long transactions that touch shared
    // state bridge many other-thread transactions into one giant imprecise
    // SCC — the paper hit exactly this with raytracer/sunflow9 and excluded
    // those methods, §5.1.)
    let search = |w: &mut WorkloadBuilder, i: usize| {
        w.method(
            format!("Tsp.searchSubtree{i}"),
            vec![churn(&private[i..=i], 12, 8, 8)],
        )
    };
    let check_bound = w.method("Tsp.checkBound", vec![Op::Read(best, 0)]);
    let update_locked = w.method(
        "Tsp.updateBoundLocked",
        locked(lock, vec![Op::Read(best, 0), Op::Write(best, 0)]),
    );
    // Racy updates: the classic TSP bound bug plus statistics counters.
    let update_racy = w.method("Tsp.updateBoundRacy", rmw(best, 1, 3));
    let count_nodes = w.method("Tsp.countNodes", rmw(stats, 0, 3));
    let count_prunes = w.method("Tsp.countPrunes", rmw(stats, 1, 3));
    let record_tour = w.method("Tsp.recordTour", rmw(stats, 2, 3));
    let mut threads = Vec::new();
    for i in 0..THREADS {
        let s = search(&mut w, i);
        let body = vec![repeat(
            2 * f,
            vec![
                repeat(6, vec![Op::Call(s), Op::Call(check_bound)]),
                Op::Call(update_locked),
                Op::Call(update_racy),
                Op::Call(count_nodes),
                Op::Call(count_prunes),
                Op::Call(record_tour),
            ],
        )];
        threads.push(w.excluded_method(format!("Tsp.run{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check;

    #[test]
    fn all_micro_workloads_validate() {
        for wl in [
            elevator(Scale::Tiny),
            hedc(Scale::Tiny),
            philo(Scale::Tiny),
            sor(Scale::Tiny),
            tsp(Scale::Tiny),
        ] {
            assert!(check(&wl).is_ok(), "{} must validate", wl.name);
            assert!(wl.program.threads.len() >= 3);
            assert!(wl.program.dynamic_op_count() > 0);
        }
    }

    #[test]
    fn compute_bound_flags_match_the_paper() {
        assert!(!elevator(Scale::Tiny).compute_bound);
        assert!(!hedc(Scale::Tiny).compute_bound);
        assert!(!philo(Scale::Tiny).compute_bound);
        assert!(sor(Scale::Tiny).compute_bound);
        assert!(tsp(Scale::Tiny).compute_bound);
    }

    #[test]
    fn scaling_multiplies_dynamic_ops() {
        let small = tsp(Scale::Tiny).program.dynamic_op_count();
        let big = tsp(Scale::Small).program.dynamic_op_count();
        assert!(big > 10 * small);
    }

    #[test]
    fn philo_runs_deadlock_free_under_many_schedules() {
        let wl = philo(Scale::Tiny);
        for seed in 0..30 {
            dc_runtime::engine::det::run_det(
                &wl.program,
                &dc_runtime::checker::NopChecker,
                &dc_runtime::engine::det::Schedule::random(seed),
            )
            .unwrap_or_else(|e| panic!("philo deadlocked (seed {seed}): {e}"));
        }
    }

    #[test]
    fn sor_barriers_synchronize_under_random_schedules() {
        let wl = sor(Scale::Tiny);
        for seed in 0..10 {
            dc_runtime::engine::det::run_det(
                &wl.program,
                &dc_runtime::checker::NopChecker,
                &dc_runtime::engine::det::Schedule::random(seed),
            )
            .unwrap();
        }
    }
}
