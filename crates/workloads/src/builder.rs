//! Building blocks for benchmark-analog workloads.
//!
//! Each paper benchmark is modeled by composing a few *sharing shapes* —
//! thread-local churn, read-shared tables, lock-protected critical sections,
//! racy read–modify–write and check-then-act patterns — because the
//! analyses' behaviour (transition mix, edge counts, SCCs, violations)
//! depends on the sharing shape, not on what the Java code computed.

use dc_runtime::heap::ObjKind;
use dc_runtime::ids::{CellId, MethodId, ObjId, ThreadId};
use dc_runtime::program::{Op, Program, ProgramBuilder, ProgramError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload size scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests (≪ 1 ms workloads).
    Tiny,
    /// The default benchmarking size (paper's "small workload size").
    Small,
    /// Larger runs for stable timing measurements.
    Full,
}

impl Scale {
    /// Multiplier applied to loop counts.
    pub fn factor(self) -> u32 {
        match self {
            Scale::Tiny => 3,
            Scale::Small => 40,
            Scale::Full => 200,
        }
    }
}

/// A finished workload: the program plus the methodology inputs the
/// evaluation needs.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (paper's row label, e.g. `"xalan6"`).
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Methods excluded from the *initial* specification beyond the
    /// automatic exclusions (the paper excludes e.g. DaCapo driver threads).
    pub extra_exclusions: Vec<MethodId>,
    /// True if the workload is compute-bound (the paper excludes
    /// non-compute-bound programs from performance runs, §5.3).
    pub compute_bound: bool,
}

/// Fluent helper around [`ProgramBuilder`] for workload construction.
#[derive(Debug)]
pub struct WorkloadBuilder {
    /// The underlying program builder.
    pub b: ProgramBuilder,
    name: &'static str,
    rng: SmallRng,
    extra_exclusions: Vec<MethodId>,
}

impl WorkloadBuilder {
    /// Creates a builder with a name-derived deterministic RNG.
    pub fn new(name: &'static str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ u64::from(c)).wrapping_mul(0x1000_0000_01b3)
        });
        WorkloadBuilder {
            b: ProgramBuilder::new(),
            name,
            rng: SmallRng::seed_from_u64(seed),
            extra_exclusions: Vec::new(),
        }
    }

    /// Deterministic workload-local randomness.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Declares `n` plain objects with `fields` fields.
    pub fn objects(&mut self, n: usize, fields: u16) -> Vec<ObjId> {
        self.b.objects(n, fields)
    }

    /// Declares one plain object.
    pub fn object(&mut self, fields: u16) -> ObjId {
        self.b.object(ObjKind::Plain { fields })
    }

    /// Declares a monitor object.
    pub fn monitor(&mut self) -> ObjId {
        self.b.object(ObjKind::Monitor)
    }

    /// Declares an array object.
    pub fn array(&mut self, len: u32) -> ObjId {
        self.b.object(ObjKind::Array { len })
    }

    /// Declares a barrier for `parties` threads.
    pub fn barrier(&mut self, parties: u32) -> ObjId {
        self.b.object(ObjKind::Barrier { parties })
    }

    /// Adds a method.
    pub fn method(&mut self, name: impl Into<String>, body: Vec<Op>) -> MethodId {
        self.b.method(name, body)
    }

    /// Looks up an already-added method by name.
    pub fn lookup_method(&self, name: &str) -> Option<MethodId> {
        self.b.find_method(name)
    }

    /// Adds a method excluded from the initial atomicity specification.
    pub fn excluded_method(&mut self, name: impl Into<String>, body: Vec<Op>) -> MethodId {
        let m = self.b.method(name, body);
        self.extra_exclusions.push(m);
        m
    }

    /// Adds a run-start thread.
    pub fn thread(&mut self, entry: MethodId) -> ThreadId {
        self.b.thread(entry)
    }

    /// Adds a forked thread.
    pub fn forked_thread(&mut self, entry: MethodId) -> ThreadId {
        self.b.forked_thread(entry)
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics if the composed program fails validation (generator bug).
    pub fn build(self, compute_bound: bool) -> Workload {
        let program = match self.b.build() {
            Ok(p) => p,
            Err(e) => panic!("workload {:?} is invalid: {e}", self.name),
        };
        Workload {
            name: self.name,
            program,
            extra_exclusions: self.extra_exclusions,
            compute_bound,
        }
    }
}

/// `body` repeated `count` times.
pub fn repeat(count: u32, body: Vec<Op>) -> Op {
    Op::Loop { count, body }
}

/// `Acquire(lock); body…; Release(lock)`.
pub fn locked(lock: ObjId, mut body: Vec<Op>) -> Vec<Op> {
    let mut ops = vec![Op::Acquire(lock)];
    ops.append(&mut body);
    ops.push(Op::Release(lock));
    ops
}

/// A read–modify–write of one field with `work` compute in between — the
/// classic atomicity-violation pattern when unprotected.
pub fn rmw(obj: ObjId, cell: CellId, work: u32) -> Vec<Op> {
    vec![Op::Read(obj, cell), Op::Compute(work), Op::Write(obj, cell)]
}

/// Check-then-act: read a flag field, then write a data field.
pub fn check_then_act(flag: (ObjId, CellId), data: (ObjId, CellId), work: u32) -> Vec<Op> {
    vec![
        Op::Read(flag.0, flag.1),
        Op::Compute(work),
        Op::Write(data.0, data.1),
    ]
}

/// Reads every field of every object (read-shared traffic).
pub fn scan(objs: &[ObjId], fields: u16, work: u32) -> Vec<Op> {
    let mut ops = Vec::with_capacity(objs.len() * usize::from(fields) + 1);
    for &o in objs {
        for f in 0..fields {
            ops.push(Op::Read(o, CellId::from(f)));
        }
        if work > 0 {
            ops.push(Op::Compute(work));
        }
    }
    ops
}

/// Thread-private churn: interleaved reads and writes over private objects
/// (fast-path Octet traffic; the bulk of real programs).
pub fn churn(objs: &[ObjId], fields: u16, rounds: u32, work: u32) -> Op {
    let mut body = Vec::new();
    for &o in objs {
        for f in 0..fields {
            body.push(Op::Write(o, CellId::from(f)));
            body.push(Op::Read(o, CellId::from(f)));
        }
        if work > 0 {
            body.push(Op::Compute(work));
        }
    }
    repeat(rounds, body)
}

/// Picks `n` distinct pseudo-random indices below `max`.
pub fn pick_indices(rng: &mut SmallRng, n: usize, max: usize) -> Vec<usize> {
    let mut picked = Vec::with_capacity(n);
    while picked.len() < n.min(max) {
        let i = rng.gen_range(0..max);
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked
}

/// Validation helper used by the suite tests.
pub fn check(workload: &Workload) -> Result<(), ProgramError> {
    workload.program.validate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_increase() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
    }

    #[test]
    fn builder_rng_is_deterministic_per_name() {
        let mut a = WorkloadBuilder::new("x");
        let mut b = WorkloadBuilder::new("x");
        let va: u64 = a.rng().gen();
        let vb: u64 = b.rng().gen();
        assert_eq!(va, vb);
        let mut c = WorkloadBuilder::new("y");
        let vc: u64 = c.rng().gen();
        assert_ne!(va, vc);
    }

    #[test]
    fn locked_wraps_body() {
        let lock = ObjId(0);
        let ops = locked(lock, vec![Op::Compute(1)]);
        assert_eq!(ops.first(), Some(&Op::Acquire(lock)));
        assert_eq!(ops.last(), Some(&Op::Release(lock)));
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn rmw_reads_then_writes_same_cell() {
        let ops = rmw(ObjId(1), 2, 5);
        assert_eq!(ops[0], Op::Read(ObjId(1), 2));
        assert_eq!(ops[2], Op::Write(ObjId(1), 2));
    }

    #[test]
    fn pick_indices_are_distinct_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        let picked = pick_indices(&mut rng, 5, 8);
        assert_eq!(picked.len(), 5);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(picked.iter().all(|&i| i < 8));
    }

    #[test]
    fn excluded_methods_are_recorded() {
        let mut wb = WorkloadBuilder::new("t");
        let m = wb.excluded_method("driver", vec![Op::Compute(1)]);
        wb.thread(m);
        let w = wb.build(true);
        assert_eq!(w.extra_exclusions, vec![m]);
        assert!(check(&w).is_ok());
    }
}
