//! Analogs of the Java Grande benchmarks the paper evaluates (moldyn,
//! montecarlo, raytracer — §5.1): data-parallel compute with barrier phases,
//! lock-protected reductions, and (for montecarlo) a couple of racy
//! aggregate counters.

use crate::builder::{churn, locked, repeat, rmw, scan, Scale, Workload, WorkloadBuilder};
use dc_runtime::ids::CellId;
use dc_runtime::program::Op;

/// `moldyn`: molecular dynamics — barrier-phased force computation reading
/// all particle partitions, writing only the thread's own, with a
/// lock-protected energy reduction. Serializable; no violations.
pub fn moldyn(scale: Scale) -> Workload {
    const THREADS: usize = 4;
    const FIELDS: u16 = 32;
    let mut w = WorkloadBuilder::new("moldyn");
    let f = scale.factor();
    // Positions are read by everyone during the force phase and written
    // only by their owner in the (barrier-separated) update phase; forces
    // are thread-private.
    // Particle data are arrays (`double[]` in the Java original) and thus
    // uninstrumented by default (paper §4).
    let positions: Vec<_> = (0..THREADS).map(|_| w.array(u32::from(FIELDS))).collect();
    let forces_objs: Vec<_> = (0..THREADS).map(|_| w.array(u32::from(FIELDS))).collect();
    let energy = w.object(2);
    let lock = w.monitor();
    let bar = w.barrier(THREADS as u32);
    let mut threads = Vec::new();
    for i in 0..THREADS {
        let mut force = Vec::new();
        for p in &positions {
            for c in 0..FIELDS {
                force.push(Op::ArrayRead(*p, CellId::from(c)));
            }
            force.push(Op::Compute(4));
        }
        for c in 0..FIELDS {
            force.push(Op::ArrayWrite(forces_objs[i], CellId::from(c)));
        }
        let forces = w.method(format!("MolDyn.forces{i}"), force);
        let mut update = Vec::new();
        for c in 0..FIELDS {
            update.push(Op::ArrayRead(forces_objs[i], CellId::from(c)));
            update.push(Op::ArrayWrite(positions[i], CellId::from(c)));
        }
        update.push(Op::Compute(4));
        let update_m = w.method(format!("MolDyn.updatePositions{i}"), update);
        let reduce = w.method(
            format!("MolDyn.reduceEnergy{i}"),
            locked(lock, vec![Op::Read(energy, 0), Op::Write(energy, 0)]),
        );
        let body = vec![repeat(
            f,
            vec![
                Op::Call(forces),
                Op::Barrier(bar),
                Op::Call(update_m),
                Op::Call(reduce),
                Op::Barrier(bar),
            ],
        )];
        threads.push(w.excluded_method(format!("MolDyn.run{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(true)
}

/// `montecarlo`: independent path simulations (thread-local churn) whose
/// results append to a shared vector under a lock; two global statistics
/// counters are updated racily (the paper reports 2 violations).
pub fn montecarlo(scale: Scale) -> Workload {
    const THREADS: usize = 4;
    let mut w = WorkloadBuilder::new("montecarlo");
    let f = scale.factor();
    let results = w.object(16);
    let stats = w.object(4);
    let lock = w.monitor();
    let private: Vec<_> = (0..THREADS).map(|_| w.object(10)).collect();
    let mut threads = Vec::new();
    for i in 0..THREADS {
        let simulate = w.method(
            format!("MonteCarlo.simulatePath{i}"),
            vec![churn(&private[i..=i], 10, 12, 10)],
        );
        let append = w.method(
            format!("MonteCarlo.appendResult{i}"),
            locked(
                lock,
                vec![
                    Op::Read(results, (i % 16) as CellId),
                    Op::Write(results, (i % 16) as CellId),
                ],
            ),
        );
        let body = vec![repeat(
            4 * f,
            vec![
                Op::Call(simulate),
                Op::Call(append),
                Op::Call(crate::grande::shared_counters(&mut w, i)),
            ],
        )];
        threads.push(w.excluded_method(format!("MonteCarlo.run{i}"), body));
    }
    // Two racy counter methods shared by all threads (created once above).
    for m in threads {
        w.thread(m);
    }
    let _ = stats;
    w.build(true)
}

/// Shared racy-counter method used by [`montecarlo`]: created once, then
/// reused, so all threads race on the same two methods.
fn shared_counters(w: &mut WorkloadBuilder, _i: usize) -> dc_runtime::ids::MethodId {
    // Lazily create the pair of racy methods once; later calls return the
    // combined method.
    if let Some(m) = w.lookup_method("MonteCarlo.updateGlobalStats") {
        return m;
    }
    let stats = w.object(4);
    let mut body = rmw(stats, 0, 3);
    body.extend(rmw(stats, 1, 3));
    w.method("MonteCarlo.updateGlobalStats", body)
}

/// `raytracer`: threads render disjoint rows reading a shared, read-only
/// scene (read-shared Octet traffic) and combine a checksum under a lock.
/// Serializable; no violations (the paper reports 0, with one imprecise
/// SCC).
pub fn raytracer(scale: Scale) -> Workload {
    const THREADS: usize = 4;
    const SCENE_OBJS: usize = 6;
    const FIELDS: u16 = 8;
    let mut w = WorkloadBuilder::new("raytracer");
    let f = scale.factor();
    let scene: Vec<_> = (0..SCENE_OBJS).map(|_| w.object(FIELDS)).collect();
    let checksum = w.object(1);
    let lock = w.monitor();
    // Pixel rows are arrays (`int[]` in the Java original).
    let rows: Vec<_> = (0..THREADS).map(|_| w.array(16)).collect();
    let mut threads = Vec::new();
    for (i, &row) in rows.iter().enumerate() {
        let mut render = Vec::new();
        for _ in 0..4 {
            render.extend(scan(&scene, FIELDS, 6));
        }
        for c in 0..16u16 {
            render.push(Op::ArrayWrite(row, CellId::from(c)));
        }
        let render_m = w.method(format!("RayTracer.renderRow{i}"), render);
        let combine = w.method(
            format!("RayTracer.combineChecksum{i}"),
            locked(lock, vec![Op::Read(checksum, 0), Op::Write(checksum, 0)]),
        );
        let body = vec![repeat(3 * f, vec![Op::Call(render_m), Op::Call(combine)])];
        threads.push(w.excluded_method(format!("RayTracer.run{i}"), body));
    }
    for m in threads {
        w.thread(m);
    }
    w.build(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::check;

    #[test]
    fn all_grande_workloads_validate() {
        for wl in [
            moldyn(Scale::Tiny),
            montecarlo(Scale::Tiny),
            raytracer(Scale::Tiny),
        ] {
            assert!(check(&wl).is_ok(), "{} must validate", wl.name);
            assert!(wl.compute_bound);
        }
    }

    #[test]
    fn montecarlo_reuses_one_racy_method() {
        let wl = montecarlo(Scale::Tiny);
        let shared = wl
            .program
            .methods
            .iter()
            .filter(|m| m.name == "MonteCarlo.updateGlobalStats")
            .count();
        assert_eq!(shared, 1);
    }

    #[test]
    fn moldyn_runs_under_random_schedules() {
        let wl = moldyn(Scale::Tiny);
        for seed in 0..5 {
            dc_runtime::engine::det::run_det(
                &wl.program,
                &dc_runtime::checker::NopChecker,
                &dc_runtime::engine::det::Schedule::random(seed),
            )
            .unwrap();
        }
    }
}
