//! The full benchmark suite, mirroring the paper's §5.1 program list.

use crate::builder::{Scale, Workload};
use crate::{dacapo, grande, micro};

/// Builds every benchmark analog at the given scale, in the paper's Table 2
/// row order.
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        dacapo::eclipse6(scale),
        dacapo::hsqldb6(scale),
        dacapo::lusearch6(scale),
        dacapo::xalan6(scale),
        dacapo::avrora9(scale),
        dacapo::jython9(scale),
        dacapo::luindex9(scale),
        dacapo::lusearch9(scale),
        dacapo::pmd9(scale),
        dacapo::sunflow9(scale),
        dacapo::xalan9(scale),
        micro::elevator(scale),
        micro::hedc(scale),
        micro::philo(scale),
        micro::sor(scale),
        micro::tsp(scale),
        grande::moldyn(scale),
        grande::montecarlo(scale),
        grande::raytracer(scale),
    ]
}

/// The compute-bound subset used for performance experiments (the paper
/// excludes elevator, hedc, and philo from Figure 7, §5.3).
pub fn performance_suite(scale: Scale) -> Vec<Workload> {
    all(scale).into_iter().filter(|w| w.compute_bound).collect()
}

/// Builds one benchmark by its paper name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_benchmarks_in_paper_order() {
        let suite = all(Scale::Tiny);
        assert_eq!(suite.len(), 19);
        assert_eq!(suite[0].name, "eclipse6");
        assert_eq!(suite[18].name, "raytracer");
        let names: std::collections::HashSet<_> = suite.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 19, "names are unique");
    }

    #[test]
    fn performance_suite_drops_non_compute_bound() {
        let perf = performance_suite(Scale::Tiny);
        assert_eq!(perf.len(), 16);
        assert!(perf.iter().all(|w| w.compute_bound));
        assert!(!perf.iter().any(|w| w.name == "elevator"));
        assert!(!perf.iter().any(|w| w.name == "hedc"));
        assert!(!perf.iter().any(|w| w.name == "philo"));
    }

    #[test]
    fn by_name_finds_each_benchmark() {
        for wl in all(Scale::Tiny) {
            assert!(by_name(wl.name, Scale::Tiny).is_some());
        }
        assert!(by_name("nonexistent", Scale::Tiny).is_none());
    }

    #[test]
    fn every_benchmark_runs_under_the_deterministic_engine() {
        for wl in all(Scale::Tiny) {
            let stats = dc_runtime::engine::det::run_det(
                &wl.program,
                &dc_runtime::checker::NopChecker,
                &dc_runtime::engine::det::Schedule::random(11),
            )
            .unwrap_or_else(|e| panic!("{} failed: {e}", wl.name));
            assert!(stats.total_accesses() > 0, "{} does work", wl.name);
        }
    }

    #[test]
    fn every_benchmark_runs_on_real_threads() {
        for wl in all(Scale::Tiny) {
            let stats =
                dc_runtime::engine::real::run_real(&wl.program, &dc_runtime::checker::NopChecker);
            assert!(stats.total_accesses() > 0, "{} does work", wl.name);
        }
    }
}
