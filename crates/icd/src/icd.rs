//! The ICD analysis: transaction lifecycle, Figure-4 edge procedures,
//! read/write logging with duplicate elision, and SCC detection at
//! transaction end.
//!
//! One [`Icd`] instance is shared by all threads. Hot, owner-only state
//! (the current transaction's log and the elision table) lives in per-thread
//! slots behind `UnsafeCell`; the cross-thread-visible registers —
//! `currTX(T)`, `T.lastRdEx`, the published log length — are atomics, read
//! by other threads only during Octet coordination (when the owner is at a
//! safe point or held).
//!
//! Graph maintenance has two modes ([`PipelineMode`]): in `Sync` mode
//! application threads mutate the IDG under a global mutex (rare relative to
//! accesses — Table 3: edges ≪ accesses — which is what makes ICD cheap);
//! in `Pipelined` mode they only enqueue ticketed operations and a dedicated
//! graph-owner thread (see [`crate::pipeline`]) applies them, so SCC
//! detection and the collector leave the application hot path entirely. The
//! [`IcdStats::graph_locks`] counter proves the difference: it counts every
//! hot-path graph-mutex acquisition by an application thread and stays at
//! zero in pipelined mode.

use crate::graph::{Graph, GraphCounters, SccProbe};
use crate::pipeline::{
    GraphOp, OpTransport, PipelineError, PipelineHandle, PipelineMode, PosSnapshot, SccSink,
};
use crate::types::{Edge, EdgeKind, LogEntry, SccReport, TxId, TxKind};
use dc_obs::{EventKind, PipelineObs, Stage};
use dc_runtime::heap::CellLayout;
use dc_runtime::ids::{CellId, MethodId, ObjId, ThreadId};
use parking_lot::{Mutex, MutexGuard};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Configuration for one ICD instance.
#[derive(Clone, Copy, Debug)]
pub struct IcdConfig {
    /// Record read/write logs (single-run mode and the second run of
    /// multi-run mode). The first run of multi-run mode turns this off —
    /// that is its entire performance advantage (§3.1).
    pub logging: bool,
    /// Run the transaction collector every this many transaction ends
    /// (0 disables collection).
    pub collect_every: u32,
    /// Detect SCCs when transactions end. Disabled for the §5.4
    /// array-overhead comparison and the PCD-only variant.
    pub detect_sccs: bool,
    /// Where graph maintenance runs: on the application threads under a
    /// mutex (`Sync`) or on a dedicated graph-owner thread (`Pipelined`).
    pub pipeline: PipelineMode,
    /// How pipelined-mode ops reach the graph owner (ignored in `Sync`
    /// mode): the bounded MPSC ring (default) or the legacy unbounded
    /// channel kept as the differential baseline.
    pub transport: OpTransport,
    /// IDG shards in pipelined mode (clamped to `1..=dc_obs::MAX_SHARDS`).
    /// 1 = the classic single-owner path; above 1 a router thread
    /// partitions the graph by connected component across shard owners.
    pub shards: u32,
}

impl Default for IcdConfig {
    fn default() -> Self {
        IcdConfig {
            logging: true,
            collect_every: 128,
            detect_sccs: true,
            pipeline: PipelineMode::Sync,
            transport: OpTransport::Ring,
            shards: 1,
        }
    }
}

/// Aggregated run statistics (Table 3 columns).
#[derive(Debug, Default)]
pub struct IcdStats {
    /// Regular (non-unary) transactions started.
    pub regular_txs: AtomicU64,
    /// Unary (merged) transactions started.
    pub unary_txs: AtomicU64,
    /// Instrumented accesses inside regular transactions.
    pub regular_accesses: AtomicU64,
    /// Instrumented accesses in non-transactional (unary) context.
    pub unary_accesses: AtomicU64,
    /// Read/write log entries actually recorded (after elision) — the
    /// paper's main memory cost ("GC time" analog in Figure 7).
    pub log_entries: AtomicU64,
    /// Transactions reclaimed by the collector.
    pub collected_txs: AtomicU64,
    /// Hot-path graph-mutex acquisitions by application threads (transaction
    /// lifecycle, edge procedures, the collector). Zero in
    /// [`PipelineMode::Pipelined`] — the pipeline's acceptance counter.
    pub graph_locks: AtomicU64,
}

/// True when `DC_DEBUG_COLLECT` was set at first use (read once, not per
/// collection pass).
pub(crate) fn debug_collect() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("DC_DEBUG_COLLECT").is_some())
}

/// One thread's cross-thread-visible registers. Padded so coordination
/// traffic on one thread's registers does not false-share with another's.
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct ThreadRegs {
    /// `currTX(T)`; stays pointing at the last transaction after it ends so
    /// coordination against an idle/finished thread still finds a source.
    pub(crate) current_tx: AtomicU64,
    /// `T.lastRdEx`: last transaction of `T` to move an object into RdEx-T.
    pub(crate) last_rd_ex: AtomicU64,
    /// Bumped by whoever attaches an edge to this thread's *current*
    /// transaction; drives unary-transaction cutting and elision epochs.
    pub(crate) edge_events: AtomicU32,
    /// Published length of the current transaction's log.
    pub(crate) log_len: AtomicU32,
}

/// All threads' registers, shared with the pipeline's graph-owner thread
/// (which reads them as collector roots).
#[derive(Debug)]
pub(crate) struct Registers {
    pub(crate) threads: Box<[ThreadRegs]>,
}

/// Per-thread local (owner-only) state.
struct Local {
    log: Vec<LogEntry>,
    /// Duplicate-elision table keyed by (obj, cell): used until a
    /// [`CellLayout`] is attached (tests, standalone use).
    elision: HashMap<(ObjId, CellId), (u32, bool)>,
    /// Flat duplicate-elision table (`epoch << 1 | wrote` per layout slot);
    /// the fast path when a layout is attached. Sized at thread begin (or
    /// by the cold fallback if the layout arrived later) so the hot loop
    /// never re-checks the lazy init.
    elision_flat: Vec<u64>,
    /// Bumped at transaction start and whenever the owner observes a new
    /// edge on its current transaction; stale elision entries simply
    /// mismatch.
    epoch: u32,
    /// `edge_events` value last observed by the owner.
    seen_edge_events: u32,
    kind: TxKind,
    /// Per-thread transaction sequence number.
    seq: u64,
    /// Pipelined mode: ticketed graph ops buffered during the current hook,
    /// flushed as one batch before the hook returns.
    pending: Vec<(u64, GraphOp)>,
    regular_accesses: u64,
    unary_accesses: u64,
    log_entries: u64,
}

impl Local {
    /// Advances the elision epoch. On u32 wrap the new epoch would collide
    /// with stale table entries stamped billions of accesses ago, letting
    /// them spuriously elide a fresh access (and silently drop a log
    /// entry), so both elision tables are cleared. The epoch then restarts
    /// at 1, never 0: flat slots are zero-initialized and decode as
    /// `(epoch 0, no write)`, which must never match a live epoch.
    #[inline]
    fn bump_epoch(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.elision_flat.fill(0);
            self.elision.clear();
            self.epoch = 1;
        }
    }
}

#[repr(align(128))]
struct Slot {
    local: UnsafeCell<Local>,
}

// SAFETY: `local` is only ever accessed by the owning thread (all &self
// methods touching it take the owner's ThreadId and are called by the
// engine on that thread).
unsafe impl Sync for Slot {}

impl Slot {
    fn new() -> Self {
        Slot {
            local: UnsafeCell::new(Local {
                log: Vec::new(),
                elision: HashMap::new(),
                elision_flat: Vec::new(),
                epoch: 0,
                seen_edge_events: 0,
                kind: TxKind::Unary,
                seq: 0,
                pending: Vec::new(),
                regular_accesses: 0,
                unary_accesses: 0,
                log_entries: 0,
            }),
        }
    }
}

/// The imprecise-cycle-detection analysis.
pub struct Icd {
    slots: Box<[Slot]>,
    regs: Arc<Registers>,
    layout: OnceLock<CellLayout>,
    /// The IDG in `Sync` mode. In `Pipelined` mode this holds a placeholder
    /// until [`Icd::drain_pipeline`] moves the real graph back in.
    graph: Mutex<Graph>,
    /// Lock-free Table-3 counters shared with the graph (wherever it lives).
    counters: Arc<GraphCounters>,
    pipeline: Option<PipelineHandle>,
    next_tx: AtomicU64,
    ends_since_collect: AtomicU32,
    /// Adaptive collection threshold: at least `config.collect_every`, and
    /// at least half the live-graph size after the last collection, so scan
    /// cost stays amortized-linear even when nothing is collectable.
    collect_threshold: AtomicU32,
    config: IcdConfig,
    stats: Arc<IcdStats>,
    obs: Option<Arc<PipelineObs>>,
}

impl std::fmt::Debug for Icd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Icd")
            .field("threads", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

impl Icd {
    /// Creates an ICD instance for `n_threads` threads.
    ///
    /// In [`PipelineMode::Pipelined`] without a sink, detected SCCs are
    /// dropped (useful for overhead measurement only); use
    /// [`Icd::with_scc_sink`] to receive them.
    pub fn new(n_threads: usize, config: IcdConfig) -> Self {
        Self::build(n_threads, config, None, None)
    }

    /// Creates an ICD instance whose detected SCCs are delivered to `sink`
    /// on the graph-owner thread ([`PipelineMode::Pipelined`] only — in
    /// `Sync` mode the hooks return reports directly and `sink` is unused).
    pub fn with_scc_sink(n_threads: usize, config: IcdConfig, sink: SccSink) -> Self {
        Self::build(n_threads, config, Some(sink), None)
    }

    /// Like [`Icd::with_scc_sink`] with an optional observability registry
    /// shared with the rest of the checker; `None` means observability is
    /// off and the analysis runs exactly the uninstrumented code.
    pub fn with_observability(
        n_threads: usize,
        config: IcdConfig,
        sink: Option<SccSink>,
        obs: Option<Arc<PipelineObs>>,
    ) -> Self {
        Self::build(n_threads, config, sink, obs)
    }

    fn build(
        n_threads: usize,
        config: IcdConfig,
        sink: Option<SccSink>,
        obs: Option<Arc<PipelineObs>>,
    ) -> Self {
        let regs = Arc::new(Registers {
            threads: (0..n_threads).map(|_| ThreadRegs::default()).collect(),
        });
        let stats = Arc::new(IcdStats::default());
        let graph = Graph::new();
        let counters = graph.counters();
        let (graph, pipeline) = match config.pipeline {
            PipelineMode::Sync => (graph, None),
            PipelineMode::Pipelined => (
                Graph::new(),
                Some(PipelineHandle::spawn(
                    graph,
                    Arc::clone(&regs),
                    Arc::clone(&stats),
                    config,
                    sink,
                    obs.clone(),
                )),
            ),
        };
        Icd {
            slots: (0..n_threads).map(|_| Slot::new()).collect(),
            regs,
            layout: OnceLock::new(),
            graph: Mutex::new(graph),
            counters,
            pipeline,
            next_tx: AtomicU64::new(1),
            ends_since_collect: AtomicU32::new(0),
            collect_threshold: AtomicU32::new(config.collect_every.max(1)),
            config,
            stats,
            obs,
        }
    }

    /// Counts one graph op that the synchronous path creates and applies at
    /// the same program point, keeping `ops_enqueued == ops_applied`
    /// invariant across both pipeline modes.
    #[inline]
    fn observe_sync_op(&self) {
        if let Some(obs) = &self.obs {
            obs.graph.ops_enqueued.inc();
            obs.graph.ops_applied.inc();
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> &IcdStats {
        &self.stats
    }

    /// Attaches the heap's cell layout, switching duplicate elision to a
    /// flat side table (call once at run start).
    pub fn attach_layout(&self, layout: CellLayout) {
        let _ = self.layout.set(layout);
    }

    /// Cross-thread IDG edges added so far (Table 3). Lock-free.
    pub fn cross_edges(&self) -> u64 {
        self.counters.cross_edges.load(Ordering::Relaxed)
    }

    /// IDG SCCs (≥ 2 transactions) detected so far (Table 3). Lock-free.
    pub fn scc_count(&self) -> u64 {
        self.counters.scc_count.load(Ordering::Relaxed)
    }

    /// `currTX(T)`.
    pub fn current_tx(&self, t: ThreadId) -> TxId {
        TxId(
            self.regs.threads[t.index()]
                .current_tx
                .load(Ordering::Acquire),
        )
    }

    /// Drains the asynchronous pipeline (no-op in `Sync` mode): waits until
    /// every enqueued operation is applied, stops the graph-owner thread
    /// (dropping the SCC sink), and moves the final graph back under this
    /// instance's mutex for post-run readers. Call only after every
    /// application thread has finished its last hook (joined). Returns the
    /// first structural op-stream error the owner hit, if any.
    pub fn drain_pipeline(&self) -> Option<PipelineError> {
        if let Some(p) = &self.pipeline {
            p.shutdown_into(&self.graph)
        } else {
            None
        }
    }

    /// Snapshot of every finished transaction with its log and the edges
    /// among them (the §5.4 "PCD-only" variant). Call after all threads
    /// have ended (and, in pipelined mode, after [`Icd::drain_pipeline`]);
    /// requires `collect_every == 0` so nothing was reclaimed.
    pub fn snapshot_all_finished(&self) -> SccReport {
        self.graph.lock().snapshot_all_finished()
    }

    /// Acquires the graph mutex on an application-thread hot path, counting
    /// the acquisition (the pipelined configuration exists to keep this at
    /// zero).
    fn lock_graph(&self) -> MutexGuard<'_, Graph> {
        self.stats.graph_locks.fetch_add(1, Ordering::Relaxed);
        self.graph.lock()
    }

    /// SAFETY: must only be called from code running on thread `t`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn local(&self, t: ThreadId) -> &mut Local {
        &mut *self.slots[t.index()].local.get()
    }

    /// Flushes thread `t`'s buffered graph ops to the owner (pipelined
    /// mode). Every public hook that can create ops calls this before
    /// returning, so tickets never linger in a private buffer.
    #[inline]
    fn flush(&self, t: ThreadId) {
        if let Some(p) = &self.pipeline {
            // SAFETY: called on thread t.
            let local = unsafe { self.local(t) };
            if !local.pending.is_empty() {
                // Swaps in a pooled buffer (capacity intact), so steady-state
                // flushes never reallocate the pending batch.
                p.send_batch(&mut local.pending);
            }
        }
    }

    /// Per-thread `(currTX, published log length)` snapshot for rare ops
    /// whose edge source is resolved by the graph owner at apply time.
    fn pos_snapshot(&self) -> PosSnapshot {
        self.regs
            .threads
            .iter()
            .map(|r| {
                (
                    r.current_tx.load(Ordering::Acquire),
                    r.log_len.load(Ordering::Acquire),
                )
            })
            .collect()
    }

    // ----- transaction lifecycle -------------------------------------------

    /// Thread start: opens the thread's first unary transaction.
    pub fn thread_begin(&self, t: ThreadId) -> Option<SccReport> {
        let report = self.begin_tx(t, TxKind::Unary);
        self.flush(t);
        // Hoist the flat elision table's allocation off the record_access
        // hot loop: in the checker flow the layout is attached before any
        // thread begins, and this runs on the owner thread (mutating the
        // slot here is safe; doing it in `attach_layout` would not be).
        if let Some(layout) = self.layout.get() {
            // SAFETY: called on thread t.
            let local = unsafe { self.local(t) };
            if local.elision_flat.is_empty() && layout.total() > 0 {
                local.elision_flat = vec![0; layout.total() as usize];
            }
        }
        report
    }

    /// Thread exit: ends the current transaction (its id stays visible as a
    /// coordination source) and folds local counters into global stats.
    pub fn thread_end(&self, t: ThreadId) -> Option<SccReport> {
        let report = self.end_current_tx(t);
        self.flush(t);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        self.stats
            .regular_accesses
            .fetch_add(local.regular_accesses, Ordering::Relaxed);
        self.stats
            .unary_accesses
            .fetch_add(local.unary_accesses, Ordering::Relaxed);
        self.stats
            .log_entries
            .fetch_add(local.log_entries, Ordering::Relaxed);
        local.regular_accesses = 0;
        local.unary_accesses = 0;
        local.log_entries = 0;
        report
    }

    /// A regular transaction rooted at `method` begins (atomic method
    /// entered from non-transactional context).
    pub fn begin_regular(&self, t: ThreadId, method: MethodId) -> Option<SccReport> {
        let report = self.end_current_tx(t);
        let r2 = self.begin_tx(t, TxKind::Regular(method));
        debug_assert!(r2.is_none(), "begin_tx after end cannot detect an SCC");
        self.flush(t);
        report
    }

    /// The regular transaction ends; a fresh unary transaction opens
    /// immediately (paper §4: "At method end, it creates a new unary
    /// transaction").
    pub fn end_regular(&self, t: ThreadId) -> Option<SccReport> {
        let report = self.end_current_tx(t);
        let r2 = self.begin_tx(t, TxKind::Unary);
        debug_assert!(r2.is_none());
        self.flush(t);
        report
    }

    fn begin_tx(&self, t: ThreadId, kind: TxKind) -> Option<SccReport> {
        let regs = &self.regs.threads[t.index()];
        let id = TxId(self.next_tx.fetch_add(1, Ordering::Relaxed));
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        local.seq += 1;
        local.kind = kind;
        local.bump_epoch();
        local.seen_edge_events = regs.edge_events.load(Ordering::Acquire);
        debug_assert!(local.log.is_empty(), "log must be drained at tx end");
        match kind {
            TxKind::Regular(_) => {
                self.stats.regular_txs.fetch_add(1, Ordering::Relaxed);
            }
            TxKind::Unary => {
                self.stats.unary_txs.fetch_add(1, Ordering::Relaxed);
            }
        }
        let prev = TxId(regs.current_tx.load(Ordering::Acquire));
        if let Some(p) = &self.pipeline {
            let ticket = p.ticket();
            local.pending.push((
                ticket,
                GraphOp::Insert {
                    id,
                    thread: t,
                    kind,
                    seq: local.seq,
                    prev,
                },
            ));
        } else {
            self.observe_sync_op();
            let mut graph = self.lock_graph();
            graph.insert(id, t, kind, local.seq);
            if prev.is_some() {
                let src_pos = graph.node(prev).map_or(0, |n| n.final_len);
                graph.add_edge(Edge {
                    src: prev,
                    src_pos,
                    dst: id,
                    dst_pos: 0,
                    kind: EdgeKind::Intra,
                });
            }
        }
        regs.log_len.store(0, Ordering::Release);
        regs.current_tx.store(id.0, Ordering::Release);
        None
    }

    /// Ends the current transaction: moves its log into the graph, runs SCC
    /// detection from it (§3.2.3), and periodically runs the collector. In
    /// pipelined mode both happen on the graph owner and this returns
    /// `None`; reports reach the sink instead.
    fn end_current_tx(&self, t: ThreadId) -> Option<SccReport> {
        let id = TxId(
            self.regs.threads[t.index()]
                .current_tx
                .load(Ordering::Acquire),
        );
        if !id.is_some() {
            return None;
        }
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        let log = std::mem::take(&mut local.log);
        if let Some(p) = &self.pipeline {
            let ticket = p.ticket();
            local
                .pending
                .push((ticket, GraphOp::Finish { id, thread: t, log }));
            return None;
        }
        self.observe_sync_op();
        let mut graph = self.lock_graph();
        // Sync mode runs in-process with the hooks, so a malformed finish
        // here is a checker bug, not a recoverable op-stream failure.
        graph.finish(id, log).expect("finishing unknown tx");
        let report = if self.config.detect_sccs {
            let t0 = self.obs.as_ref().and_then(|o| o.clock());
            let probe = graph.scc_probe(id);
            if let Some(obs) = &self.obs {
                obs.graph.scc_latency.record_elapsed(t0);
                match &probe {
                    SccProbe::Skipped => obs.graph.sccs_skipped_trivial.inc(),
                    SccProbe::NoCycle => {}
                    SccProbe::Cycle(r) => {
                        obs.graph.sccs_detected.inc();
                        obs.trace(Stage::Graph, EventKind::SccDetected, r.len() as u64);
                    }
                }
            }
            match probe {
                SccProbe::Cycle(report) => Some(report),
                SccProbe::Skipped | SccProbe::NoCycle => None,
            }
        } else {
            None
        };
        drop(graph);
        if self.config.collect_every > 0 {
            let n = self.ends_since_collect.fetch_add(1, Ordering::Relaxed) + 1;
            if n >= self.collect_threshold.load(Ordering::Relaxed)
                && self
                    .ends_since_collect
                    .compare_exchange(n, 0, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                self.run_collector();
            }
        }
        report
    }

    fn run_collector(&self) {
        let t_dbg = debug_collect().then(std::time::Instant::now);
        let t_obs = self.obs.as_ref().and_then(|o| o.clock());
        let mut roots: Vec<TxId> = Vec::with_capacity(self.regs.threads.len() * 2 + 1);
        for regs in self.regs.threads.iter() {
            roots.push(TxId(regs.current_tx.load(Ordering::Acquire)));
            roots.push(TxId(regs.last_rd_ex.load(Ordering::Acquire)));
        }
        let mut graph = self.lock_graph();
        let g = graph.g_last_rd_sh;
        roots.push(g);
        let live = graph.len();
        let collected = graph.collect(roots);
        let survivors = graph.len();
        drop(graph);
        let next = self
            .config
            .collect_every
            .max(u32::try_from(survivors / 2).unwrap_or(u32::MAX));
        self.collect_threshold.store(next, Ordering::Relaxed);
        if let Some(t0) = t_dbg {
            eprintln!(
                "[collector] live {live} collected {collected} in {:?}",
                t0.elapsed()
            );
        }
        self.stats
            .collected_txs
            .fetch_add(collected as u64, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.graph.collect_latency.record_elapsed(t_obs);
            obs.trace(Stage::Graph, EventKind::CollectRun, collected as u64);
        }
    }

    // ----- access instrumentation ------------------------------------------

    /// Fused-kernel probe: `true` when no new edge has been attached to
    /// `t`'s current transaction since its last access, i.e. when
    /// [`Icd::before_access`] would be a no-op. The checker's fast path
    /// folds this single load-and-compare into its combined per-access
    /// check and skips `before_access` entirely on `true`.
    #[inline]
    pub fn edge_events_unchanged(&self, t: ThreadId) -> bool {
        let events = self.regs.threads[t.index()]
            .edge_events
            .load(Ordering::Acquire);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        events == local.seen_edge_events
    }

    /// Must run before each access's Octet barrier: observes edges attached
    /// to the current transaction since the last access, bumping the elision
    /// epoch and — in unary context — cutting the merged unary transaction
    /// (paper §4's merging rule).
    #[inline]
    pub fn before_access(&self, t: ThreadId) -> Option<SccReport> {
        let regs = &self.regs.threads[t.index()];
        let events = regs.edge_events.load(Ordering::Acquire);
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        if events == local.seen_edge_events {
            return None;
        }
        local.seen_edge_events = events;
        local.bump_epoch();
        if local.kind == TxKind::Unary {
            let report = self.end_current_tx(t);
            let r2 = self.begin_tx(t, TxKind::Unary);
            debug_assert!(r2.is_none());
            self.flush(t);
            report
        } else {
            None
        }
    }

    /// Records the access in the current transaction's read/write log
    /// (after the Octet barrier). `force` bypasses duplicate elision — set
    /// when the barrier reported a possible dependence, so the dependence's
    /// sink entry lands at a log position after the edge.
    #[inline]
    pub fn record_access(
        &self,
        t: ThreadId,
        obj: ObjId,
        cell: CellId,
        is_write: bool,
        is_sync: bool,
        force: bool,
    ) {
        let regs = &self.regs.threads[t.index()];
        // SAFETY: called on thread t.
        let local = unsafe { self.local(t) };
        match local.kind {
            TxKind::Regular(_) => local.regular_accesses += 1,
            TxKind::Unary => local.unary_accesses += 1,
        }
        if !self.config.logging {
            return;
        }
        let epoch = local.epoch;
        // Hot branch: the flat table exists (allocated at thread begin when
        // a layout is attached), so the probe is one load, one compare and
        // at most one core-local store — the lazy-init check is hoisted to
        // the cold fallback below.
        let grows = if !local.elision_flat.is_empty() {
            let layout = self
                .layout
                .get()
                .expect("a flat elision table implies an attached layout");
            let slot_idx = layout.slot(obj, cell) as usize;
            let packed = local.elision_flat[slot_idx];
            let (e, wrote) = ((packed >> 1) as u32, packed & 1 != 0);
            if !force && e == epoch && (wrote || !is_write) {
                false // already covered this epoch
            } else {
                local.elision_flat[slot_idx] =
                    (u64::from(epoch) << 1) | u64::from(is_write || (wrote && e == epoch));
                true
            }
        } else {
            Self::elide_cold(self.layout.get(), local, obj, cell, is_write, force, epoch)
        };
        // Single tail: the shared log-length atomic is written only when the
        // log actually grows, so elided accesses (the common case in tight
        // loops) never touch it and stay core-local.
        if !grows {
            return;
        }
        local.log.push(LogEntry::new(obj, cell, is_write, is_sync));
        local.log_entries += 1;
        regs.log_len
            .store(local.log.len() as u32, Ordering::Release);
    }

    /// Out-of-line elision fallback for threads without a flat table: first
    /// access after a late-attached layout (allocates the table), or
    /// layout-free standalone use (HashMap keyed by `(obj, cell)`).
    #[cold]
    fn elide_cold(
        layout: Option<&CellLayout>,
        local: &mut Local,
        obj: ObjId,
        cell: CellId,
        is_write: bool,
        force: bool,
        epoch: u32,
    ) -> bool {
        if let Some(layout) = layout {
            if layout.total() > 0 {
                local.elision_flat = vec![0; layout.total() as usize];
                // Freshly zeroed slots decode as (epoch 0, no write) and a
                // live epoch is never 0, so this access always logs.
                local.elision_flat[layout.slot(obj, cell) as usize] =
                    (u64::from(epoch) << 1) | u64::from(is_write);
                return true;
            }
        }
        let covered = !force
            && local
                .elision
                .get(&(obj, cell))
                .is_some_and(|&(e, wrote)| e == epoch && (wrote || !is_write));
        if covered {
            false
        } else {
            local.elision.insert((obj, cell), (epoch, is_write));
            true
        }
    }

    // ----- Figure 4: edge-creation procedures ------------------------------

    /// `handleConflictingTransition` (Figure 4): adds an IDG edge from
    /// `currTX(resp)` to `currTX(req)`. Runs on the responder at its safe
    /// point (explicit protocol) or on the requester while holding the
    /// blocked responder (implicit protocol) — either way both ends are
    /// stable.
    pub fn handle_conflicting(&self, resp: ThreadId, req: ThreadId) {
        let src = self.current_tx(resp);
        let dst = self.current_tx(req);
        if !src.is_some() || !dst.is_some() || src == dst {
            return;
        }
        let src_pos = self.regs.threads[resp.index()]
            .log_len
            .load(Ordering::Acquire);
        let dst_pos = self.regs.threads[req.index()]
            .log_len
            .load(Ordering::Acquire);
        if let Some(p) = &self.pipeline {
            // Direct send: this may run on either coordination participant,
            // so it must not touch a thread-local buffer.
            p.send_one(GraphOp::Cross {
                src,
                src_thread: resp,
                src_pos,
                dst,
                dst_thread: req,
                dst_pos,
            });
        } else {
            self.observe_sync_op();
            self.lock_graph().add_edge(Edge {
                src,
                src_pos,
                dst,
                dst_pos,
                kind: EdgeKind::Cross,
            });
        }
        self.note_edge_event(resp, src);
        self.note_edge_event(req, dst);
    }

    /// [`Icd::handle_conflicting`] for a coalesced run of slow-path requests
    /// answered at one Octet safe point: the same per-request semantics
    /// (tickets drawn in request order, edge events noted per request), but
    /// all Cross ops ride in one pooled batch over one transport send
    /// instead of one send per request.
    pub fn handle_conflicting_all(&self, resp: ThreadId, reqs: &[ThreadId]) {
        let Some(p) = &self.pipeline else {
            for &req in reqs {
                self.handle_conflicting(resp, req);
            }
            return;
        };
        if let [req] = reqs {
            self.handle_conflicting(resp, *req);
            return;
        }
        let mut batch = p.take_batch();
        for &req in reqs {
            let src = self.current_tx(resp);
            let dst = self.current_tx(req);
            if !src.is_some() || !dst.is_some() || src == dst {
                continue;
            }
            let src_pos = self.regs.threads[resp.index()]
                .log_len
                .load(Ordering::Acquire);
            let dst_pos = self.regs.threads[req.index()]
                .log_len
                .load(Ordering::Acquire);
            batch.push((
                p.ticket(),
                GraphOp::Cross {
                    src,
                    src_thread: resp,
                    src_pos,
                    dst,
                    dst_thread: req,
                    dst_pos,
                },
            ));
            self.note_edge_event(resp, src);
            self.note_edge_event(req, dst);
        }
        p.send_taken(batch);
    }

    /// `handleUpgradingTransition` (Figure 4): on `RdEx T1 → RdSh`, adds
    /// edges `T1.lastRdEx → currTX(t)` and `gLastRdSh → currTX(t)`, then
    /// updates `gLastRdSh` — ordering all transitions to RdSh.
    pub fn handle_upgrading(&self, t: ThreadId, prev_owner: ThreadId) {
        let cur = self.current_tx(t);
        if !cur.is_some() {
            return;
        }
        let dst_pos = self.regs.threads[t.index()].log_len.load(Ordering::Acquire);
        let last_rd_ex = TxId(
            self.regs.threads[prev_owner.index()]
                .last_rd_ex
                .load(Ordering::Acquire),
        );
        if let Some(p) = &self.pipeline {
            p.send_one(GraphOp::Upgrade {
                cur,
                thread: t,
                dst_pos,
                last_rd_ex,
                last_owner: prev_owner,
                snap: self.pos_snapshot(),
            });
        } else {
            self.observe_sync_op();
            let mut graph = self.lock_graph();
            if last_rd_ex.is_some() && last_rd_ex != cur {
                let src_pos = self.edge_src_pos(&graph, prev_owner, last_rd_ex);
                graph.add_edge(Edge {
                    src: last_rd_ex,
                    src_pos,
                    dst: cur,
                    dst_pos,
                    kind: EdgeKind::Cross,
                });
            }
            let g = graph.g_last_rd_sh;
            if g.is_some() && g != cur {
                let src_pos = self.any_src_pos(&graph, g);
                graph.add_edge(Edge {
                    src: g,
                    src_pos,
                    dst: cur,
                    dst_pos,
                    kind: EdgeKind::Cross,
                });
            }
            graph.g_last_rd_sh = cur;
        }
        if last_rd_ex.is_some() {
            self.note_edge_event(prev_owner, last_rd_ex);
        }
        self.note_edge_event(t, cur);
    }

    /// `handleFenceTransition` (Figure 4): adds `gLastRdSh → currTX(t)`.
    pub fn handle_fence(&self, t: ThreadId) {
        let cur = self.current_tx(t);
        if !cur.is_some() {
            return;
        }
        let dst_pos = self.regs.threads[t.index()].log_len.load(Ordering::Acquire);
        if let Some(p) = &self.pipeline {
            p.send_one(GraphOp::Fence {
                cur,
                thread: t,
                dst_pos,
                snap: self.pos_snapshot(),
            });
        } else {
            self.observe_sync_op();
            let mut graph = self.lock_graph();
            let g = graph.g_last_rd_sh;
            if g.is_some() && g != cur {
                let src_pos = self.any_src_pos(&graph, g);
                graph.add_edge(Edge {
                    src: g,
                    src_pos,
                    dst: cur,
                    dst_pos,
                    kind: EdgeKind::Cross,
                });
            }
        }
        self.note_edge_event(t, cur);
    }

    /// Records that `t`'s current transaction moved an object into
    /// RdEx-`t` (updates `t.lastRdEx`; Figure 4's conflicting handler).
    pub fn note_rdex_claim(&self, t: ThreadId) {
        let regs = &self.regs.threads[t.index()];
        let cur = regs.current_tx.load(Ordering::Acquire);
        regs.last_rd_ex.store(cur, Ordering::Release);
    }

    /// Bumps the thread's edge counter if `tx` is still its current
    /// transaction (drives unary cutting and elision epochs).
    fn note_edge_event(&self, t: ThreadId, tx: TxId) {
        let regs = &self.regs.threads[t.index()];
        if regs.current_tx.load(Ordering::Acquire) == tx.0 {
            regs.edge_events.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Log position to use for an edge out of `tx` owned by thread `owner`:
    /// the live published length if `tx` is still current, else its final
    /// length.
    fn edge_src_pos(&self, graph: &Graph, owner: ThreadId, tx: TxId) -> u32 {
        let regs = &self.regs.threads[owner.index()];
        if regs.current_tx.load(Ordering::Acquire) == tx.0 {
            regs.log_len.load(Ordering::Acquire)
        } else {
            graph.node(tx).map_or(0, |n| n.final_len)
        }
    }

    /// Like [`Self::edge_src_pos`] when the owning thread is not known
    /// statically (the `gLastRdSh` register).
    fn any_src_pos(&self, graph: &Graph, tx: TxId) -> u32 {
        match graph.node(tx) {
            Some(node) => self.edge_src_pos(graph, node.thread, tx),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const O: ObjId = ObjId(0);
    const M: MethodId = MethodId(0);

    fn icd(n: usize) -> Icd {
        let icd = Icd::new(n, IcdConfig::default());
        for i in 0..n {
            icd.thread_begin(ThreadId::from_index(i));
        }
        icd
    }

    #[test]
    fn threads_open_unary_transactions_at_start() {
        let icd = icd(2);
        assert!(icd.current_tx(T0).is_some());
        assert_ne!(icd.current_tx(T0), icd.current_tx(T1));
        assert_eq!(icd.stats().unary_txs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn regular_tx_lifecycle_counts_and_chains() {
        let icd = icd(1);
        let unary = icd.current_tx(T0);
        icd.begin_regular(T0, M);
        let reg = icd.current_tx(T0);
        assert_ne!(unary, reg);
        icd.end_regular(T0);
        let unary2 = icd.current_tx(T0);
        assert_ne!(reg, unary2);
        assert_eq!(icd.stats().regular_txs.load(Ordering::Relaxed), 1);
        assert_eq!(icd.stats().unary_txs.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn duplicate_reads_are_elided_but_writes_after_reads_are_not() {
        let icd = icd(1);
        icd.record_access(T0, O, 0, false, false, false);
        icd.record_access(T0, O, 0, false, false, false); // elided
        icd.record_access(T0, O, 0, true, false, false); // write after read: logged
        icd.record_access(T0, O, 0, false, false, false); // read after write: elided
        icd.record_access(T0, O, 1, false, false, false); // different cell: logged
        assert_eq!(icd.stats().unary_txs.load(Ordering::Relaxed), 1);
        // Log length published: 3 entries.
        assert_eq!(icd.regs.threads[0].log_len.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn force_bypasses_elision() {
        let icd = icd(1);
        icd.record_access(T0, O, 0, false, false, false);
        icd.record_access(T0, O, 0, false, false, true); // forced: logged again
        assert_eq!(icd.regs.threads[0].log_len.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn new_transaction_resets_elision_epoch() {
        let icd = icd(1);
        icd.record_access(T0, O, 0, false, false, false);
        icd.begin_regular(T0, M);
        icd.record_access(T0, O, 0, false, false, false); // new tx: logged
        assert_eq!(icd.regs.threads[0].log_len.load(Ordering::Relaxed), 1);
    }

    /// Drives the elision epoch through a full u32 wrap and back to `stale`,
    /// the epoch a table entry was stamped with earlier. Without the wrap
    /// handling in `Local::bump_epoch` that entry would spuriously elide the
    /// next access to its cell and silently drop a log entry.
    fn wrap_epoch_back_to(icd: &Icd, stale: u32) {
        // SAFETY: the test runs on the thread owning slot 0.
        unsafe { icd.local(T0) }.epoch = u32::MAX;
        while unsafe { icd.local(T0) }.epoch != stale {
            icd.begin_regular(T0, M); // one epoch bump per begin
        }
    }

    #[test]
    fn epoch_wrap_clears_hash_elision_table() {
        let icd = icd(1);
        icd.record_access(T0, O, 0, false, false, false);
        let stale = unsafe { icd.local(T0) }.epoch;
        wrap_epoch_back_to(&icd, stale);
        assert!(
            unsafe { icd.local(T0) }.elision.is_empty(),
            "wrap must clear the hash elision table"
        );
        icd.record_access(T0, O, 0, false, false, false);
        assert_eq!(
            icd.regs.threads[0].log_len.load(Ordering::Relaxed),
            1,
            "a stale pre-wrap elision entry must not elide this access"
        );
    }

    #[test]
    fn epoch_wrap_clears_flat_elision_table() {
        use dc_runtime::heap::{Heap, ObjKind};
        let icd = icd(1);
        let heap = Heap::new(&[ObjKind::Plain { fields: 2 }], 1);
        icd.attach_layout(CellLayout::new(&heap));
        icd.record_access(T0, O, 0, false, false, false);
        let stale = unsafe { icd.local(T0) }.epoch;
        wrap_epoch_back_to(&icd, stale);
        icd.record_access(T0, O, 0, false, false, false);
        assert_eq!(
            icd.regs.threads[0].log_len.load(Ordering::Relaxed),
            1,
            "a stale pre-wrap flat slot must not elide this access"
        );
    }

    #[test]
    fn conflicting_edge_cuts_merged_unary_transaction() {
        let icd = icd(2);
        icd.record_access(T0, O, 0, true, false, false);
        let tx_before = icd.current_tx(T0);
        // T1's conflicting access: edge T0's tx → T1's tx.
        icd.handle_conflicting(T0, T1);
        // T0's next access observes the edge and cuts its unary tx.
        assert!(icd.before_access(T0).is_none(), "path, not a cycle");
        assert_ne!(icd.current_tx(T0), tx_before);
        // T1's next access also observes its incoming edge and cuts.
        let t1_before = icd.current_tx(T1);
        icd.before_access(T1);
        assert_ne!(icd.current_tx(T1), t1_before);
    }

    #[test]
    fn regular_transactions_are_not_cut_by_edges() {
        let icd = icd(2);
        icd.begin_regular(T0, M);
        let reg = icd.current_tx(T0);
        icd.handle_conflicting(T0, T1);
        icd.before_access(T0);
        assert_eq!(icd.current_tx(T0), reg, "regular tx must survive edges");
    }

    #[test]
    fn mutual_conflicts_form_an_scc_reported_once() {
        let icd = icd(2);
        icd.begin_regular(T0, M);
        icd.begin_regular(T1, MethodId(1));
        icd.record_access(T0, O, 0, true, false, false);
        // T1 writes O: conflicting, edge T0→T1.
        icd.handle_conflicting(T0, T1);
        icd.record_access(T1, O, 0, true, false, true);
        // T0 reads back: edge T1→T0.
        icd.handle_conflicting(T1, T0);
        icd.record_access(T0, O, 0, false, false, true);
        // End T0: T1 still unfinished → no SCC yet.
        assert!(icd.end_regular(T0).is_none());
        // End T1: SCC of the two regular transactions.
        let scc = icd.end_regular(T1).expect("cycle detected");
        assert_eq!(scc.len(), 2);
        assert!(scc.txs.iter().all(|t| t.kind.is_regular()));
        assert_eq!(icd.scc_count(), 1);
        assert_eq!(icd.cross_edges(), 2);
    }

    #[test]
    fn lastrdex_is_tracked_per_thread() {
        let icd = icd(2);
        icd.note_rdex_claim(T1);
        assert_eq!(
            TxId(icd.regs.threads[1].last_rd_ex.load(Ordering::Relaxed)),
            icd.current_tx(T1)
        );
        assert_eq!(icd.regs.threads[0].last_rd_ex.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn upgrading_adds_edges_from_lastrdex_and_glastrdsh() {
        let icd = icd(3);
        // T0 claims RdEx in its current tx.
        icd.note_rdex_claim(T0);
        let t0_tx = icd.current_tx(T0);
        // T1 upgrades the object to RdSh: edge T0.lastRdEx → currTX(T1).
        icd.handle_upgrading(T1, T0);
        let t1_tx = icd.current_tx(T1);
        {
            let g = icd.graph.lock();
            let out: Vec<_> = g.node(t0_tx).unwrap().out.iter().map(|e| e.dst).collect();
            assert!(out.contains(&t1_tx));
            assert_eq!(g.g_last_rd_sh, t1_tx);
        }
        // T2 takes a fence: edge gLastRdSh (= T1's tx) → currTX(T2).
        icd.handle_fence(T2_ID);
        let t2_tx = icd.current_tx(T2_ID);
        let g = icd.graph.lock();
        let out: Vec<_> = g.node(t1_tx).unwrap().out.iter().map(|e| e.dst).collect();
        assert!(out.contains(&t2_tx));
    }

    const T2_ID: ThreadId = ThreadId(2);

    #[test]
    fn edge_positions_snapshot_log_lengths() {
        let icd = icd(2);
        icd.record_access(T0, O, 0, true, false, false);
        icd.record_access(T0, ObjId(1), 0, true, false, false);
        icd.handle_conflicting(T0, T1);
        let g = icd.graph.lock();
        let t0_tx = TxId(icd.regs.threads[0].current_tx.load(Ordering::Relaxed));
        let e = g.node(t0_tx).unwrap().out[0];
        assert_eq!(e.src_pos, 2, "source logged two entries before the edge");
        assert_eq!(e.dst_pos, 0, "sink logged nothing yet");
    }

    #[test]
    fn collector_runs_and_reclaims() {
        let icd = Icd::new(
            1,
            IcdConfig {
                logging: false,
                collect_every: 8,
                ..IcdConfig::default()
            },
        );
        icd.thread_begin(T0);
        for i in 0..64 {
            icd.begin_regular(T0, MethodId(i));
            icd.end_regular(T0);
        }
        assert!(
            icd.stats().collected_txs.load(Ordering::Relaxed) > 0,
            "isolated finished transactions must be reclaimed"
        );
    }

    #[test]
    fn logging_off_records_counts_but_no_entries() {
        let icd = Icd::new(
            1,
            IcdConfig {
                logging: false,
                collect_every: 0,
                ..IcdConfig::default()
            },
        );
        icd.thread_begin(T0);
        icd.record_access(T0, O, 0, true, false, false);
        icd.thread_end(T0);
        assert_eq!(icd.stats().unary_accesses.load(Ordering::Relaxed), 1);
        assert_eq!(icd.stats().log_entries.load(Ordering::Relaxed), 0);
    }

    // ----- pipelined mode ---------------------------------------------------

    fn pipelined_config() -> IcdConfig {
        IcdConfig {
            pipeline: PipelineMode::Pipelined,
            ..IcdConfig::default()
        }
    }

    #[test]
    fn pipelined_delivers_sccs_via_sink_without_app_thread_graph_locks() {
        let reports: Arc<Mutex<Vec<SccReport>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_reports = Arc::clone(&reports);
        let icd = Icd::with_scc_sink(
            2,
            pipelined_config(),
            Box::new(move |r| sink_reports.lock().push(r)),
        );
        icd.thread_begin(T0);
        icd.thread_begin(T1);
        icd.begin_regular(T0, M);
        icd.begin_regular(T1, MethodId(1));
        icd.record_access(T0, O, 0, true, false, false);
        icd.handle_conflicting(T0, T1);
        icd.record_access(T1, O, 0, true, false, true);
        icd.handle_conflicting(T1, T0);
        icd.record_access(T0, O, 0, false, false, true);
        assert!(icd.end_regular(T0).is_none(), "reports go to the sink");
        assert!(icd.end_regular(T1).is_none(), "reports go to the sink");
        icd.thread_end(T0);
        icd.thread_end(T1);
        let _ = icd.drain_pipeline();
        let reports = reports.lock();
        assert_eq!(reports.len(), 1, "one SCC, reported once");
        assert_eq!(reports[0].len(), 2);
        assert_eq!(icd.scc_count(), 1);
        assert_eq!(icd.cross_edges(), 2);
        assert_eq!(
            icd.stats().graph_locks.load(Ordering::Relaxed),
            0,
            "pipelined application threads must never take the graph lock"
        );
    }

    #[test]
    fn sync_mode_counts_app_thread_graph_locks() {
        let icd = icd(1);
        icd.begin_regular(T0, M);
        icd.end_regular(T0);
        assert!(icd.stats().graph_locks.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn drained_graph_is_visible_to_post_run_readers() {
        let icd = Icd::new(
            1,
            IcdConfig {
                collect_every: 0,
                ..pipelined_config()
            },
        );
        icd.thread_begin(T0);
        icd.begin_regular(T0, M);
        icd.record_access(T0, O, 0, true, false, false);
        icd.end_regular(T0);
        icd.thread_end(T0);
        let _ = icd.drain_pipeline();
        let snap = icd.snapshot_all_finished();
        assert!(
            snap.txs
                .iter()
                .any(|t| t.kind.is_regular() && t.log.len() == 1),
            "the drained graph holds the finished regular tx and its log"
        );
        // Repeated drains are a no-op.
        let _ = icd.drain_pipeline();
    }

    #[test]
    fn pipelined_upgrade_and_fence_resolve_on_the_owner() {
        let icd = Icd::new(3, pipelined_config());
        for i in 0..3 {
            icd.thread_begin(ThreadId::from_index(i));
        }
        icd.note_rdex_claim(T0);
        let t0_tx = icd.current_tx(T0);
        icd.handle_upgrading(T1, T0);
        let t1_tx = icd.current_tx(T1);
        icd.handle_fence(T2_ID);
        let t2_tx = icd.current_tx(T2_ID);
        for i in 0..3 {
            icd.thread_end(ThreadId::from_index(i));
        }
        let _ = icd.drain_pipeline();
        let g = icd.graph.lock();
        let t0_out: Vec<_> = g.node(t0_tx).unwrap().out.iter().map(|e| e.dst).collect();
        assert!(t0_out.contains(&t1_tx), "lastRdEx edge applied by owner");
        let t1_out: Vec<_> = g.node(t1_tx).unwrap().out.iter().map(|e| e.dst).collect();
        assert!(t1_out.contains(&t2_tx), "gLastRdSh fence edge applied");
        assert_eq!(g.g_last_rd_sh, t1_tx);
    }

    /// Regression for `resolve_src_pos`: an Upgrade whose source thread sits
    /// at the *highest* register index must resolve the source's live
    /// (snapshot) log length, not a short-snapshot fallback and not the
    /// final length the source reaches later.
    #[test]
    fn pipelined_upgrade_resolves_live_source_at_highest_thread_index() {
        let icd = Icd::new(
            3,
            IcdConfig {
                collect_every: 0,
                ..pipelined_config()
            },
        );
        for i in 0..3 {
            icd.thread_begin(ThreadId::from_index(i));
        }
        // T2 (highest index) logs two entries and claims RdEx in its
        // still-live current transaction.
        icd.record_access(T2_ID, O, 0, true, false, false);
        icd.record_access(T2_ID, O, 1, true, false, false);
        icd.note_rdex_claim(T2_ID);
        let t2_tx = icd.current_tx(T2_ID);
        // T0 upgrades: snapshot sees T2 live at length 2.
        icd.handle_upgrading(T0, T2_ID);
        let t0_tx = icd.current_tx(T0);
        // T2 keeps logging before it ends, so its final length differs from
        // the snapshot length.
        icd.record_access(T2_ID, O, 2, true, false, false);
        for i in 0..3 {
            icd.thread_end(ThreadId::from_index(i));
        }
        let _ = icd.drain_pipeline();
        let g = icd.graph.lock();
        assert_eq!(g.node(t2_tx).unwrap().final_len, 3);
        let edge = g
            .node(t2_tx)
            .unwrap()
            .out
            .iter()
            .find(|e| e.dst == t0_tx)
            .expect("upgrade edge applied");
        assert_eq!(
            edge.src_pos, 2,
            "edge out of a live source uses its snapshot position"
        );
    }

    /// A coalesced safe-point drain produces exactly the edges the
    /// per-request path would, in the same request order.
    #[test]
    fn coalesced_conflicting_run_matches_individual_sends() {
        let run = |coalesced: bool| {
            let icd = Icd::new(3, pipelined_config());
            for i in 0..3 {
                icd.thread_begin(ThreadId::from_index(i));
            }
            icd.record_access(T0, O, 0, true, false, false);
            if coalesced {
                icd.handle_conflicting_all(T0, &[T1, T2_ID]);
            } else {
                icd.handle_conflicting(T0, T1);
                icd.handle_conflicting(T0, T2_ID);
            }
            let t0_tx = icd.current_tx(T0);
            let dsts = [icd.current_tx(T1), icd.current_tx(T2_ID)];
            for i in 0..3 {
                icd.thread_end(ThreadId::from_index(i));
            }
            let _ = icd.drain_pipeline();
            let g = icd.graph.lock();
            let out: Vec<_> = g
                .node(t0_tx)
                .unwrap()
                .out
                .iter()
                .map(|e| (e.dst, e.src_pos, e.dst_pos))
                .collect();
            (out, dsts, icd.cross_edges())
        };
        let (solo_edges, solo_dsts, solo_cross) = run(false);
        let (batch_edges, batch_dsts, batch_cross) = run(true);
        assert_eq!(solo_dsts, batch_dsts);
        assert_eq!(solo_edges, batch_edges, "same edges in the same order");
        assert_eq!(solo_cross, batch_cross);
        assert_eq!(batch_cross, 2);
    }
}
