//! IDG sharding by connected component.
//!
//! With `IcdConfig::shards > 1` the single graph-owner thread is replaced by
//! a *router* plus N *shard owners*. The router receives the ticketed op
//! stream over the existing transport, restores strict ticket order with the
//! same scoreboard the single owner uses, and forwards each op to the shard
//! owning its connected component; shard owners apply ops, probe for SCCs,
//! and run the collector over their own slab graph in parallel with each
//! other and with the router.
//!
//! # Routing invariant
//!
//! Every IDG edge the analysis can create connects transactions of two
//! *keys*: the per-thread keys `0..n_threads` (a thread's transactions) and
//! one global key (`gLastRdSh`, whose edges come from upgrade/fence
//! transitions). The router maintains a union-find over these keys and
//! unions the endpoints of every cross edge *before* routing it, so a
//! component never spans two shards:
//!
//! * `Insert`/`Finish` stay within one thread's key,
//! * `Cross` unions source and destination threads,
//! * `Upgrade` unions the upgrading thread with `lastRdEx`'s owner and with
//!   the global key (it both reads and becomes `gLastRdSh`),
//! * `Fence` unions the fencing thread with the global key.
//!
//! Each union-find root is assigned to a shard; initially key `k` lands on
//! shard `k % shards` (the global key on shard 0, next to any pre-existing
//! graph state). When a union joins roots living on *different* shards the
//! two shard graphs must become one. The lighter shard (fewest keys; ties
//! drain the higher index) is drained at its next safe point: the router
//! enqueues an `Extract` marker behind everything it already sent — FIFO
//! makes that a consistent cut — waits for the extracted graph, and
//! enqueues it as an `Inject` into the surviving shard *ahead* of the edge
//! op that forced the merge. Merges are counted (`graph.shard_merges`) and
//! traced (`shard_merge`, value `source << 8 | target`).
//!
//! # Why per-shard application preserves results
//!
//! The router pops ops in global ticket order, and each shard ring is FIFO,
//! so a shard applies exactly the subsequence of the linearized op stream
//! that touches its components, in ticket order. An SCC is contained in one
//! component, hence in one shard, hence every edge the single owner would
//! have seen at a `Finish` probe is present in that shard's graph — probes,
//! SCC reports, and therefore violations are identical to the single-owner
//! pipeline. Collection runs per shard with the same register roots
//! (`Graph::collect` ignores roots the shard doesn't hold); the single-owner
//! in-flight safety argument applies per ring, so pacing differences only
//! move *when* dead transactions are reclaimed (`collected_txs`), never what
//! the analysis reports.

use crate::graph::Graph;
use crate::icd::{IcdConfig, IcdStats, Registers};
use crate::pipeline::{
    apply, run_collect, BatchPool, CollectPacer, GraphOp, Msg, PipelineError, Reorder, RxPort,
    SccSink, REORDER_CAPACITY,
};
use crate::ring::OpRing;
use crate::types::TxId;
use crossbeam::channel::{bounded, SyncSender};
use dc_obs::{EventKind, PipelineObs, Stage};
use dc_runtime::ids::ThreadId;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Shard-ring capacity in messages. Router→shard messages are single ops
/// (not batches), so this is sized like the transport ring.
const SHARD_RING_CAPACITY: usize = 1024;

/// Router→shard protocol. FIFO order in the shard ring is load-bearing:
/// `Extract` is a consistent cut behind every op already routed, and an
/// `Inject` precedes the first op that needs the injected nodes.
enum ShardMsg {
    /// Apply one graph op (already in ticket order for this shard).
    Op(GraphOp),
    /// Merge safe point: hand the whole graph back to the router and
    /// continue with a fresh one.
    Extract { reply: SyncSender<Graph> },
    /// Absorb a drained sibling's graph (boxed: a `Graph` dwarfs the
    /// other variants and would bloat every ring slot).
    Inject(Box<Graph>),
    /// Drain marker; the shard returns its graph.
    Shutdown,
}

/// Union-find over routing keys (threads + the global `gLastRdSh` key) with
/// a shard assignment per root. Purely a function of the op stream — two
/// runs over the same linearized ops route identically.
struct KeyShards {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Owning shard, authoritative at roots only.
    shard: Vec<u32>,
    /// Keys per shard: the merge-direction weight.
    weight: Vec<u64>,
    /// The global `gLastRdSh` key (index `n_threads`).
    gkey: u32,
}

impl KeyShards {
    fn new(n_threads: usize, shards: usize) -> Self {
        let keys = n_threads + 1;
        let mut shard = Vec::with_capacity(keys);
        let mut weight = vec![0u64; shards];
        for k in 0..n_threads {
            let s = k % shards;
            shard.push(s as u32);
            weight[s] += 1;
        }
        // The global key starts on shard 0, alongside any graph state that
        // existed before the pipeline spawned (in particular `gLastRdSh`).
        shard.push(0);
        weight[0] += 1;
        KeyShards {
            parent: (0..keys as u32).collect(),
            rank: vec![0; keys],
            shard,
            weight,
            gkey: n_threads as u32,
        }
    }

    fn thread_key(t: ThreadId) -> u32 {
        t.index() as u32
    }

    fn find(&mut self, mut k: u32) -> u32 {
        while self.parent[k as usize] != k {
            self.parent[k as usize] = self.parent[self.parent[k as usize] as usize];
            k = self.parent[k as usize];
        }
        k
    }

    /// The shard currently owning `k`'s component.
    fn shard_of(&mut self, k: u32) -> usize {
        let root = self.find(k);
        self.shard[root as usize] as usize
    }

    /// Unions two keys' components. When they lived on different shards,
    /// returns `(source, target)`: every key of `source` was reassigned to
    /// `target` and the caller must drain `source`'s graph into `target`.
    fn union(&mut self, a: u32, b: u32) -> Option<(usize, usize)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let sa = self.shard[ra as usize] as usize;
        let sb = self.shard[rb as usize] as usize;
        let merge = if sa == sb {
            None
        } else {
            // Drain the lighter shard; on equal weight the higher index
            // drains so repeated merges collapse toward shard 0.
            let (src, tgt) = if self.weight[sa] < self.weight[sb]
                || (self.weight[sa] == self.weight[sb] && sa > sb)
            {
                (sa, sb)
            } else {
                (sb, sa)
            };
            for k in 0..self.parent.len() {
                if self.parent[k] == k as u32 && self.shard[k] == src as u32 {
                    self.shard[k] = tgt as u32;
                }
            }
            self.weight[tgt] += self.weight[src];
            self.weight[src] = 0;
            Some((src, tgt))
        };
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[hi as usize] += 1;
        }
        merge
    }
}

/// One shard owner as the router sees it.
struct Shard {
    ring: Arc<OpRing<ShardMsg>>,
    handle: JoinHandle<crate::pipeline::OwnerExit>,
}

/// The router thread body: single-owner reordering, then connected-component
/// routing across `shards` shard-owner threads. Returns the union of every
/// shard's final graph plus the first structural error anywhere in the
/// pipeline (router errors take precedence, then shards by index).
#[allow(clippy::too_many_arguments)]
pub(crate) fn router_loop(
    rx: RxPort,
    pool: Arc<BatchPool>,
    graph: Graph,
    regs: Arc<Registers>,
    stats: Arc<IcdStats>,
    config: IcdConfig,
    sink: Option<SccSink>,
    obs: Option<Arc<PipelineObs>>,
    shards: usize,
    n_threads: usize,
) -> (Graph, Option<PipelineError>) {
    let sink = sink.map(Arc::new);
    let counters = graph.counters();
    let mut seed = Some(graph);
    let workers: Vec<Shard> = (0..shards)
        .map(|idx| {
            let ring = Arc::new(OpRing::<ShardMsg>::with_capacity(SHARD_RING_CAPACITY));
            let shard_ring = Arc::clone(&ring);
            let graph = seed
                .take()
                .unwrap_or_else(|| Graph::with_counters(Arc::clone(&counters)));
            let regs = Arc::clone(&regs);
            let stats = Arc::clone(&stats);
            let sink = sink.clone();
            let obs = obs.clone();
            let handle = std::thread::Builder::new()
                .name(format!("dc-graph-shard-{idx}"))
                .spawn(move || shard_loop(shard_ring, idx, graph, regs, stats, config, sink, obs))
                .expect("spawn graph-shard thread");
            Shard { ring, handle }
        })
        .collect();

    let mut keys = KeyShards::new(n_threads, shards);
    let mut reorder = Reorder::with_capacity(REORDER_CAPACITY);
    let mut shutdown_at: Option<u64> = None;
    let mut error: Option<PipelineError> = None;
    'recv: while let Some(msg) = rx.recv() {
        match msg {
            Msg::Ops(mut batch) => {
                for (ticket, op) in batch.drain(..) {
                    if error.is_none() {
                        if let Err(e) = reorder.insert(ticket, op) {
                            error = Some(e);
                        }
                    }
                }
                pool.put(batch);
            }
            Msg::Shutdown(ticket) => shutdown_at = Some(ticket),
        }
        if error.is_some() {
            // Drain-and-discard: keep recycling buffers so producers never
            // block, apply nothing further.
            if shutdown_at.is_some() {
                break 'recv;
            }
            continue;
        }
        loop {
            if shutdown_at == Some(reorder.next_ticket()) {
                break 'recv;
            }
            let Some(op) = reorder.pop_next() else {
                break;
            };
            route(&mut keys, &workers, obs.as_deref(), op);
        }
        if let Some(obs) = &obs {
            obs.graph.reorder_depth.set(reorder.len() as i64);
        }
    }

    for w in &workers {
        w.ring.send(ShardMsg::Shutdown);
        w.ring.wake();
    }
    let mut merged: Option<Graph> = None;
    for w in workers {
        let (g, e) = w.handle.join().expect("graph-shard thread panicked");
        if error.is_none() {
            error = e;
        }
        match &mut merged {
            None => merged = Some(g),
            Some(m) => m.absorb(g),
        }
    }
    (merged.expect("at least one shard"), error)
}

/// Unions the op's routing keys, performs any resulting shard merge, then
/// forwards the op to its component's shard.
fn route(keys: &mut KeyShards, workers: &[Shard], obs: Option<&PipelineObs>, op: GraphOp) {
    let gkey = keys.gkey;
    let key = match &op {
        GraphOp::Insert { thread, .. } | GraphOp::Finish { thread, .. } => {
            KeyShards::thread_key(*thread)
        }
        GraphOp::Cross {
            src_thread,
            dst_thread,
            ..
        } => {
            let k = KeyShards::thread_key(*src_thread);
            merge_if_needed(
                keys.union(k, KeyShards::thread_key(*dst_thread)),
                workers,
                obs,
            );
            k
        }
        GraphOp::Upgrade {
            thread, last_owner, ..
        } => {
            let k = KeyShards::thread_key(*thread);
            merge_if_needed(
                keys.union(k, KeyShards::thread_key(*last_owner)),
                workers,
                obs,
            );
            merge_if_needed(keys.union(k, gkey), workers, obs);
            k
        }
        GraphOp::Fence { thread, .. } => {
            let k = KeyShards::thread_key(*thread);
            merge_if_needed(keys.union(k, gkey), workers, obs);
            k
        }
    };
    let s = keys.shard_of(key);
    if let Some(obs) = obs {
        obs.graph.shard_depth[s].inc();
    }
    if workers[s].ring.send(ShardMsg::Op(op)) {
        if let Some(obs) = obs {
            obs.graph.ring_full_waits.inc();
        }
    }
}

/// Executes the two-phase shard merge a cross-shard union demanded: extract
/// the drained shard's graph at its FIFO safe point, inject it into the
/// survivor ahead of the op that forced the merge.
fn merge_if_needed(merge: Option<(usize, usize)>, workers: &[Shard], obs: Option<&PipelineObs>) {
    let Some((src, tgt)) = merge else {
        return;
    };
    let (reply, drained) = bounded(1);
    workers[src].ring.send(ShardMsg::Extract { reply });
    workers[src].ring.wake();
    let graph = drained.recv().expect("drained shard died mid-merge");
    workers[tgt].ring.send(ShardMsg::Inject(Box::new(graph)));
    if let Some(obs) = obs {
        obs.graph.shard_merges.inc();
        obs.trace(
            Stage::Graph,
            EventKind::ShardMerge,
            ((src as u64) << 8) | tgt as u64,
        );
    }
}

/// One shard owner: applies its component subsequence, probes SCCs, paces
/// its own collector, and cooperates with the merge protocol. On a
/// structural error it stops mutating but keeps servicing the ring
/// (including merges) so the router never deadlocks.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    ring: Arc<OpRing<ShardMsg>>,
    idx: usize,
    mut graph: Graph,
    regs: Arc<Registers>,
    stats: Arc<IcdStats>,
    config: IcdConfig,
    sink: Option<Arc<SccSink>>,
    obs: Option<Arc<PipelineObs>>,
) -> (Graph, Option<PipelineError>) {
    let mut pacer = CollectPacer::new(config.collect_every);
    let mut roots: Vec<TxId> = Vec::new();
    let mut error: Option<PipelineError> = None;
    loop {
        match ring.recv() {
            ShardMsg::Op(op) => {
                if matches!(op, GraphOp::Finish { .. }) {
                    pacer.on_finish();
                }
                let t0 = obs.as_ref().and_then(|o| o.clock());
                let applied = if error.is_none() {
                    apply(&mut graph, &config, sink.as_deref(), obs.as_deref(), op)
                } else {
                    Ok(())
                };
                if let Some(obs) = &obs {
                    if let Some(t0) = t0 {
                        obs.graph.shard_busy[idx].add(t0.elapsed().as_nanos() as u64);
                    }
                    obs.graph.apply_latency.record_elapsed(t0);
                    obs.graph.ops_applied.inc();
                    obs.graph.queue_depth.dec();
                    obs.graph.shard_depth[idx].dec();
                }
                if let Err(e) = applied {
                    error = Some(e);
                }
                // No scoreboard here: the router already restored ticket
                // order, so only ring-buffered (in-flight) ops need the
                // collector's in-flight safety argument.
                if error.is_none() && pacer.due() {
                    run_collect(
                        &mut graph,
                        &regs,
                        &stats,
                        &mut pacer,
                        None,
                        &mut roots,
                        obs.as_deref(),
                    );
                }
            }
            ShardMsg::Extract { reply } => {
                let counters = graph.counters();
                let drained = std::mem::replace(&mut graph, Graph::with_counters(counters));
                let _ = reply.send(drained);
                // Fresh graph, fresh pacing: the survivor inherits the
                // drained transactions and their collection debt.
                pacer = CollectPacer::new(config.collect_every);
            }
            ShardMsg::Inject(other) => graph.absorb(*other),
            ShardMsg::Shutdown => break,
        }
    }
    (graph, error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_start_round_robin_with_the_global_key_on_shard_zero() {
        let mut k = KeyShards::new(5, 2);
        assert_eq!(k.shard_of(0), 0);
        assert_eq!(k.shard_of(1), 1);
        assert_eq!(k.shard_of(4), 0);
        assert_eq!(k.shard_of(k.gkey), 0);
        assert_eq!(k.weight, vec![4, 2]);
    }

    #[test]
    fn same_shard_unions_do_not_merge() {
        let mut k = KeyShards::new(4, 2);
        assert_eq!(k.union(0, 2), None, "both on shard 0");
        assert_eq!(k.union(0, 2), None, "already one component");
        assert_eq!(k.shard_of(2), 0);
    }

    #[test]
    fn cross_shard_union_drains_the_lighter_shard() {
        let mut k = KeyShards::new(4, 4);
        // Shards 0 and 1 hold one thread key each, but shard 0 also holds
        // the global key: shard 1 is lighter and drains into 0.
        assert_eq!(k.union(0, 1), Some((1, 0)));
        assert_eq!(k.shard_of(1), 0);
        assert_eq!(k.weight[1], 0);
        assert_eq!(k.weight[0], 3);
        // Equal weights (shards 2 and 3 hold one key each): higher drains.
        assert_eq!(k.union(2, 3), Some((3, 2)));
        assert_eq!(k.shard_of(3), 2);
    }

    #[test]
    fn merged_shards_move_every_resident_component() {
        let mut k = KeyShards::new(6, 2);
        // Shard 0 = {0, 2, 4, g} (weight 4), shard 1 = {1, 3, 5} (weight 3):
        // shard 1 drains, taking keys 3 and 5 along even though they are
        // separate components from the union's endpoints.
        assert_eq!(k.union(0, 1), Some((1, 0)));
        assert_eq!(k.shard_of(3), 0);
        assert_eq!(k.shard_of(5), 0);
        assert_eq!(k.weight, vec![7, 0]);
        // Later unions touching only former shard-1 keys stay local.
        assert_eq!(k.union(3, 5), None);
    }

    #[test]
    fn routing_is_a_pure_function_of_the_union_sequence() {
        let ops: &[(u32, u32)] = &[(0, 1), (2, 3), (1, 2), (0, 5)];
        let run = || {
            let mut k = KeyShards::new(6, 4);
            let mut trace = Vec::new();
            for &(a, b) in ops {
                trace.push(k.union(a, b));
                trace.push(Some((k.shard_of(a), k.shard_of(b))));
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
