//! Transaction, log, and graph edge types shared with PCD.

use dc_runtime::ids::{CellId, ObjId, ThreadId, SYNC_CELL};
use std::fmt;
use std::sync::Arc;

/// A dynamic transaction id, unique within a run. `TxId(0)` is reserved as
/// "none".
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u64);

impl TxId {
    /// The reserved "no transaction" value.
    pub const NONE: TxId = TxId(0);

    /// True unless this is [`TxId::NONE`].
    #[inline]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tx{}", self.0)
    }
}

pub use dc_runtime::spec::TxKind;

/// One read/write log entry (paper §3.2.4): the exact memory access a
/// transaction performed, packed into one `u64` — object id in bits
/// 33..64, cell in bits 2..33, flags in bits 0..2 — so per-access log
/// traffic and retained-log footprint (the paper's GC-analog column) are
/// a single word. Synchronization operations are recorded as reads/writes
/// of the object synchronized on.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogEntry(u64);

// The whole point of the packing: one entry is exactly one word.
const _: () = assert!(std::mem::size_of::<LogEntry>() == 8);

impl LogEntry {
    const WRITE: u64 = 1;
    const SYNC: u64 = 2;
    const CELL_SHIFT: u32 = 2;
    const OBJ_SHIFT: u32 = 33;
    /// 31-bit mask for the obj and cell fields.
    const FIELD: u64 = (1 << 31) - 1;
    /// In-word sentinel for [`SYNC_CELL`] (`u32::MAX` does not fit 31
    /// bits); the all-ones cell field round-trips back to `SYNC_CELL`.
    const SYNC_CELL_BITS: u64 = Self::FIELD;

    /// Creates an entry. Object and cell ids must fit their 31-bit
    /// fields (`SYNC_CELL` is mapped to a reserved sentinel).
    pub fn new(obj: ObjId, cell: CellId, is_write: bool, is_sync: bool) -> Self {
        debug_assert!(u64::from(obj.0) <= Self::FIELD, "obj id overflows 31 bits");
        debug_assert!(
            cell == SYNC_CELL || u64::from(cell) < Self::SYNC_CELL_BITS,
            "cell id overflows 31 bits"
        );
        let cell_bits = if cell == SYNC_CELL {
            Self::SYNC_CELL_BITS
        } else {
            u64::from(cell) & Self::FIELD
        };
        LogEntry(
            ((u64::from(obj.0) & Self::FIELD) << Self::OBJ_SHIFT)
                | (cell_bits << Self::CELL_SHIFT)
                | (u64::from(is_write) * Self::WRITE)
                | (u64::from(is_sync) * Self::SYNC),
        )
    }

    /// The accessed object.
    #[inline]
    pub fn obj(self) -> ObjId {
        ObjId(((self.0 >> Self::OBJ_SHIFT) & Self::FIELD) as u32)
    }

    /// The accessed cell ([`SYNC_CELL`] for sync ops; conflated to 0 for
    /// arrays).
    #[inline]
    pub fn cell(self) -> CellId {
        let bits = (self.0 >> Self::CELL_SHIFT) & Self::FIELD;
        if bits == Self::SYNC_CELL_BITS {
            SYNC_CELL
        } else {
            bits as CellId
        }
    }

    /// True for stores and release-like synchronization.
    #[inline]
    pub fn is_write(self) -> bool {
        self.0 & Self::WRITE != 0
    }

    /// True for synchronization accesses.
    #[inline]
    pub fn is_sync(self) -> bool {
        self.0 & Self::SYNC != 0
    }
}

impl fmt::Debug for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}({:?}.{})",
            if self.is_write() { "wr" } else { "rd" },
            if self.is_sync() { "s" } else { "" },
            self.obj(),
            self.cell()
        )
    }
}

/// Whether an IDG edge is an intra-thread program-order edge or a detected
/// cross-thread dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Consecutive transactions of one thread.
    Intra,
    /// Cross-thread dependence detected via an Octet transition.
    Cross,
}

/// A directed IDG edge with read/write-log positions at creation time,
/// giving PCD the cross-thread ordering of accesses (paper §3.2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source transaction.
    pub src: TxId,
    /// Length of the source's log when the edge was created: everything the
    /// source logged before the edge happens-before everything the sink
    /// logs after `dst_pos`.
    pub src_pos: u32,
    /// Sink transaction.
    pub dst: TxId,
    /// Length of the sink's log when the edge was created.
    pub dst_pos: u32,
    /// Intra-thread or cross-thread.
    pub kind: EdgeKind,
}

/// Immutable snapshot of one finished transaction handed to PCD.
#[derive(Clone, Debug)]
pub struct TxSnapshot {
    /// The transaction.
    pub id: TxId,
    /// Executing thread.
    pub thread: ThreadId,
    /// Regular or unary.
    pub kind: TxKind,
    /// Per-thread sequence number (program order of transactions).
    pub seq: u64,
    /// The read/write log ([`LogEntry`] list); empty when logging is off.
    pub log: Arc<Vec<LogEntry>>,
}

/// A replay-ordering constraint derived from one cross-thread IDG edge into
/// an SCC member: everything the edge's source logged before `src_pos` —
/// and, transitively, everything the source's same-thread predecessors
/// logged — happens before the sink's entries at or past `dst_pos`. The
/// source may be outside the SCC; its identity is recorded so its
/// *predecessors inside* the SCC are still ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayConstraint {
    /// Sink transaction (an SCC member).
    pub dst: TxId,
    /// First sink log position the constraint gates.
    pub dst_pos: u32,
    /// Source transaction (member or not).
    pub src: TxId,
    /// The source's executing thread.
    pub src_thread: ThreadId,
    /// The source's per-thread sequence number.
    pub src_seq: u64,
    /// Source log length when the edge was created.
    pub src_pos: u32,
}

/// An SCC of the imprecise dependence graph, detected when its last member
/// transaction finished — the unit of work handed to PCD.
#[derive(Clone, Debug)]
pub struct SccReport {
    /// The member transactions.
    pub txs: Vec<TxSnapshot>,
    /// All IDG edges whose endpoints are both members.
    pub edges: Vec<Edge>,
    /// Replay-ordering constraints from every cross-thread edge whose sink
    /// is a member (sources may be outside the SCC).
    pub constraints: Vec<ReplayConstraint>,
}

impl SccReport {
    /// Ids of the member transactions.
    pub fn tx_ids(&self) -> impl Iterator<Item = TxId> + '_ {
        self.txs.iter().map(|t| t.id)
    }

    /// Number of member transactions.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True if the report has no transactions (never produced by ICD).
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_runtime::ids::MethodId;

    #[test]
    fn txid_none_is_not_some() {
        assert!(!TxId::NONE.is_some());
        assert!(TxId(1).is_some());
        assert_eq!(format!("{:?}", TxId(7)), "Tx7");
    }

    #[test]
    fn log_entry_flags() {
        let r = LogEntry::new(ObjId(1), 2, false, false);
        assert!(!r.is_write());
        assert!(!r.is_sync());
        let w = LogEntry::new(ObjId(1), 2, true, false);
        assert!(w.is_write());
        let s = LogEntry::new(ObjId(1), 2, true, true);
        assert!(s.is_write() && s.is_sync());
        assert_eq!(format!("{s:?}"), "wrs(ObjId(1).2)");
    }

    #[test]
    fn log_entry_round_trips_through_the_packed_word() {
        use dc_runtime::ids::SYNC_CELL;
        let max_field = (1u32 << 31) - 1;
        let cases = [
            (ObjId(0), 0, false, false),
            (ObjId(1), 2, true, false),
            (ObjId(max_field), max_field - 1, true, true),
            // SYNC_CELL maps through the reserved sentinel and back.
            (ObjId(7), SYNC_CELL, true, true),
            (ObjId(7), SYNC_CELL, false, false),
        ];
        for (obj, cell, is_write, is_sync) in cases {
            let e = LogEntry::new(obj, cell, is_write, is_sync);
            assert_eq!(e.obj(), obj, "obj round-trip {obj:?}.{cell}");
            assert_eq!(e.cell(), cell, "cell round-trip {obj:?}.{cell}");
            assert_eq!(e.is_write(), is_write);
            assert_eq!(e.is_sync(), is_sync);
        }
    }

    #[test]
    fn tx_kind_accessors() {
        assert!(TxKind::Regular(MethodId(3)).is_regular());
        assert!(!TxKind::Unary.is_regular());
        assert_eq!(TxKind::Regular(MethodId(3)).method(), Some(MethodId(3)));
        assert_eq!(TxKind::Unary.method(), None);
    }

    #[test]
    fn scc_report_accessors() {
        let report = SccReport {
            txs: vec![TxSnapshot {
                id: TxId(1),
                thread: ThreadId(0),
                kind: TxKind::Unary,
                seq: 0,
                log: Arc::new(vec![]),
            }],
            edges: vec![],
            constraints: vec![],
        };
        assert_eq!(report.len(), 1);
        assert!(!report.is_empty());
        assert_eq!(report.tx_ids().collect::<Vec<_>>(), vec![TxId(1)]);
    }
}
