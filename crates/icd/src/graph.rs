//! The imprecise dependence graph (IDG) and its maintenance.
//!
//! Nodes are transactions; edges are intra-thread program-order edges plus
//! the cross-thread edges ICD derives from Octet transitions (Figure 4).
//! When a transaction finishes, [`Graph::scc_from`] computes the maximal
//! strongly connected component containing it, exploring only finished
//! transactions (§3.2.3) — sound because a finished transaction never gains
//! incoming edges, so a cycle is fully present exactly when its last member
//! finishes.
//!
//! [`Graph::collect`] reclaims transactions the way the paper relies on the
//! JVM's GC: transactions are kept while reachable — following outgoing-edge
//! references — from a *root*: a thread's current transaction, a `lastRdEx`
//! reference, or `gLastRdSh`. Every edge's source is a root when the edge is
//! created, and edges only ever point *to* then-current transactions, so a
//! transaction that becomes unreachable can never regain reachability and
//! can never appear in a future cycle; it is dropped with its log.
//!
//! # Storage
//!
//! Nodes live in a slab (`Vec<TxNode>`) addressed by a dense `u32` slot
//! index; a free list, refilled by [`Graph::collect`], recycles slots. Each
//! out-edge stores its destination's slot alongside the [`Edge`], so Tarjan
//! and the collector's mark phase never hash — the `TxId → slot` map is
//! consulted only at the graph's boundary (insert/finish/edge creation).
//! Slot indices held by live edges never dangle: the collector retains
//! exactly the forward closure of the roots, so every out-edge of a
//! surviving node targets a surviving node, and a freed slot has no live
//! referrers when it is reused.
//!
//! Tarjan's per-node state (visit index, lowlink, on-stack bit) and the
//! collector's mark set live in epoch-stamped scratch arrays owned by the
//! graph: a slot's entry is valid only when its stamp equals the current
//! visit epoch, so "clearing" between passes is one counter bump. The DFS
//! stack, frame, and component buffers are retained across calls. In steady
//! state (slab not growing) [`Graph::scc_from`] and the collector's mark
//! phase therefore perform no heap allocation.

use crate::types::{
    Edge, EdgeKind, LogEntry, ReplayConstraint, SccReport, TxId, TxKind, TxSnapshot,
};
use dc_runtime::ids::ThreadId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Table-3 counters the graph maintains. They live behind an `Arc` of
/// atomics so readers ([`crate::Icd::cross_edges`], [`crate::Icd::scc_count`])
/// never need the graph lock — the graph may be owned by the pipeline's
/// dedicated apply thread while application threads poll the counters.
#[derive(Debug, Default)]
pub struct GraphCounters {
    /// Cross-thread edges added (Table 3 column).
    pub cross_edges: AtomicU64,
    /// SCCs with ≥ 2 transactions detected (Table 3 column).
    pub scc_count: AtomicU64,
}

/// One IDG node, stored in a slab slot. A free slot is recognizable by
/// `id == TxId::NONE`.
#[derive(Debug)]
pub struct TxNode {
    /// The transaction occupying this slot ([`TxId::NONE`] when free).
    pub id: TxId,
    /// Executing thread.
    pub thread: ThreadId,
    /// Regular or unary.
    pub kind: TxKind,
    /// Per-thread transaction sequence number.
    pub seq: u64,
    /// True once the transaction has ended.
    pub finished: bool,
    /// Outgoing edges.
    pub out: Vec<Edge>,
    /// Slab slot of each out-edge's destination, parallel to `out`, so
    /// traversals never hash.
    out_dst: Vec<u32>,
    /// Incoming cross-thread edges, self-contained for replay constraints
    /// (the source may be collected later).
    pub in_cross: Vec<ReplayConstraint>,
    /// Final read/write log (set when the transaction finishes).
    pub log: Arc<Vec<LogEntry>>,
    /// Final log length (valid once finished).
    pub final_len: u32,
    /// Incoming edges added while the node has been live (intra + cross).
    /// Never decremented, so after a collection it may overcount — it is
    /// only ever used to *skip* cycle detection when zero, and a node with
    /// zero recorded in-edges certainly has none.
    in_count: u32,
}

/// A structurally invalid finish: the op stream named a transaction the
/// graph does not know, or one that already finished. Surfaced as a checked
/// error so a malformed op stream degrades into a reported failure instead
/// of a panic on the graph-owner thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinishError {
    /// No live node carries this id (never inserted, or already collected
    /// while unfinished — impossible for well-formed streams).
    UnknownTx(TxId),
    /// The node was already marked finished.
    AlreadyFinished(TxId),
}

impl std::fmt::Display for FinishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FinishError::UnknownTx(id) => write!(f, "finishing unknown tx {id:?}"),
            FinishError::AlreadyFinished(id) => write!(f, "tx {id:?} finished twice"),
        }
    }
}

impl std::error::Error for FinishError {}

/// Outcome of [`Graph::scc_probe`]: whether Tarjan ran and what it found.
#[derive(Debug)]
pub enum SccProbe {
    /// Tarjan was skipped: the root is missing, unfinished, or trivially
    /// acyclic (no incoming or no outgoing edges — it cannot be on a
    /// cycle). Exactly the cases where a full traversal would report
    /// nothing.
    Skipped,
    /// Tarjan ran; the root's SCC has fewer than two members.
    NoCycle,
    /// Tarjan ran and found the root's SCC (≥ 2 members).
    Cycle(SccReport),
}

/// Epoch-stamped Tarjan scratch: per-slot visit state plus the retained
/// DFS stack/frame/component buffers.
#[derive(Debug, Default)]
struct TarjanScratch {
    /// Slot entry is valid iff `stamp[slot] == epoch`.
    stamp: Vec<u32>,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    /// Tarjan's component stack (slot indices).
    stack: Vec<u32>,
    /// DFS frames: (slot, cursor into its out-edges).
    frames: Vec<(u32, u32)>,
    /// The root's component, reused across calls.
    component: Vec<u32>,
    epoch: u32,
}

impl TarjanScratch {
    /// Sizes the per-slot arrays to the slab and starts a fresh visit
    /// epoch. Allocation-free unless the slab grew since the last pass.
    fn begin(&mut self, slots: usize) -> u32 {
        self.stamp.resize(slots, 0);
        self.index.resize(slots, 0);
        self.lowlink.resize(slots, 0);
        self.on_stack.resize(slots, false);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: stale stamps from the previous cycle could
            // alias the new epoch values. Reset and skip 0 (the stamp
            // arrays' fill value).
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// Epoch-stamped mark scratch shared by the collector's mark phase and
/// component snapshotting.
#[derive(Debug, Default)]
struct MarkScratch {
    /// Slot is marked iff `stamp[slot] == epoch`.
    stamp: Vec<u32>,
    /// BFS worklist (collector only).
    work: Vec<u32>,
    epoch: u32,
}

impl MarkScratch {
    /// Sizes the stamp array to the slab and starts a fresh mark epoch.
    fn begin(&mut self, slots: usize) -> u32 {
        self.stamp.resize(slots, 0);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// The IDG plus the `gLastRdSh` register (§3.2.2).
#[derive(Debug, Default)]
pub struct Graph {
    /// Node storage; slots are recycled through `free`.
    slab: Vec<TxNode>,
    /// Slots holding no live transaction, refilled by [`Graph::collect`].
    free: Vec<u32>,
    /// Boundary map from transaction id to slab slot.
    index: HashMap<TxId, u32>,
    /// Last transaction (across all threads) to move an object to RdSh.
    pub g_last_rd_sh: TxId,
    counters: Arc<GraphCounters>,
    /// Shared empty log, cloned into fresh/freed slots without allocating.
    empty_log: Arc<Vec<LogEntry>>,
    tarjan: TarjanScratch,
    mark: MarkScratch,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph sharing an existing counter cell. Shard
    /// graphs all publish into the pipeline's one `GraphCounters`, so
    /// lock-free readers see a single total regardless of sharding.
    pub fn with_counters(counters: Arc<GraphCounters>) -> Self {
        Graph {
            counters,
            ..Graph::default()
        }
    }

    /// The shared counter cell, for lock-free readers.
    pub fn counters(&self) -> Arc<GraphCounters> {
        Arc::clone(&self.counters)
    }

    /// Cross-thread edges added (Table 3 column).
    pub fn cross_edges(&self) -> u64 {
        self.counters.cross_edges.load(Ordering::Relaxed)
    }

    /// SCCs with ≥ 2 transactions detected (Table 3 column).
    pub fn scc_count(&self) -> u64 {
        self.counters.scc_count.load(Ordering::Relaxed)
    }

    /// Number of live (uncollected) transactions.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total slab slots, live or free (tests/diagnostics: a stable slab
    /// size across insert/collect churn proves slot reuse).
    pub fn slab_len(&self) -> usize {
        self.slab.len()
    }

    /// Free-list length (tests/diagnostics).
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Access a node (tests/diagnostics).
    pub fn node(&self, id: TxId) -> Option<&TxNode> {
        self.index.get(&id).map(|&i| &self.slab[i as usize])
    }

    /// Inserts a new, unfinished transaction node, reusing a free slot when
    /// one exists.
    pub fn insert(&mut self, id: TxId, thread: ThreadId, kind: TxKind, seq: u64) {
        let slot = match self.free.pop() {
            Some(slot) => {
                let node = &mut self.slab[slot as usize];
                debug_assert!(!node.id.is_some(), "free slot still occupied");
                debug_assert!(node.out.is_empty() && node.in_cross.is_empty());
                node.id = id;
                node.thread = thread;
                node.kind = kind;
                node.seq = seq;
                node.finished = false;
                node.final_len = 0;
                node.in_count = 0;
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("slab overflow");
                self.slab.push(TxNode {
                    id,
                    thread,
                    kind,
                    seq,
                    finished: false,
                    out: Vec::new(),
                    out_dst: Vec::new(),
                    in_cross: Vec::new(),
                    log: Arc::clone(&self.empty_log),
                    final_len: 0,
                    in_count: 0,
                });
                slot
            }
        };
        let prev = self.index.insert(id, slot);
        debug_assert!(prev.is_none(), "duplicate transaction id");
    }

    /// Adds an edge. Self-edges are dropped (a transaction trivially
    /// depends on itself). Missing endpoints (already collected) are
    /// ignored — a collected source cannot be part of a future cycle.
    pub fn add_edge(&mut self, edge: Edge) {
        if edge.src == edge.dst || !edge.src.is_some() || !edge.dst.is_some() {
            return;
        }
        let (Some(&src_slot), Some(&dst_slot)) =
            (self.index.get(&edge.src), self.index.get(&edge.dst))
        else {
            return;
        };
        let (src_thread, src_seq) = {
            let src = &mut self.slab[src_slot as usize];
            src.out.push(edge);
            src.out_dst.push(dst_slot);
            (src.thread, src.seq)
        };
        let dst = &mut self.slab[dst_slot as usize];
        dst.in_count += 1;
        if edge.kind == EdgeKind::Cross {
            self.counters.cross_edges.fetch_add(1, Ordering::Relaxed);
            dst.in_cross.push(ReplayConstraint {
                dst: edge.dst,
                dst_pos: edge.dst_pos,
                src: edge.src,
                src_thread,
                src_seq,
                src_pos: edge.src_pos,
            });
        }
    }

    /// Marks `id` finished and stores its final log. A finish naming an
    /// unknown or already-finished transaction is a malformed op stream,
    /// reported as a checked error rather than a panic.
    pub fn finish(&mut self, id: TxId, log: Vec<LogEntry>) -> Result<(), FinishError> {
        let Some(&slot) = self.index.get(&id) else {
            return Err(FinishError::UnknownTx(id));
        };
        let node = &mut self.slab[slot as usize];
        if node.finished {
            return Err(FinishError::AlreadyFinished(id));
        }
        node.finished = true;
        node.final_len = u32::try_from(log.len()).expect("log too long");
        // Share the one empty log instead of allocating an `Arc` per finish:
        // with logging off (first run of multi-run mode) every finish takes
        // this path, keeping the pipelined apply path allocation-free.
        node.log = if log.is_empty() {
            Arc::clone(&self.empty_log)
        } else {
            Arc::new(log)
        };
        Ok(())
    }

    /// Computes the maximal SCC containing `root`, exploring finished
    /// transactions only. Returns `None` unless the SCC has ≥ 2 members.
    pub fn scc_from(&mut self, root: TxId) -> Option<SccReport> {
        match self.scc_probe(root) {
            SccProbe::Cycle(report) => Some(report),
            SccProbe::Skipped | SccProbe::NoCycle => None,
        }
    }

    /// Like [`Graph::scc_from`], distinguishing "Tarjan skipped by the
    /// trivial pre-filter" from "Tarjan ran and found nothing" so callers
    /// can account for skipped traversals.
    ///
    /// The pre-filter is exact: a finished transaction with no incoming or
    /// no outgoing edges cannot be on a cycle, so the skipped traversal
    /// would have returned the root alone. (`in_count` may overcount after
    /// a collection, which only makes the filter more conservative.)
    pub fn scc_probe(&mut self, root: TxId) -> SccProbe {
        let Some(&root_slot) = self.index.get(&root) else {
            return SccProbe::Skipped;
        };
        {
            let node = &self.slab[root_slot as usize];
            if !node.finished || node.in_count == 0 || node.out.is_empty() {
                return SccProbe::Skipped;
            }
        }
        // Iterative Tarjan restricted to finished nodes reachable from
        // root, on epoch-stamped scratch (taken out of `self` so the slab
        // and the scratch can be borrowed simultaneously).
        let mut t = std::mem::take(&mut self.tarjan);
        let epoch = t.begin(self.slab.len());
        debug_assert!(t.stack.is_empty() && t.frames.is_empty());
        t.component.clear();
        let mut next_index = 1u32;
        t.stamp[root_slot as usize] = epoch;
        t.index[root_slot as usize] = 0;
        t.lowlink[root_slot as usize] = 0;
        t.on_stack[root_slot as usize] = true;
        t.stack.push(root_slot);
        t.frames.push((root_slot, 0));

        while let Some(&(v, cursor)) = t.frames.last() {
            let vi = v as usize;
            let next_child = {
                let node = &self.slab[vi];
                let mut cur = cursor as usize;
                let mut found = None;
                while cur < node.out_dst.len() {
                    let w = node.out_dst[cur];
                    cur += 1;
                    if self.slab[w as usize].finished {
                        found = Some(w);
                        break;
                    }
                }
                t.frames.last_mut().expect("frame exists").1 = cur as u32;
                found
            };
            match next_child {
                Some(w) => {
                    let wi = w as usize;
                    if t.stamp[wi] == epoch {
                        if t.on_stack[wi] {
                            let w_index = t.index[wi];
                            t.lowlink[vi] = t.lowlink[vi].min(w_index);
                        }
                    } else {
                        t.stamp[wi] = epoch;
                        t.index[wi] = next_index;
                        t.lowlink[wi] = next_index;
                        t.on_stack[wi] = true;
                        next_index += 1;
                        t.stack.push(w);
                        t.frames.push((w, 0));
                    }
                }
                None => {
                    t.frames.pop();
                    let v_low = t.lowlink[vi];
                    if let Some(&(parent, _)) = t.frames.last() {
                        let pi = parent as usize;
                        t.lowlink[pi] = t.lowlink[pi].min(v_low);
                    }
                    if v_low == t.index[vi] {
                        // Pop one SCC off the Tarjan stack. The root has
                        // visit index 0, so its SCC is headed by the root
                        // itself and popped exactly at `v == root_slot`;
                        // other components are discarded as they pop.
                        loop {
                            let w = t.stack.pop().expect("tarjan stack underflow");
                            t.on_stack[w as usize] = false;
                            if v == root_slot {
                                t.component.push(w);
                            }
                            if w == v {
                                break;
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(t.stack.is_empty(), "tarjan stack drained");

        if t.component.len() < 2 {
            self.tarjan = t;
            return SccProbe::NoCycle;
        }
        self.counters.scc_count.fetch_add(1, Ordering::Relaxed);
        let component = std::mem::take(&mut t.component);
        self.tarjan = t;
        let report = self.snapshot_component(&component);
        self.tarjan.component = component;
        SccProbe::Cycle(report)
    }

    /// Snapshots *every* finished transaction and all edges among them —
    /// the "PCD-only" variant of §5.4, where PCD processes every executed
    /// transaction rather than just ICD's SCCs.
    pub fn snapshot_all_finished(&mut self) -> SccReport {
        let component: Vec<u32> = (0..self.slab.len() as u32)
            .filter(|&i| {
                let n = &self.slab[i as usize];
                n.id.is_some() && n.finished
            })
            .collect();
        self.snapshot_component(&component)
    }

    fn snapshot_component(&mut self, component: &[u32]) -> SccReport {
        let epoch = self.mark.begin(self.slab.len());
        for &i in component {
            self.mark.stamp[i as usize] = epoch;
        }
        let mut txs: Vec<TxSnapshot> = component
            .iter()
            .map(|&i| {
                let n = &self.slab[i as usize];
                TxSnapshot {
                    id: n.id,
                    thread: n.thread,
                    kind: n.kind,
                    seq: n.seq,
                    log: Arc::clone(&n.log),
                }
            })
            .collect();
        txs.sort_by_key(|t| (t.thread, t.seq));
        let mut edges = Vec::new();
        let mut constraints = Vec::new();
        for &i in component {
            let node = &self.slab[i as usize];
            for (e, &d) in node.out.iter().zip(&node.out_dst) {
                if self.mark.stamp[d as usize] == epoch {
                    edges.push(*e);
                }
            }
            constraints.extend(node.in_cross.iter().copied());
        }
        SccReport {
            txs,
            edges,
            constraints,
        }
    }

    /// Moves every live node of `other` into this graph (a cross-shard
    /// merge). Node contents — edges, logs, replay constraints — transfer
    /// verbatim; only slab slot numbers are remapped. Counters are *not*
    /// touched: shard graphs share one counter cell, so the merged edges
    /// were already counted when they were added.
    ///
    /// The two graphs must be disjoint (no shared `TxId`), which the
    /// sharding layer guarantees: a transaction is routed to exactly one
    /// shard at a time.
    pub fn absorb(&mut self, other: Graph) {
        let Graph {
            slab, g_last_rd_sh, ..
        } = other;
        // Pass 1: move nodes, recording old-slot → new-slot.
        let mut remap: Vec<u32> = vec![u32::MAX; slab.len()];
        let mut moved: Vec<u32> = Vec::new();
        for (old_slot, node) in slab.into_iter().enumerate() {
            if !node.id.is_some() {
                continue;
            }
            let new_slot = match self.free.pop() {
                Some(slot) => {
                    debug_assert!(!self.slab[slot as usize].id.is_some());
                    self.slab[slot as usize] = node;
                    slot
                }
                None => {
                    let slot = u32::try_from(self.slab.len()).expect("slab overflow");
                    self.slab.push(node);
                    slot
                }
            };
            let id = self.slab[new_slot as usize].id;
            let prev = self.index.insert(id, new_slot);
            debug_assert!(prev.is_none(), "shards shared a transaction id");
            remap[old_slot] = new_slot;
            moved.push(new_slot);
        }
        // Pass 2: rewrite the moved nodes' out-edge slot references.
        for &slot in &moved {
            for d in &mut self.slab[slot as usize].out_dst {
                *d = remap[*d as usize];
                debug_assert!(*d != u32::MAX, "edge into a dead slot survived");
            }
        }
        // At most one shard can hold a live `gLastRdSh` (every op touching
        // it routes through the same union-find key).
        if g_last_rd_sh.is_some() {
            debug_assert!(!self.g_last_rd_sh.is_some(), "two shards own gLastRdSh");
            self.g_last_rd_sh = g_last_rd_sh;
        }
    }

    /// Drops finished transactions unreachable from the roots via outgoing
    /// edges (the JVM-reachability semantics the paper relies on), pushing
    /// their slots onto the free list. Returns the number collected.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = TxId>) -> usize {
        // Forward BFS from the roots over out-edges. Unfinished transactions
        // are roots too (each is some thread's current transaction). The
        // mark set is the epoch-stamped scratch; the worklist is retained
        // across passes — the mark phase allocates nothing in steady state.
        let mut m = std::mem::take(&mut self.mark);
        let epoch = m.begin(self.slab.len());
        m.work.clear();
        for r in roots {
            if let Some(&slot) = self.index.get(&r) {
                if m.stamp[slot as usize] != epoch {
                    m.stamp[slot as usize] = epoch;
                    m.work.push(slot);
                }
            }
        }
        for (i, node) in self.slab.iter().enumerate() {
            if node.id.is_some() && !node.finished && m.stamp[i] != epoch {
                m.stamp[i] = epoch;
                m.work.push(i as u32);
            }
        }
        while let Some(slot) = m.work.pop() {
            for &d in &self.slab[slot as usize].out_dst {
                let di = d as usize;
                if m.stamp[di] != epoch {
                    m.stamp[di] = epoch;
                    m.work.push(d);
                }
            }
        }
        let mut collected = 0;
        for i in 0..self.slab.len() {
            let node = &mut self.slab[i];
            if node.id.is_some() && node.finished && m.stamp[i] != epoch {
                self.index.remove(&node.id);
                node.id = TxId::NONE;
                node.finished = false;
                node.out.clear();
                node.out_dst.clear();
                node.in_cross.clear();
                node.log = Arc::clone(&self.empty_log);
                node.final_len = 0;
                node.in_count = 0;
                self.free.push(i as u32);
                collected += 1;
            }
        }
        self.mark = m;
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: u64, dst: u64) -> Edge {
        Edge {
            src: TxId(src),
            src_pos: 0,
            dst: TxId(dst),
            dst_pos: 0,
            kind: EdgeKind::Cross,
        }
    }

    fn graph_with(n: u64) -> Graph {
        let mut g = Graph::new();
        for i in 1..=n {
            g.insert(TxId(i), ThreadId((i % 4) as u16), TxKind::Unary, i);
        }
        g
    }

    fn finish_all(g: &mut Graph, n: u64) {
        for i in 1..=n {
            g.finish(TxId(i), vec![]).unwrap();
        }
    }

    #[test]
    fn two_cycle_is_detected_when_last_member_finishes() {
        let mut g = graph_with(2);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        g.finish(TxId(1), vec![]).unwrap();
        // Tx2 unfinished: no SCC yet.
        assert!(g.scc_from(TxId(1)).is_none());
        g.finish(TxId(2), vec![]).unwrap();
        let scc = g.scc_from(TxId(2)).expect("cycle complete");
        assert_eq!(scc.len(), 2);
        assert_eq!(scc.edges.len(), 2);
        assert_eq!(g.scc_count(), 1);
    }

    #[test]
    fn self_edges_are_dropped() {
        let mut g = graph_with(1);
        g.add_edge(edge(1, 1));
        g.finish(TxId(1), vec![]).unwrap();
        assert!(g.scc_from(TxId(1)).is_none());
        assert_eq!(g.cross_edges(), 0);
    }

    #[test]
    fn path_without_cycle_yields_no_scc() {
        let mut g = graph_with(3);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 3));
        finish_all(&mut g, 3);
        assert!(g.scc_from(TxId(3)).is_none());
        assert!(g.scc_from(TxId(1)).is_none());
    }

    #[test]
    fn maximal_scc_is_found_not_just_a_cycle() {
        // 1→2→3→1 and 2→4→2: one SCC of size 4.
        let mut g = graph_with(4);
        for (s, d) in [(1, 2), (2, 3), (3, 1), (2, 4), (4, 2)] {
            g.add_edge(edge(s, d));
        }
        finish_all(&mut g, 4);
        let scc = g.scc_from(TxId(1)).unwrap();
        assert_eq!(scc.len(), 4);
    }

    #[test]
    fn scc_excludes_unfinished_members_until_they_finish() {
        let mut g = graph_with(3);
        for (s, d) in [(1, 2), (2, 3), (3, 1)] {
            g.add_edge(edge(s, d));
        }
        g.finish(TxId(1), vec![]).unwrap();
        g.finish(TxId(2), vec![]).unwrap();
        assert!(
            g.scc_from(TxId(2)).is_none(),
            "3 unfinished breaks the loop"
        );
        g.finish(TxId(3), vec![]).unwrap();
        assert_eq!(g.scc_from(TxId(3)).unwrap().len(), 3);
    }

    #[test]
    fn snapshot_carries_logs_and_internal_edges_only() {
        let mut g = graph_with(3);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        g.add_edge(edge(2, 3)); // leaves the SCC
        g.finish(
            TxId(1),
            vec![LogEntry::new(dc_runtime::ids::ObjId(9), 0, true, false)],
        )
        .unwrap();
        g.finish(TxId(2), vec![]).unwrap();
        g.finish(TxId(3), vec![]).unwrap();
        let scc = g.scc_from(TxId(2)).unwrap();
        assert_eq!(scc.len(), 2);
        assert_eq!(scc.edges.len(), 2, "edge 2→3 excluded");
        let t1 = scc.txs.iter().find(|t| t.id == TxId(1)).unwrap();
        assert_eq!(t1.log.len(), 1);
    }

    #[test]
    fn collect_drops_only_unreachable_finished_txs() {
        let mut g = graph_with(4);
        // 2 is a root and points at 1; 3 is isolated; 4 is unfinished.
        g.add_edge(edge(2, 1));
        g.finish(TxId(1), vec![]).unwrap();
        g.finish(TxId(2), vec![]).unwrap();
        g.finish(TxId(3), vec![]).unwrap();
        let collected = g.collect([TxId(2)]);
        assert_eq!(collected, 1, "only Tx3 is collectable");
        assert!(g.node(TxId(1)).is_some(), "root Tx2 reaches Tx1");
        assert!(g.node(TxId(3)).is_none());
        assert!(g.node(TxId(4)).is_some(), "unfinished is kept");
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn collect_drops_old_intra_thread_chains() {
        // 1→2→3 with 3 unfinished (current): 1 and 2 can never gain new
        // incoming edges, so no future cycle can contain them — collected.
        let mut g = graph_with(3);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 3));
        g.finish(TxId(1), vec![]).unwrap();
        g.finish(TxId(2), vec![]).unwrap();
        assert_eq!(g.collect([TxId(3)]), 2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn collect_keeps_pending_cycle_members() {
        // Cycle in progress: 2 (current, root) → 1, and 1 → 2 back; both
        // stay until the SCC is detected and the roots move on.
        let mut g = graph_with(2);
        g.add_edge(edge(2, 1));
        g.add_edge(edge(1, 2));
        g.finish(TxId(1), vec![]).unwrap();
        assert_eq!(g.collect([TxId(2)]), 0);
    }

    #[test]
    fn edges_to_collected_nodes_are_ignored() {
        let mut g = graph_with(2);
        g.finish(TxId(1), vec![]).unwrap();
        assert_eq!(g.collect([TxId(2)]), 1);
        // Adding an edge naming the collected node is a no-op.
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        assert_eq!(g.node(TxId(2)).unwrap().out.len(), 0);
    }

    #[test]
    fn cross_edge_stat_counts_only_cross_edges() {
        let mut g = graph_with(2);
        g.add_edge(Edge {
            src: TxId(1),
            src_pos: 0,
            dst: TxId(2),
            dst_pos: 0,
            kind: EdgeKind::Intra,
        });
        g.add_edge(edge(2, 1));
        assert_eq!(g.cross_edges(), 1);
    }

    #[test]
    fn trivial_pre_filter_skips_tarjan_exactly_when_it_would_find_nothing() {
        let mut g = graph_with(3);
        // Tx1 → Tx2 → Tx3: every node lacks an in- or out-edge, or both
        // ends but no cycle.
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 3));
        finish_all(&mut g, 3);
        assert!(matches!(g.scc_probe(TxId(1)), SccProbe::Skipped), "no in");
        assert!(matches!(g.scc_probe(TxId(3)), SccProbe::Skipped), "no out");
        assert!(
            matches!(g.scc_probe(TxId(2)), SccProbe::NoCycle),
            "both ends present: Tarjan runs and finds nothing"
        );
        // Unknown / unfinished roots are also skips.
        assert!(matches!(g.scc_probe(TxId(9)), SccProbe::Skipped));
    }

    #[test]
    fn slab_slots_are_reused_after_collect_without_stale_state() {
        let mut g = graph_with(2);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        finish_all(&mut g, 2);
        let scc = g.scc_from(TxId(2)).expect("cycle");
        assert_eq!(scc.len(), 2);
        let slab_before = g.slab_len();
        // Neither tx is a root: both are collected, freeing both slots.
        assert_eq!(g.collect([]), 2);
        assert_eq!(g.free_slots(), 2);
        assert_eq!(g.len(), 0);
        // Reinsert into the freed slots: ids differ, slots recycle.
        g.insert(TxId(10), ThreadId(0), TxKind::Unary, 1);
        g.insert(TxId(11), ThreadId(1), TxKind::Unary, 1);
        assert_eq!(g.slab_len(), slab_before, "slots reused, slab not grown");
        assert_eq!(g.free_slots(), 0);
        // The recycled nodes carry no resurrected edges or logs…
        assert_eq!(g.node(TxId(10)).unwrap().out.len(), 0);
        assert_eq!(g.node(TxId(10)).unwrap().in_cross.len(), 0);
        assert_eq!(g.node(TxId(10)).unwrap().log.len(), 0);
        // …no stale Tarjan stamps (a fresh chain is not mistaken for the
        // old cycle)…
        g.add_edge(edge(10, 11));
        g.finish(TxId(10), vec![]).unwrap();
        g.finish(TxId(11), vec![]).unwrap();
        assert!(g.scc_from(TxId(11)).is_none(), "no cycle among new txs");
        // …and a fresh cycle in recycled slots is still detected.
        g.add_edge(edge(11, 10));
        let scc = g.scc_from(TxId(11)).expect("new cycle in reused slots");
        assert_eq!(scc.len(), 2);
        let ids: Vec<TxId> = scc.tx_ids().collect();
        assert!(ids.contains(&TxId(10)) && ids.contains(&TxId(11)));
    }

    #[test]
    fn malformed_finishes_are_checked_errors() {
        let mut g = graph_with(1);
        assert_eq!(
            g.finish(TxId(9), vec![]),
            Err(FinishError::UnknownTx(TxId(9)))
        );
        g.finish(TxId(1), vec![]).unwrap();
        assert_eq!(
            g.finish(TxId(1), vec![]),
            Err(FinishError::AlreadyFinished(TxId(1)))
        );
    }

    #[test]
    fn absorb_moves_nodes_edges_and_remaps_slots() {
        // Target graph with a freed slot, so absorb exercises both slot
        // recycling and slab growth.
        let mut a = graph_with(2);
        a.finish(TxId(1), vec![]).unwrap();
        assert_eq!(a.collect([TxId(2)]), 1);
        assert_eq!(a.free_slots(), 1);
        // Source shard: its own slab with a cycle 10 ⇄ 11 plus a stray 12.
        let mut b = Graph::with_counters(a.counters());
        for i in [10u64, 11, 12] {
            b.insert(TxId(i), ThreadId(1), TxKind::Unary, i);
        }
        b.add_edge(edge(10, 11));
        b.add_edge(edge(11, 10));
        b.finish(TxId(10), vec![]).unwrap();
        b.finish(TxId(11), vec![]).unwrap();
        b.g_last_rd_sh = TxId(12);
        let edges_before = a.cross_edges();
        a.absorb(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.free_slots(), 0, "freed slot was recycled");
        assert_eq!(a.g_last_rd_sh, TxId(12), "gLastRdSh transfers");
        assert_eq!(a.cross_edges(), edges_before, "absorb never recounts");
        // The moved cycle is still detectable through remapped slots.
        let scc = a.scc_from(TxId(11)).expect("cycle survives the move");
        assert_eq!(scc.len(), 2);
        let ids: Vec<TxId> = scc.tx_ids().collect();
        assert!(ids.contains(&TxId(10)) && ids.contains(&TxId(11)));
    }

    #[test]
    fn scratch_epoch_wrap_resets_stamps() {
        let mut g = graph_with(2);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        finish_all(&mut g, 2);
        // Force both scratch epochs to the wrap point; the next pass must
        // clear stamps rather than alias epoch 0.
        g.tarjan.epoch = u32::MAX;
        g.mark.epoch = u32::MAX;
        assert_eq!(g.scc_from(TxId(2)).expect("cycle").len(), 2);
        assert_eq!(g.tarjan.epoch, 1, "tarjan epoch restarted after wrap");
        assert!(g.scc_from(TxId(2)).is_some(), "stamps stay coherent");
        assert_eq!(g.collect([TxId(1)]), 0, "cycle reachable from root");
        // Mark epoch: wrap→1 (first snapshot), 2 (second snapshot), 3
        // (collect pass).
        assert_eq!(g.mark.epoch, 3, "mark epoch advanced past the wrap");
    }
}
