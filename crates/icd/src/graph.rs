//! The imprecise dependence graph (IDG) and its maintenance.
//!
//! Nodes are transactions; edges are intra-thread program-order edges plus
//! the cross-thread edges ICD derives from Octet transitions (Figure 4).
//! When a transaction finishes, [`Graph::scc_from`] computes the maximal
//! strongly connected component containing it, exploring only finished
//! transactions (§3.2.3) — sound because a finished transaction never gains
//! incoming edges, so a cycle is fully present exactly when its last member
//! finishes.
//!
//! [`Graph::collect`] reclaims transactions the way the paper relies on the
//! JVM's GC: transactions are kept while reachable — following outgoing-edge
//! references — from a *root*: a thread's current transaction, a `lastRdEx`
//! reference, or `gLastRdSh`. Every edge's source is a root when the edge is
//! created, and edges only ever point *to* then-current transactions, so a
//! transaction that becomes unreachable can never regain reachability and
//! can never appear in a future cycle; it is dropped with its log.

use crate::types::{
    Edge, EdgeKind, LogEntry, ReplayConstraint, SccReport, TxId, TxKind, TxSnapshot,
};
use dc_runtime::ids::ThreadId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Table-3 counters the graph maintains. They live behind an `Arc` of
/// atomics so readers ([`crate::Icd::cross_edges`], [`crate::Icd::scc_count`])
/// never need the graph lock — the graph may be owned by the pipeline's
/// dedicated apply thread while application threads poll the counters.
#[derive(Debug, Default)]
pub struct GraphCounters {
    /// Cross-thread edges added (Table 3 column).
    pub cross_edges: AtomicU64,
    /// SCCs with ≥ 2 transactions detected (Table 3 column).
    pub scc_count: AtomicU64,
}

/// One IDG node.
#[derive(Debug)]
pub struct TxNode {
    /// Executing thread.
    pub thread: ThreadId,
    /// Regular or unary.
    pub kind: TxKind,
    /// Per-thread transaction sequence number.
    pub seq: u64,
    /// True once the transaction has ended.
    pub finished: bool,
    /// Outgoing edges.
    pub out: Vec<Edge>,
    /// Incoming cross-thread edges, self-contained for replay constraints
    /// (the source may be collected later).
    pub in_cross: Vec<ReplayConstraint>,
    /// Final read/write log (set when the transaction finishes).
    pub log: Arc<Vec<LogEntry>>,
    /// Final log length (valid once finished).
    pub final_len: u32,
}

/// The IDG plus the `gLastRdSh` register (§3.2.2).
#[derive(Debug, Default)]
pub struct Graph {
    nodes: HashMap<TxId, TxNode>,
    /// Last transaction (across all threads) to move an object to RdSh.
    pub g_last_rd_sh: TxId,
    counters: Arc<GraphCounters>,
    /// Scratch mark set reused across [`Graph::collect`] passes.
    collect_marked: HashSet<TxId>,
    /// Scratch BFS worklist reused across [`Graph::collect`] passes.
    collect_work: Vec<TxId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared counter cell, for lock-free readers.
    pub fn counters(&self) -> Arc<GraphCounters> {
        Arc::clone(&self.counters)
    }

    /// Cross-thread edges added (Table 3 column).
    pub fn cross_edges(&self) -> u64 {
        self.counters.cross_edges.load(Ordering::Relaxed)
    }

    /// SCCs with ≥ 2 transactions detected (Table 3 column).
    pub fn scc_count(&self) -> u64 {
        self.counters.scc_count.load(Ordering::Relaxed)
    }

    /// Number of live (uncollected) transactions.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node (tests/diagnostics).
    pub fn node(&self, id: TxId) -> Option<&TxNode> {
        self.nodes.get(&id)
    }

    /// Inserts a new, unfinished transaction node.
    pub fn insert(&mut self, id: TxId, thread: ThreadId, kind: TxKind, seq: u64) {
        let prev = self.nodes.insert(
            id,
            TxNode {
                thread,
                kind,
                seq,
                finished: false,
                out: Vec::new(),
                in_cross: Vec::new(),
                log: Arc::new(Vec::new()),
                final_len: 0,
            },
        );
        debug_assert!(prev.is_none(), "duplicate transaction id");
    }

    /// Adds an edge. Self-edges are dropped (a transaction trivially
    /// depends on itself). Missing endpoints (already collected) are
    /// ignored — a collected source cannot be part of a future cycle.
    pub fn add_edge(&mut self, edge: Edge) {
        if edge.src == edge.dst || !edge.src.is_some() || !edge.dst.is_some() {
            return;
        }
        if !self.nodes.contains_key(&edge.src) || !self.nodes.contains_key(&edge.dst) {
            return;
        }
        let (src_thread, src_seq) = {
            let src = self.nodes.get_mut(&edge.src).expect("src exists");
            src.out.push(edge);
            (src.thread, src.seq)
        };
        if edge.kind == EdgeKind::Cross {
            self.counters.cross_edges.fetch_add(1, Ordering::Relaxed);
            let dst = self.nodes.get_mut(&edge.dst).expect("dst exists");
            dst.in_cross.push(ReplayConstraint {
                dst: edge.dst,
                dst_pos: edge.dst_pos,
                src: edge.src,
                src_thread,
                src_seq,
                src_pos: edge.src_pos,
            });
        }
    }

    /// Marks `id` finished and stores its final log.
    pub fn finish(&mut self, id: TxId, log: Vec<LogEntry>) {
        let node = self.nodes.get_mut(&id).expect("finishing unknown tx");
        debug_assert!(!node.finished, "double finish");
        node.finished = true;
        node.final_len = u32::try_from(log.len()).expect("log too long");
        node.log = Arc::new(log);
    }

    /// Computes the maximal SCC containing `root`, exploring finished
    /// transactions only. Returns `None` unless the SCC has ≥ 2 members.
    pub fn scc_from(&mut self, root: TxId) -> Option<SccReport> {
        if !self.nodes.get(&root).is_some_and(|n| n.finished) {
            return None;
        }
        // Iterative Tarjan restricted to finished nodes reachable from root.
        #[derive(Clone, Copy)]
        struct Info {
            index: u32,
            lowlink: u32,
            on_stack: bool,
        }
        let mut info: HashMap<TxId, Info> = HashMap::new();
        let mut stack: Vec<TxId> = Vec::new();
        let mut next_index = 1u32;
        let mut root_scc: Option<Vec<TxId>> = None;

        // DFS frames: (node, cursor into out-edges).
        let mut frames: Vec<(TxId, usize)> = Vec::new();
        info.insert(
            root,
            Info {
                index: 0,
                lowlink: 0,
                on_stack: true,
            },
        );
        stack.push(root);
        frames.push((root, 0));

        while let Some(&(v, cursor)) = frames.last() {
            let next_child = {
                let node = &self.nodes[&v];
                let mut cur = cursor;
                let mut found = None;
                while cur < node.out.len() {
                    let w = node.out[cur].dst;
                    cur += 1;
                    if self.nodes.get(&w).is_some_and(|n| n.finished) {
                        found = Some(w);
                        break;
                    }
                }
                frames.last_mut().expect("frame exists").1 = cur;
                found
            };
            match next_child {
                Some(w) => {
                    if let Some(wi) = info.get(&w) {
                        if wi.on_stack {
                            let w_index = wi.index;
                            let vi = info.get_mut(&v).expect("v visited");
                            vi.lowlink = vi.lowlink.min(w_index);
                        }
                    } else {
                        info.insert(
                            w,
                            Info {
                                index: next_index,
                                lowlink: next_index,
                                on_stack: true,
                            },
                        );
                        next_index += 1;
                        stack.push(w);
                        frames.push((w, 0));
                    }
                }
                None => {
                    frames.pop();
                    let vi = info[&v];
                    if let Some(&mut (parent, _)) = frames.last_mut() {
                        let low = vi.lowlink;
                        let pi = info.get_mut(&parent).expect("parent visited");
                        pi.lowlink = pi.lowlink.min(low);
                    }
                    if vi.lowlink == vi.index {
                        // Pop one SCC off the Tarjan stack.
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            info.get_mut(&w).expect("on stack").on_stack = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        if component.contains(&root) {
                            root_scc = Some(component);
                        }
                    }
                }
            }
        }

        let component = root_scc.expect("root is always in some SCC");
        if component.len() < 2 {
            return None;
        }
        self.counters.scc_count.fetch_add(1, Ordering::Relaxed);
        Some(self.snapshot_component(&component))
    }

    /// Snapshots *every* finished transaction and all edges among them —
    /// the "PCD-only" variant of §5.4, where PCD processes every executed
    /// transaction rather than just ICD's SCCs.
    pub fn snapshot_all_finished(&self) -> SccReport {
        let component: Vec<TxId> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.finished)
            .map(|(&id, _)| id)
            .collect();
        self.snapshot_component(&component)
    }

    fn snapshot_component(&self, component: &[TxId]) -> SccReport {
        let member: std::collections::HashSet<TxId> = component.iter().copied().collect();
        let mut txs: Vec<TxSnapshot> = component
            .iter()
            .map(|&id| {
                let n = &self.nodes[&id];
                TxSnapshot {
                    id,
                    thread: n.thread,
                    kind: n.kind,
                    seq: n.seq,
                    log: Arc::clone(&n.log),
                }
            })
            .collect();
        txs.sort_by_key(|t| (t.thread, t.seq));
        let mut edges = Vec::new();
        let mut constraints = Vec::new();
        for &id in component {
            let node = &self.nodes[&id];
            for e in &node.out {
                if member.contains(&e.dst) {
                    edges.push(*e);
                }
            }
            constraints.extend(node.in_cross.iter().copied());
        }
        SccReport {
            txs,
            edges,
            constraints,
        }
    }

    /// Drops finished transactions unreachable from the roots via outgoing
    /// edges (the JVM-reachability semantics the paper relies on). Returns
    /// the number collected.
    pub fn collect(&mut self, roots: impl IntoIterator<Item = TxId>) -> usize {
        // Forward BFS from the roots over out-edges. Unfinished transactions
        // are roots too (each is some thread's current transaction). The mark
        // set and worklist are taken from per-graph scratch storage so
        // repeated passes reuse their allocations.
        let mut marked = std::mem::take(&mut self.collect_marked);
        let mut work = std::mem::take(&mut self.collect_work);
        marked.clear();
        work.clear();
        let push = |id: TxId, marked: &mut HashSet<TxId>, work: &mut Vec<TxId>| {
            if id.is_some() && marked.insert(id) {
                work.push(id);
            }
        };
        for r in roots {
            push(r, &mut marked, &mut work);
        }
        for (&id, node) in &self.nodes {
            if !node.finished {
                push(id, &mut marked, &mut work);
            }
        }
        while let Some(id) = work.pop() {
            if let Some(node) = self.nodes.get(&id) {
                for e in &node.out {
                    push(e.dst, &mut marked, &mut work);
                }
            }
        }
        let before = self.nodes.len();
        self.nodes
            .retain(|id, node| !node.finished || marked.contains(id));
        self.collect_marked = marked;
        self.collect_work = work;
        before - self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: u64, dst: u64) -> Edge {
        Edge {
            src: TxId(src),
            src_pos: 0,
            dst: TxId(dst),
            dst_pos: 0,
            kind: EdgeKind::Cross,
        }
    }

    fn graph_with(n: u64) -> Graph {
        let mut g = Graph::new();
        for i in 1..=n {
            g.insert(TxId(i), ThreadId((i % 4) as u16), TxKind::Unary, i);
        }
        g
    }

    fn finish_all(g: &mut Graph, n: u64) {
        for i in 1..=n {
            g.finish(TxId(i), vec![]);
        }
    }

    #[test]
    fn two_cycle_is_detected_when_last_member_finishes() {
        let mut g = graph_with(2);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        g.finish(TxId(1), vec![]);
        // Tx2 unfinished: no SCC yet.
        assert!(g.scc_from(TxId(1)).is_none());
        g.finish(TxId(2), vec![]);
        let scc = g.scc_from(TxId(2)).expect("cycle complete");
        assert_eq!(scc.len(), 2);
        assert_eq!(scc.edges.len(), 2);
        assert_eq!(g.scc_count(), 1);
    }

    #[test]
    fn self_edges_are_dropped() {
        let mut g = graph_with(1);
        g.add_edge(edge(1, 1));
        g.finish(TxId(1), vec![]);
        assert!(g.scc_from(TxId(1)).is_none());
        assert_eq!(g.cross_edges(), 0);
    }

    #[test]
    fn path_without_cycle_yields_no_scc() {
        let mut g = graph_with(3);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 3));
        finish_all(&mut g, 3);
        assert!(g.scc_from(TxId(3)).is_none());
        assert!(g.scc_from(TxId(1)).is_none());
    }

    #[test]
    fn maximal_scc_is_found_not_just_a_cycle() {
        // 1→2→3→1 and 2→4→2: one SCC of size 4.
        let mut g = graph_with(4);
        for (s, d) in [(1, 2), (2, 3), (3, 1), (2, 4), (4, 2)] {
            g.add_edge(edge(s, d));
        }
        finish_all(&mut g, 4);
        let scc = g.scc_from(TxId(1)).unwrap();
        assert_eq!(scc.len(), 4);
    }

    #[test]
    fn scc_excludes_unfinished_members_until_they_finish() {
        let mut g = graph_with(3);
        for (s, d) in [(1, 2), (2, 3), (3, 1)] {
            g.add_edge(edge(s, d));
        }
        g.finish(TxId(1), vec![]);
        g.finish(TxId(2), vec![]);
        assert!(
            g.scc_from(TxId(2)).is_none(),
            "3 unfinished breaks the loop"
        );
        g.finish(TxId(3), vec![]);
        assert_eq!(g.scc_from(TxId(3)).unwrap().len(), 3);
    }

    #[test]
    fn snapshot_carries_logs_and_internal_edges_only() {
        let mut g = graph_with(3);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        g.add_edge(edge(2, 3)); // leaves the SCC
        g.finish(
            TxId(1),
            vec![LogEntry::new(dc_runtime::ids::ObjId(9), 0, true, false)],
        );
        g.finish(TxId(2), vec![]);
        g.finish(TxId(3), vec![]);
        let scc = g.scc_from(TxId(2)).unwrap();
        assert_eq!(scc.len(), 2);
        assert_eq!(scc.edges.len(), 2, "edge 2→3 excluded");
        let t1 = scc.txs.iter().find(|t| t.id == TxId(1)).unwrap();
        assert_eq!(t1.log.len(), 1);
    }

    #[test]
    fn collect_drops_only_unreachable_finished_txs() {
        let mut g = graph_with(4);
        // 2 is a root and points at 1; 3 is isolated; 4 is unfinished.
        g.add_edge(edge(2, 1));
        g.finish(TxId(1), vec![]);
        g.finish(TxId(2), vec![]);
        g.finish(TxId(3), vec![]);
        let collected = g.collect([TxId(2)]);
        assert_eq!(collected, 1, "only Tx3 is collectable");
        assert!(g.node(TxId(1)).is_some(), "root Tx2 reaches Tx1");
        assert!(g.node(TxId(3)).is_none());
        assert!(g.node(TxId(4)).is_some(), "unfinished is kept");
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn collect_drops_old_intra_thread_chains() {
        // 1→2→3 with 3 unfinished (current): 1 and 2 can never gain new
        // incoming edges, so no future cycle can contain them — collected.
        let mut g = graph_with(3);
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 3));
        g.finish(TxId(1), vec![]);
        g.finish(TxId(2), vec![]);
        assert_eq!(g.collect([TxId(3)]), 2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn collect_keeps_pending_cycle_members() {
        // Cycle in progress: 2 (current, root) → 1, and 1 → 2 back; both
        // stay until the SCC is detected and the roots move on.
        let mut g = graph_with(2);
        g.add_edge(edge(2, 1));
        g.add_edge(edge(1, 2));
        g.finish(TxId(1), vec![]);
        assert_eq!(g.collect([TxId(2)]), 0);
    }

    #[test]
    fn edges_to_collected_nodes_are_ignored() {
        let mut g = graph_with(2);
        g.finish(TxId(1), vec![]);
        assert_eq!(g.collect([TxId(2)]), 1);
        // Adding an edge naming the collected node is a no-op.
        g.add_edge(edge(1, 2));
        g.add_edge(edge(2, 1));
        assert_eq!(g.node(TxId(2)).unwrap().out.len(), 0);
    }

    #[test]
    fn cross_edge_stat_counts_only_cross_edges() {
        let mut g = graph_with(2);
        g.add_edge(Edge {
            src: TxId(1),
            src_pos: 0,
            dst: TxId(2),
            dst_pos: 0,
            kind: EdgeKind::Intra,
        });
        g.add_edge(edge(2, 1));
        assert_eq!(g.cross_edges(), 1);
    }
}
