//! Fixed-capacity, cache-line-aligned MPSC ring for pipeline messages.
//!
//! The op channel is the last per-access cost of pipelined mode: every hook
//! flushes a batch, so the transport's constant factor is paid on the hot
//! path. This ring replaces the unbounded channel's mutex/condvar handoff
//! and per-segment allocation with the claim-slot/publish-last idiom the obs
//! `TraceRing` already uses, extended from an overwriting event buffer to a
//! lossless bounded queue (Vyukov's bounded MPMC, restricted to one
//! consumer):
//!
//! * Each slot carries a sequence word. A producer claims a position with
//!   one `fetch_add` on the tail, waits until the slot's sequence says the
//!   previous lap's value was consumed (ring full ⇒ spin-then-yield — this
//!   is the backpressure policy, surfaced by the caller as the
//!   `graph.ring_full_waits` counter), writes the payload, and *publishes
//!   last* by storing `pos + 1` into the sequence with `Release`.
//! * The single consumer reads slots in position order, waiting for each
//!   slot's publish, and releases the slot for the next lap by storing
//!   `pos + capacity`.
//!
//! Steady-state sends are therefore one `fetch_add` plus one release store —
//! no locks, no allocation. The consumer spins briefly, yields, and finally
//! parks on a condvar with a short timeout; producers wake it only when the
//! `sleeping` flag is up, so an actively draining consumer costs senders one
//! relaxed load. (The timeout bounds the harmless race where a producer
//! misses the flag between the consumer's last check and its park.)

use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Producer spins this many times on a full ring before yielding.
const FULL_SPINS: u32 = 64;
/// Consumer spins this many times on an empty ring before yielding.
const EMPTY_SPINS: u32 = 128;
/// Consumer yields this many times before parking.
const EMPTY_YIELDS: u32 = 64;
/// Default park timeout covering the missed-wakeup window.
const PARK_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(1);

/// One ring slot: sequence word plus payload, padded to a cache line so
/// neighbouring slots never false-share.
#[repr(align(64))]
struct Slot<T> {
    /// `pos` ⇒ free for the producer claiming `pos`; `pos + 1` ⇒ published,
    /// waiting for the consumer; `pos + capacity` ⇒ free for the next lap.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Aligned wrapper keeping the producer and consumer cursors on separate
/// cache lines (producers hammer `tail`; only the consumer writes `head`).
#[repr(align(64))]
struct Cursor(AtomicU64);

/// The bounded multi-producer single-consumer ring.
///
/// `recv` must only ever be called from one thread at a time (the pipeline's
/// graph-owner thread); producers may call `send` concurrently.
pub(crate) struct OpRing<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    tail: Cursor,
    head: Cursor,
    /// True while the consumer is parked (or about to park).
    sleeping: AtomicBool,
    idle: Mutex<()>,
    wake: Condvar,
    /// Spin before yielding. False on single-core hosts, where spinning can
    /// only delay the thread that would unblock us (repo-wide convention:
    /// all spin-waits yield on one core).
    spin: bool,
    /// How long a parked consumer sleeps before re-checking on its own.
    /// The wake paths (`send`'s conditional notify, `wake`) make this a
    /// correctness backstop, not a latency bound.
    park_timeout: std::time::Duration,
}

// SAFETY: slots are handed off producer→consumer through the `seq` protocol
// (publish with Release, consume after Acquire), so `T: Send` suffices.
unsafe impl<T: Send> Send for OpRing<T> {}
unsafe impl<T: Send> Sync for OpRing<T> {}

impl<T> OpRing<T> {
    /// Creates a ring with `capacity` slots (must be a power of two).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Self::with_park_timeout(capacity, PARK_TIMEOUT)
    }

    /// Creates a ring with an explicit consumer park timeout. Tests use a
    /// long timeout to prove shutdown latency does not depend on it.
    pub(crate) fn with_park_timeout(capacity: usize, park_timeout: std::time::Duration) -> Self {
        assert!(capacity.is_power_of_two(), "ring capacity must be 2^k");
        let slots: Box<[Slot<T>]> = (0..capacity)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        OpRing {
            slots,
            mask: capacity as u64 - 1,
            tail: Cursor(AtomicU64::new(0)),
            head: Cursor(AtomicU64::new(0)),
            sleeping: AtomicBool::new(false),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            spin: std::thread::available_parallelism().map_or(true, |n| n.get() > 1),
            park_timeout,
        }
    }

    /// Unconditionally wakes a parked (or about-to-park) consumer. Taking
    /// the idle mutex serializes with the consumer's park: either the
    /// consumer is already waiting and gets the notification, or it has not
    /// locked yet and its pre-wait recheck observes whatever was published
    /// before this call.
    pub(crate) fn wake(&self) {
        let _g = self.idle.lock();
        self.wake.notify_one();
    }

    /// Enqueues `value`, blocking (spin-then-yield) while the ring is full.
    /// Returns true when the send had to wait — the caller surfaces this as
    /// the `graph.ring_full_waits` backpressure counter.
    pub(crate) fn send(&self, value: T) -> bool {
        let waited = self.publish(value);
        if self.sleeping.load(Ordering::SeqCst) {
            // Serialize with the consumer's park so the notify cannot fall
            // between its last check and its wait.
            let _g = self.idle.lock();
            self.wake.notify_one();
        }
        waited
    }

    /// Claims a slot, writes the payload, and publishes it — the body of
    /// [`OpRing::send`] minus the wakeup.
    fn publish(&self, value: T) -> bool {
        let pos = self.tail.0.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let mut waited = false;
        let mut spins = 0u32;
        // The slot is free for us exactly when its sequence reaches `pos`
        // (the consumer released the previous lap). Any other value means
        // the ring is full up to our claimed position.
        while slot.seq.load(Ordering::Acquire) != pos {
            waited = true;
            if self.spin && spins < FULL_SPINS {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: the sequence handshake gives this producer exclusive
        // access to the slot until the Release store below.
        unsafe { (*slot.value.get()).write(value) };
        slot.seq.store(pos + 1, Ordering::Release);
        waited
    }

    /// Test hook: publish without the conditional notify, simulating a
    /// producer whose wakeup was lost so that [`OpRing::wake`] is the only
    /// thing standing between a parked consumer and the full park timeout.
    #[cfg(test)]
    fn send_without_notify(&self, value: T) -> bool {
        self.publish(value)
    }

    /// Dequeues the next message, blocking until one is published.
    ///
    /// Single-consumer: must only be called by the owning (graph-owner)
    /// thread.
    pub(crate) fn recv(&self) -> T {
        let pos = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let mut spins = 0u32;
        while slot.seq.load(Ordering::Acquire) != pos + 1 {
            if self.spin && spins < EMPTY_SPINS {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < EMPTY_SPINS + EMPTY_YIELDS {
                spins += 1;
                std::thread::yield_now();
            } else {
                self.sleeping.store(true, Ordering::SeqCst);
                if slot.seq.load(Ordering::SeqCst) != pos + 1 {
                    let mut g = self.idle.lock();
                    if slot.seq.load(Ordering::SeqCst) != pos + 1 {
                        let _ = self.wake.wait_for(&mut g, self.park_timeout);
                    }
                }
                self.sleeping.store(false, Ordering::SeqCst);
            }
        }
        // SAFETY: the publish handshake gives the single consumer exclusive
        // access to the slot until the release store below.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        slot.seq.store(pos + self.mask + 1, Ordering::Release);
        self.head.0.store(pos + 1, Ordering::Release);
        value
    }
}

impl<T> Drop for OpRing<T> {
    fn drop(&mut self) {
        // Drop published-but-unconsumed payloads. Claimed-but-unpublished
        // slots (a producer died mid-send) are left alone.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for pos in head..tail {
            let slot = &mut self.slots[(pos & self.mask) as usize];
            if *slot.seq.get_mut() == pos + 1 {
                // SAFETY: published and never consumed, so initialized and
                // uniquely owned here.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_one_producer() {
        let ring = OpRing::with_capacity(8);
        for i in 0..5 {
            ring.send(i);
        }
        for i in 0..5 {
            assert_eq!(ring.recv(), i);
        }
    }

    #[test]
    fn wraps_around_many_laps() {
        let ring = OpRing::with_capacity(4);
        for lap in 0u64..100 {
            for i in 0..3 {
                ring.send(lap * 10 + i);
            }
            for i in 0..3 {
                assert_eq!(ring.recv(), lap * 10 + i);
            }
        }
    }

    #[test]
    fn full_ring_reports_backpressure_and_loses_nothing() {
        let ring = Arc::new(OpRing::with_capacity(2));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || (0..64).map(|i| ring.send(i)).filter(|&w| w).count())
        };
        let mut got = Vec::new();
        for _ in 0..64 {
            got.push(ring.recv());
        }
        let waits = producer.join().unwrap();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
        // A 2-slot ring fed 64 messages must have hit backpressure.
        assert!(waits > 0, "expected at least one full-ring wait");
    }

    #[test]
    fn multi_producer_delivers_every_message_once() {
        let ring = Arc::new(OpRing::with_capacity(16));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        ring.send(p * 1000 + i);
                    }
                })
            })
            .collect();
        let mut got = Vec::with_capacity(4 * 256);
        for _ in 0..4 * 256 {
            got.push(ring.recv());
        }
        for h in producers {
            h.join().unwrap();
        }
        got.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..256u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn parked_consumer_is_woken_by_a_send() {
        let ring = Arc::new(OpRing::with_capacity(8));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.recv())
        };
        // Let the consumer spin down into its parked state.
        std::thread::sleep(std::time::Duration::from_millis(10));
        ring.send(7u64);
        assert_eq!(consumer.join().unwrap(), 7);
    }

    /// Shutdown latency must not be clamped to the park timeout: with a
    /// park timeout far beyond the test deadline and a publish whose
    /// conditional notify was (deliberately) skipped, an explicit `wake`
    /// must still unpark the consumer promptly.
    #[test]
    fn wake_unparks_a_consumer_without_waiting_out_the_park_timeout() {
        let ring = Arc::new(OpRing::with_park_timeout(
            8,
            std::time::Duration::from_secs(30),
        ));
        let consumer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.recv())
        };
        // Let the consumer spin down into its parked state.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let start = std::time::Instant::now();
        ring.send_without_notify(9u64);
        ring.wake();
        assert_eq!(consumer.join().unwrap(), 9);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "consumer slept out the park timeout instead of being woken"
        );
    }

    #[test]
    fn unconsumed_messages_are_dropped_with_the_ring() {
        let payload = Arc::new(());
        let ring = OpRing::with_capacity(8);
        for _ in 0..5 {
            ring.send(Arc::clone(&payload));
        }
        drop(ring.recv());
        drop(ring);
        assert_eq!(Arc::strong_count(&payload), 1, "ring leaked payloads");
    }
}
