//! Asynchronous graph pipeline: application threads append linearized graph
//! operations instead of mutating the IDG under a global lock; a dedicated
//! *graph-owner* thread applies them, runs SCC detection and the transaction
//! collector, and hands SCC reports to a sink (dc-core wires the sink to the
//! PCD replay pool).
//!
//! # Linearization by tickets
//!
//! Every operation draws a *ticket* from one global counter at creation
//! time, on the application thread, at exactly the point where synchronous
//! mode would have acquired the graph lock. Operations travel to the owner
//! in per-thread batches, so they can arrive out of ticket order; the owner
//! holds early arrivals in a ticket-indexed scoreboard and applies a
//! strictly contiguous ticket sequence. The applied order is therefore a
//! valid lock-acquisition order of the synchronous analysis — and under the
//! deterministic engine (one OS thread driving all program threads) it is
//! *the* order synchronous mode uses, which is what makes pipelined and
//! synchronous runs produce identical SCCs, violations, and static
//! transaction information on deterministic schedules.
//!
//! Two details keep apply-time semantics equal to lock-time semantics:
//!
//! * Operations embed everything they read from mutable non-graph state
//!   (published log lengths, `lastRdEx`, per-thread current-transaction
//!   registers) at creation time. The rare upgrading/fence operations carry
//!   a full per-thread `(currTX, log length)` snapshot because their edge
//!   source — the graph-owned `gLastRdSh` register — is only resolved at
//!   apply time.
//! * State a source transaction's position depends on *after* it finished
//!   (`final_len`) is resolved by the owner: the `Finish` that set it
//!   necessarily drew an earlier ticket (the observing thread's ticket was
//!   drawn after an acquire-load that observed the finish), so it has
//!   already been applied.
//!
//! Progress: tickets are only held in a thread's private buffer for the
//! duration of one instrumentation hook — every hook flushes its batch
//! before returning — so the scoreboard's gaps resolve promptly and
//! [`PipelineHandle::shutdown_into`] (called once all application threads
//! have joined) observes every ticket below its own.
//!
//! # Transport
//!
//! Batches travel over a fixed-capacity cache-line-aligned MPSC ring
//! ([`crate::ring::OpRing`]) by default: sends are one `fetch_add` plus one
//! release store, with spin-then-yield backpressure on a full ring (counted
//! as `graph.ring_full_waits`). Batch buffers are pooled and round-trip
//! owner→app, so a steady-state enqueue performs no allocation. The legacy
//! unbounded channel is kept selectable ([`OpTransport::Channel`]) as the
//! differential baseline.

use crate::graph::{Graph, SccProbe};
use crate::icd::{IcdConfig, IcdStats, Registers};
use crate::ring::OpRing;
use crate::types::{Edge, EdgeKind, LogEntry, SccReport, TxId, TxKind};
use crossbeam::channel::{self, Receiver, Sender};
use dc_obs::{EventKind, PipelineObs, Stage};
use dc_runtime::ids::ThreadId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Whether IDG maintenance runs on the application threads under a global
/// lock (`Sync`) or on a dedicated graph-owner thread fed through a channel
/// (`Pipelined`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PipelineMode {
    /// Application threads mutate the graph directly (deterministic engine,
    /// unit tests, and the paper's baseline configuration).
    #[default]
    Sync,
    /// Application threads enqueue operations; SCC detection, collection,
    /// and PCD dispatch run off the application hot path.
    Pipelined,
}

/// How pipelined-mode operations travel from application threads to the
/// graph owner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpTransport {
    /// Fixed-capacity cache-line-aligned MPSC ring with pooled batch
    /// buffers; spin-then-yield backpressure when full.
    #[default]
    Ring,
    /// The previous unbounded channel, kept as the differential baseline
    /// (`ring-vs-channel` suites) and for A/B measurements.
    Channel,
}

impl OpTransport {
    /// Parses `"ring"` / `"channel"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ring" => Some(OpTransport::Ring),
            "channel" => Some(OpTransport::Channel),
            _ => None,
        }
    }
}

/// Ring capacity in messages (batches), a power of two. 1024 in-flight
/// batches is far beyond any hook burst; hitting backpressure here means
/// the owner has genuinely fallen behind.
const RING_CAPACITY: usize = 1024;
/// Initial capacity of a pooled batch buffer (ops per hook is single-digit;
/// Octet coalescing can push a few more).
const BATCH_CAPACITY: usize = 32;
/// Maximum pooled buffers retained; excess buffers are dropped. Sized past
/// the worst-case in-flight depth (one batch per ring slot, plus per-thread
/// pending buffers), so producers that run ahead of the owner recycle
/// buffers instead of allocating while the owner's returns overflow the
/// pool — steady-state enqueue stays allocation-free even at full
/// backpressure.
const POOL_RETAIN: usize = RING_CAPACITY + 128;
/// Initial reorder-scoreboard span (tickets), a power of two; grows by
/// doubling if in-flight tickets ever span further.
pub(crate) const REORDER_CAPACITY: usize = 256;

/// Callback invoked by a graph-owner thread for every detected SCC. `Sync`
/// because with sharding enabled several shard owners share one sink.
pub type SccSink = Box<dyn Fn(SccReport) + Send + Sync + 'static>;

/// A structural failure in the op stream, detected on the graph-owner (or
/// shard/router) thread. Instead of panicking — which poisons the owner
/// thread and aborts the whole multi-run process at join — the pipeline
/// stops applying, drains, and surfaces the first error through
/// [`PipelineHandle::shutdown_into`] into the final report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineError {
    /// A ticket at or below the applied frontier arrived again.
    StaleTicket {
        /// The offending ticket.
        ticket: u64,
        /// The frontier at arrival time.
        next: u64,
    },
    /// Two in-flight ops carried the same ticket.
    DuplicateTicket {
        /// The offending ticket.
        ticket: u64,
    },
    /// A `Finish` named an unknown or already-finished transaction.
    MalformedFinish {
        /// The transaction the finish named.
        id: TxId,
        /// False: never inserted (or collected while unfinished). True:
        /// finished twice.
        already_finished: bool,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StaleTicket { ticket, next } => {
                write!(f, "op ticket {ticket} below applied frontier {next}")
            }
            PipelineError::DuplicateTicket { ticket } => {
                write!(f, "duplicate op ticket {ticket}")
            }
            PipelineError::MalformedFinish {
                id,
                already_finished,
            } => {
                if *already_finished {
                    write!(f, "transaction {} finished twice", id.0)
                } else {
                    write!(f, "finish for unknown transaction {}", id.0)
                }
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<crate::graph::FinishError> for PipelineError {
    fn from(e: crate::graph::FinishError) -> Self {
        match e {
            crate::graph::FinishError::UnknownTx(id) => PipelineError::MalformedFinish {
                id,
                already_finished: false,
            },
            crate::graph::FinishError::AlreadyFinished(id) => PipelineError::MalformedFinish {
                id,
                already_finished: true,
            },
        }
    }
}

/// Per-thread `(currTX, published log length)` snapshot taken when a rare
/// upgrading/fence operation is created, reproducing the synchronous
/// analysis's live-position reads for sources resolved at apply time.
pub(crate) type PosSnapshot = Box<[(u64, u32)]>;

/// One linearized graph mutation, in application-thread creation order.
#[derive(Debug)]
pub(crate) enum GraphOp {
    /// A transaction begins: node insertion plus the program-order edge
    /// from the thread's previous transaction.
    Insert {
        id: TxId,
        thread: ThreadId,
        kind: TxKind,
        seq: u64,
        prev: TxId,
    },
    /// A transaction ends with its final read/write log; triggers SCC
    /// detection and (periodically) the collector on the owner.
    ///
    /// `thread` is the finishing thread — routing metadata for the sharded
    /// router (apply ignores it).
    Finish {
        id: TxId,
        thread: ThreadId,
        log: Vec<LogEntry>,
    },
    /// `handleConflictingTransition`: one cross-thread edge, positions
    /// snapshotted at creation. The `*_thread` fields are routing metadata:
    /// the router unions the two threads' components before routing.
    Cross {
        src: TxId,
        src_thread: ThreadId,
        src_pos: u32,
        dst: TxId,
        dst_thread: ThreadId,
        dst_pos: u32,
    },
    /// `handleUpgradingTransition`: edges from `lastRdEx` and `gLastRdSh`,
    /// then the `gLastRdSh` update. `thread` is the upgrading thread and
    /// `last_owner` the thread of `last_rd_ex` — routing metadata.
    Upgrade {
        cur: TxId,
        thread: ThreadId,
        dst_pos: u32,
        last_rd_ex: TxId,
        last_owner: ThreadId,
        snap: PosSnapshot,
    },
    /// `handleFenceTransition`: edge from `gLastRdSh`. `thread` is the
    /// fencing thread — routing metadata.
    Fence {
        cur: TxId,
        thread: ThreadId,
        dst_pos: u32,
        snap: PosSnapshot,
    },
}

/// One thread's batch of ticketed operations.
pub(crate) type OpBatch = Vec<(u64, GraphOp)>;

/// Transport protocol between application threads and the graph owner.
pub(crate) enum Msg {
    /// A batch of ticketed operations from one thread's buffer.
    Ops(OpBatch),
    /// Drain marker carrying the final ticket; sent by
    /// [`PipelineHandle::shutdown_into`] after all application threads
    /// joined, so every lower ticket is already in flight.
    Shutdown(u64),
}

/// Shared free list of batch buffers. The owner clears applied batches and
/// returns them here; application threads refill their pending buffer from
/// it, so in steady state no batch is ever allocated or freed.
pub(crate) struct BatchPool {
    bufs: Mutex<Vec<OpBatch>>,
    obs: Option<Arc<PipelineObs>>,
}

impl BatchPool {
    fn new(obs: Option<Arc<PipelineObs>>) -> Self {
        BatchPool {
            bufs: Mutex::new(Vec::with_capacity(POOL_RETAIN)),
            obs,
        }
    }

    /// Pops a pooled buffer, or allocates a fresh one (warm-up only).
    fn take(&self) -> OpBatch {
        let mut bufs = self.bufs.lock();
        let buf = bufs.pop();
        if let Some(obs) = &self.obs {
            obs.graph.pooled_buffers.set(bufs.len() as i64);
        }
        drop(bufs);
        buf.unwrap_or_else(|| Vec::with_capacity(BATCH_CAPACITY))
    }

    /// Clears and returns a buffer to the pool (dropping it when the pool
    /// is already at its retention cap).
    pub(crate) fn put(&self, mut buf: OpBatch) {
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < POOL_RETAIN {
            bufs.push(buf);
            if let Some(obs) = &self.obs {
                obs.graph.pooled_buffers.set(bufs.len() as i64);
            }
        }
    }
}

/// Producer half of the selected transport.
enum TxPort {
    Ring(Arc<OpRing<Msg>>),
    Channel(Sender<Msg>),
}

impl TxPort {
    /// Sends one message; returns true when the send had to wait for ring
    /// space (always false on the unbounded channel).
    fn send(&self, msg: Msg) -> bool {
        match self {
            TxPort::Ring(ring) => ring.send(msg),
            TxPort::Channel(tx) => {
                let _ = tx.send(msg);
                false
            }
        }
    }

    /// Unconditionally wakes a parked consumer. The ring's `send` only
    /// notifies when it observes the consumer's `sleeping` flag, leaving a
    /// window where a shutdown marker sits unnoticed until the park timeout
    /// expires; shutdown calls this to make drain latency wake-driven. The
    /// channel transport's own condvar has no such window.
    fn wake(&self) {
        if let TxPort::Ring(ring) = self {
            ring.wake();
        }
    }
}

/// Consumer half of the selected transport.
pub(crate) enum RxPort {
    Ring(Arc<OpRing<Msg>>),
    Channel(Receiver<Msg>),
}

impl RxPort {
    /// Receives the next message; `None` only on the channel transport when
    /// every sender is gone (legacy disconnect path).
    pub(crate) fn recv(&self) -> Option<Msg> {
        match self {
            RxPort::Ring(ring) => Some(ring.recv()),
            RxPort::Channel(rx) => rx.recv().ok(),
        }
    }
}

/// What an owner, router, or shard thread returns at join: the drained
/// graph plus the first structural error it hit.
pub(crate) type OwnerExit = (Graph, Option<PipelineError>);

/// Application-side handle: the op transport, the batch pool, the ticket
/// counter, and the owner thread's join handle.
pub(crate) struct PipelineHandle {
    port: TxPort,
    pool: Arc<BatchPool>,
    next_ticket: AtomicU64,
    owner: Mutex<Option<JoinHandle<OwnerExit>>>,
    obs: Option<Arc<PipelineObs>>,
}

impl std::fmt::Debug for PipelineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineHandle").finish_non_exhaustive()
    }
}

impl PipelineHandle {
    /// Moves `graph` onto a freshly spawned graph-owner thread (or, with
    /// `config.shards > 1`, a router thread fanning out to shard owners).
    pub(crate) fn spawn(
        graph: Graph,
        regs: Arc<Registers>,
        stats: Arc<IcdStats>,
        config: IcdConfig,
        sink: Option<SccSink>,
        obs: Option<Arc<PipelineObs>>,
    ) -> Self {
        Self::spawn_inner(graph, regs, stats, config, sink, obs, None)
    }

    /// Test hook: like [`PipelineHandle::spawn`] with an explicit ring park
    /// timeout, so shutdown-latency tests can make a missed wakeup cost
    /// seconds instead of the production 1 ms.
    #[cfg(test)]
    pub(crate) fn spawn_with_park_timeout(
        graph: Graph,
        regs: Arc<Registers>,
        stats: Arc<IcdStats>,
        config: IcdConfig,
        sink: Option<SccSink>,
        obs: Option<Arc<PipelineObs>>,
        park_timeout: std::time::Duration,
    ) -> Self {
        Self::spawn_inner(graph, regs, stats, config, sink, obs, Some(park_timeout))
    }

    fn spawn_inner(
        graph: Graph,
        regs: Arc<Registers>,
        stats: Arc<IcdStats>,
        config: IcdConfig,
        sink: Option<SccSink>,
        obs: Option<Arc<PipelineObs>>,
        park_timeout: Option<std::time::Duration>,
    ) -> Self {
        let (port, rx) = match config.transport {
            OpTransport::Ring => {
                let ring = Arc::new(match park_timeout {
                    Some(t) => OpRing::with_park_timeout(RING_CAPACITY, t),
                    None => OpRing::with_capacity(RING_CAPACITY),
                });
                (TxPort::Ring(Arc::clone(&ring)), RxPort::Ring(ring))
            }
            OpTransport::Channel => {
                let (tx, rx) = channel::unbounded();
                (TxPort::Channel(tx), RxPort::Channel(rx))
            }
        };
        let pool = Arc::new(BatchPool::new(obs.clone()));
        let shards = (config.shards.max(1) as usize).min(dc_obs::MAX_SHARDS);
        if let Some(obs) = &obs {
            obs.graph.shards.set(shards as i64);
        }
        let owner_obs = obs.clone();
        let owner_pool = Arc::clone(&pool);
        let owner = if shards > 1 {
            let n_threads = regs.threads.len();
            std::thread::Builder::new()
                .name("dc-graph-router".into())
                .spawn(move || {
                    crate::shard::router_loop(
                        rx, owner_pool, graph, regs, stats, config, sink, owner_obs, shards,
                        n_threads,
                    )
                })
                .expect("spawn graph-router thread")
        } else {
            std::thread::Builder::new()
                .name("dc-graph-owner".into())
                .spawn(move || {
                    owner_loop(rx, owner_pool, graph, regs, stats, config, sink, owner_obs)
                })
                .expect("spawn graph-owner thread")
        };
        PipelineHandle {
            port,
            pool,
            next_ticket: AtomicU64::new(0),
            owner: Mutex::new(Some(owner)),
            obs,
        }
    }

    /// Draws the next linearization ticket.
    pub(crate) fn ticket(&self) -> u64 {
        self.next_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// A pooled (or warm-up-allocated) empty batch buffer.
    pub(crate) fn take_batch(&self) -> OpBatch {
        self.pool.take()
    }

    /// Sends one thread's buffered batch, leaving a pooled empty buffer
    /// (with its capacity) in `pending`.
    pub(crate) fn send_batch(&self, pending: &mut OpBatch) {
        let fresh = self.pool.take();
        let batch = std::mem::replace(pending, fresh);
        self.dispatch(batch, false);
    }

    /// Sends a batch built outside a thread-local buffer (Octet-coalesced
    /// edge ops); returns empty buffers to the pool instead.
    pub(crate) fn send_taken(&self, batch: OpBatch) {
        if batch.is_empty() {
            self.pool.put(batch);
        } else {
            self.dispatch(batch, false);
        }
    }

    /// Ticket-and-send for rare operations created outside a thread-local
    /// buffer (edge procedures may run on either coordination participant).
    pub(crate) fn send_one(&self, op: GraphOp) {
        let ticket = self.ticket();
        let mut batch = self.pool.take();
        batch.push((ticket, op));
        self.dispatch(batch, true);
    }

    /// Observability accounting plus the transport send. `single` batches
    /// (one rare op) get their own counter so `graph.batches` keeps
    /// measuring hook-flush batching.
    fn dispatch(&self, batch: OpBatch, single: bool) {
        debug_assert!(!batch.is_empty());
        if let Some(obs) = &self.obs {
            let n = batch.len() as u64;
            obs.graph.ops_enqueued.add(n);
            if single {
                obs.graph.singles.inc();
            } else {
                obs.graph.batches.inc();
            }
            obs.graph.queue_depth.add(n as i64);
            obs.trace(Stage::Graph, EventKind::BatchSent, n);
        }
        let t0 = self.obs.as_ref().and_then(|o| o.clock());
        let waited = self.port.send(Msg::Ops(batch));
        if let Some(obs) = &self.obs {
            obs.graph.enqueue_latency.record_elapsed(t0);
            if waited {
                obs.graph.ring_full_waits.inc();
            }
        }
    }

    /// Drains the pipeline and moves the graph back into `slot`, returning
    /// the first structural error the owner hit (if any). Must be called
    /// after all application threads have flushed (joined); no-op on
    /// repeated calls.
    pub(crate) fn shutdown_into(&self, slot: &Mutex<Graph>) -> Option<PipelineError> {
        let handle = self.owner.lock().take()?;
        let ticket = self.ticket();
        self.port.send(Msg::Shutdown(ticket));
        // An idle owner may be parked past `send`'s conditional notify;
        // without this, drain latency is clamped to the ring park timeout.
        self.port.wake();
        let (graph, error) = handle.join().expect("graph-owner thread panicked");
        *slot.lock() = graph;
        error
    }
}

impl Drop for PipelineHandle {
    /// Backstop for handles dropped without [`PipelineHandle::shutdown_into`]:
    /// the ring transport has no disconnect signal, so the owner thread must
    /// be told to stop or it would block forever.
    fn drop(&mut self) {
        if let Some(handle) = self.owner.get_mut().take() {
            let ticket = self.ticket();
            self.port.send(Msg::Shutdown(ticket));
            self.port.wake();
            let _ = handle.join();
        }
    }
}

/// Collection pacing for the graph owner: counts transaction ends toward an
/// adaptive threshold. With collection disabled (`every == 0`) it counts
/// nothing — the counter used to increment unconditionally and overflow
/// `u32` on long soak runs (debug builds panicked after 2³² ends).
pub(crate) struct CollectPacer {
    every: u32,
    ends: u32,
    threshold: u32,
}

impl CollectPacer {
    pub(crate) fn new(every: u32) -> Self {
        CollectPacer {
            every,
            ends: 0,
            threshold: every.max(1),
        }
    }

    /// Counts one transaction end (saturating: a threshold of `u32::MAX`
    /// must still trigger rather than wrap).
    pub(crate) fn on_finish(&mut self) {
        if self.every == 0 {
            return;
        }
        self.ends = self.ends.saturating_add(1);
    }

    /// True when enough ends accumulated for a collection pass.
    pub(crate) fn due(&self) -> bool {
        self.every > 0 && self.ends >= self.threshold
    }

    /// Resets after a pass: next threshold is the configured cadence or
    /// half the survivor count, whichever is larger (collecting a mostly
    /// live graph is wasted work).
    pub(crate) fn after_collect(&mut self, survivors: usize) {
        self.ends = 0;
        self.threshold = self
            .every
            .max(u32::try_from(survivors / 2).unwrap_or(u32::MAX));
    }
}

/// Ticket-indexed circular scoreboard holding out-of-order arrivals. The
/// occupied window is always `[next, next + capacity)`, so slot `ticket %
/// capacity` is unambiguous; the board doubles (rare, warm-up only) when an
/// arrival lands beyond the window. Replaces the former `BTreeMap`, whose
/// per-insert node allocation was the owner loop's last steady-state
/// allocation.
pub(crate) struct Reorder {
    slots: Vec<Option<GraphOp>>,
    /// Next ticket to apply (everything below is applied).
    next: u64,
    occupied: usize,
}

impl Reorder {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        Reorder {
            slots: (0..capacity).map(|_| None).collect(),
            next: 0,
            occupied: 0,
        }
    }

    pub(crate) fn next_ticket(&self) -> u64 {
        self.next
    }

    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    /// Files an out-of-order arrival. A ticket below the applied frontier
    /// or one already occupied is a corrupted stream: formerly
    /// `debug_assert!`s, which in release silently leaked the old op and
    /// desynced `occupied` — now checked errors the owner surfaces.
    pub(crate) fn insert(&mut self, ticket: u64, op: GraphOp) -> Result<(), PipelineError> {
        if ticket < self.next {
            return Err(PipelineError::StaleTicket {
                ticket,
                next: self.next,
            });
        }
        while ticket - self.next >= self.slots.len() as u64 {
            self.grow();
        }
        let mask = self.slots.len() as u64 - 1;
        let slot = &mut self.slots[(ticket & mask) as usize];
        if slot.is_some() {
            return Err(PipelineError::DuplicateTicket { ticket });
        }
        *slot = Some(op);
        self.occupied += 1;
        Ok(())
    }

    /// Takes the op at the contiguous frontier, if it has arrived.
    pub(crate) fn pop_next(&mut self) -> Option<GraphOp> {
        let mask = self.slots.len() as u64 - 1;
        let op = self.slots[(self.next & mask) as usize].take()?;
        self.next += 1;
        self.occupied -= 1;
        Some(op)
    }

    /// Buffered (received, unapplied) ops, for collector rooting.
    pub(crate) fn iter(&self) -> impl Iterator<Item = &GraphOp> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    fn grow(&mut self) {
        let old_cap = self.slots.len() as u64;
        let mut bigger: Vec<Option<GraphOp>> = (0..old_cap * 2).map(|_| None).collect();
        // An old index maps to the unique ticket in `[next, next + old_cap)`
        // congruent to it mod the old capacity.
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(op) = slot.take() {
                let offset = (i as u64).wrapping_sub(self.next) & (old_cap - 1);
                let ticket = self.next + offset;
                bigger[(ticket & (old_cap * 2 - 1)) as usize] = Some(op);
            }
        }
        self.slots = bigger;
    }
}

/// The graph-owner loop: reorder by ticket, apply contiguously, return the
/// graph (and the first structural error, if any) at shutdown.
///
/// On error the loop stops mutating the graph and switches to
/// drain-and-discard: messages keep being received (and batch buffers
/// recycled) so producers never block on a full ring, but no further op is
/// applied; the loop exits at the shutdown marker as usual.
#[allow(clippy::too_many_arguments)]
fn owner_loop(
    rx: RxPort,
    pool: Arc<BatchPool>,
    mut graph: Graph,
    regs: Arc<Registers>,
    stats: Arc<IcdStats>,
    config: IcdConfig,
    sink: Option<SccSink>,
    obs: Option<Arc<PipelineObs>>,
) -> (Graph, Option<PipelineError>) {
    let mut reorder = Reorder::with_capacity(REORDER_CAPACITY);
    let mut shutdown_at: Option<u64> = None;
    let mut error: Option<PipelineError> = None;
    let mut pacer = CollectPacer::new(config.collect_every);
    // Collector root scratch, retained across passes.
    let mut roots: Vec<TxId> = Vec::new();
    // `recv` returning `None` (channel transport only: every sender dropped
    // without a shutdown marker) also ends the loop.
    'recv: while let Some(msg) = rx.recv() {
        match msg {
            Msg::Ops(mut batch) => {
                for (ticket, op) in batch.drain(..) {
                    if error.is_none() {
                        if let Err(e) = reorder.insert(ticket, op) {
                            error = Some(e);
                        }
                    }
                }
                pool.put(batch);
            }
            Msg::Shutdown(ticket) => shutdown_at = Some(ticket),
        }
        if error.is_some() {
            if shutdown_at.is_some() {
                break 'recv;
            }
            continue;
        }
        loop {
            if shutdown_at == Some(reorder.next_ticket()) {
                break 'recv;
            }
            let Some(op) = reorder.pop_next() else {
                break;
            };
            if matches!(op, GraphOp::Finish { .. }) {
                pacer.on_finish();
            }
            let t0 = obs.as_ref().and_then(|o| o.clock());
            let applied = apply(&mut graph, &config, sink.as_ref(), obs.as_deref(), op);
            if let Some(obs) = &obs {
                if let Some(t0) = t0 {
                    obs.graph.shard_busy[0].add(t0.elapsed().as_nanos() as u64);
                }
                obs.graph.apply_latency.record_elapsed(t0);
                obs.graph.ops_applied.inc();
                obs.graph.queue_depth.dec();
            }
            if let Err(e) = applied {
                error = Some(e);
                break;
            }
        }
        if error.is_some() && shutdown_at.is_some() {
            break 'recv;
        }
        if let Some(obs) = &obs {
            obs.graph.reorder_depth.set(reorder.len() as i64);
        }
        // Collect only between contiguous runs, when the scoreboard is
        // exactly the out-of-order tail: its referenced transactions become
        // extra roots, so nothing a buffered op still needs is reclaimed.
        if error.is_none() && pacer.due() {
            run_collect(
                &mut graph,
                &regs,
                &stats,
                &mut pacer,
                Some(&reorder),
                &mut roots,
                obs.as_deref(),
            );
        }
    }
    if shutdown_at.is_some() && error.is_none() {
        debug_assert!(
            reorder.len() == 0,
            "ops left unapplied at shutdown (missing flush?)"
        );
    }
    (graph, error)
}

/// Applies one operation, mirroring the synchronous under-lock code paths.
/// `Err` means the op stream itself was malformed; the graph is left as it
/// was before the offending op.
pub(crate) fn apply(
    graph: &mut Graph,
    config: &IcdConfig,
    sink: Option<&SccSink>,
    obs: Option<&PipelineObs>,
    op: GraphOp,
) -> Result<(), PipelineError> {
    match op {
        GraphOp::Insert {
            id,
            thread,
            kind,
            seq,
            prev,
        } => {
            graph.insert(id, thread, kind, seq);
            if prev.is_some() {
                let src_pos = graph.node(prev).map_or(0, |n| n.final_len);
                graph.add_edge(Edge {
                    src: prev,
                    src_pos,
                    dst: id,
                    dst_pos: 0,
                    kind: EdgeKind::Intra,
                });
            }
        }
        GraphOp::Finish { id, log, .. } => {
            graph.finish(id, log)?;
            if config.detect_sccs {
                let t0 = obs.and_then(|o| o.clock());
                let probe = graph.scc_probe(id);
                if let Some(obs) = obs {
                    obs.graph.scc_latency.record_elapsed(t0);
                    match &probe {
                        SccProbe::Skipped => obs.graph.sccs_skipped_trivial.inc(),
                        SccProbe::NoCycle => {}
                        SccProbe::Cycle(r) => {
                            obs.graph.sccs_detected.inc();
                            obs.trace(Stage::Graph, EventKind::SccDetected, r.len() as u64);
                        }
                    }
                }
                if let SccProbe::Cycle(report) = probe {
                    if let Some(sink) = sink {
                        sink(report);
                    }
                }
            }
        }
        GraphOp::Cross {
            src,
            src_pos,
            dst,
            dst_pos,
            ..
        } => {
            graph.add_edge(Edge {
                src,
                src_pos,
                dst,
                dst_pos,
                kind: EdgeKind::Cross,
            });
        }
        GraphOp::Upgrade {
            cur,
            dst_pos,
            last_rd_ex,
            snap,
            ..
        } => {
            if last_rd_ex.is_some() && last_rd_ex != cur {
                if let Some(src_pos) = resolve_src_pos(graph, &snap, last_rd_ex) {
                    graph.add_edge(Edge {
                        src: last_rd_ex,
                        src_pos,
                        dst: cur,
                        dst_pos,
                        kind: EdgeKind::Cross,
                    });
                }
            }
            let g = graph.g_last_rd_sh;
            if g.is_some() && g != cur {
                if let Some(src_pos) = resolve_src_pos(graph, &snap, g) {
                    graph.add_edge(Edge {
                        src: g,
                        src_pos,
                        dst: cur,
                        dst_pos,
                        kind: EdgeKind::Cross,
                    });
                }
            }
            graph.g_last_rd_sh = cur;
        }
        GraphOp::Fence {
            cur, dst_pos, snap, ..
        } => {
            let g = graph.g_last_rd_sh;
            if g.is_some() && g != cur {
                if let Some(src_pos) = resolve_src_pos(graph, &snap, g) {
                    graph.add_edge(Edge {
                        src: g,
                        src_pos,
                        dst: cur,
                        dst_pos,
                        kind: EdgeKind::Cross,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Source log position for an edge out of `tx`: the creation-time published
/// length if `tx` was still its thread's current transaction, else the final
/// length its (already applied) `Finish` recorded. `None` if the node was
/// collected — the edge would be dropped anyway.
fn resolve_src_pos(graph: &Graph, snap: &PosSnapshot, tx: TxId) -> Option<u32> {
    let node = graph.node(tx)?;
    // `pos_snapshot` walks the full register file, so every live node's
    // thread is covered; a short snapshot would silently compare `current`
    // against 0 and use a stale `final_len` for a still-live source.
    debug_assert!(
        node.thread.index() < snap.len(),
        "pos snapshot shorter than thread index {}",
        node.thread.index()
    );
    let Some(&(current, len)) = snap.get(node.thread.index()) else {
        return Some(node.final_len);
    };
    Some(if current == tx.0 { len } else { node.final_len })
}

/// The owner-side collector: same register roots and adaptive threshold as
/// the synchronous [`crate::Icd`] collector, minus the lock — plus every
/// transaction referenced by a scoreboard-buffered (received, unapplied) op.
///
/// Ops still in flight (unreceived) stay safe without extra roots: every
/// op's *destination* was its thread's current transaction at creation, so
/// its `Finish` carries a later ticket and the node is still unfinished in
/// the applied graph — and `Graph::collect` roots unfinished transactions
/// itself. An in-flight op's *source* can be collected, but only when it is
/// finished, unreachable, and has its full (final) in-edge set applied —
/// i.e. provably never part of a future cycle — so dropping an edge out of
/// it loses nothing.
pub(crate) fn run_collect(
    graph: &mut Graph,
    regs: &Registers,
    stats: &IcdStats,
    pacer: &mut CollectPacer,
    reorder: Option<&Reorder>,
    roots: &mut Vec<TxId>,
    obs: Option<&PipelineObs>,
) {
    let t_dbg = crate::icd::debug_collect().then(std::time::Instant::now);
    let t_obs = obs.and_then(|o| o.clock());
    roots.clear();
    for tr in regs.threads.iter() {
        roots.push(TxId(tr.current_tx.load(Ordering::Acquire)));
        roots.push(TxId(tr.last_rd_ex.load(Ordering::Acquire)));
    }
    roots.push(graph.g_last_rd_sh);
    // Shard owners pass `None`: they have no scoreboard (the router applies
    // strict ticket order before routing), and the in-flight safety
    // argument below covers ops still in their rings.
    for op in reorder.map(Reorder::iter).into_iter().flatten() {
        match *op {
            GraphOp::Insert { id, prev, .. } => {
                roots.push(id);
                roots.push(prev);
            }
            GraphOp::Finish { id, .. } => roots.push(id),
            GraphOp::Cross { src, dst, .. } => {
                roots.push(src);
                roots.push(dst);
            }
            GraphOp::Upgrade {
                cur, last_rd_ex, ..
            } => {
                roots.push(cur);
                roots.push(last_rd_ex);
            }
            GraphOp::Fence { cur, .. } => roots.push(cur),
        }
    }
    let live = graph.len();
    let collected = graph.collect(roots.iter().copied());
    pacer.after_collect(graph.len());
    if let Some(t0) = t_dbg {
        eprintln!(
            "[collector:pipeline] live {live} collected {collected} in {:?}",
            t0.elapsed()
        );
    }
    stats
        .collected_txs
        .fetch_add(collected as u64, Ordering::Relaxed);
    if let Some(obs) = obs {
        obs.graph.collect_latency.record_elapsed(t_obs);
        obs.trace(Stage::Graph, EventKind::CollectRun, collected as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icd::ThreadRegs;

    fn test_regs(n: usize) -> Arc<Registers> {
        Arc::new(Registers {
            threads: (0..n).map(|_| ThreadRegs::default()).collect(),
        })
    }

    fn op() -> GraphOp {
        GraphOp::Cross {
            src: TxId(1),
            src_thread: ThreadId(0),
            src_pos: 0,
            dst: TxId(2),
            dst_thread: ThreadId(1),
            dst_pos: 0,
        }
    }

    #[test]
    fn pacer_with_collection_disabled_never_counts_or_wraps() {
        let mut p = CollectPacer::new(0);
        // Regression for the unconditional `ends_since_collect += 1`: force
        // the counter to the wrap boundary and drive more ends through it.
        p.ends = u32::MAX - 1;
        for _ in 0..8 {
            p.on_finish(); // old code: debug overflow panic on the 2nd call
            assert!(!p.due());
        }
        assert_eq!(p.ends, u32::MAX - 1, "disabled pacer must not count");
    }

    #[test]
    fn pacer_saturates_at_a_maximal_threshold_instead_of_wrapping() {
        let mut p = CollectPacer::new(1);
        p.threshold = u32::MAX;
        p.ends = u32::MAX - 1;
        assert!(!p.due());
        p.on_finish();
        assert!(p.due());
        p.on_finish(); // would wrap (and panic in debug) without saturation
        assert_eq!(p.ends, u32::MAX);
        assert!(p.due());
    }

    #[test]
    fn pacer_threshold_adapts_to_survivors() {
        let mut p = CollectPacer::new(4);
        for _ in 0..4 {
            p.on_finish();
        }
        assert!(p.due());
        p.after_collect(100);
        assert_eq!(p.threshold, 50);
        assert!(!p.due());
        p.after_collect(0);
        assert_eq!(p.threshold, 4);
    }

    #[test]
    fn reorder_applies_contiguously_across_gaps() {
        let mut r = Reorder::with_capacity(4);
        r.insert(1, op()).unwrap();
        assert!(r.pop_next().is_none(), "ticket 0 missing");
        r.insert(0, op()).unwrap();
        assert!(r.pop_next().is_some());
        assert!(r.pop_next().is_some());
        assert_eq!(r.next_ticket(), 2);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn reorder_grows_past_its_initial_window() {
        let mut r = Reorder::with_capacity(4);
        // Tickets spanning 4x the initial window, inserted far-first.
        for t in (0..16u64).rev() {
            r.insert(t, op()).unwrap();
        }
        assert_eq!(r.len(), 16);
        for t in 0..16u64 {
            assert!(r.pop_next().is_some(), "ticket {t} lost in growth");
        }
        assert_eq!(r.next_ticket(), 16);
    }

    #[test]
    fn reorder_grow_preserves_slots_mid_stream() {
        let mut r = Reorder::with_capacity(4);
        for t in 0..3u64 {
            r.insert(t, op()).unwrap();
        }
        assert!(r.pop_next().is_some()); // next = 1, occupied window shifted
        r.insert(9, op()).unwrap(); // forces growth with live entries at 1, 2
        assert_eq!(r.len(), 3);
        assert!(r.pop_next().is_some());
        assert!(r.pop_next().is_some());
        assert!(r.pop_next().is_none(), "tickets 3..9 missing");
        for t in 3..9u64 {
            r.insert(t, op()).unwrap();
        }
        for _ in 3..10u64 {
            assert!(r.pop_next().is_some());
        }
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn reorder_rejects_stale_and_duplicate_tickets() {
        let mut r = Reorder::with_capacity(4);
        r.insert(0, op()).unwrap();
        assert!(r.pop_next().is_some());
        // A ticket at/below the frontier: formerly a release-mode silent
        // occupancy desync, now a checked error leaving the board intact.
        assert_eq!(
            r.insert(0, op()),
            Err(PipelineError::StaleTicket { ticket: 0, next: 1 })
        );
        r.insert(2, op()).unwrap();
        assert_eq!(
            r.insert(2, op()),
            Err(PipelineError::DuplicateTicket { ticket: 2 })
        );
        assert_eq!(r.len(), 1, "rejected inserts must not leak occupancy");
        assert!(r.pop_next().is_none(), "ticket 1 still missing");
    }

    #[test]
    fn shutdown_is_wake_driven_not_park_timeout_bound() {
        // A park timeout far beyond the test's latency budget: if shutdown
        // still relied on the owner's periodic timeout poll (the old
        // behaviour), the join below would take ~30 s and trip the assert.
        let h = PipelineHandle::spawn_with_park_timeout(
            Graph::default(),
            test_regs(1),
            Arc::new(IcdStats::default()),
            IcdConfig::default(),
            None,
            None,
            std::time::Duration::from_secs(30),
        );
        // Let the owner drain the (empty) ring and park.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let t0 = std::time::Instant::now();
        let slot = Mutex::new(Graph::default());
        assert!(h.shutdown_into(&slot).is_none());
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "drain latency was park-timeout bound: {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn malformed_finish_is_a_structured_error_not_a_panic() {
        let h = PipelineHandle::spawn(
            Graph::default(),
            test_regs(1),
            Arc::new(IcdStats::default()),
            IcdConfig::default(),
            None,
            None,
        );
        // Finish for a transaction that was never inserted: the owner used
        // to panic (poisoning the join), now it drains and reports.
        h.send_one(GraphOp::Finish {
            id: TxId(42),
            thread: ThreadId(0),
            log: vec![],
        });
        let slot = Mutex::new(Graph::default());
        assert_eq!(
            h.shutdown_into(&slot),
            Some(PipelineError::MalformedFinish {
                id: TxId(42),
                already_finished: false,
            })
        );
    }

    #[test]
    fn sharded_router_surfaces_shard_errors_at_shutdown() {
        let h = PipelineHandle::spawn(
            Graph::default(),
            test_regs(2),
            Arc::new(IcdStats::default()),
            IcdConfig {
                shards: 2,
                ..IcdConfig::default()
            },
            None,
            None,
        );
        h.send_one(GraphOp::Finish {
            id: TxId(7),
            thread: ThreadId(1),
            log: vec![],
        });
        let slot = Mutex::new(Graph::default());
        assert_eq!(
            h.shutdown_into(&slot),
            Some(PipelineError::MalformedFinish {
                id: TxId(7),
                already_finished: false,
            })
        );
    }
}
