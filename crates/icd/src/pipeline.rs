//! Asynchronous graph pipeline: application threads append linearized graph
//! operations instead of mutating the IDG under a global lock; a dedicated
//! *graph-owner* thread applies them, runs SCC detection and the transaction
//! collector, and hands SCC reports to a sink (dc-core wires the sink to the
//! PCD replay pool).
//!
//! # Linearization by tickets
//!
//! Every operation draws a *ticket* from one global counter at creation
//! time, on the application thread, at exactly the point where synchronous
//! mode would have acquired the graph lock. Operations travel to the owner
//! over a channel in per-thread batches, so they can arrive out of ticket
//! order; the owner holds early arrivals in a reorder buffer and applies a
//! strictly contiguous ticket sequence. The applied order is therefore a
//! valid lock-acquisition order of the synchronous analysis — and under the
//! deterministic engine (one OS thread driving all program threads) it is
//! *the* order synchronous mode uses, which is what makes pipelined and
//! synchronous runs produce identical SCCs, violations, and static
//! transaction information on deterministic schedules.
//!
//! Two details keep apply-time semantics equal to lock-time semantics:
//!
//! * Operations embed everything they read from mutable non-graph state
//!   (published log lengths, `lastRdEx`, per-thread current-transaction
//!   registers) at creation time. The rare upgrading/fence operations carry
//!   a full per-thread `(currTX, log length)` snapshot because their edge
//!   source — the graph-owned `gLastRdSh` register — is only resolved at
//!   apply time.
//! * State a source transaction's position depends on *after* it finished
//!   (`final_len`) is resolved by the owner: the `Finish` that set it
//!   necessarily drew an earlier ticket (the observing thread's ticket was
//!   drawn after an acquire-load that observed the finish), so it has
//!   already been applied.
//!
//! Progress: tickets are only held in a thread's private buffer for the
//! duration of one instrumentation hook — every hook flushes its batch
//! before returning — so the reorder buffer's gaps resolve promptly and
//! [`PipelineHandle::shutdown_into`] (called once all application threads
//! have joined) observes every ticket below its own.

use crate::graph::{Graph, SccProbe};
use crate::icd::{IcdConfig, IcdStats, Registers};
use crate::types::{Edge, EdgeKind, LogEntry, SccReport, TxId, TxKind};
use crossbeam::channel::{self, Receiver, Sender};
use dc_obs::{EventKind, PipelineObs, Stage};
use dc_runtime::ids::ThreadId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Whether IDG maintenance runs on the application threads under a global
/// lock (`Sync`) or on a dedicated graph-owner thread fed through a channel
/// (`Pipelined`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PipelineMode {
    /// Application threads mutate the graph directly (deterministic engine,
    /// unit tests, and the paper's baseline configuration).
    #[default]
    Sync,
    /// Application threads enqueue operations; SCC detection, collection,
    /// and PCD dispatch run off the application hot path.
    Pipelined,
}

/// Callback invoked by the graph-owner thread for every detected SCC.
pub type SccSink = Box<dyn Fn(SccReport) + Send + 'static>;

/// Per-thread `(currTX, published log length)` snapshot taken when a rare
/// upgrading/fence operation is created, reproducing the synchronous
/// analysis's live-position reads for sources resolved at apply time.
pub(crate) type PosSnapshot = Box<[(u64, u32)]>;

/// One linearized graph mutation, in application-thread creation order.
#[derive(Debug)]
pub(crate) enum GraphOp {
    /// A transaction begins: node insertion plus the program-order edge
    /// from the thread's previous transaction.
    Insert {
        id: TxId,
        thread: ThreadId,
        kind: TxKind,
        seq: u64,
        prev: TxId,
    },
    /// A transaction ends with its final read/write log; triggers SCC
    /// detection and (periodically) the collector on the owner.
    Finish { id: TxId, log: Vec<LogEntry> },
    /// `handleConflictingTransition`: one cross-thread edge, positions
    /// snapshotted at creation.
    Cross {
        src: TxId,
        src_pos: u32,
        dst: TxId,
        dst_pos: u32,
    },
    /// `handleUpgradingTransition`: edges from `lastRdEx` and `gLastRdSh`,
    /// then the `gLastRdSh` update.
    Upgrade {
        cur: TxId,
        dst_pos: u32,
        last_rd_ex: TxId,
        snap: PosSnapshot,
    },
    /// `handleFenceTransition`: edge from `gLastRdSh`.
    Fence {
        cur: TxId,
        dst_pos: u32,
        snap: PosSnapshot,
    },
}

/// Channel protocol between application threads and the graph owner.
pub(crate) enum Msg {
    /// A batch of ticketed operations from one thread's buffer.
    Ops(Vec<(u64, GraphOp)>),
    /// Drain marker carrying the final ticket; sent by
    /// [`PipelineHandle::shutdown_into`] after all application threads
    /// joined, so every lower ticket is already in flight.
    Shutdown(u64),
}

/// Application-side handle: the op channel, the ticket counter, and the
/// owner thread's join handle.
pub(crate) struct PipelineHandle {
    sender: Sender<Msg>,
    next_ticket: AtomicU64,
    owner: Mutex<Option<JoinHandle<Graph>>>,
    obs: Option<Arc<PipelineObs>>,
}

impl std::fmt::Debug for PipelineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineHandle").finish_non_exhaustive()
    }
}

impl PipelineHandle {
    /// Moves `graph` onto a freshly spawned graph-owner thread.
    pub(crate) fn spawn(
        graph: Graph,
        regs: Arc<Registers>,
        stats: Arc<IcdStats>,
        config: IcdConfig,
        sink: Option<SccSink>,
        obs: Option<Arc<PipelineObs>>,
    ) -> Self {
        let (tx, rx) = channel::unbounded();
        let owner_obs = obs.clone();
        let owner = std::thread::Builder::new()
            .name("dc-graph-owner".into())
            .spawn(move || owner_loop(rx, graph, regs, stats, config, sink, owner_obs))
            .expect("spawn graph-owner thread");
        PipelineHandle {
            sender: tx,
            next_ticket: AtomicU64::new(0),
            owner: Mutex::new(Some(owner)),
            obs,
        }
    }

    /// Draws the next linearization ticket.
    pub(crate) fn ticket(&self) -> u64 {
        self.next_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends one thread's buffered batch.
    pub(crate) fn send_batch(&self, batch: Vec<(u64, GraphOp)>) {
        if let Some(obs) = &self.obs {
            let n = batch.len() as u64;
            obs.graph.ops_enqueued.add(n);
            obs.graph.batches.inc();
            obs.graph.queue_depth.add(n as i64);
            obs.trace(Stage::Graph, EventKind::BatchSent, n);
        }
        let _ = self.sender.send(Msg::Ops(batch));
    }

    /// Ticket-and-send for rare operations created outside a thread-local
    /// buffer (edge procedures may run on either coordination participant).
    pub(crate) fn send_one(&self, op: GraphOp) {
        let ticket = self.ticket();
        if let Some(obs) = &self.obs {
            obs.graph.ops_enqueued.inc();
            obs.graph.batches.inc();
            obs.graph.queue_depth.inc();
            obs.trace(Stage::Graph, EventKind::BatchSent, 1);
        }
        let _ = self.sender.send(Msg::Ops(vec![(ticket, op)]));
    }

    /// Drains the pipeline and moves the graph back into `slot`. Must be
    /// called after all application threads have flushed (joined); no-op on
    /// repeated calls.
    pub(crate) fn shutdown_into(&self, slot: &Mutex<Graph>) {
        let Some(handle) = self.owner.lock().take() else {
            return;
        };
        let ticket = self.ticket();
        let _ = self.sender.send(Msg::Shutdown(ticket));
        let graph = handle.join().expect("graph-owner thread panicked");
        *slot.lock() = graph;
    }
}

/// The graph-owner loop: reorder by ticket, apply contiguously, return the
/// graph at shutdown.
fn owner_loop(
    rx: Receiver<Msg>,
    mut graph: Graph,
    regs: Arc<Registers>,
    stats: Arc<IcdStats>,
    config: IcdConfig,
    sink: Option<SccSink>,
    obs: Option<Arc<PipelineObs>>,
) -> Graph {
    let mut reorder: BTreeMap<u64, GraphOp> = BTreeMap::new();
    let mut next: u64 = 0;
    let mut shutdown_at: Option<u64> = None;
    let mut ends_since_collect: u32 = 0;
    let mut collect_threshold: u32 = config.collect_every.max(1);
    'recv: for msg in rx.iter() {
        match msg {
            Msg::Ops(batch) => {
                for (ticket, op) in batch {
                    reorder.insert(ticket, op);
                }
            }
            Msg::Shutdown(ticket) => shutdown_at = Some(ticket),
        }
        loop {
            if shutdown_at == Some(next) {
                break 'recv;
            }
            let Some(op) = reorder.remove(&next) else {
                break;
            };
            next += 1;
            if matches!(op, GraphOp::Finish { .. }) {
                ends_since_collect += 1;
            }
            apply(&mut graph, &config, sink.as_ref(), obs.as_deref(), op);
            if let Some(obs) = &obs {
                obs.graph.ops_applied.inc();
                obs.graph.queue_depth.dec();
            }
        }
        if let Some(obs) = &obs {
            obs.graph.reorder_depth.set(reorder.len() as i64);
        }
        // Collect only between contiguous runs, when the reorder buffer is
        // exactly the out-of-order tail: its referenced transactions become
        // extra roots, so nothing a buffered op still needs is reclaimed.
        if config.collect_every > 0 && ends_since_collect >= collect_threshold {
            ends_since_collect = 0;
            run_collect(
                &mut graph,
                &regs,
                &stats,
                &config,
                &mut collect_threshold,
                &reorder,
                obs.as_deref(),
            );
        }
    }
    if shutdown_at.is_some() {
        debug_assert!(
            reorder.is_empty(),
            "ops left unapplied at shutdown (missing flush?)"
        );
    }
    graph
}

/// Applies one operation, mirroring the synchronous under-lock code paths.
fn apply(
    graph: &mut Graph,
    config: &IcdConfig,
    sink: Option<&SccSink>,
    obs: Option<&PipelineObs>,
    op: GraphOp,
) {
    match op {
        GraphOp::Insert {
            id,
            thread,
            kind,
            seq,
            prev,
        } => {
            graph.insert(id, thread, kind, seq);
            if prev.is_some() {
                let src_pos = graph.node(prev).map_or(0, |n| n.final_len);
                graph.add_edge(Edge {
                    src: prev,
                    src_pos,
                    dst: id,
                    dst_pos: 0,
                    kind: EdgeKind::Intra,
                });
            }
        }
        GraphOp::Finish { id, log } => {
            graph.finish(id, log);
            if config.detect_sccs {
                let t0 = obs.and_then(|o| o.clock());
                let probe = graph.scc_probe(id);
                if let Some(obs) = obs {
                    obs.graph.scc_latency.record_elapsed(t0);
                    match &probe {
                        SccProbe::Skipped => obs.graph.sccs_skipped_trivial.inc(),
                        SccProbe::NoCycle => {}
                        SccProbe::Cycle(r) => {
                            obs.graph.sccs_detected.inc();
                            obs.trace(Stage::Graph, EventKind::SccDetected, r.len() as u64);
                        }
                    }
                }
                if let SccProbe::Cycle(report) = probe {
                    if let Some(sink) = sink {
                        sink(report);
                    }
                }
            }
        }
        GraphOp::Cross {
            src,
            src_pos,
            dst,
            dst_pos,
        } => {
            graph.add_edge(Edge {
                src,
                src_pos,
                dst,
                dst_pos,
                kind: EdgeKind::Cross,
            });
        }
        GraphOp::Upgrade {
            cur,
            dst_pos,
            last_rd_ex,
            snap,
        } => {
            if last_rd_ex.is_some() && last_rd_ex != cur {
                if let Some(src_pos) = resolve_src_pos(graph, &snap, last_rd_ex) {
                    graph.add_edge(Edge {
                        src: last_rd_ex,
                        src_pos,
                        dst: cur,
                        dst_pos,
                        kind: EdgeKind::Cross,
                    });
                }
            }
            let g = graph.g_last_rd_sh;
            if g.is_some() && g != cur {
                if let Some(src_pos) = resolve_src_pos(graph, &snap, g) {
                    graph.add_edge(Edge {
                        src: g,
                        src_pos,
                        dst: cur,
                        dst_pos,
                        kind: EdgeKind::Cross,
                    });
                }
            }
            graph.g_last_rd_sh = cur;
        }
        GraphOp::Fence { cur, dst_pos, snap } => {
            let g = graph.g_last_rd_sh;
            if g.is_some() && g != cur {
                if let Some(src_pos) = resolve_src_pos(graph, &snap, g) {
                    graph.add_edge(Edge {
                        src: g,
                        src_pos,
                        dst: cur,
                        dst_pos,
                        kind: EdgeKind::Cross,
                    });
                }
            }
        }
    }
}

/// Source log position for an edge out of `tx`: the creation-time published
/// length if `tx` was still its thread's current transaction, else the final
/// length its (already applied) `Finish` recorded. `None` if the node was
/// collected — the edge would be dropped anyway.
fn resolve_src_pos(graph: &Graph, snap: &PosSnapshot, tx: TxId) -> Option<u32> {
    let node = graph.node(tx)?;
    let (current, len) = snap.get(node.thread.index()).copied().unwrap_or((0, 0));
    Some(if current == tx.0 { len } else { node.final_len })
}

/// The owner-side collector: same register roots and adaptive threshold as
/// the synchronous [`crate::Icd`] collector, minus the lock — plus every
/// transaction referenced by a reorder-buffered (received, unapplied) op.
///
/// Ops still in flight (unreceived) stay safe without extra roots: every
/// op's *destination* was its thread's current transaction at creation, so
/// its `Finish` carries a later ticket and the node is still unfinished in
/// the applied graph — and `Graph::collect` roots unfinished transactions
/// itself. An in-flight op's *source* can be collected, but only when it is
/// finished, unreachable, and has its full (final) in-edge set applied —
/// i.e. provably never part of a future cycle — so dropping an edge out of
/// it loses nothing.
#[allow(clippy::too_many_arguments)]
fn run_collect(
    graph: &mut Graph,
    regs: &Registers,
    stats: &IcdStats,
    config: &IcdConfig,
    collect_threshold: &mut u32,
    reorder: &BTreeMap<u64, GraphOp>,
    obs: Option<&PipelineObs>,
) {
    let t0 = std::time::Instant::now();
    let t_obs = obs.and_then(|o| o.clock());
    let mut roots: Vec<TxId> = Vec::with_capacity(regs.threads.len() * 2 + 1 + reorder.len());
    for tr in regs.threads.iter() {
        roots.push(TxId(tr.current_tx.load(Ordering::Acquire)));
        roots.push(TxId(tr.last_rd_ex.load(Ordering::Acquire)));
    }
    roots.push(graph.g_last_rd_sh);
    for op in reorder.values() {
        match *op {
            GraphOp::Insert { id, prev, .. } => {
                roots.push(id);
                roots.push(prev);
            }
            GraphOp::Finish { id, .. } => roots.push(id),
            GraphOp::Cross { src, dst, .. } => {
                roots.push(src);
                roots.push(dst);
            }
            GraphOp::Upgrade {
                cur, last_rd_ex, ..
            } => {
                roots.push(cur);
                roots.push(last_rd_ex);
            }
            GraphOp::Fence { cur, .. } => roots.push(cur),
        }
    }
    let live = graph.len();
    let collected = graph.collect(roots);
    let survivors = graph.len();
    *collect_threshold = config
        .collect_every
        .max(u32::try_from(survivors / 2).unwrap_or(u32::MAX));
    if crate::icd::debug_collect() {
        eprintln!(
            "[collector:pipeline] live {live} collected {collected} in {:?}",
            t0.elapsed()
        );
    }
    stats
        .collected_txs
        .fetch_add(collected as u64, Ordering::Relaxed);
    if let Some(obs) = obs {
        obs.graph.collect_latency.record_elapsed(t_obs);
        obs.trace(Stage::Graph, EventKind::CollectRun, collected as u64);
    }
}
