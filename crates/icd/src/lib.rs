//! ICD — imprecise cycle detection, the first of DoubleChecker's two
//! cooperating analyses (paper §3.2).
//!
//! ICD monitors all program accesses, piggybacking on Octet's state
//! transitions to detect cross-thread dependences soundly but imprecisely.
//! It builds the *imprecise dependence graph* (IDG) over regular and
//! (merged) unary transactions, detects strongly connected components when
//! transactions finish, and — in single-run mode or the second run of
//! multi-run mode — records per-transaction read/write logs (with duplicate
//! elision) so PCD can replay just the transactions in potential cycles.
//!
//! The crate exposes:
//!
//! * [`Icd`] — the analysis itself (hook API driven by `dc-core`'s checker),
//! * [`graph::Graph`] — the IDG with SCC detection and the transaction
//!   collector,
//! * the data types handed to PCD: [`SccReport`], [`TxSnapshot`],
//!   [`LogEntry`], [`Edge`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
mod icd;
mod pipeline;
mod ring;
mod shard;
pub mod types;

pub use icd::{Icd, IcdConfig, IcdStats};
pub use pipeline::{OpTransport, PipelineError, PipelineMode, SccSink};
pub use types::{Edge, EdgeKind, LogEntry, ReplayConstraint, SccReport, TxId, TxKind, TxSnapshot};
