//! Property-based tests of the IDG: SCC detection and the transaction
//! collector on arbitrary graphs.

use dc_icd::graph::Graph;
use dc_icd::{Edge, EdgeKind, TxId, TxKind};
use dc_runtime::ids::ThreadId;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u64, u64)>)> {
    (2usize..20).prop_flat_map(|n| {
        let edges = prop::collection::vec((1..=n as u64, 1..=n as u64), 0..60);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u64, u64)]) -> Graph {
    let mut g = Graph::new();
    for i in 1..=n as u64 {
        g.insert(TxId(i), ThreadId((i % 4) as u16), TxKind::Unary, i);
    }
    for &(s, d) in edges {
        g.add_edge(Edge {
            src: TxId(s),
            src_pos: 0,
            dst: TxId(d),
            dst_pos: 0,
            kind: EdgeKind::Cross,
        });
    }
    for i in 1..=n as u64 {
        g.finish(TxId(i), vec![]).unwrap();
    }
    g
}

/// Reference forward-reachability.
fn reachable(edges: &[(u64, u64)], from: u64) -> HashSet<u64> {
    let mut seen: HashSet<u64> = [from].into_iter().collect();
    let mut work = vec![from];
    while let Some(v) = work.pop() {
        for &(s, d) in edges {
            if s == v && seen.insert(d) {
                work.push(d);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `scc_from(root)` returns exactly the nodes mutually reachable with
    /// the root (per a naive reference computation), when ≥ 2.
    #[test]
    fn scc_matches_reference((n, edges) in arb_graph()) {
        let mut g = build(n, &edges);
        for root in 1..=n as u64 {
            let fwd = reachable(&edges, root);
            let expected: HashSet<u64> = fwd
                .iter()
                .copied()
                .filter(|&v| v != root && reachable(&edges, v).contains(&root))
                .chain(std::iter::once(root))
                .collect();
            let got = g.scc_from(TxId(root));
            if expected.len() >= 2 {
                let got = got.expect("SCC with ≥2 members detected");
                let got_ids: HashSet<u64> = got.tx_ids().map(|t| t.0).collect();
                prop_assert_eq!(got_ids, expected, "root {}", root);
            } else {
                prop_assert!(got.is_none(), "root {} is not in a cycle", root);
            }
        }
    }

    /// The collector never removes a node reachable from a root, and every
    /// removed node was unreachable.
    #[test]
    fn collect_respects_reachability((n, edges) in arb_graph(), root in 1u64..20) {
        let root = (root % n as u64) + 1;
        let mut g = build(n, &edges);
        let live_before: HashSet<u64> = (1..=n as u64).collect();
        let expected_live = reachable(&edges, root);
        let collected = g.collect([TxId(root)]);
        prop_assert_eq!(collected, live_before.len() - expected_live.len());
        for v in 1..=n as u64 {
            prop_assert_eq!(
                g.node(TxId(v)).is_some(),
                expected_live.contains(&v),
                "node {}",
                v
            );
        }
    }

    /// Interleaved insert/edge/finish/collect against a reference model:
    /// slab slot reuse must never resurrect collected nodes, stale edges,
    /// or stale Tarjan scratch state, and the slab never grows past the
    /// peak live-node count (freed slots are actually reused).
    #[test]
    fn interleaved_lifecycle_reuses_slots_without_stale_state(
        ops in prop::collection::vec((0u8..4, any::<u16>(), any::<u16>()), 1..120)
    ) {
        let mut g = Graph::new();
        let mut next_id = 1u64;
        let mut live: Vec<u64> = Vec::new();
        let mut finished: HashSet<u64> = HashSet::new();
        let mut edges: Vec<(u64, u64)> = Vec::new();
        let mut peak = 0usize;
        for &(op, a, b) in &ops {
            match op {
                0 => {
                    let id = next_id;
                    next_id += 1;
                    g.insert(TxId(id), ThreadId(a % 4), TxKind::Unary, id);
                    live.push(id);
                    peak = peak.max(live.len());
                }
                1 if !live.is_empty() => {
                    let s = live[a as usize % live.len()];
                    let d = live[b as usize % live.len()];
                    g.add_edge(Edge {
                        src: TxId(s),
                        src_pos: 0,
                        dst: TxId(d),
                        dst_pos: 0,
                        kind: EdgeKind::Cross,
                    });
                    if s != d {
                        edges.push((s, d)); // the graph drops self-edges
                    }
                }
                2 if !live.is_empty() => {
                    let id = live[a as usize % live.len()];
                    if finished.insert(id) {
                        g.finish(TxId(id), vec![]).unwrap();
                        g.scc_from(TxId(id)); // exercise scratch reuse mid-stream
                    }
                }
                3 if !live.is_empty() => {
                    let root = live[a as usize % live.len()];
                    // Model survivors: forward closure of {root} ∪ unfinished.
                    let mut work: Vec<u64> =
                        live.iter().copied().filter(|v| !finished.contains(v)).collect();
                    work.push(root);
                    let mut keep: HashSet<u64> = work.iter().copied().collect();
                    while let Some(v) = work.pop() {
                        for &(s, d) in &edges {
                            if s == v && keep.insert(d) {
                                work.push(d);
                            }
                        }
                    }
                    let collected = g.collect([TxId(root)]);
                    prop_assert_eq!(collected, live.len() - keep.len());
                    live.retain(|v| keep.contains(v));
                    finished.retain(|v| keep.contains(v));
                    edges.retain(|&(s, _)| keep.contains(&s));
                }
                _ => {}
            }
        }
        // Structural integrity after arbitrary slot churn.
        prop_assert_eq!(g.len(), live.len());
        prop_assert_eq!(g.slab_len(), g.len() + g.free_slots());
        prop_assert!(
            g.slab_len() <= peak.max(1),
            "slab grew past peak live count {}: {}",
            peak,
            g.slab_len()
        );
        // Collected ids stay gone; live nodes carry exactly the model edges
        // (a reused slot must not leak its previous occupant's edges).
        for id in 1..next_id {
            if !live.contains(&id) {
                prop_assert!(g.node(TxId(id)).is_none(), "collected {} resurrected", id);
            }
        }
        for &v in &live {
            let node = g.node(TxId(v)).expect("live node present");
            let mut got: Vec<u64> = node.out.iter().map(|e| e.dst.0).collect();
            got.sort_unstable();
            let mut want: Vec<u64> =
                edges.iter().filter(|&&(s, _)| s == v).map(|&(_, d)| d).collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "out edges of {}", v);
        }
        // SCC detection on the survivors still matches the reference.
        for &v in &live {
            if !finished.contains(&v) {
                g.finish(TxId(v), vec![]).unwrap();
            }
        }
        for &root in &live {
            let fwd = reachable(&edges, root);
            let expected: HashSet<u64> = fwd
                .iter()
                .copied()
                .filter(|&v| v != root && reachable(&edges, v).contains(&root))
                .chain(std::iter::once(root))
                .collect();
            let got = g.scc_from(TxId(root));
            if expected.len() >= 2 {
                let got = got.expect("SCC with ≥2 members detected");
                let got_ids: HashSet<u64> = got.tx_ids().map(|t| t.0).collect();
                prop_assert_eq!(got_ids, expected, "root {}", root);
            } else {
                prop_assert!(got.is_none(), "root {} is not in a cycle", root);
            }
        }
    }

    /// SCC reports carry every internal edge and a constraint for every
    /// cross edge into a member.
    #[test]
    fn scc_reports_are_self_consistent((n, edges) in arb_graph()) {
        let mut g = build(n, &edges);
        for root in 1..=n as u64 {
            if let Some(report) = g.scc_from(TxId(root)) {
                let members: HashSet<TxId> = report.tx_ids().collect();
                for e in &report.edges {
                    prop_assert!(members.contains(&e.src) && members.contains(&e.dst));
                }
                // Every constraint targets a member.
                for c in &report.constraints {
                    prop_assert!(members.contains(&c.dst));
                }
                // Every internal cross edge appears among the constraints.
                let constraint_pairs: HashSet<(TxId, TxId)> =
                    report.constraints.iter().map(|c| (c.src, c.dst)).collect();
                for e in &report.edges {
                    if e.kind == EdgeKind::Cross {
                        prop_assert!(constraint_pairs.contains(&(e.src, e.dst)));
                    }
                }
            }
        }
    }
}
