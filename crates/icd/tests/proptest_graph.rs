//! Property-based tests of the IDG: SCC detection and the transaction
//! collector on arbitrary graphs.

use dc_icd::graph::Graph;
use dc_icd::{Edge, EdgeKind, TxId, TxKind};
use dc_runtime::ids::ThreadId;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u64, u64)>)> {
    (2usize..20).prop_flat_map(|n| {
        let edges = prop::collection::vec((1..=n as u64, 1..=n as u64), 0..60);
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u64, u64)]) -> Graph {
    let mut g = Graph::new();
    for i in 1..=n as u64 {
        g.insert(TxId(i), ThreadId((i % 4) as u16), TxKind::Unary, i);
    }
    for &(s, d) in edges {
        g.add_edge(Edge {
            src: TxId(s),
            src_pos: 0,
            dst: TxId(d),
            dst_pos: 0,
            kind: EdgeKind::Cross,
        });
    }
    for i in 1..=n as u64 {
        g.finish(TxId(i), vec![]);
    }
    g
}

/// Reference forward-reachability.
fn reachable(edges: &[(u64, u64)], from: u64) -> HashSet<u64> {
    let mut seen: HashSet<u64> = [from].into_iter().collect();
    let mut work = vec![from];
    while let Some(v) = work.pop() {
        for &(s, d) in edges {
            if s == v && seen.insert(d) {
                work.push(d);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `scc_from(root)` returns exactly the nodes mutually reachable with
    /// the root (per a naive reference computation), when ≥ 2.
    #[test]
    fn scc_matches_reference((n, edges) in arb_graph()) {
        let mut g = build(n, &edges);
        for root in 1..=n as u64 {
            let fwd = reachable(&edges, root);
            let expected: HashSet<u64> = fwd
                .iter()
                .copied()
                .filter(|&v| v != root && reachable(&edges, v).contains(&root))
                .chain(std::iter::once(root))
                .collect();
            let got = g.scc_from(TxId(root));
            if expected.len() >= 2 {
                let got = got.expect("SCC with ≥2 members detected");
                let got_ids: HashSet<u64> = got.tx_ids().map(|t| t.0).collect();
                prop_assert_eq!(got_ids, expected, "root {}", root);
            } else {
                prop_assert!(got.is_none(), "root {} is not in a cycle", root);
            }
        }
    }

    /// The collector never removes a node reachable from a root, and every
    /// removed node was unreachable.
    #[test]
    fn collect_respects_reachability((n, edges) in arb_graph(), root in 1u64..20) {
        let root = (root % n as u64) + 1;
        let mut g = build(n, &edges);
        let live_before: HashSet<u64> = (1..=n as u64).collect();
        let expected_live = reachable(&edges, root);
        let collected = g.collect([TxId(root)]);
        prop_assert_eq!(collected, live_before.len() - expected_live.len());
        for v in 1..=n as u64 {
            prop_assert_eq!(
                g.node(TxId(v)).is_some(),
                expected_live.contains(&v),
                "node {}",
                v
            );
        }
    }

    /// SCC reports carry every internal edge and a constraint for every
    /// cross edge into a member.
    #[test]
    fn scc_reports_are_self_consistent((n, edges) in arb_graph()) {
        let mut g = build(n, &edges);
        for root in 1..=n as u64 {
            if let Some(report) = g.scc_from(TxId(root)) {
                let members: HashSet<TxId> = report.tx_ids().collect();
                for e in &report.edges {
                    prop_assert!(members.contains(&e.src) && members.contains(&e.dst));
                }
                // Every constraint targets a member.
                for c in &report.constraints {
                    prop_assert!(members.contains(&c.dst));
                }
                // Every internal cross edge appears among the constraints.
                let constraint_pairs: HashSet<(TxId, TxId)> =
                    report.constraints.iter().map(|c| (c.src, c.dst)).collect();
                for e in &report.edges {
                    if e.kind == EdgeKind::Cross {
                        prop_assert!(constraint_pairs.contains(&(e.src, e.dst)));
                    }
                }
            }
        }
    }
}
