//! Differential test: for one hook sequence, the asynchronous pipeline must
//! build exactly the IDG the synchronous mode builds — same edge endpoints
//! *and* same snapshotted log positions. Log positions come from the shared
//! per-thread `log_len` atomic, which `record_access` updates only when the
//! log actually grows (elided accesses never touch it), so the sequence
//! deliberately mixes elided duplicates in around the edge-creating hooks.

use dc_icd::{Edge, EdgeKind, Icd, IcdConfig, PipelineMode, SccReport};
use dc_runtime::ids::{MethodId, ObjId, ThreadId};

const T0: ThreadId = ThreadId(0);
const T1: ThreadId = ThreadId(1);

fn drive(icd: &Icd) -> SccReport {
    icd.thread_begin(T0);
    icd.thread_begin(T1);
    icd.begin_regular(T0, MethodId(0));
    icd.begin_regular(T1, MethodId(1));
    icd.record_access(T0, ObjId(0), 0, true, false, false);
    icd.record_access(T0, ObjId(0), 0, true, false, false); // elided duplicate
    icd.record_access(T0, ObjId(1), 0, false, false, false);
    icd.handle_conflicting(T0, T1); // src_pos must be 2, not 3
    icd.record_access(T1, ObjId(0), 0, true, false, true);
    icd.record_access(T1, ObjId(0), 0, false, false, false); // elided duplicate
    icd.handle_conflicting(T1, T0); // src_pos must be 1, dst_pos 2
    icd.record_access(T0, ObjId(0), 0, false, false, true);
    icd.end_regular(T0);
    icd.end_regular(T1);
    icd.record_access(T0, ObjId(2), 3, false, false, false);
    icd.record_access(T1, ObjId(2), 3, true, false, false);
    icd.thread_end(T0);
    icd.thread_end(T1);
    icd.drain_pipeline();
    icd.snapshot_all_finished()
}

/// Edges as comparable tuples, kind encoded for ordering.
fn edge_set(r: &SccReport) -> Vec<(u64, u32, u64, u32, u8)> {
    let mut edges: Vec<_> = r
        .edges
        .iter()
        .map(|e: &Edge| {
            (
                e.src.0,
                e.src_pos,
                e.dst.0,
                e.dst_pos,
                u8::from(e.kind == EdgeKind::Cross),
            )
        })
        .collect();
    edges.sort_unstable();
    edges
}

#[test]
fn pipelined_edge_positions_match_sync() {
    let config = |mode| IcdConfig {
        pipeline: mode,
        collect_every: 0,
        ..IcdConfig::default()
    };
    let sync = Icd::new(2, config(PipelineMode::Sync));
    let piped = Icd::new(2, config(PipelineMode::Pipelined));
    let a = drive(&sync);
    let b = drive(&piped);

    // Same transactions (both modes allocate ids in hook-call order)...
    let ids = |r: &SccReport| {
        let mut v: Vec<_> = r.txs.iter().map(|t| (t.id.0, t.thread, t.seq)).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&a), ids(&b));
    // ... with identical logs ...
    for (ta, tb) in a.txs.iter().zip(&b.txs) {
        assert_eq!(ta.id, tb.id);
        assert_eq!(*ta.log, *tb.log, "log of {:?} differs", ta.id);
    }
    // ... and identical edges, positions included.
    assert_eq!(edge_set(&a), edge_set(&b));
    assert_eq!(a.constraints, b.constraints);

    // The positions themselves: elided duplicates must not have advanced the
    // published log length the edges snapshot.
    let cross: Vec<_> = a
        .edges
        .iter()
        .filter(|e| e.kind == EdgeKind::Cross)
        .collect();
    assert_eq!(cross.len(), 2);
    assert!(
        cross
            .iter()
            .any(|e| e.src_pos == 2 && e.dst_pos == 0 && e.src.0 < e.dst.0),
        "first conflict: T0 logged 2 of 3 accesses, T1 nothing: {cross:?}"
    );
    assert!(
        cross
            .iter()
            .any(|e| e.src_pos == 1 && e.dst_pos == 2 && e.src.0 > e.dst.0),
        "second conflict: T1 logged 1 of 2 accesses, T0 still at 2: {cross:?}"
    );
}
