//! Integration tests of ICD's duplicate elision (hash vs flat layouts) and
//! the adaptive transaction collector.

use dc_icd::{Icd, IcdConfig};
use dc_runtime::heap::{CellLayout, Heap, ObjKind};
use dc_runtime::ids::{MethodId, ObjId, ThreadId};

const T0: ThreadId = ThreadId(0);

fn icd_pair() -> (Icd, Icd) {
    let with_layout = Icd::new(1, IcdConfig::default());
    let heap = Heap::new(
        &[ObjKind::Plain { fields: 4 }, ObjKind::Array { len: 8 }],
        1,
    );
    with_layout.attach_layout(CellLayout::new(&heap));
    let without_layout = Icd::new(1, IcdConfig::default());
    with_layout.thread_begin(T0);
    without_layout.thread_begin(T0);
    (with_layout, without_layout)
}

/// The flat (layout-backed) elision table and the hash-map fallback must
/// elide exactly the same entries.
#[test]
fn flat_and_hash_elision_agree() {
    let (a, b) = icd_pair();
    let accesses = [
        (ObjId(0), 0u32, false),
        (ObjId(0), 0, false), // duplicate read → elided
        (ObjId(0), 0, true),  // write after read → logged
        (ObjId(0), 0, true),  // duplicate write → elided
        (ObjId(0), 0, false), // read after write → elided
        (ObjId(0), 1, false),
        (ObjId(0), 2, true),
        (ObjId(0), 2, false),
    ];
    for &(obj, cell, write) in &accesses {
        a.record_access(T0, obj, cell, write, false, false);
        b.record_access(T0, obj, cell, write, false, false);
    }
    a.thread_end(T0);
    b.thread_end(T0);
    assert_eq!(
        a.stats()
            .log_entries
            .load(std::sync::atomic::Ordering::Relaxed),
        b.stats()
            .log_entries
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    assert_eq!(
        a.stats()
            .log_entries
            .load(std::sync::atomic::Ordering::Relaxed),
        4, // read, write, cell-1 read, cell-2 write
    );
}

/// Epoch bumps at transaction boundaries re-log in both schemes.
#[test]
fn new_transactions_relog_in_both_schemes() {
    let (a, b) = icd_pair();
    for icd in [&a, &b] {
        icd.record_access(T0, ObjId(0), 0, false, false, false);
        icd.begin_regular(T0, MethodId(0));
        icd.record_access(T0, ObjId(0), 0, false, false, false);
        icd.end_regular(T0);
        icd.record_access(T0, ObjId(0), 0, false, false, false);
        icd.thread_end(T0);
    }
    let entries = |i: &Icd| {
        i.stats()
            .log_entries
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    assert_eq!(entries(&a), 3);
    assert_eq!(entries(&b), 3);
}

/// Forced logging (dependence sinks) bypasses elision in both schemes.
#[test]
fn forced_entries_bypass_elision_in_both_schemes() {
    let (a, b) = icd_pair();
    for icd in [&a, &b] {
        icd.record_access(T0, ObjId(0), 0, false, false, false);
        icd.record_access(T0, ObjId(0), 0, false, false, true); // forced
        icd.record_access(T0, ObjId(0), 0, false, false, true); // forced again
        icd.thread_end(T0);
    }
    let entries = |i: &Icd| {
        i.stats()
            .log_entries
            .load(std::sync::atomic::Ordering::Relaxed)
    };
    assert_eq!(entries(&a), 3);
    assert_eq!(entries(&b), 3);
}

/// The adaptive collector keeps amortized cost bounded: over a long run of
/// disconnected transactions it reclaims nearly everything, and the live
/// graph stays far below the total transaction count.
#[test]
fn collector_keeps_live_graph_bounded() {
    let icd = Icd::new(
        1,
        IcdConfig {
            logging: false,
            collect_every: 32,
            ..IcdConfig::default()
        },
    );
    icd.thread_begin(T0);
    let total = 4000u32;
    for i in 0..total {
        icd.begin_regular(T0, MethodId(i % 7));
        icd.record_access(T0, ObjId(0), 0, true, false, false);
        icd.end_regular(T0);
    }
    icd.thread_end(T0);
    let collected = icd
        .stats()
        .collected_txs
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        collected as u32 > total / 2,
        "most of {total} transactions should be reclaimed, got {collected}"
    );
}

/// `snapshot_all_finished` (PCD-only support) sees every uncollected
/// transaction with its log.
#[test]
fn snapshot_all_finished_reflects_history() {
    let icd = Icd::new(
        1,
        IcdConfig {
            logging: true,
            collect_every: 0,
            detect_sccs: false,
            ..IcdConfig::default()
        },
    );
    icd.thread_begin(T0);
    for i in 0..5u32 {
        icd.begin_regular(T0, MethodId(i));
        icd.record_access(T0, ObjId(0), i, true, false, false);
        icd.end_regular(T0);
    }
    icd.thread_end(T0);
    let snapshot = icd.snapshot_all_finished();
    // 5 regular + interleaved unary transactions, all finished.
    assert!(snapshot.len() >= 10);
    let logged: usize = snapshot.txs.iter().map(|t| t.log.len()).sum();
    assert_eq!(logged, 5);
}
