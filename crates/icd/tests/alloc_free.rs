//! Steady-state allocation freedom: once the slab and the epoch-stamped
//! scratch arrays are warm, cycle probes that find no cycle and collector
//! runs that reclaim nothing must not touch the heap at all. (A probe that
//! *does* find a cycle necessarily allocates its `SccReport`.)

use dc_icd::graph::Graph;
use dc_icd::{Edge, EdgeKind, TxId, TxKind};
use dc_runtime::ids::ThreadId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // const-init: a lazily-initialized thread_local would itself allocate
    // on first use, recursing into the allocator under measurement.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn cross(src: u64, dst: u64) -> Edge {
    Edge {
        src: TxId(src),
        src_pos: 0,
        dst: TxId(dst),
        dst_pos: 0,
        kind: EdgeKind::Cross,
    }
}

#[test]
fn warm_scc_probe_and_collect_do_not_allocate() {
    let n = 64u64;
    let mut g = Graph::new();
    for i in 1..=n {
        g.insert(TxId(i), ThreadId((i % 4) as u16), TxKind::Unary, i);
    }
    // A long chain: every interior node has both an incoming and an
    // outgoing edge, so probes run full Tarjan traversals (not the trivial
    // pre-filter) yet never find a cycle.
    for i in 1..n {
        g.add_edge(cross(i, i + 1));
    }
    for i in 1..=n {
        g.finish(TxId(i), vec![]);
    }

    // Warm-up: size the stamp arrays, DFS stack, and mark scratch.
    for i in 1..=n {
        assert!(g.scc_from(TxId(i)).is_none(), "a chain has no cycle");
    }
    g.collect([TxId(1)]); // everything reachable from the chain head survives

    let before = allocations();
    for _ in 0..100 {
        for i in 1..=n {
            g.scc_from(TxId(i));
        }
    }
    assert_eq!(
        allocations(),
        before,
        "steady-state scc_from must be allocation-free"
    );

    let before = allocations();
    for _ in 0..100 {
        g.collect([TxId(1)]);
    }
    assert_eq!(
        allocations(),
        before,
        "a collector run reclaiming nothing must be allocation-free"
    );
}
