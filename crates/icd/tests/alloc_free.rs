//! Steady-state allocation freedom: once the slab and the epoch-stamped
//! scratch arrays are warm, cycle probes that find no cycle and collector
//! runs that reclaim nothing must not touch the heap at all. (A probe that
//! *does* find a cycle necessarily allocates its `SccReport`.) The same
//! holds for the whole pipelined enqueue→apply path: pooled batches over
//! the fixed-capacity ring, the reorder scoreboard, and the graph-owner
//! apply loop.

use dc_icd::graph::Graph;
use dc_icd::{Edge, EdgeKind, Icd, IcdConfig, OpTransport, PipelineMode, TxId, TxKind};
use dc_obs::{ObsLevel, PipelineObs};
use dc_runtime::ids::{MethodId, ThreadId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

thread_local! {
    // const-init: a lazily-initialized thread_local would itself allocate
    // on first use, recursing into the allocator under measurement.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide allocation count: the pipelined test must also see the
/// graph-owner thread's allocations, which a thread-local cannot.
static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Serializes the tests in this file: the global counter would otherwise
/// pick up a concurrently running sibling's allocations.
static SERIAL: Mutex<()> = Mutex::new(());

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn global_allocations() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}

fn cross(src: u64, dst: u64) -> Edge {
    Edge {
        src: TxId(src),
        src_pos: 0,
        dst: TxId(dst),
        dst_pos: 0,
        kind: EdgeKind::Cross,
    }
}

/// One round of pipelined work: two threads each run a regular transaction,
/// with one cross-thread coordination event between them. Every hook flushes
/// through the op ring; both transactions finish, so the collector keeps the
/// graph bounded.
fn pipelined_round(icd: &Icd, t0: ThreadId, t1: ThreadId) {
    icd.begin_regular(t0, MethodId(0));
    icd.begin_regular(t1, MethodId(1));
    icd.handle_conflicting(t0, t1);
    icd.end_regular(t0);
    icd.end_regular(t1);
}

/// Spins until the graph owner has applied everything enqueued so far.
fn await_drain(obs: &PipelineObs) {
    let target = obs.graph.ops_enqueued.get();
    while obs.graph.ops_applied.get() < target {
        std::hint::spin_loop();
    }
}

#[test]
fn warm_pipelined_enqueue_apply_path_does_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let obs = PipelineObs::new(ObsLevel::Counters).expect("counters level");
    // Logging off (the first-run configuration): op payloads are empty logs,
    // so the steady state exercises the transport, the reorder scoreboard,
    // slab reuse, SCC probes, and the collector — and none of it may touch
    // the heap once warm.
    let icd = Icd::with_observability(
        2,
        IcdConfig {
            logging: false,
            collect_every: 8,
            pipeline: PipelineMode::Pipelined,
            transport: OpTransport::Ring,
            ..IcdConfig::default()
        },
        None,
        Some(std::sync::Arc::clone(&obs)),
    );
    let (t0, t1) = (ThreadId(0), ThreadId(1));
    icd.thread_begin(t0);
    icd.thread_begin(t1);

    // Warm-up: fill the batch pool, size the ring/reorder/slab/scratch, and
    // reach the collector's steady state.
    for _ in 0..512 {
        pipelined_round(&icd, t0, t1);
    }
    await_drain(&obs);

    // The apply loop runs on the owner thread concurrently with our sends,
    // so measure whole enqueue→apply windows; allow a couple of retries for
    // one-off lazy initialization that the warm-up happened not to reach.
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = global_allocations();
        for _ in 0..256 {
            pipelined_round(&icd, t0, t1);
        }
        await_drain(&obs);
        best = best.min(global_allocations() - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "steady-state pipelined enqueue→apply must be allocation-free"
    );

    icd.thread_end(t0);
    icd.thread_end(t1);
    let _ = icd.drain_pipeline();
}

#[test]
fn warm_scc_probe_and_collect_do_not_allocate() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let n = 64u64;
    let mut g = Graph::new();
    for i in 1..=n {
        g.insert(TxId(i), ThreadId((i % 4) as u16), TxKind::Unary, i);
    }
    // A long chain: every interior node has both an incoming and an
    // outgoing edge, so probes run full Tarjan traversals (not the trivial
    // pre-filter) yet never find a cycle.
    for i in 1..n {
        g.add_edge(cross(i, i + 1));
    }
    for i in 1..=n {
        g.finish(TxId(i), vec![]).unwrap();
    }

    // Warm-up: size the stamp arrays, DFS stack, and mark scratch.
    for i in 1..=n {
        assert!(g.scc_from(TxId(i)).is_none(), "a chain has no cycle");
    }
    g.collect([TxId(1)]); // everything reachable from the chain head survives

    let before = allocations();
    for _ in 0..100 {
        for i in 1..=n {
            g.scc_from(TxId(i));
        }
    }
    assert_eq!(
        allocations(),
        before,
        "steady-state scc_from must be allocation-free"
    );

    let before = allocations();
    for _ in 0..100 {
        g.collect([TxId(1)]);
    }
    assert_eq!(
        allocations(),
        before,
        "a collector run reclaiming nothing must be allocation-free"
    );
}
