//! Umbrella crate for the DoubleChecker (PLDI 2014) reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See `README.md` for an overview and `DESIGN.md` for
//! the system inventory.

pub use dc_core as core;
pub use dc_icd as icd;
pub use dc_octet as octet;
pub use dc_pcd as pcd;
pub use dc_runtime as runtime;
pub use dc_velodrome as velodrome;
pub use dc_workloads as workloads;
