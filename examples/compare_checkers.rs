//! Side-by-side comparison of every checker on one workload and one
//! deterministic execution: Velodrome and a trace recorder share a single
//! run via [`Tee`]; the offline oracle analyzes the recorded trace; and
//! DoubleChecker replays the identical schedule in single-run, first-run,
//! and PCD-only configurations.
//!
//! Run with: `cargo run --release --example compare_checkers [workload] [seed]`

use dc_core::{run_doublechecker, DcConfig, ExecPlan};
use dc_octet::CoordinationMode;
use dc_pcd::{analyze_trace, OfflineConfig};
use dc_runtime::engine::det::{run_det, Schedule};
use dc_runtime::trace::{Tee, TraceChecker};
use dc_velodrome::{Velodrome, VelodromeConfig};
use dc_workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "tsp".into());
    let seed: u64 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3);
    let wl =
        by_name(&workload, Scale::Tiny).ok_or_else(|| format!("unknown workload {workload:?}"))?;
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    let schedule = Schedule::random(seed);

    println!("workload {workload}, seed {seed}\n");
    println!("{:<28} {:>10} {:>12}", "checker", "violations", "notes");

    // Velodrome + trace in one run.
    let tee = Tee::new(
        Velodrome::new(
            wl.program.threads.len(),
            spec.clone(),
            VelodromeConfig::default(),
        ),
        TraceChecker::new(),
    );
    run_det(&wl.program, &tee, &schedule)?;
    println!(
        "{:<28} {:>10} {:>12}",
        "velodrome (online)",
        tee.a.violations().len(),
        format!("{} edges", tee.a.cross_edges())
    );

    // Offline oracle over the recorded trace.
    let trace = tee.b.events();
    let offline = analyze_trace(&trace, &spec, OfflineConfig::default());
    println!(
        "{:<28} {:>10} {:>12}",
        "offline oracle (trace)",
        offline.violations.len(),
        format!("{} events", trace.len())
    );

    // DoubleChecker configurations on the identical schedule.
    for (label, config) in [
        (
            "doublechecker single-run",
            DcConfig::single_run(CoordinationMode::Immediate),
        ),
        (
            "doublechecker first-run",
            DcConfig::first_run(CoordinationMode::Immediate),
        ),
        (
            "doublechecker pcd-only",
            DcConfig::pcd_only(CoordinationMode::Immediate),
        ),
    ] {
        let report =
            run_doublechecker(&wl.program, &spec, config, &ExecPlan::Det(schedule.clone()))?;
        let note = if label.contains("first-run") {
            format!("{} methods flagged", report.static_info.methods.len())
        } else {
            format!("{} SCCs", report.stats.icd_sccs)
        };
        println!("{:<28} {:>10} {:>12}", label, report.violations.len(), note);
    }
    Ok(())
}
