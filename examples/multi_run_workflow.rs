//! Multi-run mode as it would be used across separate test executions
//! (paper §3.1): several *first runs* execute only the cheap imprecise
//! analysis and persist static transaction information to a JSON file; a
//! later *second run* loads that file and instruments only the implicated
//! transactions.
//!
//! Run with: `cargo run --release --example multi_run_workflow`

use dc_core::{run_doublechecker, DcConfig, ExecPlan, StaticTxInfo};
use dc_runtime::engine::det::Schedule;
use dc_workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wl = by_name("hsqldb6", Scale::Tiny).expect("known benchmark");
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    let info_path = std::env::temp_dir().join("doublechecker-static-tx-info.json");

    // ---- First runs (e.g. nightly tests): ICD only, no logging. ----
    let mut info = StaticTxInfo::default();
    for seed in 0..6u64 {
        let plan = ExecPlan::Det(Schedule::random(seed));
        let report = run_doublechecker(
            &wl.program,
            &spec,
            DcConfig::first_run(plan.coordination()),
            &plan,
        )?;
        assert_eq!(report.stats.log_entries, 0, "first runs never log");
        info.union(&report.static_info);
    }
    std::fs::write(&info_path, info.to_json())?;
    println!(
        "first runs identified {} method(s) in imprecise cycles (unary involved: {}); saved to {}",
        info.methods.len(),
        info.any_unary,
        info_path.display()
    );

    // ---- Second run (e.g. the next deployment): load and focus. ----
    let loaded = StaticTxInfo::from_json(&std::fs::read_to_string(&info_path)?)?;
    let plan = ExecPlan::Det(Schedule::random(3));
    let second = run_doublechecker(
        &wl.program,
        &spec,
        DcConfig::second_run(&loaded, plan.coordination()),
        &plan,
    )?;
    let full = run_doublechecker(
        &wl.program,
        &spec,
        DcConfig::single_run(plan.coordination()),
        &plan,
    )?;

    println!(
        "second run instrumented {} accesses (single-run would instrument {})",
        second.stats.regular_accesses + second.stats.unary_accesses,
        full.stats.regular_accesses + full.stats.unary_accesses,
    );
    println!(
        "second run found {} violation(s); single-run found {}",
        second.violations.len(),
        full.violations.len()
    );
    assert!(
        second.stats.regular_accesses + second.stats.unary_accesses
            <= full.stats.regular_accesses + full.stats.unary_accesses,
        "the second run never instruments more than single-run mode"
    );
    std::fs::remove_file(&info_path).ok();
    Ok(())
}
