//! Overhead probe: times the unmodified run, the first-run configuration,
//! and single-run mode on one workload, printing the analysis statistics
//! behind each slowdown. Useful when tuning workloads or chasing an
//! analysis-cost regression.
//!
//! Run with: `cargo run --release --example diag_overhead [workload] [tiny|small]`

use dc_core::{DcConfig, DoubleChecker};
use dc_octet::CoordinationMode;
use dc_runtime::checker::NopChecker;
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tsp".into());
    let scale = match std::env::args().nth(2).as_deref() {
        Some("tiny") => dc_workloads::Scale::Tiny,
        _ => dc_workloads::Scale::Small,
    };
    let wl = dc_workloads::by_name(&name, scale).unwrap();
    // Approximate the final specification by excluding the seeded-racy
    // methods by name (diagnostics only).
    let mut spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    for (i, m) in wl.program.methods.iter().enumerate() {
        let n = &m.name;
        if n.contains("racy")
            || n.contains("Racy")
            || n.contains("count")
            || n.contains("record")
            || n.contains("update")
            || n.contains("mark")
            || n.contains("log")
        {
            spec.exclude(dc_runtime::ids::MethodId::from_index(i));
        }
    }

    let t0 = Instant::now();
    dc_runtime::engine::real::run_real(&wl.program, &NopChecker);
    let base = t0.elapsed();
    println!("base: {base:?}");

    let no_scc = DcConfig {
        detect_cycles: false,
        ..DcConfig::first_run(CoordinationMode::Threaded)
    };
    let no_collect = DcConfig {
        collect_every: 0,
        ..DcConfig::first_run(CoordinationMode::Threaded)
    };
    for (label, config) in [
        ("first-run/no-scc", no_scc),
        ("first-run/no-collect", no_collect),
        ("first-run", DcConfig::first_run(CoordinationMode::Threaded)),
        (
            "single-run",
            DcConfig::single_run(CoordinationMode::Threaded),
        ),
    ] {
        let checker = DoubleChecker::new(wl.program.threads.len(), spec.clone(), config);
        let t = Instant::now();
        dc_runtime::engine::real::run_real(&wl.program, &checker);
        let elapsed = t.elapsed();
        let s = checker.stats();
        println!(
            "{label}: {elapsed:?} ({:.1}x)  stats: {s:?}",
            elapsed.as_secs_f64() / base.as_secs_f64()
        );
    }
}
