//! A bank-transfer scenario: the workload the paper's introduction
//! motivates — code that takes a lock for each individual update but not
//! around the *pair* of updates that must be atomic.
//!
//! `transfer` debits one account and credits another, each under the
//! account's own lock; an `audit` method sums both balances under both
//! locks. Interleaving `audit` between the debit and the credit observes
//! money in flight — a conflict-serializability violation that lock-based
//! reasoning misses but DoubleChecker catches. Iterative refinement
//! (Figure 6) then derives the specification automatically.
//!
//! Run with: `cargo run --release --example bank_accounts`

use dc_core::{initial_spec, iterative_refinement, run_single, ExecPlan, ReportedViolation};
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, Program, ProgramBuilder};

fn build_bank() -> Program {
    let mut b = ProgramBuilder::new();
    let checking = b.object(ObjKind::Plain { fields: 1 });
    let savings = b.object(ObjKind::Plain { fields: 1 });
    let lock_c = b.object(ObjKind::Monitor);
    let lock_s = b.object(ObjKind::Monitor);

    // Each update is individually locked — but the method as a whole is not.
    let transfer = b.method(
        "Bank.transfer",
        vec![
            Op::Acquire(lock_c),
            Op::Read(checking, 0),
            Op::Write(checking, 0), // debit
            Op::Release(lock_c),
            Op::Compute(15), // the in-flight window
            Op::Acquire(lock_s),
            Op::Read(savings, 0),
            Op::Write(savings, 0), // credit
            Op::Release(lock_s),
        ],
    );
    let audit = b.method(
        "Bank.audit",
        vec![
            Op::Acquire(lock_c),
            Op::Acquire(lock_s),
            Op::Read(checking, 0),
            Op::Read(savings, 0),
            Op::Release(lock_s),
            Op::Release(lock_c),
        ],
    );
    let teller = b.method(
        "Teller.run",
        vec![Op::Loop {
            count: 25,
            body: vec![Op::Call(transfer), Op::Compute(10)],
        }],
    );
    let auditor = b.method(
        "Auditor.run",
        vec![Op::Loop {
            count: 25,
            body: vec![Op::Call(audit), Op::Compute(10)],
        }],
    );
    b.thread(teller);
    b.thread(auditor);
    b.build().expect("valid program")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_bank();
    let start = initial_spec(&program, &[]);

    // Figure 6: iterative refinement to quiescence. Each trial is one
    // seeded deterministic execution checked by single-run mode.
    let program_ref = &program;
    let mut seed = 0u64;
    let result = iterative_refinement(start, 6, 16, |spec, _trial| {
        seed += 1;
        let report =
            run_single(program_ref, spec, &ExecPlan::Det(Schedule::random(seed))).expect("trial");
        report
            .violations
            .iter()
            .map(|v| ReportedViolation {
                blamed: v.blamed_methods(),
                key: v.static_key(),
            })
            .collect()
    });

    println!(
        "refinement: {} round(s), {} trial(s), {} distinct violation(s)",
        result.rounds,
        result.trials,
        result.distinct_violations()
    );
    for v in &result.violations {
        let names: Vec<&str> = v.blamed.iter().map(|m| program.method_name(*m)).collect();
        println!("  violation blamed on {names:?}");
    }
    let excluded: Vec<&str> = result
        .final_spec
        .excluded()
        .map(|m| program.method_name(m))
        .collect();
    println!("final specification excludes: {excluded:?}");
    assert!(
        result.violations.iter().any(|v| v
            .blamed
            .iter()
            .any(|m| program.method_name(*m) == "Bank.transfer")),
        "the non-atomic transfer should be blamed"
    );
    Ok(())
}
