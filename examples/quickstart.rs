//! Quickstart: build a small multithreaded program, declare which methods
//! should be atomic, and check it with DoubleChecker's single-run mode.
//!
//! Run with: `cargo run --release --example quickstart`

use dc_core::{run_single, ExecPlan};
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, ProgramBuilder};
use dc_runtime::spec::AtomicitySpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A shared counter and two worker threads. `increment` reads the
    // counter, computes, and writes it back — atomic only if nothing
    // interleaves in between.
    let mut b = ProgramBuilder::new();
    let counter = b.object(ObjKind::Plain { fields: 1 });
    let increment = b.method(
        "Counter.increment",
        vec![Op::Read(counter, 0), Op::Compute(10), Op::Write(counter, 0)],
    );
    let worker = b.method(
        "Worker.run",
        vec![Op::Loop {
            count: 20,
            body: vec![Op::Call(increment), Op::Compute(25)],
        }],
    );
    b.thread(worker);
    b.thread(worker);
    let program = b.build()?;

    // The specification: every method is atomic except the thread bodies.
    let spec = AtomicitySpec::excluding([program.method_by_name("Worker.run").unwrap()]);

    // Check several seeded interleavings deterministically.
    let mut found = 0;
    for seed in 0..10 {
        let report = run_single(&program, &spec, &ExecPlan::Det(Schedule::random(seed)))?;
        if !report.violations.is_empty() {
            found += 1;
            if found == 1 {
                println!("seed {seed}: atomicity violation detected!");
                for v in &report.violations {
                    for member in &v.cycle {
                        let name = member
                            .kind
                            .method()
                            .map(|m| program.method_name(m).to_string())
                            .unwrap_or_else(|| "<non-transactional>".into());
                        println!("  cycle member: thread {} in {}", member.thread, name);
                    }
                    println!("  blamed methods: {:?}", v.blamed_methods());
                }
                println!(
                    "  analysis: {} transactions, {} IDG edges, {} imprecise SCC(s), {} handed to PCD",
                    report.stats.regular_txs + report.stats.unary_txs,
                    report.stats.idg_cross_edges,
                    report.stats.icd_sccs,
                    report.stats.sccs_to_pcd,
                );
            }
        }
    }
    println!("{found}/10 interleavings manifested the violation");
    assert!(found > 0, "the unsynchronized increment should race");
    Ok(())
}
