//! Replays every persisted regression case under `tests/regressions/`
//! through the full three-way differential assertion, so a disagreement
//! once found by a proptest frontier stays fixed forever. Program cases
//! (`GenCase`) rebuild the generated program and rerun its random
//! schedule; history cases (`HistoryCase`, tagged `kind = history`)
//! regenerate the history from its parameters, lower it, and additionally
//! assert the construction-time verdict — clean for the serializable
//! mode, a cycle covering both injected transactions for an anomaly mode.
//! Also pins both `.case` codecs the persistence path relies on.

mod common;

use common::gen::{AnyCase, GenCase, GenOp, GenProgram, HistoryCase};
use dc_core::{run_single, ExecPlan};
use dc_histories::{generate, lower, AnomalyMode};
use dc_runtime::engine::det::Schedule;
use doublechecker_repro as _;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("regressions")
}

/// Replays one history case: regenerate, lower, full three-way agreement,
/// then the construction-time verdict the case was persisted to defend.
fn replay_history_case(ctx: &str, case: &HistoryCase) {
    let generated = generate(&case.params());
    let lowered = lower(&generated.history).unwrap_or_else(|e| panic!("{ctx}: must lower: {e}"));
    common::assert_three_way(ctx, &lowered.program, &lowered.spec, &lowered.schedule);
    let report = run_single(
        &lowered.program,
        &lowered.spec,
        &ExecPlan::Det(lowered.schedule.clone()),
    )
    .expect("dc run");
    if case.mode == AnomalyMode::Serializable {
        assert!(
            report.violations.is_empty(),
            "{ctx}: serializable control reported a violation"
        );
    } else {
        let cycle_methods: std::collections::BTreeSet<_> = report
            .violations
            .iter()
            .flat_map(|v| v.cycle.iter().filter_map(|m| m.kind.method()))
            .collect();
        for &(s, t) in &generated.injected {
            let m = lowered.tx_methods[s][t];
            assert!(
                cycle_methods.contains(&m),
                "{ctx}: cycle methods {cycle_methods:?} miss injected {m:?}"
            );
        }
    }
}

#[test]
fn regression_corpus_replays_clean() {
    let mut programs = 0;
    let mut histories = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/regressions exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_none_or(|e| e != "case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable case file");
        let case = AnyCase::decode(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        match case {
            AnyCase::Gen(case) => {
                let (program, spec) = case.program.build();
                let schedule = Schedule::random(case.seed);
                common::assert_three_way(
                    &format!("{} (seed {})", path.display(), case.seed),
                    &program,
                    &spec,
                    &schedule,
                );
                programs += 1;
            }
            AnyCase::History(case) => {
                replay_history_case(&format!("{} ({case:?})", path.display()), &case);
                histories += 1;
            }
        }
    }
    assert!(
        programs >= 3,
        "corpus must contain at least the seed program cases, found {programs}"
    );
    assert!(
        histories >= 2,
        "corpus must contain at least the seed history cases, found {histories}"
    );
}

#[test]
fn case_codec_round_trips() {
    let case = GenCase {
        program: GenProgram {
            methods: vec![
                vec![GenOp::Read(0, 1), GenOp::Write(1, 0), GenOp::Compute(7)],
                vec![GenOp::LockedRmw(1)],
            ],
            threads: 3,
            iters: 4,
        },
        seed: 123,
    };
    let text = case.encode();
    let back = GenCase::decode(&text).expect("round trip");
    assert_eq!(case, back);
}

#[test]
fn case_codec_rejects_malformed_input() {
    for (text, why) in [
        ("", "empty file"),
        ("seed = 1\nthreads = 2\niters = 1\n", "no methods"),
        (
            "seed = 1\nthreads = 1\niters = 1\nmethod = R(0,0)\n",
            "one thread",
        ),
        (
            "seed = 1\nthreads = 2\niters = 0\nmethod = R(0,0)\n",
            "zero iters",
        ),
        (
            "seed = 1\nthreads = 2\niters = 1\nmethod = R(9,0)\n",
            "object out of range",
        ),
        (
            "seed = 1\nthreads = 2\niters = 1\nmethod = X(0,0)\n",
            "unknown op",
        ),
        ("threads = 2\niters = 1\nmethod = R(0,0)\n", "missing seed"),
        (
            "seed = 1\nthreads = 2\niters = 1\nbogus = 3\n",
            "unknown key",
        ),
    ] {
        assert!(GenCase::decode(text).is_err(), "should reject: {why}");
    }
}

#[test]
fn history_case_codec_round_trips() {
    for mode in AnomalyMode::ALL {
        let case = HistoryCase {
            seed: 98765,
            sessions: 4,
            base_txs: 9,
            ops_per_tx: 3,
            keys: 3,
            mode,
        };
        let text = case.encode();
        let back = HistoryCase::decode(&text).expect("round trip");
        assert_eq!(case, back);
        // The dispatcher routes the tagged text to the history decoder.
        assert_eq!(AnyCase::decode(&text), Ok(AnyCase::History(case)));
    }
}

#[test]
fn any_case_dispatches_untagged_text_to_the_program_decoder() {
    let case = GenCase {
        program: GenProgram {
            methods: vec![vec![GenOp::Read(0, 0)]],
            threads: 2,
            iters: 1,
        },
        seed: 5,
    };
    assert_eq!(AnyCase::decode(&case.encode()), Ok(AnyCase::Gen(case)));
}

#[test]
fn history_case_codec_rejects_malformed_input() {
    let valid = "kind = history\nseed = 1\nmode = lost-update\n\
                 sessions = 2\nbase_txs = 1\nops_per_tx = 1\nkeys = 2\n";
    assert!(HistoryCase::decode(valid).is_ok(), "baseline must parse");
    for (text, why) in [
        (
            valid.replace("mode = lost-update", "mode = bogus"),
            "unknown mode",
        ),
        (
            valid.replace("sessions = 2", "sessions = 1"),
            "sessions below the floor",
        ),
        (
            valid.replace("base_txs = 1", "base_txs = 0"),
            "zero base transactions",
        ),
        (
            valid.replace("keys = 2", "keys = 1"),
            "keys below the floor",
        ),
        (valid.replace("seed = 1\n", ""), "missing seed"),
        (format!("{valid}bogus = 3\n"), "unknown key"),
        (
            valid.replace("kind = history\n", ""),
            "untagged text falls back to the stricter GenCase decoder",
        ),
    ] {
        assert!(AnyCase::decode(&text).is_err(), "should reject: {why}");
    }
}
