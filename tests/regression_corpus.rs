//! Replays every persisted regression case under `tests/regressions/`
//! through the full three-way differential assertion, so a disagreement
//! once found by the proptest frontier stays fixed forever. Also pins the
//! `.case` codec the persistence path relies on.

mod common;

use common::gen::{GenCase, GenOp, GenProgram};
use dc_runtime::engine::det::Schedule;
use doublechecker_repro as _;

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("regressions")
}

#[test]
fn regression_corpus_replays_clean() {
    let mut replayed = 0;
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/regressions exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().is_none_or(|e| e != "case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable case file");
        let case = GenCase::decode(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let (program, spec) = case.program.build();
        let schedule = Schedule::random(case.seed);
        common::assert_three_way(
            &format!("{} (seed {})", path.display(), case.seed),
            &program,
            &spec,
            &schedule,
        );
        replayed += 1;
    }
    assert!(
        replayed >= 3,
        "corpus must contain at least the seed cases, found {replayed}"
    );
}

#[test]
fn case_codec_round_trips() {
    let case = GenCase {
        program: GenProgram {
            methods: vec![
                vec![GenOp::Read(0, 1), GenOp::Write(1, 0), GenOp::Compute(7)],
                vec![GenOp::LockedRmw(1)],
            ],
            threads: 3,
            iters: 4,
        },
        seed: 123,
    };
    let text = case.encode();
    let back = GenCase::decode(&text).expect("round trip");
    assert_eq!(case, back);
}

#[test]
fn case_codec_rejects_malformed_input() {
    for (text, why) in [
        ("", "empty file"),
        ("seed = 1\nthreads = 2\niters = 1\n", "no methods"),
        (
            "seed = 1\nthreads = 1\niters = 1\nmethod = R(0,0)\n",
            "one thread",
        ),
        (
            "seed = 1\nthreads = 2\niters = 0\nmethod = R(0,0)\n",
            "zero iters",
        ),
        (
            "seed = 1\nthreads = 2\niters = 1\nmethod = R(9,0)\n",
            "object out of range",
        ),
        (
            "seed = 1\nthreads = 2\niters = 1\nmethod = X(0,0)\n",
            "unknown op",
        ),
        ("threads = 2\niters = 1\nmethod = R(0,0)\n", "missing seed"),
        (
            "seed = 1\nthreads = 2\niters = 1\nbogus = 3\n",
            "unknown key",
        ),
    ] {
        assert!(GenCase::decode(text).is_err(), "should reject: {why}");
    }
}
