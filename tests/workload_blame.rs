//! Per-workload blame validation: the methods iterative refinement blames
//! are exactly the seeded-racy ones (never the lock-protected or
//! thread-local methods) — tying Table 2's rows to the workload designs.

use dc_core::{run_single, ExecPlan};
use dc_runtime::engine::det::Schedule;
use dc_workloads::{by_name, Scale};
use doublechecker_repro as _;
use std::collections::HashSet;

/// Collects the names of all methods blamed across a handful of seeds.
fn blamed_names(workload: &str, seeds: std::ops::Range<u64>) -> HashSet<String> {
    let wl = by_name(workload, Scale::Tiny).unwrap();
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    let mut names = HashSet::new();
    for seed in seeds {
        let report =
            run_single(&wl.program, &spec, &ExecPlan::Det(Schedule::random(seed))).unwrap();
        for v in &report.violations {
            for m in v.blamed_methods() {
                names.insert(wl.program.method_name(m).to_string());
            }
        }
    }
    names
}

#[test]
fn tsp_blames_only_the_seeded_racy_methods() {
    let blamed = blamed_names("tsp", 0..10);
    assert!(!blamed.is_empty(), "tsp races must manifest");
    for name in &blamed {
        assert!(
            name.contains("Racy") || name.contains("count") || name.contains("record"),
            "unexpected blame on {name}"
        );
    }
    assert!(
        !blamed.iter().any(|n| n.contains("updateBoundLocked")),
        "the lock-protected update is serializable: {blamed:?}"
    );
    assert!(
        !blamed.iter().any(|n| n.contains("searchSubtree")),
        "thread-local search is serializable: {blamed:?}"
    );
}

#[test]
fn elevator_blames_the_status_methods() {
    let blamed = blamed_names("elevator", 0..10);
    assert!(!blamed.is_empty());
    for name in &blamed {
        assert!(
            name == "Elevator.updateStatus" || name == "Elevator.recordMotion",
            "unexpected blame on {name}"
        );
    }
}

#[test]
fn hedc_blames_the_bookkeeping_methods() {
    let blamed = blamed_names("hedc", 0..10);
    assert!(!blamed.is_empty());
    for name in &blamed {
        assert!(
            ["Hedc.markDone", "Hedc.countBytes", "Hedc.logStatus"].contains(&name.as_str()),
            "unexpected blame on {name}"
        );
    }
    assert!(
        !blamed.contains("Hedc.takeTask"),
        "the lock-protected queue operation is serializable"
    );
}

#[test]
fn dacapo_blame_stays_on_racy_update_methods() {
    for workload in ["eclipse6", "hsqldb6", "xalan9", "avrora9"] {
        let blamed = blamed_names(workload, 0..6);
        for name in &blamed {
            assert!(
                name.contains("racyUpdate"),
                "{workload}: unexpected blame on {name}"
            );
        }
    }
}

#[test]
fn clean_workloads_blame_nothing() {
    for workload in ["philo", "sor", "moldyn", "raytracer", "jython9", "pmd9"] {
        let blamed = blamed_names(workload, 0..6);
        assert!(blamed.is_empty(), "{workload} blamed {blamed:?}");
    }
}
