//! Random lock-disciplined program generation for the differential suites.
//!
//! [`GenProgram`] is the generated-program model shared by the proptest
//! frontier (`tests/proptest_differential.rs`) and the regression corpus
//! loader (`tests/regression_corpus.rs`). [`ProgramStrategy`] implements
//! the shim's `Strategy` trait directly — rather than composing `prop_map`
//! combinators, which cannot shrink — so a failing program shrinks to a
//! minimal witness while preserving transaction boundaries: a
//! [`GenOp::LockedRmw`] is one op and is dropped whole, never split into a
//! dangling acquire or release.

use dc_histories::{AnomalyMode, GenHistoryParams};
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, Program, ProgramBuilder};
use dc_runtime::spec::AtomicitySpec;
use proptest::{Strategy, TestRng};

/// Number of shared plain objects every generated program allocates.
const SHARED_OBJECTS: u8 = 2;
/// Fields per shared object.
const FIELDS: u8 = 2;

/// One primitive op of a generated atomic method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenOp {
    /// Read field `.1` of shared object `.0`.
    Read(u8, u8),
    /// Write field `.1` of shared object `.0`.
    Write(u8, u8),
    /// Spin for the given weight without touching shared state.
    Compute(u8),
    /// Lock-protected read-modify-write of shared object `.0`, field 0.
    LockedRmw(u8),
}

/// A generated program: atomic method bodies, a thread count, and a
/// per-thread loop iteration count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenProgram {
    /// Bodies of the generated atomic methods.
    pub methods: Vec<Vec<GenOp>>,
    /// Number of concurrent threads.
    pub threads: usize,
    /// Loop iterations per thread.
    pub iters: u8,
}

impl GenProgram {
    /// Lowers the model to a runnable [`Program`] plus the atomicity spec
    /// that marks the generated methods atomic and the thread entries not.
    pub fn build(&self) -> (Program, AtomicitySpec) {
        let mut b = ProgramBuilder::new();
        let shared: Vec<_> = (0..SHARED_OBJECTS)
            .map(|_| {
                b.object(ObjKind::Plain {
                    fields: u16::from(FIELDS),
                })
            })
            .collect();
        let lock = b.object(ObjKind::Monitor);
        let method_ids: Vec<_> = self
            .methods
            .iter()
            .enumerate()
            .map(|(i, ops)| {
                let body: Vec<Op> = ops
                    .iter()
                    .flat_map(|op| match *op {
                        GenOp::Read(o, f) => {
                            vec![Op::Read(shared[o as usize], u32::from(f))]
                        }
                        GenOp::Write(o, f) => {
                            vec![Op::Write(shared[o as usize], u32::from(f))]
                        }
                        GenOp::Compute(u) => vec![Op::Compute(u32::from(u))],
                        GenOp::LockedRmw(o) => vec![
                            Op::Acquire(lock),
                            Op::Read(shared[o as usize], 0),
                            Op::Write(shared[o as usize], 0),
                            Op::Release(lock),
                        ],
                    })
                    .collect();
                b.method(format!("gen{i}"), body)
            })
            .collect();
        let mut entries = Vec::new();
        for t in 0..self.threads {
            let body = vec![Op::Loop {
                count: u32::from(self.iters),
                body: method_ids
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| (k + t) % 2 == 0 || self.threads == 2)
                    .map(|(_, &m)| Op::Call(m))
                    .collect(),
            }];
            entries.push(b.method(format!("entry{t}"), body));
        }
        for &e in &entries {
            b.thread(e);
        }
        let program = b.build().expect("generated program is valid");
        let spec = AtomicitySpec::excluding(entries);
        (program, spec)
    }
}

/// Strategy producing [`GenProgram`]s with the same distribution as the
/// historical `gen_program()` combinator, plus boundary-preserving
/// shrinking.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProgramStrategy;

fn gen_op(rng: &mut TestRng) -> GenOp {
    match (0u8..4).generate(rng) {
        0 => GenOp::Read((0..SHARED_OBJECTS).generate(rng), (0..FIELDS).generate(rng)),
        1 => GenOp::Write((0..SHARED_OBJECTS).generate(rng), (0..FIELDS).generate(rng)),
        2 => GenOp::Compute((1u8..20).generate(rng)),
        _ => GenOp::LockedRmw((0..SHARED_OBJECTS).generate(rng)),
    }
}

impl Strategy for ProgramStrategy {
    type Value = GenProgram;

    fn generate(&self, rng: &mut TestRng) -> GenProgram {
        let methods = (0..(2usize..5).generate(rng))
            .map(|_| {
                (0..(1usize..6).generate(rng))
                    .map(|_| gen_op(rng))
                    .collect()
            })
            .collect();
        GenProgram {
            methods,
            threads: (2usize..4).generate(rng),
            iters: (1u8..6).generate(rng),
        }
    }

    fn shrink(&self, p: &GenProgram) -> Vec<GenProgram> {
        let mut out = Vec::new();
        // Drop whole methods first (the biggest simplification), keeping
        // at least one.
        if p.methods.len() > 1 {
            for i in 0..p.methods.len() {
                let mut q = p.clone();
                q.methods.remove(i);
                out.push(q);
            }
        }
        // Fewer threads, fewer loop iterations.
        if p.threads > 2 {
            let mut q = p.clone();
            q.threads -= 1;
            out.push(q);
        }
        if p.iters > 1 {
            let mut q = p.clone();
            q.iters = 1;
            out.push(q);
            if p.iters > 2 {
                let mut q = p.clone();
                q.iters -= 1;
                out.push(q);
            }
        }
        // Drop single ops. A LockedRmw is one GenOp, so the acquire,
        // accesses, and release vanish together — shrinking never produces
        // unbalanced lock operations.
        for i in 0..p.methods.len() {
            if p.methods[i].len() > 1 {
                for j in 0..p.methods[i].len() {
                    let mut q = p.clone();
                    q.methods[i].remove(j);
                    out.push(q);
                }
            }
        }
        // Flatten compute weights (they only pad the schedule).
        for (i, m) in p.methods.iter().enumerate() {
            for (j, op) in m.iter().enumerate() {
                if let GenOp::Compute(u) = op {
                    if *u > 1 {
                        let mut q = p.clone();
                        q.methods[i][j] = GenOp::Compute(1);
                        out.push(q);
                    }
                }
            }
        }
        out
    }
}

/// One persisted regression case: a generated program plus the schedule
/// seed that exposed the (historical) disagreement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenCase {
    /// The generated program.
    pub program: GenProgram,
    /// Seed for `Schedule::random`.
    pub seed: u64,
}

impl GenCase {
    /// Serializes to the line-based `.case` format stored under
    /// `tests/regressions/`.
    pub fn encode(&self) -> String {
        let mut s = String::from("# three-way differential regression case\n");
        s.push_str(&format!("seed = {}\n", self.seed));
        s.push_str(&format!("threads = {}\n", self.program.threads));
        s.push_str(&format!("iters = {}\n", self.program.iters));
        for m in &self.program.methods {
            let ops: Vec<String> = m
                .iter()
                .map(|op| match op {
                    GenOp::Read(o, f) => format!("R({o},{f})"),
                    GenOp::Write(o, f) => format!("W({o},{f})"),
                    GenOp::Compute(u) => format!("C({u})"),
                    GenOp::LockedRmw(o) => format!("L({o})"),
                })
                .collect();
            s.push_str(&format!("method = {}\n", ops.join(" ")));
        }
        s
    }

    /// Parses the `.case` format, validating every bound [`build`]
    /// (`GenProgram::build`) relies on.
    pub fn decode(text: &str) -> Result<GenCase, String> {
        let mut seed = None;
        let mut threads = None;
        let mut iters = None;
        let mut methods = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected 'key = value'", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let ctx = |e: &str| format!("line {}: {e}", lineno + 1);
            match key {
                "seed" => {
                    seed = Some(value.parse::<u64>().map_err(|_| ctx("bad seed"))?);
                }
                "threads" => {
                    let t = value.parse::<usize>().map_err(|_| ctx("bad threads"))?;
                    if !(2..=8).contains(&t) {
                        return Err(ctx("threads must be in 2..=8"));
                    }
                    threads = Some(t);
                }
                "iters" => {
                    let i = value.parse::<u8>().map_err(|_| ctx("bad iters"))?;
                    if i == 0 {
                        return Err(ctx("iters must be >= 1"));
                    }
                    iters = Some(i);
                }
                "method" => {
                    let ops = value
                        .split_whitespace()
                        .map(|tok| parse_op(tok).map_err(|e| ctx(&e)))
                        .collect::<Result<Vec<GenOp>, String>>()?;
                    if ops.is_empty() {
                        return Err(ctx("method must have at least one op"));
                    }
                    methods.push(ops);
                }
                other => return Err(ctx(&format!("unknown key '{other}'"))),
            }
        }
        if methods.is_empty() {
            return Err("case has no methods".to_string());
        }
        Ok(GenCase {
            program: GenProgram {
                methods,
                threads: threads.ok_or("missing 'threads'")?,
                iters: iters.ok_or("missing 'iters'")?,
            },
            seed: seed.ok_or("missing 'seed'")?,
        })
    }
}

/// One persisted history-derived regression case: the
/// `dc_histories::generate` parameter set that exposed the failure. The
/// `.case` file stores parameters rather than the history itself because
/// generation is deterministic per parameter set — replay regenerates the
/// identical history, lowering, and schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryCase {
    /// Generator seed.
    pub seed: u64,
    /// Session count handed to the generator.
    pub sessions: usize,
    /// Base (serializable) transaction count.
    pub base_txs: usize,
    /// Data operations per base transaction.
    pub ops_per_tx: usize,
    /// Number of data keys.
    pub keys: usize,
    /// Injection mode.
    pub mode: AnomalyMode,
}

impl HistoryCase {
    /// The `kind` tag that distinguishes history cases from [`GenCase`]
    /// files in the shared `tests/regressions/` directory. Checked by
    /// [`AnyCase::decode`] *before* falling back to [`GenCase::decode`],
    /// which rejects unknown keys.
    pub const KIND: &'static str = "history";

    /// The generator parameters this case replays.
    pub fn params(&self) -> GenHistoryParams {
        GenHistoryParams {
            seed: self.seed,
            sessions: self.sessions,
            base_txs: self.base_txs,
            ops_per_tx: self.ops_per_tx,
            keys: self.keys,
            mode: self.mode,
        }
    }

    /// Serializes to the line-based `.case` format.
    pub fn encode(&self) -> String {
        format!(
            "# history-import differential regression case\n\
             kind = {}\n\
             seed = {}\n\
             mode = {}\n\
             sessions = {}\n\
             base_txs = {}\n\
             ops_per_tx = {}\n\
             keys = {}\n",
            Self::KIND,
            self.seed,
            self.mode.as_str(),
            self.sessions,
            self.base_txs,
            self.ops_per_tx,
            self.keys,
        )
    }

    /// Parses the `.case` format, validating the bounds the generator's
    /// clamps would otherwise silently rewrite — committed files must mean
    /// what they say.
    pub fn decode(text: &str) -> Result<HistoryCase, String> {
        let mut kind = None;
        let mut seed = None;
        let mut mode = None;
        let mut sessions = None;
        let mut base_txs = None;
        let mut ops_per_tx = None;
        let mut keys = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected 'key = value'", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let ctx = |e: &str| format!("line {}: {e}", lineno + 1);
            let size = |lo: usize, what: &str| -> Result<usize, String> {
                let n = value
                    .parse::<usize>()
                    .map_err(|_| ctx(&format!("bad {what}")))?;
                if n < lo {
                    return Err(ctx(&format!("{what} must be >= {lo}")));
                }
                Ok(n)
            };
            match key {
                "kind" => {
                    if value != Self::KIND {
                        return Err(ctx(&format!("unknown kind '{value}'")));
                    }
                    kind = Some(());
                }
                "seed" => {
                    seed = Some(value.parse::<u64>().map_err(|_| ctx("bad seed"))?);
                }
                "mode" => {
                    mode = Some(
                        AnomalyMode::from_str_opt(value)
                            .ok_or_else(|| ctx(&format!("unknown mode '{value}'")))?,
                    );
                }
                "sessions" => sessions = Some(size(2, "sessions")?),
                "base_txs" => base_txs = Some(size(1, "base_txs")?),
                "ops_per_tx" => ops_per_tx = Some(size(1, "ops_per_tx")?),
                "keys" => keys = Some(size(2, "keys")?),
                other => return Err(ctx(&format!("unknown key '{other}'"))),
            }
        }
        kind.ok_or("missing 'kind = history'")?;
        Ok(HistoryCase {
            seed: seed.ok_or("missing 'seed'")?,
            sessions: sessions.ok_or("missing 'sessions'")?,
            base_txs: base_txs.ok_or("missing 'base_txs'")?,
            ops_per_tx: ops_per_tx.ok_or("missing 'ops_per_tx'")?,
            keys: keys.ok_or("missing 'keys'")?,
            mode: mode.ok_or("missing 'mode'")?,
        })
    }
}

/// Either persisted case format — `tests/regressions/` holds both.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnyCase {
    /// A generated-program case ([`GenCase`]).
    Gen(GenCase),
    /// A history-derived case ([`HistoryCase`]).
    History(HistoryCase),
}

impl AnyCase {
    /// Dispatches on the `kind` tag: files carrying `kind = history` parse
    /// as [`HistoryCase`], everything else as [`GenCase`] (whose decoder
    /// predates the tag and rejects unknown keys, so the tag check must
    /// come first).
    pub fn decode(text: &str) -> Result<AnyCase, String> {
        let tagged = text.lines().any(|raw| {
            raw.trim()
                .split_once('=')
                .is_some_and(|(k, v)| k.trim() == "kind" && v.trim() == HistoryCase::KIND)
        });
        if tagged {
            HistoryCase::decode(text).map(AnyCase::History)
        } else {
            GenCase::decode(text).map(AnyCase::Gen)
        }
    }
}

/// Strategy producing [`HistoryCase`] parameter sets for the history
/// proptest frontier. The mode is always [`AnomalyMode::Serializable`];
/// properties that exercise anomaly injection substitute the mode they
/// test (a struct-update, so the sized fields keep shrinking).
#[derive(Clone, Copy, Debug, Default)]
pub struct HistoryStrategy;

/// The size ranges the strategy draws from, shared with its shrinker so
/// candidates shrink toward the same floors generation respects.
const SESSIONS_RANGE: std::ops::Range<usize> = 2..6;
const BASE_TXS_RANGE: std::ops::Range<usize> = 1..13;
const OPS_PER_TX_RANGE: std::ops::Range<usize> = 1..5;
const KEYS_RANGE: std::ops::Range<usize> = 2..5;

impl Strategy for HistoryStrategy {
    type Value = HistoryCase;

    fn generate(&self, rng: &mut TestRng) -> HistoryCase {
        HistoryCase {
            seed: (0u64..1_000_000).generate(rng),
            sessions: SESSIONS_RANGE.generate(rng),
            base_txs: BASE_TXS_RANGE.generate(rng),
            ops_per_tx: OPS_PER_TX_RANGE.generate(rng),
            keys: KEYS_RANGE.generate(rng),
            mode: AnomalyMode::Serializable,
        }
    }

    /// Shrinks the size parameters toward their floors. The seed and mode
    /// are the witness's identity and never shrink — a smaller seed is a
    /// different history, not a simpler version of this one.
    fn shrink(&self, c: &HistoryCase) -> Vec<HistoryCase> {
        let mut out = Vec::new();
        for cand in SESSIONS_RANGE.shrink(&c.sessions) {
            out.push(HistoryCase {
                sessions: cand,
                ..*c
            });
        }
        for cand in BASE_TXS_RANGE.shrink(&c.base_txs) {
            out.push(HistoryCase {
                base_txs: cand,
                ..*c
            });
        }
        for cand in OPS_PER_TX_RANGE.shrink(&c.ops_per_tx) {
            out.push(HistoryCase {
                ops_per_tx: cand,
                ..*c
            });
        }
        for cand in KEYS_RANGE.shrink(&c.keys) {
            out.push(HistoryCase { keys: cand, ..*c });
        }
        out
    }
}

fn parse_op(tok: &str) -> Result<GenOp, String> {
    let (kind, rest) = tok.split_at(1.min(tok.len()));
    let args = rest
        .strip_prefix('(')
        .and_then(|r| r.strip_suffix(')'))
        .ok_or_else(|| format!("malformed op '{tok}'"))?;
    let nums = args
        .split(',')
        .map(|n| {
            n.trim()
                .parse::<u8>()
                .map_err(|_| format!("bad number in '{tok}'"))
        })
        .collect::<Result<Vec<u8>, String>>()?;
    let two = || -> Result<(u8, u8), String> {
        match nums[..] {
            [o, f] if o < SHARED_OBJECTS && f < FIELDS => Ok((o, f)),
            _ => Err(format!("op '{tok}' out of bounds")),
        }
    };
    match kind {
        "R" => two().map(|(o, f)| GenOp::Read(o, f)),
        "W" => two().map(|(o, f)| GenOp::Write(o, f)),
        "C" => match nums[..] {
            [u] if u >= 1 => Ok(GenOp::Compute(u)),
            _ => Err(format!("op '{tok}' needs one weight >= 1")),
        },
        "L" => match nums[..] {
            [o] if o < SHARED_OBJECTS => Ok(GenOp::LockedRmw(o)),
            _ => Err(format!("op '{tok}' out of bounds")),
        },
        _ => Err(format!("unknown op kind in '{tok}'")),
    }
}
