//! Shared harness for the differential test suites.
//!
//! Every suite that compares checkers on one deterministic interleaving
//! funnels through [`assert_three_way`]: Velodrome (online graph search)
//! and AeroDrome (vector clocks) must agree bit for bit on deduplicated
//! violation keys *and* blame, and both must agree with DoubleChecker
//! single-run mode and the offline trace oracle on violation existence.
//! Existence — not multiplicity — is the DC comparison because
//! DoubleChecker reports imprecise SCCs refined by replay, so how many
//! distinct static cycles it attributes to one tangle may legitimately
//! differ from the online checkers (see DESIGN.md §Checkers).

#![allow(dead_code)]

pub mod gen;

use std::collections::BTreeSet;

use dc_aerodrome::{AeroConfig, AeroDrome};
use dc_core::{run_doublechecker, run_single, DcConfig, DcReport, DcStats, ExecPlan, OpTransport};
use dc_octet::CoordinationMode;
use dc_pcd::{analyze_trace, OfflineConfig};
use dc_runtime::engine::det::{run_det, Schedule};
use dc_runtime::ids::MethodId;
use dc_runtime::program::Program;
use dc_runtime::spec::AtomicitySpec;
use dc_runtime::trace::{Tee, TraceChecker, TraceEvent};
use dc_velodrome::{Velodrome, VelodromeConfig};

/// A checker's answer reduced to what the oracles compare: deduplicated
/// static cycle keys and blamed-method sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verdict {
    /// Deduplicated static cycle identities.
    pub keys: BTreeSet<Vec<Option<MethodId>>>,
    /// Blamed-method sets, one per deduplicated violation.
    pub blames: BTreeSet<Vec<MethodId>>,
}

impl Verdict {
    /// Whether any violation was reported.
    pub fn found(&self) -> bool {
        !self.keys.is_empty()
    }
}

/// Runs Velodrome on the schedule, also recording the event trace the
/// offline oracle replays — both observers literally see the same stream.
pub fn velodrome_verdict_with_trace(
    program: &Program,
    spec: &AtomicitySpec,
    schedule: &Schedule,
) -> (Verdict, Vec<TraceEvent>) {
    let tee = Tee::new(
        Velodrome::new(
            program.threads.len(),
            spec.clone(),
            VelodromeConfig::default(),
        ),
        TraceChecker::new(),
    );
    run_det(program, &tee, schedule).expect("velodrome run");
    let violations = tee.a.violations();
    let verdict = Verdict {
        keys: violations.iter().map(|v| v.static_key()).collect(),
        blames: violations
            .iter()
            .map(|v| v.blamed_methods.clone())
            .collect(),
    };
    (verdict, tee.b.events())
}

/// Runs AeroDrome on the schedule.
pub fn aerodrome_verdict(program: &Program, spec: &AtomicitySpec, schedule: &Schedule) -> Verdict {
    let aero = AeroDrome::new(program.threads.len(), spec.clone(), AeroConfig::default());
    run_det(program, &aero, schedule).expect("aerodrome run");
    let violations = aero.violations();
    Verdict {
        keys: violations.iter().map(|v| v.static_key()).collect(),
        blames: violations
            .iter()
            .map(|v| v.blamed_methods.clone())
            .collect(),
    }
}

/// Reduces a DoubleChecker report to the comparable verdict.
pub fn doublechecker_verdict(report: &DcReport) -> Verdict {
    Verdict {
        keys: report.violations.iter().map(|v| v.static_key()).collect(),
        blames: report
            .violations
            .iter()
            .map(|v| v.blamed_methods())
            .collect(),
    }
}

/// Deduplicated violation keys of a DoubleChecker report (for the
/// pure-performance-change equivalences, which compare DC against DC).
pub fn violation_keys(report: &DcReport) -> BTreeSet<Vec<Option<MethodId>>> {
    report.violations.iter().map(|v| v.static_key()).collect()
}

/// Zeroes the collector's timing-dependent reclaim count so otherwise
/// bit-identical configurations compare equal.
pub fn scrub_collected(mut stats: DcStats) -> DcStats {
    stats.collected_txs = 0;
    stats
}

/// The central three-way differential assertion (see module docs).
/// `ctx` prefixes every failure message.
pub fn assert_three_way(ctx: &str, program: &Program, spec: &AtomicitySpec, schedule: &Schedule) {
    let (velo, trace) = velodrome_verdict_with_trace(program, spec, schedule);
    let aero = aerodrome_verdict(program, spec, schedule);
    assert_eq!(
        velo.keys, aero.keys,
        "{ctx}: velodrome vs aerodrome violation keys"
    );
    assert_eq!(
        velo.blames, aero.blames,
        "{ctx}: velodrome vs aerodrome blame"
    );

    let offline = analyze_trace(&trace, spec, OfflineConfig::default());
    assert_eq!(
        velo.found(),
        !offline.violations.is_empty(),
        "{ctx}: online checkers vs offline oracle (existence)"
    );

    let dc = run_single(program, spec, &ExecPlan::Det(schedule.clone())).expect("dc run");
    assert_eq!(
        velo.found(),
        !dc.violations.is_empty(),
        "{ctx}: online checkers vs doublechecker (existence)"
    );
}

/// History-import oracle: the full three-way assertion on the lowered
/// program, the expected violation-existence verdict from every checker,
/// and the pipelined DoubleChecker matrix — shards {1, 2} × both op
/// transports — each healthy (no pipeline error) and agreeing on existence.
pub fn assert_history_verdict(ctx: &str, lowered: &dc_histories::Lowered, expect_violation: bool) {
    let program = &lowered.program;
    let spec = &lowered.spec;
    let schedule = &lowered.schedule;
    assert_three_way(ctx, program, spec, schedule);
    let (velo, _) = velodrome_verdict_with_trace(program, spec, schedule);
    assert_eq!(
        velo.found(),
        expect_violation,
        "{ctx}: expected verdict vs the (already three-way-agreed) checkers"
    );
    for shards in [1u32, 2] {
        for transport in [OpTransport::Ring, OpTransport::Channel] {
            let config = DcConfig::single_run(CoordinationMode::Immediate)
                .with_pipelined(true)
                .with_shards(shards)
                .with_op_transport(transport);
            let report = run_doublechecker(program, spec, config, &ExecPlan::Det(schedule.clone()))
                .unwrap_or_else(|e| panic!("{ctx}: shards={shards} {transport:?}: {e}"));
            assert_eq!(
                report.pipeline_error, None,
                "{ctx}: shards={shards} {transport:?}"
            );
            assert_eq!(
                !report.violations.is_empty(),
                expect_violation,
                "{ctx}: pipelined shards={shards} {transport:?} (existence)"
            );
        }
    }
}
