//! Reproduces the §3.2.3 worked example: cycle detection is deferred to
//! transaction end so PCD sees the *complete* precise cycle.
//!
//! The example: T1 executes `wr o.f; rd p.q` and T2 executes
//! `wr p.q; rd o.g; rd o.f`. The precise cycle exists only once `rd o.f`
//! executes; detecting at edge-creation time would hand PCD a transaction
//! pair whose logs do not yet contain the closing access.

use dc_core::{DcConfig, DoubleChecker};
use dc_octet::CoordinationMode;
use dc_runtime::checker::Checker;
use dc_runtime::heap::{Heap, ObjKind};
use dc_runtime::ids::{MethodId, ObjId, ThreadId};
use dc_runtime::spec::AtomicitySpec;
use doublechecker_repro as _;

const O: ObjId = ObjId(0); // fields f=0, g=1
const P: ObjId = ObjId(1); // field q=0
const T1: ThreadId = ThreadId(0);
const T2: ThreadId = ThreadId(1);

fn run(include_final_read: bool) -> DoubleChecker {
    let checker = DoubleChecker::new(
        2,
        AtomicitySpec::all_atomic(),
        DcConfig::single_run(CoordinationMode::Immediate),
    );
    let heap = Heap::new(
        &[ObjKind::Plain { fields: 2 }, ObjKind::Plain { fields: 1 }],
        2,
    );
    checker.run_begin(&heap);
    checker.thread_begin(T1);
    checker.thread_begin(T2);
    checker.enter_method(T1, MethodId(0));
    checker.enter_method(T2, MethodId(1));

    checker.write(T1, O, 0); // T1: wr o.f (WrEx T1)
    checker.write(T2, P, 0); // T2: wr p.q (WrEx T2)
    checker.read(T1, P, 0); // T1: rd p.q — slow path, edge T2 → T1
    checker.read(T2, O, 1); // T2: rd o.g — slow path, edge T1 → T2
    if include_final_read {
        checker.read(T2, O, 0); // T2: rd o.f — fast path; completes the
                                // precise cycle (W–R on o.f)
    }

    checker.exit_method(T2, MethodId(1));
    checker.exit_method(T1, MethodId(0));
    checker.thread_end(T1);
    checker.thread_end(T2);
    checker.run_end();
    checker
}

#[test]
fn cycle_reported_once_after_transactions_end() {
    let checker = run(true);
    let violations = checker.violations();
    assert_eq!(violations.len(), 1, "the completed cycle is reported");
    assert_eq!(violations[0].cycle.len(), 2);
    assert!(checker.stats().icd_sccs >= 1);
}

#[test]
fn incomplete_interleaving_reports_nothing_precise() {
    // Without `rd o.f`, the dependences are T1→T2 only (via p.q and o.g):
    // serializable, even though ICD's object-granularity edges may still
    // form an imprecise cycle.
    let checker = run(false);
    assert!(
        checker.violations().is_empty(),
        "no precise cycle exists without the closing read"
    );
}
