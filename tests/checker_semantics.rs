//! Direct-drive tests of DoubleChecker's checker semantics: second-run
//! filtering, sync-operation logging, array conflation, and the multi-run
//! soundness upper bound.

use dc_core::{run_doublechecker, run_single, DcConfig, DoubleChecker, ExecPlan, StaticTxInfo};
use dc_octet::CoordinationMode;
use dc_runtime::checker::Checker;
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::{Heap, ObjKind};
use dc_runtime::ids::{MethodId, ObjId, ThreadId};
use dc_runtime::spec::AtomicitySpec;
use dc_workloads::{by_name, Scale};
use doublechecker_repro as _;

const T0: ThreadId = ThreadId(0);
const T1: ThreadId = ThreadId(1);
const M0: MethodId = MethodId(0);
const M1: MethodId = MethodId(1);
const O: ObjId = ObjId(0);

fn drive(config: DcConfig, f: impl Fn(&DoubleChecker)) -> DoubleChecker {
    let checker = DoubleChecker::new(2, AtomicitySpec::all_atomic(), config);
    let heap = Heap::new(
        &[ObjKind::Plain { fields: 2 }, ObjKind::Array { len: 8 }],
        2,
    );
    checker.run_begin(&heap);
    checker.thread_begin(T0);
    checker.thread_begin(T1);
    f(&checker);
    checker.thread_end(T0);
    checker.thread_end(T1);
    checker.run_end();
    checker
}

#[test]
fn second_run_filter_skips_uncovered_transactions_entirely() {
    let info = StaticTxInfo {
        methods: [M0].into_iter().collect(),
        any_unary: false,
    };
    let checker = drive(
        DcConfig::second_run(&info, CoordinationMode::Immediate),
        |c| {
            // Covered transaction: instrumented.
            c.enter_method(T0, M0);
            c.read(T0, O, 0);
            c.exit_method(T0, M0);
            // Uncovered transaction: skipped.
            c.enter_method(T1, M1);
            c.read(T1, O, 0);
            c.write(T1, O, 0);
            c.exit_method(T1, M1);
        },
    );
    let stats = checker.stats();
    assert_eq!(stats.regular_accesses, 1, "only the covered read counts");
}

#[test]
fn unary_accesses_follow_the_unary_switch() {
    for (any_unary, expected) in [(false, 0u64), (true, 2u64)] {
        let info = StaticTxInfo {
            methods: std::collections::HashSet::new(),
            any_unary,
        };
        let checker = drive(
            DcConfig::second_run(&info, CoordinationMode::Immediate),
            |c| {
                // Accesses outside any transaction (still inside the
                // excluded-by-filter method M0's *non*-transactional
                // context because the filter does not cover it… drive
                // plainly without entering methods).
                c.read(T0, O, 0);
                c.write(T0, O, 1);
            },
        );
        assert_eq!(
            checker.stats().unary_accesses,
            expected,
            "any_unary={any_unary}"
        );
    }
}

#[test]
fn array_accesses_are_ignored_by_default_but_conflated_when_on() {
    let arr = ObjId(1);
    let default_config = DcConfig::single_run(CoordinationMode::Immediate);
    let checker = drive(default_config, |c| {
        c.enter_method(T0, M0);
        c.array_write(T0, arr, 3);
        c.array_read(T0, arr, 5);
        c.exit_method(T0, M0);
    });
    assert_eq!(checker.stats().regular_accesses, 0, "arrays off by default");

    let mut on = DcConfig::single_run(CoordinationMode::Immediate);
    on.instrument_arrays = true;
    let checker = drive(on, |c| {
        c.enter_method(T0, M0);
        c.array_write(T0, arr, 3);
        c.array_read(T0, arr, 5);
        c.exit_method(T0, M0);
        // Another thread writes a different element: with conflated
        // (array-granularity) metadata this is still a dependence chain
        // through the same slot.
        c.enter_method(T1, M1);
        c.array_write(T1, arr, 7);
        c.exit_method(T1, M1);
    });
    assert_eq!(checker.stats().regular_accesses, 3);
    assert!(
        checker.stats().idg_cross_edges >= 1,
        "conflated array metadata produces the cross-thread edge"
    );
}

#[test]
fn sync_operations_are_logged_as_sync_accesses() {
    let checker = drive(DcConfig::single_run(CoordinationMode::Immediate), |c| {
        c.enter_method(T0, M0);
        c.sync_acquire(T0, O);
        c.sync_release(T0, O);
        c.exit_method(T0, M0);
    });
    assert_eq!(checker.stats().regular_accesses, 2);
    assert!(checker.stats().log_entries >= 2, "sync ops enter the logs");
}

/// Multi-run soundness upper bound (paper §3.1: "DoubleChecker guarantees
/// soundness if the two program runs execute identically"): with static
/// information covering every method and unary accesses, the second run on
/// the same schedule finds exactly single-run's violations.
#[test]
fn full_static_info_makes_the_second_run_equal_single_run() {
    let wl = by_name("hsqldb6", Scale::Tiny).unwrap();
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    let info = StaticTxInfo {
        methods: (0..wl.program.methods.len())
            .map(MethodId::from_index)
            .collect(),
        any_unary: true,
    };
    for seed in 0..4u64 {
        let plan = ExecPlan::Det(Schedule::random(seed));
        let single = run_single(&wl.program, &spec, &plan).unwrap();
        let second = run_doublechecker(
            &wl.program,
            &spec,
            DcConfig::second_run(&info, CoordinationMode::Immediate),
            &plan,
        )
        .unwrap();
        let keys = |r: &dc_core::DcReport| {
            let mut v: Vec<_> = r.violations.iter().map(|v| v.static_key()).collect();
            v.sort();
            v
        };
        assert_eq!(keys(&single), keys(&second), "seed {seed}");
    }
}

/// The violations a *covering* second run reports are a superset of what a
/// narrower filter reports on the same schedule.
#[test]
fn narrower_filters_find_fewer_or_equal_violations() {
    let wl = by_name("tsp", Scale::Tiny).unwrap();
    let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
    let full = StaticTxInfo {
        methods: (0..wl.program.methods.len())
            .map(MethodId::from_index)
            .collect(),
        any_unary: true,
    };
    let narrow = StaticTxInfo {
        methods: wl
            .program
            .methods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.name.contains("checkBound"))
            .map(|(i, _)| MethodId::from_index(i))
            .collect(),
        any_unary: false,
    };
    for seed in 0..4u64 {
        let plan = ExecPlan::Det(Schedule::random(seed));
        let wide = run_doublechecker(
            &wl.program,
            &spec,
            DcConfig::second_run(&full, CoordinationMode::Immediate),
            &plan,
        )
        .unwrap();
        let thin = run_doublechecker(
            &wl.program,
            &spec,
            DcConfig::second_run(&narrow, CoordinationMode::Immediate),
            &plan,
        )
        .unwrap();
        assert!(
            thin.violations.len() <= wide.violations.len(),
            "seed {seed}: narrow filter must not find more"
        );
    }
}
