//! Differential property tests on two frontiers: randomly generated
//! lock-disciplined programs executed under random deterministic schedules
//! (`ProgramStrategy`), and randomly generated database histories with
//! known-by-construction verdicts replayed through the history-import
//! lowering (`HistoryStrategy`, see `crates/histories`). On both, the
//! three checkers — Velodrome, AeroDrome, and DoubleChecker single-run —
//! plus the offline trace oracle must agree (see `tests/common`). Any
//! failing case is shrunk to a minimal witness and persisted under
//! `tests/regressions/` so `tests/regression_corpus.rs` replays it on
//! every run thereafter.

mod common;

use common::gen::{GenCase, GenProgram, HistoryCase, HistoryStrategy, ProgramStrategy};
use dc_core::{run_single, ExecPlan};
use dc_histories::{generate, lower, AnomalyMode};
use dc_runtime::engine::det::Schedule;
use doublechecker_repro as _;
use proptest::prelude::*;

/// Directory where failing generated cases are persisted.
fn regressions_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("regressions")
}

/// Runs `check`; if it panics, writes the already-encoded case to
/// `tests/regressions/<name>.case` before propagating. The shrink loop
/// re-enters this for every failing candidate, so the last write — the
/// file that survives — is the minimal witness. Both case codecs
/// (`GenCase`, `HistoryCase`) funnel through here.
fn persisting(name: &str, encoded: &str, check: impl FnOnce()) {
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(check)) {
        let dir = regressions_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.case"));
        if std::fs::write(&path, encoded).is_ok() {
            eprintln!("persisted failing case to {}", path.display());
        }
        std::panic::resume_unwind(payload);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline three-way property: violation keys and blame agree
    /// between the online checkers, existence agrees across all three
    /// plus the offline oracle, on any generated program and schedule.
    #[test]
    fn three_way_agreement(p in ProgramStrategy, seed in 0u64..1000) {
        let case = GenCase { program: p.clone(), seed };
        persisting("three_way_agreement", &case.encode(), || {
            let (program, spec) = p.build();
            let schedule = Schedule::random(seed);
            common::assert_three_way(
                &format!("generated program (seed {seed})"),
                &program,
                &spec,
                &schedule,
            );
        });
    }

    /// The asynchronous pipeline is a pure performance change: same
    /// deduplicated violations and static transaction info as the
    /// synchronous path on any generated program and schedule.
    #[test]
    fn pipelined_matches_synchronous(p in ProgramStrategy, seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig};
        let (program, spec) = p.build();
        let plan = ExecPlan::Det(Schedule::random(seed));
        let sync = run_single(&program, &spec, &plan).expect("sync run");
        let piped = run_doublechecker(
            &program,
            &spec,
            DcConfig::single_run(plan.coordination()).with_pipelined(true),
            &plan,
        )
        .expect("pipelined run");
        prop_assert_eq!(
            common::violation_keys(&sync),
            common::violation_keys(&piped),
            "violation sets diverge"
        );
        prop_assert_eq!(sync.static_info, piped.static_info, "static info diverges");
        prop_assert_eq!(piped.stats.graph_locks, 0u64, "app threads locked the graph");
    }

    /// The Octet ownership inline cache is a pure performance change: on
    /// any generated program and schedule, disabling the cache reproduces
    /// the cache-on run's deduplicated violations, static transaction
    /// info, and statistics bit for bit — a hit may only ever stand in for
    /// a same-state classification the metadata word would have made.
    #[test]
    fn barrier_cache_off_matches_cache_on(p in ProgramStrategy, seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig};
        let (program, spec) = p.build();
        let plan = ExecPlan::Det(Schedule::random(seed));
        let base = DcConfig::single_run(plan.coordination());
        let on = run_doublechecker(
            &program,
            &spec,
            base.clone().with_barrier_cache(true),
            &plan,
        )
        .expect("cache-on run");
        let off = run_doublechecker(
            &program,
            &spec,
            base.with_barrier_cache(false),
            &plan,
        )
        .expect("cache-off run");
        prop_assert_eq!(&on.violations, &off.violations, "violations diverge");
        prop_assert_eq!(&on.static_info, &off.static_info, "static info diverges");
        prop_assert_eq!(on.stats, off.stats, "stats diverge");
    }

    /// Sharding the pipelined IDG by connected component is a pure
    /// performance change: on any generated program and schedule, the
    /// sharded configuration produces the same deduplicated violations,
    /// static transaction info, and statistics (modulo the per-shard
    /// collector's reclaim timing) as the single-owner pipeline.
    #[test]
    fn sharded_matches_single_owner(p in ProgramStrategy, seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig};
        let (program, spec) = p.build();
        let plan = ExecPlan::Det(Schedule::random(seed));
        let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
        let single = run_doublechecker(&program, &spec, base.clone().with_shards(1), &plan)
            .expect("single-owner run");
        let sharded = run_doublechecker(&program, &spec, base.with_shards(4), &plan)
            .expect("sharded run");
        prop_assert_eq!(
            common::violation_keys(&single),
            common::violation_keys(&sharded),
            "violation sets diverge"
        );
        prop_assert_eq!(single.static_info, sharded.static_info, "static info diverges");
        prop_assert_eq!(
            common::scrub_collected(single.stats),
            common::scrub_collected(sharded.stats),
            "stats diverge"
        );
        prop_assert_eq!(sharded.pipeline_error, None, "healthy run reported an error");
    }

    /// Full observability is invisible to the analysis: on any generated
    /// program and schedule, the synchronous run with every counter,
    /// histogram, and trace site live is bit-identical — violations, static
    /// transaction info, and statistics — to the uninstrumented run, while
    /// its own bookkeeping balances (`ops_enqueued == ops_applied`).
    #[test]
    fn observability_is_a_pure_observer(p in ProgramStrategy, seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig, ObsLevel};
        let (program, spec) = p.build();
        let plan = ExecPlan::Det(Schedule::random(seed));
        let base = DcConfig::single_run(plan.coordination());
        let off = run_doublechecker(
            &program,
            &spec,
            base.clone().with_observability(ObsLevel::Off),
            &plan,
        )
        .expect("off run");
        let full = run_doublechecker(
            &program,
            &spec,
            base.with_observability(ObsLevel::Full),
            &plan,
        )
        .expect("full run");
        prop_assert_eq!(&off.violations, &full.violations, "violations diverge");
        prop_assert_eq!(&off.static_info, &full.static_info, "static info diverges");
        prop_assert_eq!(off.stats, full.stats, "stats diverge");
        prop_assert!(off.pipeline.is_none(), "off must not report");
        let report = full.pipeline.expect("full level reports");
        prop_assert_eq!(report.graph.ops_enqueued, report.graph.ops_applied);
        prop_assert_eq!(report.replay.submitted, report.replay.completed);
        prop_assert_eq!(report.replay.submitted, full.stats.sccs_to_pcd);
    }

    /// Serial execution (one giant quantum) is always violation-free:
    /// precision under the most favourable schedule.
    #[test]
    fn serial_schedules_are_clean(p in ProgramStrategy) {
        let (program, spec) = p.build();
        let schedule = Schedule::RoundRobin { quantum: u32::MAX };
        let report = run_single(&program, &spec, &ExecPlan::Det(schedule)).expect("dc run");
        prop_assert!(report.violations.is_empty(), "serial execution is serializable");
    }

    /// History frontier, serializable control: a generated history with no
    /// injected anomaly lowers, replays, satisfies the full three-way
    /// agreement, and every checker reports zero violations — the
    /// timestamp-chained base is serializable by construction, so any
    /// report is a false positive in the lowering or a checker.
    #[test]
    fn history_serializable_mode_is_clean(hc in HistoryStrategy) {
        persisting("history_serializable_mode_is_clean", &hc.encode(), || {
            let generated = generate(&hc.params());
            let lowered = lower(&generated.history)
                .unwrap_or_else(|e| panic!("{hc:?} must lower: {e}"));
            let ctx = format!("generated history {hc:?}");
            common::assert_three_way(&ctx, &lowered.program, &lowered.spec, &lowered.schedule);
            let (velo, _) = common::velodrome_verdict_with_trace(
                &lowered.program,
                &lowered.spec,
                &lowered.schedule,
            );
            assert!(
                !velo.found(),
                "{ctx}: serializable control reported {:?}",
                velo.keys
            );
        });
    }

    /// History frontier, anomaly injection: a generated history with an
    /// injected lost update, write skew, or fractured read lowers, replays,
    /// satisfies the full three-way agreement, and DoubleChecker reports a
    /// violation whose cycle covers both injected transactions.
    #[test]
    fn history_injected_anomaly_is_caught(hc in HistoryStrategy, mode_ix in 0usize..3) {
        let modes = [
            AnomalyMode::LostUpdate,
            AnomalyMode::WriteSkew,
            AnomalyMode::FracturedRead,
        ];
        let case = HistoryCase { mode: modes[mode_ix], ..hc };
        persisting("history_injected_anomaly_is_caught", &case.encode(), || {
            let generated = generate(&case.params());
            let lowered = lower(&generated.history)
                .unwrap_or_else(|e| panic!("{case:?} must lower: {e}"));
            let ctx = format!("generated history {case:?}");
            common::assert_three_way(&ctx, &lowered.program, &lowered.spec, &lowered.schedule);
            let report = run_single(
                &lowered.program,
                &lowered.spec,
                &ExecPlan::Det(lowered.schedule.clone()),
            )
            .expect("dc run");
            let cycle_methods: std::collections::BTreeSet<_> = report
                .violations
                .iter()
                .flat_map(|v| v.cycle.iter().filter_map(|m| m.kind.method()))
                .collect();
            for &(s, t) in &generated.injected {
                let m = lowered.tx_methods[s][t];
                assert!(
                    cycle_methods.contains(&m),
                    "{ctx}: cycle methods {cycle_methods:?} miss injected {m:?}"
                );
            }
        });
    }
}

/// The generator's shrink preserves transaction boundaries: no candidate
/// ever splits a LockedRmw, empties a method, or drops below two threads.
#[test]
fn shrink_preserves_program_invariants() {
    use common::gen::GenOp;
    use proptest::{Strategy, TestRng};
    let strat = ProgramStrategy;
    let mut rng = TestRng::for_case("shrink_invariants", 0);
    for _ in 0..50 {
        let p: GenProgram = strat.generate(&mut rng);
        for q in strat.shrink(&p) {
            assert!(!q.methods.is_empty(), "shrink emptied the method list");
            assert!(q.threads >= 2, "shrink dropped below two threads");
            assert!(q.iters >= 1, "shrink zeroed the loop count");
            for m in &q.methods {
                assert!(!m.is_empty(), "shrink emptied a method");
            }
            // Every candidate still builds (LockedRmw stayed whole, so
            // lock operations stay balanced by construction).
            let locked_rmws = |prog: &GenProgram| {
                prog.methods
                    .iter()
                    .flatten()
                    .filter(|op| matches!(op, GenOp::LockedRmw(_)))
                    .count()
            };
            assert!(locked_rmws(&q) <= locked_rmws(&p));
            q.build();
        }
    }
}
