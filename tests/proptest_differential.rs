//! Differential property test: on randomly generated lock-disciplined
//! programs executed under identical deterministic schedules, Velodrome and
//! DoubleChecker single-run mode — both sound and precise — must agree on
//! whether any atomicity violation exists.

use dc_core::{run_single, ExecPlan};
use dc_runtime::engine::det::Schedule;
use dc_runtime::heap::ObjKind;
use dc_runtime::program::{Op, Program, ProgramBuilder};
use dc_runtime::spec::AtomicitySpec;
use dc_velodrome::{Velodrome, VelodromeConfig};
use doublechecker_repro as _;
use proptest::prelude::*;

/// One primitive op of a generated atomic method.
#[derive(Clone, Debug)]
enum GenOp {
    Read(u8, u8),
    Write(u8, u8),
    Compute(u8),
    /// Lock-protected read-modify-write of a shared field.
    LockedRmw(u8),
}

fn gen_method() -> impl Strategy<Value = Vec<GenOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..2, 0u8..2).prop_map(|(o, f)| GenOp::Read(o, f)),
            (0u8..2, 0u8..2).prop_map(|(o, f)| GenOp::Write(o, f)),
            (1u8..20).prop_map(GenOp::Compute),
            (0u8..2).prop_map(GenOp::LockedRmw),
        ],
        1..6,
    )
}

fn gen_program() -> impl Strategy<Value = (Vec<Vec<GenOp>>, usize, u8)> {
    (
        prop::collection::vec(gen_method(), 2..5),
        2usize..4, // threads
        1u8..6,    // loop iterations
    )
}

fn build(methods: &[Vec<GenOp>], threads: usize, iters: u8) -> (Program, AtomicitySpec) {
    let mut b = ProgramBuilder::new();
    let shared: Vec<_> = (0..2)
        .map(|_| b.object(ObjKind::Plain { fields: 2 }))
        .collect();
    let lock = b.object(ObjKind::Monitor);
    let method_ids: Vec<_> = methods
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            let body: Vec<Op> = ops
                .iter()
                .flat_map(|op| match *op {
                    GenOp::Read(o, f) => {
                        vec![Op::Read(shared[o as usize], u32::from(f))]
                    }
                    GenOp::Write(o, f) => {
                        vec![Op::Write(shared[o as usize], u32::from(f))]
                    }
                    GenOp::Compute(u) => vec![Op::Compute(u32::from(u))],
                    GenOp::LockedRmw(o) => vec![
                        Op::Acquire(lock),
                        Op::Read(shared[o as usize], 0),
                        Op::Write(shared[o as usize], 0),
                        Op::Release(lock),
                    ],
                })
                .collect();
            b.method(format!("gen{i}"), body)
        })
        .collect();
    let mut entries = Vec::new();
    for t in 0..threads {
        let body = vec![Op::Loop {
            count: u32::from(iters),
            body: method_ids
                .iter()
                .enumerate()
                .filter(|(k, _)| (k + t) % 2 == 0 || threads == 2)
                .map(|(_, &m)| Op::Call(m))
                .collect(),
        }];
        entries.push(b.method(format!("entry{t}"), body));
    }
    for &e in &entries {
        b.thread(e);
    }
    let program = b.build().expect("generated program is valid");
    let spec = AtomicitySpec::excluding(entries);
    (program, spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn velodrome_and_doublechecker_agree((methods, threads, iters) in gen_program(), seed in 0u64..1000) {
        let (program, spec) = build(&methods, threads, iters);
        let schedule = Schedule::random(seed);

        let velodrome = Velodrome::new(
            program.threads.len(),
            spec.clone(),
            VelodromeConfig::default(),
        );
        dc_runtime::engine::det::run_det(&program, &velodrome, &schedule).expect("velodrome run");
        let velo_found = !velodrome.violations().is_empty();

        let report = run_single(&program, &spec, &ExecPlan::Det(schedule)).expect("dc run");
        let dc_found = !report.violations.is_empty();

        prop_assert_eq!(
            velo_found,
            dc_found,
            "checkers disagree (velodrome={}, doublechecker={}) on program {:?} threads={} iters={} seed={}",
            velo_found,
            dc_found,
            methods,
            threads,
            iters,
            seed
        );
    }

    /// The asynchronous pipeline is a pure performance change: same
    /// deduplicated violations and static transaction info as the
    /// synchronous path on any generated program and schedule.
    #[test]
    fn pipelined_matches_synchronous((methods, threads, iters) in gen_program(), seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig};
        use std::collections::HashSet;
        let (program, spec) = build(&methods, threads, iters);
        let plan = ExecPlan::Det(Schedule::random(seed));
        let sync = run_single(&program, &spec, &plan).expect("sync run");
        let piped = run_doublechecker(
            &program,
            &spec,
            DcConfig::single_run(plan.coordination()).with_pipelined(true),
            &plan,
        )
        .expect("pipelined run");
        let sync_keys: HashSet<_> = sync.violations.iter().map(|v| v.static_key()).collect();
        let piped_keys: HashSet<_> = piped.violations.iter().map(|v| v.static_key()).collect();
        prop_assert_eq!(sync_keys, piped_keys, "violation sets diverge");
        prop_assert_eq!(sync.static_info, piped.static_info, "static info diverges");
        prop_assert_eq!(piped.stats.graph_locks, 0u64, "app threads locked the graph");
    }

    /// Sharding the pipelined IDG by connected component is a pure
    /// performance change: on any generated program and schedule, the
    /// sharded configuration produces the same deduplicated violations,
    /// static transaction info, and statistics (modulo the per-shard
    /// collector's reclaim timing) as the single-owner pipeline.
    #[test]
    fn sharded_matches_single_owner((methods, threads, iters) in gen_program(), seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig, DcStats};
        use std::collections::HashSet;
        let (program, spec) = build(&methods, threads, iters);
        let plan = ExecPlan::Det(Schedule::random(seed));
        let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
        let single = run_doublechecker(&program, &spec, base.clone().with_shards(1), &plan)
            .expect("single-owner run");
        let sharded = run_doublechecker(&program, &spec, base.with_shards(4), &plan)
            .expect("sharded run");
        let single_keys: HashSet<_> = single.violations.iter().map(|v| v.static_key()).collect();
        let sharded_keys: HashSet<_> = sharded.violations.iter().map(|v| v.static_key()).collect();
        prop_assert_eq!(single_keys, sharded_keys, "violation sets diverge");
        prop_assert_eq!(single.static_info, sharded.static_info, "static info diverges");
        let scrub = |mut s: DcStats| { s.collected_txs = 0; s };
        prop_assert_eq!(scrub(single.stats), scrub(sharded.stats), "stats diverge");
        prop_assert_eq!(sharded.pipeline_error, None, "healthy run reported an error");
    }

    /// Full observability is invisible to the analysis: on any generated
    /// program and schedule, the synchronous run with every counter,
    /// histogram, and trace site live is bit-identical — violations, static
    /// transaction info, and statistics — to the uninstrumented run, while
    /// its own bookkeeping balances (`ops_enqueued == ops_applied`).
    #[test]
    fn observability_is_a_pure_observer((methods, threads, iters) in gen_program(), seed in 0u64..1000) {
        use dc_core::{run_doublechecker, DcConfig, ObsLevel};
        let (program, spec) = build(&methods, threads, iters);
        let plan = ExecPlan::Det(Schedule::random(seed));
        let base = DcConfig::single_run(plan.coordination());
        let off = run_doublechecker(
            &program,
            &spec,
            base.clone().with_observability(ObsLevel::Off),
            &plan,
        )
        .expect("off run");
        let full = run_doublechecker(
            &program,
            &spec,
            base.with_observability(ObsLevel::Full),
            &plan,
        )
        .expect("full run");
        prop_assert_eq!(&off.violations, &full.violations, "violations diverge");
        prop_assert_eq!(&off.static_info, &full.static_info, "static info diverges");
        prop_assert_eq!(off.stats, full.stats, "stats diverge");
        prop_assert!(off.pipeline.is_none(), "off must not report");
        let report = full.pipeline.expect("full level reports");
        prop_assert_eq!(report.graph.ops_enqueued, report.graph.ops_applied);
        prop_assert_eq!(report.replay.submitted, report.replay.completed);
        prop_assert_eq!(report.replay.submitted, full.stats.sccs_to_pcd);
    }

    /// Serial execution (one giant quantum) is always violation-free:
    /// precision under the most favourable schedule.
    #[test]
    fn serial_schedules_are_clean((methods, threads, iters) in gen_program()) {
        let (program, spec) = build(&methods, threads, iters);
        let schedule = Schedule::RoundRobin { quantum: u32::MAX };
        let report = run_single(&program, &spec, &ExecPlan::Det(schedule)).expect("dc run");
        prop_assert!(report.violations.is_empty(), "serial execution is serializable");
    }
}
