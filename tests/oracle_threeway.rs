//! Three-way differential check on one execution: Velodrome (online,
//! precise), DoubleChecker single-run (dual-analysis), and the offline
//! trace oracle must all agree on violation existence. The trace is
//! recorded by a [`Tee`] in the *same run* as Velodrome, so both literally
//! observe the same event stream; DoubleChecker re-runs the identical
//! deterministic schedule.

use dc_core::{run_single, ExecPlan};
use dc_pcd::{analyze_trace, OfflineConfig};
use dc_runtime::engine::det::{run_det, Schedule};
use dc_runtime::trace::{Tee, TraceChecker};
use dc_velodrome::{Velodrome, VelodromeConfig};
use dc_workloads::{all, Scale};
use doublechecker_repro as _;

#[test]
fn all_three_checkers_agree_across_the_suite() {
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let schedule = Schedule::random(seed);

            let tee = Tee::new(
                Velodrome::new(
                    wl.program.threads.len(),
                    spec.clone(),
                    VelodromeConfig::default(),
                ),
                TraceChecker::new(),
            );
            run_det(&wl.program, &tee, &schedule).unwrap();
            let velo_found = !tee.a.violations().is_empty();
            let trace = tee.b.events();

            let offline = analyze_trace(&trace, &spec, OfflineConfig::default());
            let offline_found = !offline.violations.is_empty();

            let dc = run_single(&wl.program, &spec, &ExecPlan::Det(schedule)).unwrap();
            let dc_found = !dc.violations.is_empty();

            assert_eq!(
                velo_found, offline_found,
                "{} seed {seed}: velodrome vs offline oracle",
                wl.name
            );
            assert_eq!(
                velo_found, dc_found,
                "{} seed {seed}: velodrome vs doublechecker",
                wl.name
            );
        }
    }
}

/// The asynchronous analysis pipeline must be a pure performance change:
/// on the same deterministic schedule, the pipelined configuration produces
/// the same deduplicated violation set and the same static transaction
/// information as the synchronous single-run — while never taking the graph
/// mutex on application threads.
#[test]
fn pipelined_single_run_matches_synchronous_across_the_suite() {
    use dc_core::{run_doublechecker, DcConfig};
    use std::collections::HashSet;
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let sync = run_single(&wl.program, &spec, &plan).unwrap();
            let piped = run_doublechecker(
                &wl.program,
                &spec,
                DcConfig::single_run(plan.coordination()).with_pipelined(true),
                &plan,
            )
            .unwrap();

            let keys = |r: &dc_core::DcReport| -> HashSet<_> {
                r.violations.iter().map(|v| v.static_key()).collect()
            };
            assert_eq!(
                keys(&sync),
                keys(&piped),
                "{} seed {seed}: sync vs pipelined violation sets",
                wl.name
            );
            assert_eq!(
                sync.static_info, piped.static_info,
                "{} seed {seed}: sync vs pipelined static transaction info",
                wl.name
            );
            assert_eq!(
                piped.stats.graph_locks, 0,
                "{} seed {seed}: pipelined application threads must not lock the graph",
                wl.name
            );
        }
    }
}

/// The op transport is a pure performance change: the fixed-capacity ring
/// and the legacy unbounded channel must produce identical deduplicated
/// violations, static transaction information, and statistics (modulo the
/// collector's timing-dependent reclaim count) on the same deterministic
/// schedule.
#[test]
fn ring_and_channel_transports_are_bit_identical_across_the_suite() {
    use dc_core::{run_doublechecker, DcConfig, DcReport, DcStats, OpTransport};
    use std::collections::BTreeSet;
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
            let ring = run_doublechecker(
                &wl.program,
                &spec,
                base.clone().with_op_transport(OpTransport::Ring),
                &plan,
            )
            .unwrap();
            let chan = run_doublechecker(
                &wl.program,
                &spec,
                base.with_op_transport(OpTransport::Channel),
                &plan,
            )
            .unwrap();
            let ctx = format!("{} seed {seed}", wl.name);
            let keys = |r: &DcReport| -> BTreeSet<_> {
                r.violations.iter().map(|v| v.static_key()).collect()
            };
            assert_eq!(
                keys(&ring),
                keys(&chan),
                "{ctx}: ring vs channel violations"
            );
            assert_eq!(
                ring.static_info, chan.static_info,
                "{ctx}: ring vs channel static transaction info"
            );
            let scrub = |mut s: DcStats| {
                s.collected_txs = 0;
                s
            };
            assert_eq!(
                scrub(ring.stats),
                scrub(chan.stats),
                "{ctx}: ring vs channel stats"
            );
        }
    }
}

/// Sharding the IDG by connected component is a pure performance change:
/// shards 1 (the classic single graph owner), 2, and 4 must produce
/// identical deduplicated violations, static transaction information, and
/// statistics (modulo the per-shard collector's timing-dependent reclaim
/// count) on the same deterministic schedule.
#[test]
fn sharded_idg_is_bit_identical_across_the_suite() {
    use dc_core::{run_doublechecker, DcConfig, DcReport, DcStats};
    use std::collections::BTreeSet;
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            let plan = ExecPlan::Det(Schedule::random(seed));
            let base = DcConfig::single_run(plan.coordination()).with_pipelined(true);
            let run = |shards: u32| {
                run_doublechecker(&wl.program, &spec, base.clone().with_shards(shards), &plan)
                    .unwrap()
            };
            let single = run(1);
            let keys = |r: &DcReport| -> BTreeSet<_> {
                r.violations.iter().map(|v| v.static_key()).collect()
            };
            let scrub = |mut s: DcStats| {
                s.collected_txs = 0;
                s
            };
            for shards in [2u32, 4] {
                let sharded = run(shards);
                let ctx = format!("{} seed {seed} shards {shards}", wl.name);
                assert_eq!(
                    keys(&single),
                    keys(&sharded),
                    "{ctx}: single-owner vs sharded violations"
                );
                assert_eq!(
                    single.static_info, sharded.static_info,
                    "{ctx}: single-owner vs sharded static transaction info"
                );
                assert_eq!(
                    scrub(single.stats),
                    scrub(sharded.stats),
                    "{ctx}: single-owner vs sharded stats"
                );
                assert_eq!(
                    sharded.pipeline_error, None,
                    "{ctx}: healthy run must not report a pipeline error"
                );
            }
        }
    }
}

/// Observability is a pure observer: with every instrumentation site live
/// (`ObsLevel::Full`) the analysis artefacts — violations, static
/// transaction information, statistics — are identical to the
/// uninstrumented (`ObsLevel::Off`) run on the same deterministic schedule,
/// in both the synchronous and the pipelined configuration.
#[test]
fn observability_full_vs_off_is_bit_identical_across_the_suite() {
    use dc_core::{run_doublechecker, DcConfig, DcReport, DcStats, ObsLevel};
    for wl in all(Scale::Tiny) {
        let spec = dc_core::initial_spec(&wl.program, &wl.extra_exclusions);
        for seed in 0..2u64 {
            for pipelined in [false, true] {
                let plan = ExecPlan::Det(Schedule::random(seed));
                let base = DcConfig::single_run(plan.coordination()).with_pipelined(pipelined);
                let off = run_doublechecker(
                    &wl.program,
                    &spec,
                    base.clone().with_observability(ObsLevel::Off),
                    &plan,
                )
                .unwrap();
                let full = run_doublechecker(
                    &wl.program,
                    &spec,
                    base.with_observability(ObsLevel::Full),
                    &plan,
                )
                .unwrap();
                let ctx = format!("{} seed {seed} pipelined {pipelined}", wl.name);
                assert!(off.pipeline.is_none(), "{ctx}: off must report nothing");
                assert!(full.pipeline.is_some(), "{ctx}: full must report");
                if pipelined {
                    // Replay-pool workers race for SCCs, so which dynamic
                    // instance represents each deduplicated violation — and
                    // the collector's timing-dependent reclaim count — may
                    // differ between runs; the violation *set* (by static
                    // key) and everything else must match bit for bit.
                    let keys = |r: &DcReport| -> std::collections::BTreeSet<_> {
                        r.violations.iter().map(|v| v.static_key()).collect()
                    };
                    assert_eq!(keys(&off), keys(&full), "{ctx}: violations");
                    let scrub = |mut s: DcStats| {
                        s.collected_txs = 0;
                        s
                    };
                    assert_eq!(scrub(off.stats), scrub(full.stats), "{ctx}: stats");
                } else {
                    assert_eq!(off.violations, full.violations, "{ctx}: violations");
                    assert_eq!(off.stats, full.stats, "{ctx}: stats");
                }
                assert_eq!(off.static_info, full.static_info, "{ctx}: static info");
            }
        }
    }
}

/// The oracle also validates the blame direction on a canonical case.
#[test]
fn oracle_blames_the_cycle_completer() {
    use dc_runtime::ids::{MethodId, ObjId, ThreadId};
    use dc_runtime::trace::TraceEvent;
    let events = vec![
        TraceEvent::Enter(ThreadId(0), MethodId(0)),
        TraceEvent::Write(ThreadId(0), ObjId(0), 0),
        TraceEvent::Enter(ThreadId(1), MethodId(1)),
        TraceEvent::Read(ThreadId(1), ObjId(0), 0), // edge 0 → 1 (first out of tx0)
        TraceEvent::Write(ThreadId(1), ObjId(0), 1),
        TraceEvent::Read(ThreadId(0), ObjId(0), 1), // edge 1 → 0 closes the cycle
        TraceEvent::Exit(ThreadId(1), MethodId(1)),
        TraceEvent::Exit(ThreadId(0), MethodId(0)),
    ];
    let report = analyze_trace(
        &events,
        &dc_runtime::spec::AtomicitySpec::all_atomic(),
        OfflineConfig::default(),
    );
    assert_eq!(report.violations.len(), 1);
    assert_eq!(
        report.violations[0].blamed_methods(),
        vec![MethodId(0)],
        "the transaction whose outgoing edge came first is blamed"
    );
}
